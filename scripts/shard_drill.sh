#!/usr/bin/env bash
# Degraded-zone drill for the sharded fleet solver (CI smoke + local
# acceptance run).
#
# 1. Run `shard_drill`: a healthy fleet replan, then an epoch with an
#    injected worker panic (zone 0) and a forced zone timeout (zone 1,
#    stall >> deadline), then clean replans until reconvergence. The
#    binary exits nonzero unless exactly those zones degrade, every
#    epoch's plan passes the fleet invariant check (redlines, feed,
#    power bookkeeping), and the fleet reconverges to the healthy
#    answer.
# 2. Assert the degraded-zone evidence actually appears in the streamed
#    obs trace: panic and timeout counters, at least one fallback
#    counter, and the replan spans.
#
# Usage: scripts/shard_drill.sh [WORKDIR]
# Binaries are taken from target/release (build first).
set -euo pipefail

WORK="${1:-$(mktemp -d /tmp/thermaware-shard-drill.XXXXXX)}"
BIN=target/release
TRACE="$WORK/shard_trace.jsonl"
mkdir -p "$WORK"

echo "== shard drill: worker panic + zone timeout + reconvergence (workdir $WORK) =="
"$BIN/shard_drill" --trace "$TRACE"

[ -f "$TRACE" ] || { echo "FAIL: drill wrote no trace"; exit 1; }

echo "-- degraded-zone evidence in the streamed trace --"
for needle in shard.zone_panics shard.zone_timeouts shard.degraded_zones shard.replan; do
  grep -q "$needle" "$TRACE" \
    || { echo "FAIL: $needle never appeared in the obs trace"; exit 1; }
done
# At least one fallback rung must have fired for the degraded zones.
grep -Eq "shard\.fallback_(last_good|throttle|all_off)" "$TRACE" \
  || { echo "FAIL: no fallback counter in the obs trace"; exit 1; }

echo "PASS: drill green and degraded-zone evidence present in $TRACE"
