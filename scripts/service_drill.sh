#!/usr/bin/env bash
# Kill-under-load drill for the scheduling service (CI smoke + local
# acceptance run).
#
# 1. Start `thermaware-serve` with chaos-injected solver failures so
#    the circuit breaker exercises its open/half-open ladder.
# 2. Drive a surge (>= 100k task arrivals) through `thermaware-loadgen`
#    with client chaos, writing the id ledger to a report.
# 3. `kill -9` the daemon mid-load.
# 4. Restart it on the same directory (journal replay, no re-solving)
#    and run `--verify-against` the report: every acked batch must
#    answer duplicate=true — nothing admitted is lost, nothing is
#    admitted twice.
# 5. Assert the breaker transitions actually appear in the obs trace.
#
# Usage: scripts/service_drill.sh [WORKDIR]
# Binaries are taken from target/release (build first).
set -euo pipefail

WORK="${1:-$(mktemp -d /tmp/thermaware-drill.XXXXXX)}"
BIN=target/release
SOCK="$WORK/serve.sock"
DIR="$WORK/state"
REPORT="$WORK/loadgen_report.json"
MIN_ARRIVALS=100000
mkdir -p "$WORK"

serve() { # serve TRACE_PATH
  # A SIGKILLed daemon leaves its socket file behind; remove it so the
  # readiness probe below sees the *new* daemon's bind, not the corpse.
  rm -f "$SOCK"
  "$BIN/thermaware-serve" \
    --dir "$DIR" --socket "$SOCK" \
    --epoch-wall-ms 20 --queue-capacity 512 \
    --solve-timeout-ms 500 --min-replan-gap 2 --drift-threshold 0.1 \
    --breaker-threshold 2 --breaker-cooldown 2 \
    --chaos-solver-rate 0.7 --chaos-seed 42 \
    --flush-every 8 --snapshot-interval 32 \
    --trace "$1" &
  SERVER_PID=$!
  for _ in $(seq 1 200); do [ -S "$SOCK" ] && break; sleep 0.05; done
  [ -S "$SOCK" ] || { echo "FAIL: daemon never bound $SOCK"; exit 1; }
}

json_field() { # json_field FILE KEY -> integer value
  grep -o "\"$2\":[0-9]*" "$1" | head -1 | cut -d: -f2
}

echo "== drill: surge + SIGKILL + resume + verify (workdir $WORK) =="
serve "$WORK/trace1.jsonl"
FIRST_PID=$SERVER_PID

# Surge load: base 250 batches/s, 3x surge in the middle, 64 tasks per
# batch, a dash of client chaos. The SIGKILL lands mid-surge.
"$BIN/thermaware-loadgen" --socket "$SOCK" \
  --schedule surge:250:750:2:4 --duration-s 8 \
  --connections 32 --batch-tasks 64 \
  --disconnect-rate 0.02 --malformed-rate 0.01 --slowloris-rate 0.01 \
  --seed 7 --report "$REPORT" &
LOADGEN_PID=$!

sleep 4
echo "-- kill -9 the daemon mid-surge --"
kill -9 "$FIRST_PID"
wait "$FIRST_PID" 2>/dev/null || true

# The loadgen rides out the outage, counting io errors and in-doubt ids.
wait "$LOADGEN_PID" || true
[ -f "$REPORT" ] || { echo "FAIL: loadgen wrote no report"; exit 1; }

SENT=$(json_field "$REPORT" sent_tasks)
ACKED=$(json_field "$REPORT" acked)
echo "-- offered $SENT task(s), $ACKED acked batch(es) before/around the kill --"
[ "$SENT" -ge "$MIN_ARRIVALS" ] || { echo "FAIL: surge offered $SENT < $MIN_ARRIVALS arrivals"; exit 1; }
[ "$ACKED" -gt 0 ] || { echo "FAIL: nothing acked before the kill"; exit 1; }

echo "-- restart on the same directory (journal replay) --"
serve "$WORK/trace2.jsonl"
SECOND_PID=$SERVER_PID

"$BIN/thermaware-loadgen" --socket "$SOCK" --verify-against "$REPORT" \
  || { echo "FAIL: verify lost admitted work"; kill -9 "$SECOND_PID"; exit 1; }

kill -9 "$SECOND_PID" 2>/dev/null || true
wait "$SECOND_PID" 2>/dev/null || true

# The SIGKILLed daemon's trace must still show the breaker ladder:
# transitions are streamed as span lines and flushed every epoch.
echo "-- breaker transitions in the (killed) daemon's trace --"
for span in service.breaker_to_open service.breaker_to_half_open; do
  grep -q "$span" "$WORK"/trace1*.jsonl \
    || { echo "FAIL: $span never appeared in the obs trace"; exit 1; }
done

echo "PASS: $SENT arrivals surged, daemon SIGKILLed and resumed, no acked batch lost, breaker ladder visible"
