//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the thin slice of `rand`'s API it actually uses: the
//! [`Rng`]/[`RngCore`]/[`SeedableRng`] traits, [`rngs::StdRng`], and
//! uniform range sampling over the primitive types. The generator is
//! xoshiro256++ seeded through SplitMix64 — deterministic for a given
//! `seed_from_u64`, statistically solid for simulation workloads, and
//! explicitly **not** cryptographic.
//!
//! Streams differ from upstream `rand`'s `StdRng` (ChaCha12), so seeded
//! draws are reproducible only within this workspace.

/// Low-level uniform bit source.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Uniform sampling of a type from a range — the bound `Rng::gen_range`
/// places on its argument.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Convert 64 random bits into a uniform `f64` in `[0, 1)`.
#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 mantissa bits of precision.
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        let v = self.start + unit_f64(rng) * (self.end - self.start);
        // Floating-point rounding can land exactly on `end`; fold back.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty f64 range");
        lo + unit_f64(rng) * (hi - lo)
    }
}

macro_rules! int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform draw from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// A Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable deterministic generators.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed (the only constructor the workspace uses).
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// xoshiro256++, seeded via SplitMix64. Deterministic and fast; not
    /// cryptographic.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, per Vigna's reference seeding advice.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f = rng.gen_range(0.25_f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let g = rng.gen_range(1.0_f64..=2.0);
            assert!((1.0..=2.0).contains(&g));
            let u = rng.gen_range(3_usize..9);
            assert!((3..9).contains(&u));
            let v = rng.gen_range(5_u64..=5);
            assert_eq!(v, 5);
            let w = rng.gen_range(-4_i32..4);
            assert!((-4..4).contains(&w));
        }
    }

    #[test]
    fn unit_draws_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(11);
        let draws: Vec<f64> = (0..4096).map(|_| rng.gen_range(0.0_f64..1.0)).collect();
        let mean = draws.iter().sum::<f64>() / draws.len() as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
        assert!(draws.iter().any(|&x| x < 0.05));
        assert!(draws.iter().any(|&x| x > 0.95));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((hits as f64 / 10_000.0 - 0.3).abs() < 0.03);
    }
}
