//! Offline stand-in for `serde`.
//!
//! The build environment cannot reach crates.io, so this crate provides
//! the contract the workspace needs: [`Serialize`]/[`Deserialize`] traits
//! that round-trip through an in-memory JSON [`Value`], plus derive
//! macros (re-exported from the companion `serde_derive` proc-macro
//! crate) for plain structs with named fields and fieldless enums — the
//! only shapes the workspace serializes. `serde_json` (also vendored)
//! prints and parses the [`Value`] tree.
//!
//! This is intentionally *not* the real serde data model: there are no
//! `Serializer`/`Deserializer` abstractions, no zero-copy, no attributes.
//! If upstream serde becomes available again, swapping it back in only
//! requires the workspace manifest to change.

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// An in-memory JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Any JSON number (stored as `f64`; the workspace's integers are
    /// far below 2^53, where this is exact).
    Number(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, when this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// The array elements, when this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The numeric value, when this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(x) => Some(*x),
            _ => None,
        }
    }

    /// The string contents, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Member lookup by key, when this is an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|o| o.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

/// Serialization/deserialization failure.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Build an error from any message.
    pub fn custom(msg: impl fmt::Display) -> Error {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves as a JSON [`Value`].
pub trait Serialize {
    /// The JSON form of `self`.
    fn to_value(&self) -> Value;
}

/// Types that can rebuild themselves from a JSON [`Value`].
pub trait Deserialize: Sized {
    /// Parse `self` out of a JSON value.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Fetch and deserialize a required object field — the helper the derive
/// macro expands member reads to.
pub fn field<T: Deserialize>(entries: &[(String, Value)], name: &str) -> Result<T, Error> {
    match entries.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_value(v),
        None => Err(Error::custom(format!("missing field '{name}'"))),
    }
}

// ---- Primitive impls -----------------------------------------------------

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected boolean")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::custom("expected number"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let x = v.as_f64().ok_or_else(|| Error::custom("expected number"))?;
                if x.fract() != 0.0 {
                    return Err(Error::custom("expected integer"));
                }
                if x < <$t>::MIN as f64 || x > <$t>::MAX as f64 {
                    return Err(Error::custom("integer out of range"));
                }
                Ok(x as $t)
            }
        }
    )*};
}
int_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! tuple_impls {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v.as_array().ok_or_else(|| Error::custom("expected array"))?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(Error::custom("tuple arity mismatch"));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}
tuple_impls! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(f64::from_value(&1.5.to_value()).unwrap(), 1.5);
        assert_eq!(usize::from_value(&7usize.to_value()).unwrap(), 7);
        assert!(bool::from_value(&true.to_value()).unwrap());
        let v = vec![1.0, 2.0, 3.0];
        assert_eq!(Vec::<f64>::from_value(&v.to_value()).unwrap(), v);
        let t = (2.0, 5.0);
        assert_eq!(<(f64, f64)>::from_value(&t.to_value()).unwrap(), t);
        assert_eq!(Option::<f64>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn integer_checks_reject_fractions() {
        assert!(usize::from_value(&Value::Number(1.5)).is_err());
        assert!(u8::from_value(&Value::Number(300.0)).is_err());
        assert!(i8::from_value(&Value::Number(-200.0)).is_err());
    }

    #[test]
    fn object_lookup() {
        let v = Value::Object(vec![("a".into(), Value::Number(1.0))]);
        assert_eq!(v.get("a").and_then(Value::as_f64), Some(1.0));
        assert!(v.get("b").is_none());
        assert_eq!(field::<f64>(v.as_object().unwrap(), "a").unwrap(), 1.0);
        assert!(field::<f64>(v.as_object().unwrap(), "b").is_err());
    }
}
