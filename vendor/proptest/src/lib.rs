//! Offline stand-in for `proptest`.
//!
//! Provides the surface the workspace's property tests use: the
//! [`strategy::Strategy`] trait with `prop_map`/`prop_flat_map`/`boxed`,
//! range and tuple strategies, `Just`, `prop::collection::vec`,
//! `prop::sample::select`, `any::<bool>()`, [`ProptestConfig`], and the
//! `proptest!`/`prop_assert!`/`prop_assert_eq!`/`prop_assume!`/
//! `prop_oneof!` macros.
//!
//! Differences from the real crate, on purpose:
//!
//! * no shrinking — a failing case panics with the generated inputs'
//!   assertion message, not a minimized counterexample;
//! * generation is driven by a fixed-seed deterministic PRNG (the
//!   vendored `rand::rngs::StdRng`), so failures reproduce exactly;
//! * strategies produce values directly rather than value trees.

pub mod strategy {
    //! Value generation strategies.

    use rand::rngs::StdRng;
    use rand::Rng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Transform every generated value with `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Use each generated value to pick a follow-up strategy.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erase the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// A type-erased strategy, as produced by [`Strategy::boxed`].
    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut StdRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut StdRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Uniform choice among boxed alternatives — what `prop_oneof!`
    /// expands to.
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Build from a non-empty list of alternatives.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            let i = rng.gen_range(0..self.options.len());
            self.options[i].generate(rng)
        }
    }

    macro_rules! range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    range_strategies!(f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Fair coin — the strategy behind `any::<bool>()`.
    #[derive(Clone, Debug)]
    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;
        fn generate(&self, rng: &mut StdRng) -> bool {
            rng.gen_bool(0.5)
        }
    }

    macro_rules! tuple_strategies {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategies! {
        (A: 0)
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
        (A: 0, B: 1, C: 2, D: 3, E: 4)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9, K: 10)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9, K: 10, L: 11)
    }
}

pub mod prop {
    //! The `prop::` namespace exposed by the prelude.

    pub mod collection {
        //! Collection strategies.

        use crate::strategy::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng;

        /// Length specification for [`vec`]: an exact count or a range.
        #[derive(Clone, Debug)]
        pub struct SizeRange {
            lo: usize,
            hi: usize, // inclusive
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> SizeRange {
                SizeRange { lo: n, hi: n }
            }
        }

        impl From<std::ops::Range<usize>> for SizeRange {
            fn from(r: std::ops::Range<usize>) -> SizeRange {
                assert!(r.start < r.end, "empty size range");
                SizeRange {
                    lo: r.start,
                    hi: r.end - 1,
                }
            }
        }

        impl From<std::ops::RangeInclusive<usize>> for SizeRange {
            fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
                SizeRange {
                    lo: *r.start(),
                    hi: *r.end(),
                }
            }
        }

        /// A `Vec` whose elements come from `element` and whose length
        /// comes from `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        /// See [`vec`].
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
                let n = if self.size.lo == self.size.hi {
                    self.size.lo
                } else {
                    rng.gen_range(self.size.lo..=self.size.hi)
                };
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    pub mod sample {
        //! Sampling from explicit value sets.

        use crate::strategy::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng;

        /// Uniformly pick one of `values`.
        pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
            assert!(!values.is_empty(), "select over an empty set");
            Select { values }
        }

        /// See [`select`].
        pub struct Select<T: Clone> {
            values: Vec<T>,
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn generate(&self, rng: &mut StdRng) -> T {
                let i = rng.gen_range(0..self.values.len());
                self.values[i].clone()
            }
        }
    }
}

/// Canonical strategies for a type, behind [`any`].
pub trait Arbitrary {
    /// The strategy `any::<Self>()` returns.
    type Strategy: strategy::Strategy<Value = Self>;

    /// Build that strategy.
    fn arbitrary() -> Self::Strategy;
}

impl Arbitrary for bool {
    type Strategy = strategy::AnyBool;
    fn arbitrary() -> strategy::AnyBool {
        strategy::AnyBool
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Runner configuration. Only `cases` is interpreted.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of passing cases required per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!`; it does not count
    /// against the budget of passing cases.
    Reject(String),
    /// An assertion failed; the whole test fails.
    Fail(String),
}

impl TestCaseError {
    /// Build a failure.
    pub fn fail(msg: impl std::fmt::Display) -> TestCaseError {
        TestCaseError::Fail(msg.to_string())
    }

    /// Build a rejection.
    pub fn reject(msg: impl std::fmt::Display) -> TestCaseError {
        TestCaseError::Reject(msg.to_string())
    }
}

/// Drive one property test: generate cases from `strategy` until
/// `config.cases` of them pass, panicking on the first failure.
///
/// This is the function the `proptest!` macro expands each test body
/// into; it is public for the macro, not for direct use.
#[doc(hidden)]
pub fn run_proptest<S, F>(config: ProptestConfig, strategy: S, mut test: F)
where
    S: strategy::Strategy,
    F: FnMut(S::Value) -> Result<(), TestCaseError>,
{
    use rand::SeedableRng;

    // Deterministic seed: offline runs must reproduce exactly.
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x7072_6f70_7465_7374); // "proptest"
    let mut passed = 0u32;
    let mut rejected = 0u32;
    let max_rejects = config.cases.saturating_mul(10).saturating_add(256);
    while passed < config.cases {
        let value = strategy.generate(&mut rng);
        match test(value) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                if rejected > max_rejects {
                    panic!(
                        "proptest: too many rejected cases ({rejected}) for {} passes",
                        passed
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest case failed after {passed} passing cases: {msg}")
            }
        }
    }
}

/// Define property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `fn name()` that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr)) => {};
    (($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::run_proptest(
                $config,
                ($($strat,)+),
                |($($arg,)+)| -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                },
            );
        }
        $crate::__proptest_fns!(($config) $($rest)*);
    };
}

/// Assert inside a proptest body; failure fails the whole test with the
/// formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// Discard the current case (does not count as a pass or a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

pub mod prelude {
    //! Everything a property-test file needs.

    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Arbitrary,
        ProptestConfig, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_tuples_and_combinators() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let strat = (2usize..10).prop_flat_map(|n| {
            (
                Just(n),
                prop::collection::vec(-1.0f64..1.0, n),
            )
        });
        for _ in 0..100 {
            let (n, xs) = strat.generate(&mut rng);
            assert!((2..10).contains(&n));
            assert_eq!(xs.len(), n);
            assert!(xs.iter().all(|x| (-1.0..1.0).contains(x)));
        }
    }

    #[test]
    fn oneof_and_select() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let strat = prop_oneof![
            (Just(1usize), 8usize..20),
            (Just(2usize), 12usize..30),
        ];
        let mut saw = [false, false];
        for _ in 0..200 {
            let (c, n) = strat.generate(&mut rng);
            match c {
                1 => {
                    saw[0] = true;
                    assert!((8..20).contains(&n));
                }
                2 => {
                    saw[1] = true;
                    assert!((12..30).contains(&n));
                }
                _ => unreachable!(),
            }
        }
        assert!(saw[0] && saw[1]);
        let sel = prop::sample::select(vec![3, 5, 7]);
        for _ in 0..50 {
            assert!([3, 5, 7].contains(&sel.generate(&mut rng)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_round_trip(
            (n, xs) in (1usize..6).prop_flat_map(|n| (Just(n), prop::collection::vec(0.0f64..10.0, n))),
            flag in any::<bool>(),
        ) {
            prop_assert_eq!(xs.len(), n);
            prop_assume!(n > 0);
            if flag {
                // Early return must type-check inside the closure.
                return Ok(());
            }
            prop_assert!(xs.iter().all(|&x| x < 10.0), "out of range: {xs:?}");
        }
    }
}
