//! Offline stand-in for `crossbeam`, covering the one API the workspace
//! uses: [`scope`] with `scope.spawn(|_| ...)`.
//!
//! Implemented over `std::thread::scope` (stable since 1.63). Semantics
//! match crossbeam's: all spawned threads are joined before `scope`
//! returns, and the call yields `Err` if any worker panicked.

/// Handle passed to scoped closures; `spawn` launches a worker joined at
/// scope exit. The closure again receives a `Scope` (crossbeam's
/// signature), so nested spawns type-check.
pub struct Scope<'scope, 'env> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Clone for Scope<'scope, 'env> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a worker thread joined before [`scope`] returns.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let handle = *self;
        self.inner.spawn(move || f(handle))
    }
}

/// Run `f` with a [`Scope`]; every thread it spawns is joined before
/// this returns. `Ok(r)` carries `f`'s result; `Err` means a worker (or
/// `f` itself) panicked, with the panic payload as the error value.
pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
where
    F: for<'scope> FnOnce(Scope<'scope, 'env>) -> R,
{
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        std::thread::scope(|s| f(Scope { inner: s }))
    }))
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn workers_run_and_join() {
        let counter = AtomicUsize::new(0);
        let result = super::scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert!(result.is_ok());
        assert_eq!(counter.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn worker_panic_surfaces_as_err() {
        let result = super::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(result.is_err());
    }

    #[test]
    fn scope_returns_closure_value() {
        let result = super::scope(|s| {
            let h = s.spawn(|_| 21);
            h.join().map(|x| x * 2).unwrap_or(0)
        });
        assert_eq!(result.unwrap(), 42);
    }
}
