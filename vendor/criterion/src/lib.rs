//! Offline stand-in for `criterion`: the same macro/builder surface
//! (`criterion_group!`, `criterion_main!`, benchmark groups, `Bencher`)
//! backed by a deliberately small timing loop.
//!
//! It times each benchmark with `std::time::Instant` over a fixed
//! warmup-plus-measurement schedule and prints mean per-iteration wall
//! time. No statistics, plots, or baselines — enough to run
//! `cargo bench` and catch gross regressions offline.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-iteration timing loop handed to benchmark closures.
pub struct Bencher {
    /// Mean wall time per iteration, filled in by [`Bencher::iter`].
    elapsed_per_iter: Duration,
}

impl Bencher {
    /// Time `routine`, storing the mean per-iteration duration.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut routine: F) {
        // Warmup: let caches/allocator settle and estimate cost.
        let warmup_start = Instant::now();
        let mut warmup_iters: u64 = 0;
        while warmup_start.elapsed() < Duration::from_millis(200) {
            black_box(routine());
            warmup_iters += 1;
        }
        let est = warmup_start.elapsed().as_secs_f64() / warmup_iters.max(1) as f64;

        // Measurement: aim for ~1s of work, at least 5 iterations.
        let iters = ((1.0 / est.max(1e-9)) as u64).clamp(5, 1_000_000);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.elapsed_per_iter = start.elapsed() / iters as u32;
    }
}

/// Names one benchmark within a group, e.g. `new("solve", "8x12")`.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// A function/parameter benchmark id.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: format!("{function}/{parameter}"),
        }
    }
}

/// Throughput annotation; recorded for display parity, not analysis.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Accepted for API parity; the stand-in's schedule is time-based.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Annotate subsequent benchmarks with a throughput figure.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            elapsed_per_iter: Duration::ZERO,
        };
        f(&mut b);
        self.report(&id.to_string(), b.elapsed_per_iter);
        self
    }

    /// Run one benchmark with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            elapsed_per_iter: Duration::ZERO,
        };
        f(&mut b, input);
        self.report(&id.name, b.elapsed_per_iter);
        self
    }

    fn report(&self, bench: &str, per_iter: Duration) {
        let _ = &self.criterion;
        let throughput = match self.throughput {
            Some(Throughput::Elements(n)) if per_iter > Duration::ZERO => {
                format!("  ({:.0} elem/s)", n as f64 / per_iter.as_secs_f64())
            }
            Some(Throughput::Bytes(n)) if per_iter > Duration::ZERO => {
                format!("  ({:.0} B/s)", n as f64 / per_iter.as_secs_f64())
            }
            _ => String::new(),
        };
        println!("{}/{bench}: {per_iter:?}/iter{throughput}", self.name);
    }

    /// End the group (prints nothing extra; exists for API parity).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("benchmark group: {name}");
        BenchmarkGroup {
            criterion: self,
            name,
            throughput: None,
        }
    }

    /// Run a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group(name.to_string())
            .bench_function("bench", f);
        self
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("smoke");
        group.sample_size(10);
        group.throughput(Throughput::Elements(4));
        group.bench_function("sum", |b| b.iter(|| (0..4u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("mul", 3), &3u64, |b, &k| {
            b.iter(|| k.wrapping_mul(17))
        });
        group.finish();
    }

    #[test]
    fn harness_runs() {
        let mut criterion = Criterion::default();
        quick_bench(&mut criterion);
    }
}
