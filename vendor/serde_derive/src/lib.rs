//! Derive macros for the vendored `serde` stand-in.
//!
//! Supports exactly the shapes the workspace serializes:
//!
//! * structs with named fields → JSON objects keyed by field name;
//! * fieldless enums → JSON strings holding the variant name.
//!
//! Anything else (tuple structs, payload-carrying enums, generics) is a
//! compile error, which is the right failure mode for a deliberately
//! minimal shim: the derive site tells you precisely what grew beyond
//! the supported surface.
//!
//! No `syn`/`quote` — the input item is scanned directly from the token
//! stream and the impls are emitted as source text.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What the item scanner found.
enum Item {
    Struct { name: String, fields: Vec<String> },
    Enum { name: String, variants: Vec<String> },
}

/// Skip attributes (`#[...]`, including expanded doc comments) and
/// visibility (`pub`, `pub(...)`) at the cursor.
fn skip_meta(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#` then a bracket group.
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return i,
        }
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_meta(&tokens, 0);

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, found {other:?}")),
    };
    i += 1;

    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            return Err(format!("`{name}`: generic items are not supported by the vendored serde derive"));
        }
        _ => {
            return Err(format!(
                "`{name}`: only braced structs and enums are supported by the vendored serde derive"
            ));
        }
    };
    let body: Vec<TokenTree> = body.into_iter().collect();

    match kind.as_str() {
        "struct" => {
            let mut fields = Vec::new();
            let mut j = 0;
            while j < body.len() {
                j = skip_meta(&body, j);
                let Some(TokenTree::Ident(field)) = body.get(j) else {
                    break;
                };
                fields.push(field.to_string());
                j += 1;
                match body.get(j) {
                    Some(TokenTree::Punct(p)) if p.as_char() == ':' => j += 1,
                    _ => {
                        return Err(format!(
                            "`{name}`: expected `:` after field `{}`",
                            fields.last().unwrap()
                        ))
                    }
                }
                // Consume the type: everything until a top-level comma.
                // `<` / `>` in paths (e.g. `Vec<Vec<f64>>`) never appear as
                // *top-level* commas because generic args live inside the
                // angle brackets — but token streams have no angle-bracket
                // groups, so track nesting depth by hand.
                let mut depth = 0i32;
                while let Some(t) = body.get(j) {
                    match t {
                        TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                        TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                        TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                            j += 1;
                            break;
                        }
                        _ => {}
                    }
                    j += 1;
                }
            }
            Ok(Item::Struct { name, fields })
        }
        "enum" => {
            let mut variants = Vec::new();
            let mut j = 0;
            while j < body.len() {
                j = skip_meta(&body, j);
                let Some(TokenTree::Ident(variant)) = body.get(j) else {
                    break;
                };
                variants.push(variant.to_string());
                j += 1;
                match body.get(j) {
                    None => break,
                    Some(TokenTree::Punct(p)) if p.as_char() == ',' => j += 1,
                    Some(TokenTree::Group(_)) => {
                        return Err(format!(
                            "`{name}::{}`: payload-carrying enum variants are not supported by the vendored serde derive",
                            variants.last().unwrap()
                        ));
                    }
                    Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                        return Err(format!(
                            "`{name}`: explicit discriminants are not supported by the vendored serde derive"
                        ));
                    }
                    other => return Err(format!("`{name}`: unexpected token {other:?}")),
                }
            }
            Ok(Item::Enum { name, variants })
        }
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Derive `serde::Serialize` (vendored contract: `fn to_value(&self) ->
/// serde::Value`).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return compile_error(&e),
    };
    let src = match item {
        Item::Struct { name, fields } => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "obj.push(({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f})));\n"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         let mut obj: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n\
                         {pushes}\
                         ::serde::Value::Object(obj)\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => {v:?},\n"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::String(match self {{ {arms} }}.to_string())\n\
                     }}\n\
                 }}"
            )
        }
    };
    src.parse().unwrap()
}

/// Derive `serde::Deserialize` (vendored contract: `fn from_value(&Value)
/// -> Result<Self, serde::Error>`).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return compile_error(&e),
    };
    let src = match item {
        Item::Struct { name, fields } => {
            let reads: String = fields
                .iter()
                .map(|f| format!("{f}: ::serde::field(entries, {f:?})?,\n"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         let entries = v.as_object().ok_or_else(|| ::serde::Error::custom(concat!(\"expected object for \", stringify!({name}))))?;\n\
                         ::std::result::Result::Ok({name} {{ {reads} }})\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{v:?} => ::std::result::Result::Ok({name}::{v}),\n"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         let s = v.as_str().ok_or_else(|| ::serde::Error::custom(concat!(\"expected string for \", stringify!({name}))))?;\n\
                         match s {{\n\
                             {arms}\
                             other => ::std::result::Result::Err(::serde::Error::custom(format!(\"unknown variant '{{other}}' of {name}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    src.parse().unwrap()
}
