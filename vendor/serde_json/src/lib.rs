//! Offline stand-in for `serde_json`, printing and parsing the vendored
//! [`serde::Value`] tree.
//!
//! Covers the workspace's usage: [`to_string`], [`to_string_pretty`],
//! [`from_str`], and the [`json!`] macro for object/array literals.
//! Number printing uses Rust's shortest round-trip `f64` formatting, so
//! `parse(print(x)) == x` exactly for every finite double.

// The `json!` object arm expands to a build-by-push sequence; the lint
// cannot be silenced at the expansion site, so it is allowed crate-wide.
#![allow(clippy::vec_init_then_push)]

pub use serde::{Error, Value};

/// `Result` alias matching the real crate's shape.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize any [`serde::Serialize`] value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(v: &T) -> Value {
    v.to_value()
}

/// Compact JSON text for any serializable value.
pub fn to_string<T: serde::Serialize + ?Sized>(v: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &v.to_value(), None, 0);
    Ok(out)
}

/// Pretty-printed JSON text (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(v: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &v.to_value(), Some(2), 0);
    Ok(out)
}

/// Parse JSON text into any [`serde::Deserialize`] type.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    T::from_value(&value)
}

// ---- Printing ------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(x) => {
            if x.is_finite() {
                // Rust's shortest round-trip formatting; integral values
                // print without a fractional part, exactly recoverable.
                out.push_str(&format!("{x}"));
            } else {
                // Match serde_json: non-finite numbers become null.
                out.push_str("null");
            }
        }
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- Parsing -------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            None => Err(Error::custom("unexpected end of input")),
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error::custom(format!("expected ',' or ']' at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(entries));
                        }
                        _ => return Err(Error::custom(format!("expected ',' or '}}' at byte {}", self.pos))),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(Error::custom(format!(
                "unexpected character '{}' at byte {}",
                b as char, self.pos
            ))),
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid utf-8 in number"))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| Error::custom(format!("invalid number '{text}'")))
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::custom("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::custom("invalid \\u escape"))?;
                            // Surrogate pairs are not needed by this
                            // workspace's data; reject rather than corrupt.
                            let c = char::from_u32(code)
                                .ok_or_else(|| Error::custom("unsupported \\u escape"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(Error::custom("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume the longest run of ordinary bytes in one
                    // step, validating UTF-8 once per run — validating
                    // the rest of the input per character would make
                    // large strings (checkpoint snapshots) quadratic.
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let run = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| Error::custom("invalid utf-8 in string"))?;
                    out.push_str(run);
                }
            }
        }
    }
}

// ---- json! macro ---------------------------------------------------------

/// Build a [`Value`] from a JSON-shaped literal. Supports `null`,
/// booleans, object literals with string-literal keys, array literals,
/// and arbitrary serializable expressions as values.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:tt),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::json!($elem) ),* ])
    };
    ({ $($body:tt)* }) => {{
        #[allow(unused_mut)]
        let mut obj: Vec<(String, $crate::Value)> = Vec::new();
        $crate::json_object_entries!(obj; $($body)*);
        $crate::Value::Object(obj)
    }};
    ($other:expr) => { $crate::to_value(&$other) };
}

/// Internal TT muncher for [`json!`] object bodies.
#[doc(hidden)]
#[macro_export]
macro_rules! json_object_entries {
    ($obj:ident;) => {};
    // Literal null value.
    ($obj:ident; $key:literal : null $(, $($rest:tt)*)?) => {
        $obj.push(($key.to_string(), $crate::Value::Null));
        $( $crate::json_object_entries!($obj; $($rest)*); )?
    };
    // Nested object value.
    ($obj:ident; $key:literal : { $($value:tt)* } $(, $($rest:tt)*)?) => {
        $obj.push(($key.to_string(), $crate::json!({ $($value)* })));
        $( $crate::json_object_entries!($obj; $($rest)*); )?
    };
    // Nested array value.
    ($obj:ident; $key:literal : [ $($value:tt)* ] $(, $($rest:tt)*)?) => {
        $obj.push(($key.to_string(), $crate::json!([ $($value)* ])));
        $( $crate::json_object_entries!($obj; $($rest)*); )?
    };
    // Expression value followed by more entries.
    ($obj:ident; $key:literal : $value:expr , $($rest:tt)*) => {
        $obj.push(($key.to_string(), $crate::to_value(&$value)));
        $crate::json_object_entries!($obj; $($rest)*);
    };
    // Final expression value.
    ($obj:ident; $key:literal : $value:expr) => {
        $obj.push(($key.to_string(), $crate::to_value(&$value)));
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn print_and_parse_round_trip() {
        let v = json!({
            "name": "x",
            "nested": { "a": 1.5, "b": [1.0, 2.0] },
            "flag": true,
            "nothing": null,
        });
        let compact = to_string(&v).unwrap();
        let back: Value = from_str(&compact).unwrap();
        assert_eq!(back, v);
        let pretty = to_string_pretty(&v).unwrap();
        let back2: Value = from_str(&pretty).unwrap();
        assert_eq!(back2, v);
    }

    #[test]
    fn floats_round_trip_exactly() {
        for &x in &[0.1f64, 1.0 / 3.0, 1e-300, -2.5e17, 0.0, -0.0, 12345.6789] {
            let s = to_string(&x).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} via {s}");
        }
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "a\"b\\c\nd\te\u{1}f→".to_string();
        let text = to_string(&s).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("nul").is_err());
    }

    #[test]
    fn array_macro_and_expressions() {
        let xs = vec![1.0, 2.0];
        let v = json!({ "xs": xs, "lit": [1.0, "two"] });
        assert_eq!(
            v.get("xs").unwrap(),
            &Value::Array(vec![Value::Number(1.0), Value::Number(2.0)])
        );
        assert_eq!(v.get("lit").unwrap().as_array().unwrap().len(), 2);
    }
}
