//! One-import surface for the common workflow: build a scenario, solve a
//! plan, simulate it, supervise it, observe everything.
//!
//! ```
//! use thermaware::prelude::*;
//!
//! let dc = ScenarioParams::small_test().build(7)?;
//! let plan = Solver::new(&dc).psi(50.0).solve()?;
//! assert!(plan.reward_rate() > 0.0);
//! # Ok::<(), thermaware::Error>(())
//! ```
//!
//! The prelude re-exports the *workflow* types only — the entry points a
//! typical example or bench touches. Substrate internals (LP modeling,
//! thermal coefficients, PWL curves) stay behind their module paths:
//! `thermaware::lp`, `thermaware::thermal`, ….

pub use crate::Error;

// Scenario assembly.
pub use thermaware_datacenter::{
    CracSearchOptions, DataCenter, ScenarioError, ScenarioParams, ScenarioSnapshot,
};

// Workload, arrival traces, and scenario curves (demand, price, carbon).
pub use thermaware_workload::{ArrivalTrace, Curve, Workload};

// The solver: the `Solver` builder is the single documented entry point
// (the legacy free functions are `#[doc(hidden)]` shims behind it).
pub use thermaware_core::{
    verify_assignment, BaselineSolution, ObjectiveWeights, SolveError, Solver,
    ThreeStageOptions, ThreeStageSolution, VerificationReport,
};

// Chip-level thermal interference model for the migration rung and the
// solver's `chip_model(..)` placement pass.
pub use thermaware_thermal::{ChipModel, ChipParams};

// The second-step dynamic scheduler.
pub use thermaware_scheduler::{simulate, DispatchPolicy, EpochSim, SimulationResult};

// The runtime supervisor and its durability layer.
pub use thermaware_runtime::{
    resume, run_checkpointed, CheckpointConfig, FaultScript, Outcome, PersistError, Supervisor,
    SupervisorConfig, SupervisorReport,
};

// Scheduling-as-a-service: the deterministic engine and durable store
// (the daemon shell and loadgen stay behind `thermaware::service`).
pub use thermaware_service::{
    resume_service, ReplanVerdict, ServiceConfig, ServiceEngine, ServiceStore,
};

// Zone-decomposed fleet solving on the supervised worker pool.
pub use thermaware_shard::{Fleet, FleetConfig, FleetParams, FleetPlan, FleetSolver};

// Observability sinks and the install entry point.
pub use thermaware_obs::{JsonlRecorder, MemoryRecorder, NoopRecorder, Recorder};
