//! The facade's unified error type.
//!
//! Each workspace layer owns a typed error (`SolveError` in the solvers,
//! `ScenarioError` in scenario assembly, `PersistError` in the runtime's
//! durability layer). Application code driving several layers through the
//! facade previously had to invent its own union or fall back to
//! `Box<dyn Error>`; [`enum@Error`] is that union, with `From` impls so
//! `?` converts automatically and [`std::error::Error::source`] chains
//! preserved down to the leaf cause (e.g.
//! `thermaware::Error` → `SolveError::Lp` → `LpError::Infeasible`).

use std::fmt;
use thermaware_core::SolveError;
use thermaware_datacenter::ScenarioError;
use thermaware_runtime::PersistError;

/// Any failure a facade-level workflow can produce.
#[derive(Debug)]
pub enum Error {
    /// A stage solver could not produce a plan.
    Solve(SolveError),
    /// A scenario description could not be assembled into a data center.
    Scenario(ScenarioError),
    /// Checkpoint/restore durability failure.
    Persist(PersistError),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Solve(e) => write!(f, "solve failed: {e}"),
            Error::Scenario(e) => write!(f, "scenario assembly failed: {e}"),
            Error::Persist(e) => write!(f, "persistence failed: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Solve(e) => Some(e),
            Error::Scenario(e) => Some(e),
            Error::Persist(e) => Some(e),
        }
    }
}

impl From<SolveError> for Error {
    fn from(e: SolveError) -> Error {
        Error::Solve(e)
    }
}

impl From<ScenarioError> for Error {
    fn from(e: ScenarioError) -> Error {
        Error::Scenario(e)
    }
}

impl From<PersistError> for Error {
    fn from(e: PersistError) -> Error {
        Error::Persist(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;
    use thermaware_lp::LpError;

    #[test]
    fn source_chain_reaches_the_leaf_cause() {
        let err: Error = SolveError::Lp {
            stage: "stage3",
            source: LpError::Infeasible { residual: 0.25 },
        }
        .into();
        let solve = err.source().expect("level 1");
        assert!(solve.to_string().contains("stage3"));
        let lp = solve.source().expect("level 2");
        assert!(lp.to_string().contains("infeasible"), "{lp}");
    }

    #[test]
    fn io_failures_chain_through_persist() {
        let err: Error = PersistError::from(std::io::Error::new(
            std::io::ErrorKind::PermissionDenied,
            "read-only checkpoint dir",
        ))
        .into();
        let persist = err.source().expect("level 1");
        let io = persist.source().expect("level 2");
        assert!(io.to_string().contains("read-only"));
    }

    #[test]
    fn question_mark_converts() {
        fn run() -> Result<(), Error> {
            Err(SolveError::invalid_input("probe"))?
        }
        assert!(matches!(run().unwrap_err(), Error::Solve(_)));
    }
}
