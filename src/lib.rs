//! **thermaware** — thermal-aware performance optimization in
//! power-constrained heterogeneous data centers.
//!
//! A full Rust reproduction of Al-Qawasmeh, Pasricha, Maciejewski &
//! Siegel, *"Thermal-Aware Performance Optimization in Power Constrained
//! Heterogeneous Data Centers"* (IEEE IPDPSW 2012), including every
//! substrate the paper relies on: a dense LP solver, the abstract
//! heat-flow thermal model with cross-interference generation, CMOS
//! P-state power models, the Section-VI synthetic workload, the
//! three-stage assignment technique, the Eq.-21 baseline, an exact MINLP
//! reference, and the second-step dynamic scheduler with a discrete-event
//! simulator.
//!
//! This crate is a facade: it re-exports the workspace members under one
//! namespace. Depend on the individual `thermaware-*` crates instead when
//! you only need a substrate.
//!
//! # Quickstart
//!
//! ```
//! use thermaware::prelude::*;
//!
//! // A small data center: 1 CRAC, 10 nodes, the paper's third
//! // simulation set (static share 20%, Vprop 0.3).
//! let params = ScenarioParams {
//!     n_nodes: 10,
//!     n_crac: 1,
//!     ..ScenarioParams::paper(0.2, 0.3)
//! };
//! let dc = params.build(42)?;
//!
//! // The paper's three-stage thermal-aware assignment...
//! let plan = Solver::new(&dc).psi(50.0).solve()?;
//! // ...against the P0-or-off baseline it is evaluated against.
//! let base = Solver::new(&dc).baseline()?;
//! assert!(plan.reward_rate() > 0.0 && base.reward_rate > 0.0);
//! # Ok::<(), thermaware::Error>(())
//! ```
//!
//! To profile a solve, hand the builder a recorder:
//!
//! ```no_run
//! use std::sync::Arc;
//! use thermaware::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let dc = ScenarioParams::small_test().build(7)?;
//! let rec = Arc::new(JsonlRecorder::create("results/trace.jsonl")?);
//! let plan = Solver::new(&dc).recorder(rec.clone()).solve()?;
//! rec.finish()?; // metric summary lines + flush
//! # Ok(()) }
//! ```

mod error;
pub mod prelude;

pub use error::Error;

/// The paper's contribution: RR/ARR curves, the three-stage assignment,
/// the baseline, the exact reference solver, and verification.
pub use thermaware_core as core;
/// Scenario assembly: floors, budgets, the Section-VI generator.
pub use thermaware_datacenter as datacenter;
/// Dense linear algebra (matrices, LU).
pub use thermaware_linalg as linalg;
/// Zero-dependency observability: spans, counters, histograms, sinks.
pub use thermaware_obs as obs;
/// The two-phase bounded-variable simplex LP solver.
pub use thermaware_lp as lp;
/// P-state tables and CMOS power models.
pub use thermaware_power as power;
/// The fault-tolerant runtime supervisor: fault injection, staged
/// degradation, typed event logs.
pub use thermaware_runtime as runtime;
/// The second-step dynamic scheduler and its event-driven simulator.
pub use thermaware_scheduler as scheduler;
/// Scheduling-as-a-service: the overload-protected daemon, its
/// deterministic engine, durable store, wire protocol, and load
/// generator.
pub use thermaware_service as service;
/// Zone-decomposed fleet solving: the supervised worker pool, the
/// power-budget bisection master, and the degraded-zone fallback ladder.
pub use thermaware_shard as shard;
/// The abstract heat-flow model, CoP/CRAC power, interference generation.
pub use thermaware_thermal as thermal;
/// Task types, ECS matrices, arrival traces.
pub use thermaware_workload as workload;
