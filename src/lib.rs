//! **thermaware** — thermal-aware performance optimization in
//! power-constrained heterogeneous data centers.
//!
//! A full Rust reproduction of Al-Qawasmeh, Pasricha, Maciejewski &
//! Siegel, *"Thermal-Aware Performance Optimization in Power Constrained
//! Heterogeneous Data Centers"* (IEEE IPDPSW 2012), including every
//! substrate the paper relies on: a dense LP solver, the abstract
//! heat-flow thermal model with cross-interference generation, CMOS
//! P-state power models, the Section-VI synthetic workload, the
//! three-stage assignment technique, the Eq.-21 baseline, an exact MINLP
//! reference, and the second-step dynamic scheduler with a discrete-event
//! simulator.
//!
//! This crate is a facade: it re-exports the workspace members under one
//! namespace. Depend on the individual `thermaware-*` crates instead when
//! you only need a substrate.
//!
//! # Quickstart
//!
//! ```
//! use thermaware::datacenter::ScenarioParams;
//! use thermaware::core::{solve_three_stage, solve_baseline, ThreeStageOptions};
//! use thermaware::datacenter::CracSearchOptions;
//!
//! // A small data center: 1 CRAC, 10 nodes, the paper's third
//! // simulation set (static share 20%, Vprop 0.3).
//! let params = ScenarioParams {
//!     n_nodes: 10,
//!     n_crac: 1,
//!     ..ScenarioParams::paper(0.2, 0.3)
//! };
//! let dc = params.build(42).expect("scenario");
//!
//! // The paper's three-stage thermal-aware assignment...
//! let plan = solve_three_stage(&dc, &ThreeStageOptions::default()).expect("plan");
//! // ...against the P0-or-off baseline it is evaluated against.
//! let base = solve_baseline(&dc, CracSearchOptions::default()).expect("baseline");
//! assert!(plan.reward_rate() > 0.0 && base.reward_rate > 0.0);
//! ```

/// The paper's contribution: RR/ARR curves, the three-stage assignment,
/// the baseline, the exact reference solver, and verification.
pub use thermaware_core as core;
/// Scenario assembly: floors, budgets, the Section-VI generator.
pub use thermaware_datacenter as datacenter;
/// Dense linear algebra (matrices, LU).
pub use thermaware_linalg as linalg;
/// The two-phase bounded-variable simplex LP solver.
pub use thermaware_lp as lp;
/// P-state tables and CMOS power models.
pub use thermaware_power as power;
/// The fault-tolerant runtime supervisor: fault injection, staged
/// degradation, typed event logs.
pub use thermaware_runtime as runtime;
/// The second-step dynamic scheduler and its event-driven simulator.
pub use thermaware_scheduler as scheduler;
/// The abstract heat-flow model, CoP/CRAC power, interference generation.
pub use thermaware_thermal as thermal;
/// Task types, ECS matrices, arrival traces.
pub use thermaware_workload as workload;
