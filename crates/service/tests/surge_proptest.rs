//! Robustness properties for the admission path under random bursts:
//! the engine never panics, every bounded structure stays bounded, and
//! a SIGKILL at an arbitrary epoch — including mid-epoch, after the
//! Begin fsync but before the Commit — resumes bit-identically with no
//! batch admitted twice.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::OnceLock;
use thermaware_core::{Solver, ThreeStageSolution};
use thermaware_datacenter::{DataCenter, ScenarioParams};
use thermaware_service::breaker::BreakerConfig;
use thermaware_service::engine::{ReplanVerdict, ServiceConfig, ServiceEngine};
use thermaware_service::proto::Batch;
use thermaware_service::store::{resume_service, state_json_crc, ServiceStore, StoreConfig};

const DEDUP_WINDOW: usize = 24;
const LOG_CAPACITY: usize = 64;
const ID_SPACE: u64 = 20; // small on purpose: collisions exercise dedup

/// One solved scenario shared across cases; planning is the expensive
/// part and the properties are about the service layer.
fn scenario() -> &'static (DataCenter, ThreeStageSolution) {
    static SCENARIO: OnceLock<(DataCenter, ThreeStageSolution)> = OnceLock::new();
    SCENARIO.get_or_init(|| {
        let dc = ScenarioParams::small_test().build(5).expect("scenario");
        let plan = Solver::new(&dc).solve().expect("plan");
        (dc, plan)
    })
}

fn service_cfg() -> ServiceConfig {
    ServiceConfig {
        dedup_window: DEDUP_WINDOW,
        log_capacity: LOG_CAPACITY,
        min_replan_gap_epochs: 1,
        breaker: BreakerConfig {
            failure_threshold: 2,
            cooldown_epochs: 1,
            max_cooldown_epochs: 4,
        },
        ..ServiceConfig::default()
    }
}

fn fresh_engine() -> ServiceEngine {
    let (dc, plan) = scenario();
    ServiceEngine::new(dc.clone(), service_cfg(), &plan.pstates, &plan.stage3)
}

/// A random epoch script: bursty batches over a tiny id space plus a
/// random verdict per epoch (the four shapes the daemon can journal).
fn script(seed: u64, epochs: usize) -> Vec<(Vec<Batch>, ReplanVerdict)> {
    let (dc, plan) = scenario();
    let n_types = dc.workload.task_types.len();
    let mut rng = StdRng::seed_from_u64(seed);
    (0..epochs)
        .map(|_| {
            let n_batches = rng.gen_range(0..5usize);
            let batches = (0..n_batches)
                .map(|_| {
                    let n_entries = rng.gen_range(1..3usize);
                    Batch {
                        id: rng.gen_range(0..ID_SPACE),
                        tasks: (0..n_entries)
                            .map(|_| {
                                (rng.gen_range(0..n_types), rng.gen_range(0..40usize))
                            })
                            .collect(),
                    }
                })
                .collect();
            let verdict = match rng.gen_range(0..4u8) {
                0 => ReplanVerdict::NotAttempted,
                1 => ReplanVerdict::TimedOut,
                2 => ReplanVerdict::Failed { error: "injected".to_string() },
                _ => ReplanVerdict::Ok { stage3: plan.stage3.clone() },
            };
            (batches, verdict)
        })
        .collect()
}

fn state_json(e: &ServiceEngine) -> String {
    serde_json::to_string(e.state()).expect("state json")
}

fn tmp_dir(tag: u64) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("thermaware-surge-{}-{tag:x}", std::process::id()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The pure core: any burst script steps to completion (reaching
    /// the assertions means no panic) with every bound intact and the
    /// admission books balanced.
    #[test]
    fn bursts_never_panic_and_bounds_hold(seed in 0u64..1_000_000, epochs in 1usize..14) {
        let mut e = fresh_engine();
        for (batches, verdict) in &script(seed, epochs) {
            e.step(batches, verdict);
            let s = e.state();
            prop_assert!(s.recent_ids.len() <= DEDUP_WINDOW, "dedup window bound");
            prop_assert!(s.log.events().len() <= LOG_CAPACITY, "event ring bound");
            prop_assert!(s.shed.len() <= e.dc().workload.task_types.len());
        }
        let t = &e.state().totals;
        let offered: u64 = script(seed, epochs)
            .iter()
            .flat_map(|(b, _)| b.iter())
            .map(|b| b.total_tasks() as u64)
            .sum();
        prop_assert!(t.admitted_tasks + t.dropped_tasks + t.shed_tasks <= offered,
            "cannot account for more tasks than were offered");
        for ty in e.per_type() {
            prop_assert!(ty.completed + ty.dropped + ty.late + ty.lost <= ty.arrived,
                "per-type books must balance");
        }
        prop_assert!(e.backlog_s().is_finite());
    }

    /// The durable layer: kill at a random epoch — half the time after
    /// the Commit (clean shape), half the time after only the Begin
    /// (the SIGKILL-mid-epoch shape) — then resume and finish the
    /// script. The final state must be bit-identical to an engine that
    /// ran the whole script uninterrupted: nothing lost, nothing
    /// admitted twice.
    #[test]
    fn kill_at_any_epoch_resumes_bit_identically(
        seed in 0u64..1_000_000,
        epochs in 2usize..10,
        kill_at_frac in 0.0f64..1.0,
        commit_before_kill in any::<bool>(),
    ) {
        let steps = script(seed, epochs);
        let kill_at = ((epochs as f64 * kill_at_frac) as usize).min(epochs - 1);

        // Reference: the whole script, no interruption.
        let mut reference = fresh_engine();
        for (batches, verdict) in &steps {
            reference.step(batches, verdict);
        }

        // Victim: journal every epoch, die at `kill_at`.
        let dir = tmp_dir(seed ^ ((epochs as u64) << 40) ^ ((kill_at as u64) << 50));
        let _ = std::fs::remove_dir_all(&dir);
        let mut live = fresh_engine();
        let store_cfg = || StoreConfig {
            durable: false, // tests: skip fsyncs, the bytes still land
            snapshot_interval: 4,
            ..StoreConfig::new(&dir)
        };
        let mut store = ServiceStore::create(store_cfg(), &live)
            .map_err(|e| TestCaseError::fail(format!("create: {e}")))?;
        for (i, (batches, verdict)) in steps.iter().take(kill_at + 1).enumerate() {
            let epoch = live.state().epoch;
            store.append_begin(epoch, batches, verdict)
                .map_err(|e| TestCaseError::fail(format!("begin: {e}")))?;
            live.step(batches, verdict);
            if i < kill_at || commit_before_kill {
                let (_, crc) = state_json_crc(live.state())
                    .map_err(|e| TestCaseError::fail(format!("crc: {e}")))?;
                store.append_commit(epoch, crc)
                    .map_err(|e| TestCaseError::fail(format!("commit: {e}")))?;
                if store.snapshot_due(live.state().epoch) {
                    store.snapshot(&live)
                        .map_err(|e| TestCaseError::fail(format!("snapshot: {e}")))?;
                }
            }
        }
        drop(store); // SIGKILL

        let (mut resumed, info) = resume_service(&dir)
            .map_err(|e| TestCaseError::fail(format!("resume: {e}")))?;
        prop_assert_eq!(info.tail_begin, !commit_before_kill);
        prop_assert_eq!(state_json(&resumed), state_json(&live),
            "resume must land exactly where the victim died");

        // Finish the script on the survivor.
        let mut store = ServiceStore::reopen(store_cfg())
            .map_err(|e| TestCaseError::fail(format!("reopen: {e}")))?;
        for (batches, verdict) in steps.iter().skip(kill_at + 1) {
            let epoch = resumed.state().epoch;
            store.append_begin(epoch, batches, verdict)
                .map_err(|e| TestCaseError::fail(format!("begin2: {e}")))?;
            resumed.step(batches, verdict);
            let (_, crc) = state_json_crc(resumed.state())
                .map_err(|e| TestCaseError::fail(format!("crc2: {e}")))?;
            store.append_commit(epoch, crc)
                .map_err(|e| TestCaseError::fail(format!("commit2: {e}")))?;
        }
        drop(store);

        prop_assert_eq!(state_json(&resumed), state_json(&reference),
            "kill + resume must not change what the service computed");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
