//! Durable-layer tests: journal replay resumes bit-identically, a tail
//! Begin without its Commit (the SIGKILL-mid-epoch shape) is re-applied
//! exactly once, and a torn journal tail is truncated, not fatal.

use std::fs::OpenOptions;
use std::io::Write;
use thermaware_core::Solver;
use thermaware_datacenter::ScenarioParams;
use thermaware_service::engine::{ReplanVerdict, ServiceConfig, ServiceEngine};
use thermaware_service::proto::Batch;
use thermaware_service::store::{resume_service, state_json_crc, ServiceStore, StoreConfig};

fn engine(seed: u64) -> ServiceEngine {
    let dc = ScenarioParams::small_test().build(seed).expect("scenario");
    let plan = Solver::new(&dc).solve().expect("plan");
    ServiceEngine::new(dc, ServiceConfig::default(), &plan.pstates, &plan.stage3)
}

fn batch(id: u64, task_type: usize, n: usize) -> Batch {
    Batch { id, tasks: vec![(task_type, n)] }
}

fn tmp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("thermaware-store-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Run `epochs` journaled epochs, committing each, snapshotting per the
/// store config.
fn drive(engine: &mut ServiceEngine, store: &mut ServiceStore, epochs: usize) {
    for i in 0..epochs {
        let epoch = engine.state().epoch;
        let batches = vec![batch(1000 + epoch as u64, i % 3, 4)];
        let verdict = ReplanVerdict::NotAttempted;
        store.append_begin(epoch, &batches, &verdict).expect("begin");
        engine.step(&batches, &verdict);
        let (_, crc) = state_json_crc(engine.state()).expect("crc");
        store.append_commit(epoch, crc).expect("commit");
        if store.snapshot_due(engine.state().epoch) {
            store.snapshot(engine).expect("snapshot");
        }
    }
}

#[test]
fn resume_after_clean_epochs_is_bit_identical() {
    let dir = tmp_dir("clean");
    let mut live = engine(7);
    let cfg = StoreConfig {
        durable: false, // tests: skip fsyncs, the bytes still land
        snapshot_interval: 4,
        ..StoreConfig::new(&dir)
    };
    let mut store = ServiceStore::create(cfg, &live).expect("create");
    drive(&mut live, &mut store, 10);
    store.sync().expect("sync");
    drop(store);

    let (resumed, info) = resume_service(&dir).expect("resume");
    assert_eq!(
        serde_json::to_string(resumed.state()).expect("resumed json"),
        serde_json::to_string(live.state()).expect("live json"),
        "resume must reproduce the live state byte-for-byte"
    );
    assert!(!info.tail_begin, "every epoch committed");
    assert!(info.snapshot_epoch >= 8, "replay starts at the newest snapshot");
    assert!(info.replayed_epochs <= 2);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tail_begin_without_commit_is_applied_exactly_once() {
    let dir = tmp_dir("tail");
    let mut live = engine(7);
    let cfg = StoreConfig { durable: false, ..StoreConfig::new(&dir) };
    let mut store = ServiceStore::create(cfg, &live).expect("create");
    drive(&mut live, &mut store, 5);

    // The SIGKILL shape: Begin journaled (and acked), no Commit, death.
    let epoch = live.state().epoch;
    let doomed = vec![batch(9999, 0, 6)];
    let verdict = ReplanVerdict::TimedOut;
    store.append_begin(epoch, &doomed, &verdict).expect("begin");
    live.step(&doomed, &verdict); // what the dying process computed
    drop(store);

    let (resumed, info) = resume_service(&dir).expect("resume");
    assert!(info.tail_begin, "tail Begin detected");
    assert_eq!(
        serde_json::to_string(resumed.state()).expect("resumed"),
        serde_json::to_string(live.state()).expect("live"),
        "tail epoch re-executed deterministically"
    );
    assert!(resumed.would_duplicate(9999), "acked batch survives the kill");
    assert_eq!(resumed.state().totals.replan_failures, live.state().totals.replan_failures);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_journal_tail_is_truncated_not_fatal() {
    let dir = tmp_dir("torn");
    let mut live = engine(7);
    let cfg = StoreConfig { durable: false, ..StoreConfig::new(&dir) };
    let mut store = ServiceStore::create(cfg, &live).expect("create");
    drive(&mut live, &mut store, 3);
    store.sync().expect("sync");
    drop(store);

    // A half-written record: valid CRC prefix followed by garbage.
    let mut f = OpenOptions::new()
        .append(true)
        .open(dir.join("journal.jsonl"))
        .expect("open journal");
    f.write_all(b"deadbeef {\"rec\":\"begin\",\"epo").expect("tear");
    drop(f);

    let (resumed, info) = resume_service(&dir).expect("resume survives the tear");
    assert!(info.truncated_bytes > 0, "tear measured and cut");
    assert_eq!(
        serde_json::to_string(resumed.state()).expect("resumed"),
        serde_json::to_string(live.state()).expect("live"),
    );

    // The truncation leaves an appendable journal: reopen and continue.
    let cfg = StoreConfig { durable: false, ..StoreConfig::new(&dir) };
    let mut store = ServiceStore::reopen(cfg).expect("reopen");
    let mut resumed = resumed;
    drive(&mut resumed, &mut store, 2);
    store.sync().expect("sync");
    drop(store);
    let (again, _) = resume_service(&dir).expect("second resume");
    assert_eq!(
        serde_json::to_string(again.state()).expect("again"),
        serde_json::to_string(resumed.state()).expect("resumed"),
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn verdicts_replay_without_resolving() {
    // A journaled Ok verdict replays the *recorded* plan: resume needs
    // no LP, and a deliberately-different stage3 in the journal proves
    // replay uses the journal, not a fresh solve.
    let dir = tmp_dir("verdict");
    let mut live = engine(7);
    let cfg = StoreConfig { durable: false, ..StoreConfig::new(&dir) };
    let mut store = ServiceStore::create(cfg, &live).expect("create");

    let mut doctored = live.state().stage3.clone();
    doctored.reward_rate *= 0.5; // visibly not what a solver would return
    let verdict = ReplanVerdict::Ok { stage3: doctored.clone() };
    let epoch = live.state().epoch;
    store.append_begin(epoch, &[], &verdict).expect("begin");
    live.step(&[], &verdict);
    let (_, crc) = state_json_crc(live.state()).expect("crc");
    store.append_commit(epoch, crc).expect("commit");
    drop(store);

    let (resumed, _) = resume_service(&dir).expect("resume");
    assert_eq!(resumed.state().stage3.reward_rate, doctored.reward_rate);
    assert_eq!(resumed.state().totals.replans, 1);
    let _ = std::fs::remove_dir_all(&dir);
}
