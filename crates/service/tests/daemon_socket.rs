//! End-to-end over the real Unix socket: a daemon thread serves a
//! short burst from the loadgen, answers control-plane requests, and
//! shuts down cleanly on request. What the loadgen acked must match
//! what the daemon admitted.

#[cfg(unix)]
mod e2e {
    use std::io::{BufRead, BufReader, Write};
    use std::os::unix::net::UnixStream;
    use std::time::Duration;
    use thermaware_core::Solver;
    use thermaware_datacenter::ScenarioParams;
    use thermaware_service::daemon::{run_daemon, DaemonConfig};
    use thermaware_service::engine::{ServiceConfig, ServiceEngine};
    use thermaware_service::loadgen::{self, LoadgenConfig};
    use thermaware_workload::Curve;
    use thermaware_service::proto::{Request, Response};
    use thermaware_service::store::{ServiceStore, StoreConfig};

    fn tmp_dir(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("thermaware-e2e-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn roundtrip(socket: &std::path::Path, req: &Request) -> Response {
        let mut stream = UnixStream::connect(socket).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        let frame = serde_json::to_string(req).expect("encode");
        stream.write_all(frame.as_bytes()).expect("send");
        stream.write_all(b"\n").expect("send nl");
        let mut line = String::new();
        BufReader::new(&stream).read_line(&mut line).expect("recv");
        serde_json::from_str(line.trim_end()).expect("decode")
    }

    #[test]
    fn daemon_serves_load_then_shuts_down_on_request() {
        let dir = tmp_dir("socket");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let socket = dir.join("serve.sock");

        let dc = ScenarioParams::small_test().build(2).expect("scenario");
        let plan = Solver::new(&dc).solve().expect("plan");
        let engine =
            ServiceEngine::new(dc, ServiceConfig::default(), &plan.pstates, &plan.stage3);
        let store_cfg = StoreConfig { durable: false, ..StoreConfig::new(dir.join("state")) };
        let store = ServiceStore::create(store_cfg, &engine).expect("store");

        let daemon_cfg = DaemonConfig {
            epoch_wall_ms: 10,
            read_timeout_ms: 1_000,
            max_epochs: Some(2_000), // backstop; the test ends via Shutdown
            ..DaemonConfig::new(&socket)
        };
        let server = std::thread::spawn(move || run_daemon(&daemon_cfg, engine, store, None));

        // Wait for the socket to come up.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while !socket.exists() && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(matches!(roundtrip(&socket, &Request::Ping), Response::Pong));

        // A short clean burst: everything offered should be acked.
        let load_cfg = LoadgenConfig {
            schedule: Curve::Constant { rate: 120.0 },
            duration_s: 1.0,
            connections: 4,
            batch_tasks: 8,
            ..LoadgenConfig::new(&socket)
        };
        let report = loadgen::run(&load_cfg);
        assert!(report.sent_batches > 0, "loadgen must have offered work");
        assert_eq!(report.io_errors, 0, "clean load, clean socket");
        assert_eq!(report.protocol_errors, 0);
        assert_eq!(
            report.acked,
            report.sent_batches,
            "unthrottled load is fully acked"
        );
        assert!(report.latency_p50_ms >= 0.0 && report.latency_p99_ms >= report.latency_p50_ms);

        // Resubmitting an acked id must answer duplicate=true.
        let outcome =
            loadgen::verify(&socket, &report, 2, 1_000).expect("verify roundtrip");
        assert!(outcome.lost_ids.is_empty(), "no acked batch may be lost");
        assert_eq!(outcome.checked, report.acked.min(1_000) as usize);

        // Stats reflect the admitted work.
        let Response::Stats(stats) = roundtrip(&socket, &Request::Stats) else {
            panic!("stats request must answer with a report");
        };
        assert_eq!(stats.admitted_batches, report.acked);
        assert!(stats.admitted_tasks > 0);

        // Clean shutdown on request.
        assert!(matches!(
            roundtrip(&socket, &Request::Shutdown),
            Response::ShuttingDown
        ));
        let daemon_report = server
            .join()
            .expect("daemon thread")
            .expect("daemon exits cleanly");
        assert!(daemon_report.epochs_run < 2_000, "stopped by request, not backstop");
        assert_eq!(daemon_report.stats.admitted_batches, report.acked);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn malformed_and_oversized_frames_get_an_error_not_a_hangup() {
        let dir = tmp_dir("malformed");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let socket = dir.join("serve.sock");

        let dc = ScenarioParams::small_test().build(2).expect("scenario");
        let plan = Solver::new(&dc).solve().expect("plan");
        let engine =
            ServiceEngine::new(dc, ServiceConfig::default(), &plan.pstates, &plan.stage3);
        let store_cfg = StoreConfig { durable: false, ..StoreConfig::new(dir.join("state")) };
        let store = ServiceStore::create(store_cfg, &engine).expect("store");
        let daemon_cfg = DaemonConfig {
            epoch_wall_ms: 10,
            read_timeout_ms: 1_000,
            max_epochs: Some(2_000),
            ..DaemonConfig::new(&socket)
        };
        let server = std::thread::spawn(move || run_daemon(&daemon_cfg, engine, store, None));
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while !socket.exists() && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }

        let mut stream = UnixStream::connect(&socket).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        stream.write_all(b"this is not json\n").expect("send garbage");
        let mut line = String::new();
        BufReader::new(&stream).read_line(&mut line).expect("recv");
        let resp: Response = serde_json::from_str(line.trim_end()).expect("decode");
        assert!(matches!(resp, Response::Error { .. }), "garbage earns an error frame");

        // The same connection still works afterwards.
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        stream.write_all(b"{\"type\":\"ping\"}\n").expect("ping");
        let mut line = String::new();
        reader.read_line(&mut line).expect("recv pong");
        let resp: Response = serde_json::from_str(line.trim_end()).expect("decode pong");
        assert!(matches!(resp, Response::Pong));

        assert!(matches!(
            roundtrip(&socket, &Request::Shutdown),
            Response::ShuttingDown
        ));
        server.join().expect("thread").expect("clean exit");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
