//! Deterministic-core tests: exactly-once dedup, the breaker ladder,
//! drift-triggered replan requests, and bit-identical step replay.

use thermaware_core::Solver;
use thermaware_datacenter::ScenarioParams;
use thermaware_service::breaker::{BreakerConfig, BreakerState};
use thermaware_service::engine::{ReplanVerdict, ServiceConfig, ServiceEngine};
use thermaware_service::proto::Batch;

fn engine(seed: u64, cfg: ServiceConfig) -> ServiceEngine {
    let dc = ScenarioParams::small_test().build(seed).expect("scenario");
    let plan = Solver::new(&dc).solve().expect("plan");
    ServiceEngine::new(dc, cfg, &plan.pstates, &plan.stage3)
}

fn batch(id: u64, task_type: usize, n: usize) -> Batch {
    Batch { id, tasks: vec![(task_type, n)] }
}

fn state_json(e: &ServiceEngine) -> String {
    serde_json::to_string(e.state()).expect("state json")
}

#[test]
fn duplicate_batch_admits_exactly_once() {
    let mut e = engine(1, ServiceConfig::default());
    let first = e.step(&[batch(42, 0, 8)], &ReplanVerdict::NotAttempted);
    assert!(!first.batches[0].duplicate);
    let admitted = e.state().totals.admitted_tasks;
    assert!(admitted > 0, "a small batch should dispatch");

    assert!(e.would_duplicate(42));
    let again = e.step(&[batch(42, 0, 8)], &ReplanVerdict::NotAttempted);
    assert!(again.batches[0].duplicate);
    assert_eq!(e.state().totals.admitted_tasks, admitted, "no double dispatch");
    assert_eq!(e.state().totals.duplicate_batches, 1);
}

#[test]
fn dedup_window_is_bounded_and_evicts_oldest() {
    let cfg = ServiceConfig { dedup_window: 4, ..ServiceConfig::default() };
    let mut e = engine(1, cfg);
    for id in 0..10u64 {
        e.step(&[batch(id, 0, 1)], &ReplanVerdict::NotAttempted);
    }
    assert_eq!(e.state().recent_ids.len(), 4, "window bound holds");
    assert!(!e.would_duplicate(0), "oldest id aged out");
    assert!(e.would_duplicate(9));
}

#[test]
fn breaker_opens_sheds_then_recovers_on_success() {
    let cfg = ServiceConfig {
        breaker: BreakerConfig {
            failure_threshold: 2,
            cooldown_epochs: 1,
            max_cooldown_epochs: 8,
        },
        ..ServiceConfig::default()
    };
    let mut e = engine(1, cfg);
    let failed = ReplanVerdict::Failed { error: "lp blew up".to_string() };

    let r1 = e.step(&[], &failed);
    assert!(!r1.breaker_opened);
    let r2 = e.step(&[], &failed);
    assert!(r2.breaker_opened, "second consecutive failure opens");
    assert_eq!(e.state().shed.len(), 1, "one type shed on open");
    let shed_type = e.state().shed[0];
    let min_reward = e
        .dc()
        .workload
        .task_types
        .iter()
        .map(|t| t.reward)
        .fold(f64::INFINITY, f64::min);
    assert_eq!(
        e.dc().workload.task_types[shed_type].reward,
        min_reward,
        "lowest-reward type shed first"
    );

    // Shed type's tasks are refused while open.
    let before = e.state().totals.shed_tasks;
    e.step(&[batch(7, shed_type, 5)], &ReplanVerdict::NotAttempted);
    assert_eq!(e.state().totals.shed_tasks, before + 5);
    assert!(e.state().totals.shed_reward > 0.0);

    // Cooldown elapsed inside the previous steps' ticks → half-open.
    assert_eq!(e.state().breaker.state, BreakerState::HalfOpen);
    assert!(e.wants_replan(), "half-open always wants its probe");

    // A successful probe closes and unsheds.
    let stage3 = e.state().stage3.clone();
    let r = e.step(&[], &ReplanVerdict::Ok { stage3 });
    assert!(r.breaker_closed);
    assert!(e.state().shed.is_empty(), "all types restored on close");
    assert_eq!(e.state().breaker.state, BreakerState::Closed);
}

#[test]
fn drift_triggers_wants_replan() {
    let cfg = ServiceConfig {
        drift_threshold: 0.5,
        min_replan_gap_epochs: 1,
        ewma_alpha: 1.0, // EWMA = this epoch's offered rate exactly
        ..ServiceConfig::default()
    };
    let mut e = engine(1, cfg);
    // Epoch with zero arrivals: offered rate 0 vs planned > 0 → 100% drift.
    e.step(&[], &ReplanVerdict::NotAttempted);
    assert!(e.wants_replan(), "flat-lined demand is > 50% drift");

    // Applying a replan rebaselines planned_rates to the EWMA.
    let stage3 = e.state().stage3.clone();
    e.step(&[], &ReplanVerdict::Ok { stage3 });
    assert!(!e.wants_replan(), "fresh plan matches current demand");
}

#[test]
fn solve_request_zeroes_shed_types_and_uses_ewma() {
    let cfg = ServiceConfig {
        ewma_alpha: 1.0,
        breaker: BreakerConfig {
            failure_threshold: 1,
            cooldown_epochs: 64,
            max_cooldown_epochs: 64,
        },
        ..ServiceConfig::default()
    };
    let mut e = engine(1, cfg);
    let failed = ReplanVerdict::Failed { error: "boom".to_string() };
    e.step(&[batch(1, 0, 10)], &failed); // opens, sheds one type
    let shed_type = e.state().shed[0];
    let (dc, pstates) = e.solve_request();
    assert_eq!(dc.workload.task_types[shed_type].arrival_rate, 0.0);
    assert_eq!(pstates, e.state().pstates);
    for (i, t) in dc.workload.task_types.iter().enumerate() {
        if i != shed_type {
            assert_eq!(t.arrival_rate, e.state().ewma[i]);
        }
    }
}

#[test]
fn identical_inputs_replay_bit_identically() {
    let cfg = ServiceConfig {
        breaker: BreakerConfig {
            failure_threshold: 2,
            cooldown_epochs: 2,
            max_cooldown_epochs: 8,
        },
        ..ServiceConfig::default()
    };
    let mut a = engine(3, cfg.clone());
    let stage3 = a.state().stage3.clone();
    let script: Vec<(Vec<Batch>, ReplanVerdict)> = vec![
        (vec![batch(1, 0, 5), batch(2, 1, 3)], ReplanVerdict::NotAttempted),
        (vec![batch(1, 0, 5)], ReplanVerdict::TimedOut),
        (vec![], ReplanVerdict::Failed { error: "x".to_string() }),
        (vec![batch(3, 2, 7)], ReplanVerdict::Failed { error: "y".to_string() }),
        (vec![batch(4, 0, 2)], ReplanVerdict::NotAttempted),
        (vec![], ReplanVerdict::Ok { stage3: stage3.clone() }),
    ];
    for (batches, verdict) in &script {
        a.step(batches, verdict);
    }
    let mut b = engine(3, cfg);
    for (batches, verdict) in &script {
        b.step(batches, verdict);
    }
    assert_eq!(state_json(&a), state_json(&b), "replay must be bit-identical");

    // And through a serialize→deserialize→re-serialize cycle.
    let json = state_json(&a);
    let back: thermaware_service::engine::ServiceState =
        serde_json::from_str(&json).expect("state decodes");
    assert_eq!(serde_json::to_string(&back).expect("re-encode"), json);
}
