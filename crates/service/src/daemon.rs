//! The live shell: Unix-socket listener, bounded admission queue,
//! wall-clock epoch loop, and the solver thread with its timeout.
//!
//! Everything nondeterministic happens here and is reified before it
//! touches the engine: a solve's outcome (finished / timed out /
//! failed) becomes a [`ReplanVerdict`] journaled in the epoch's Begin
//! record, and the batches drained from the queue are journaled in the
//! same record — so the engine step that follows is replayable from
//! the journal alone.
//!
//! ## Overload behavior, outermost layer first
//!
//! 1. **Slow-loris / oversize frames** — per-connection read timeout
//!    and a hard line-length cap ([`crate::proto::MAX_LINE_BYTES`]);
//!    offenders get an `error` response and the socket is dropped.
//! 2. **Bounded queue** — `try_send` into a `sync_channel`; a full
//!    queue answers `rejected(queue_full)` with a `retry_after_ms`
//!    hint derived from the current dispatch backlog. The daemon never
//!    buffers unbounded work.
//! 3. **Deadline budgets** — a batch whose `budget_ms` elapsed while
//!    queued is rejected at drain time, before journaling: serving it
//!    late would be worse than telling the client promptly.
//! 4. **Solve timeout** — a replan that outruns its wall-clock budget
//!    is abandoned (verdict `TimedOut`); the epoch proceeds on the
//!    previous plan, and a stale result arriving later is discarded by
//!    generation check.
//! 5. **Circuit breaker** — consecutive solve failures open it; see
//!    [`crate::breaker`].

use crate::breaker::BreakerState;
use crate::engine::{ReplanVerdict, ServiceEngine};
use crate::proto::{Batch, RejectReason, Request, Response, StatsReport, MAX_LINE_BYTES};
use crate::store::{state_json_crc, ServiceStore};
use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use thermaware_core::stage3::Stage3Basis;
use thermaware_core::Solver;
use thermaware_datacenter::DataCenter;

/// Wall-clock knobs for the live shell (deterministic policy lives in
/// [`crate::engine::ServiceConfig`]).
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Unix socket path to listen on.
    pub socket: PathBuf,
    /// Wall milliseconds per epoch tick.
    pub epoch_wall_ms: u64,
    /// Bounded admission queue capacity, batches.
    pub queue_capacity: usize,
    /// Wall-clock budget for one replan solve before it is abandoned.
    pub solve_timeout_ms: u64,
    /// Per-connection read timeout (slow-loris defense).
    pub read_timeout_ms: u64,
    /// Probability a finished solve is replaced with an injected
    /// failure (chaos testing the breaker path; 0 = off).
    pub chaos_solver_rate: f64,
    /// Chaos RNG seed.
    pub chaos_seed: u64,
    /// Stop after this many epochs (None = run until shutdown).
    pub max_epochs: Option<usize>,
}

impl DaemonConfig {
    /// Defaults: 50 ms epochs, 256-batch queue, 2 s solve timeout, 5 s
    /// read timeout, no chaos.
    pub fn new(socket: impl Into<PathBuf>) -> DaemonConfig {
        DaemonConfig {
            socket: socket.into(),
            epoch_wall_ms: 50,
            queue_capacity: 256,
            solve_timeout_ms: 2_000,
            read_timeout_ms: 5_000,
            chaos_solver_rate: 0.0,
            chaos_seed: 0,
            max_epochs: None,
        }
    }
}

/// What the daemon did, returned when the epoch loop exits.
#[derive(Debug, Clone)]
pub struct DaemonReport {
    /// Epochs executed in this process (resume not counted).
    pub epochs_run: usize,
    /// Final stats snapshot.
    pub stats: StatsReport,
}

/// A queued submit awaiting the epoch loop.
struct Pending {
    batch: Batch,
    deadline: Option<Instant>,
    reply: mpsc::Sender<Response>,
}

/// State shared between connection threads and the epoch loop.
struct Shared {
    stop: AtomicBool,
    /// Backpressure hint served with queue-full rejections.
    retry_after_ms: AtomicU64,
    stats: Mutex<StatsReport>,
    /// Static admission limits (safe to check off-thread).
    max_batch_tasks: usize,
    n_task_types: usize,
}

/// A replan job for the solver thread.
struct SolveJob {
    generation: u64,
    dc: DataCenter,
    pstates: Vec<usize>,
    warm: Option<Stage3Basis>,
}

/// What the solver thread sends back.
struct SolveDone {
    generation: u64,
    verdict: ReplanVerdict,
    basis: Option<Stage3Basis>,
}

/// Run the daemon until shutdown (socket request, `max_epochs`, or an
/// unrecoverable store error). Consumes the engine and store; the
/// caller creates them fresh or via [`crate::store::resume_service`].
pub fn run_daemon(
    cfg: &DaemonConfig,
    mut engine: ServiceEngine,
    mut store: ServiceStore,
    trace: Option<&thermaware_obs::JsonlRecorder>,
) -> Result<DaemonReport, std::io::Error> {
    // A stale socket file from a killed process would make bind fail.
    match std::fs::remove_file(&cfg.socket) {
        Ok(()) => {}
        Err(e) if e.kind() == ErrorKind::NotFound => {}
        Err(e) => return Err(e),
    }
    let listener = UnixListener::bind(&cfg.socket)?;
    listener.set_nonblocking(true)?;

    let shared = Arc::new(Shared {
        stop: AtomicBool::new(false),
        retry_after_ms: AtomicU64::new(cfg.epoch_wall_ms.max(1)),
        stats: Mutex::new(stats_of(&engine)),
        max_batch_tasks: engine.config().max_batch_tasks,
        n_task_types: engine.dc().n_task_types(),
    });
    let (queue_tx, queue_rx) = mpsc::sync_channel::<Pending>(cfg.queue_capacity.max(1));
    let (job_tx, job_rx) = mpsc::sync_channel::<SolveJob>(1);
    let (done_tx, done_rx) = mpsc::channel::<SolveDone>();

    let mut report = DaemonReport {
        epochs_run: 0,
        stats: stats_of(&engine),
    };
    let mut loop_result: Result<(), std::io::Error> = Ok(());

    std::thread::scope(|scope| {
        // ---- Solver thread ------------------------------------------------
        let chaos_rate = cfg.chaos_solver_rate;
        let chaos_seed = cfg.chaos_seed;
        scope.spawn(move || {
            while let Ok(job) = job_rx.recv() {
                let solved = Solver::new(&job.dc).stage3_replan(&job.pstates, job.warm.as_ref());
                let (verdict, basis) = match solved {
                    Ok((stage3, basis)) => {
                        if chaos_roll(chaos_seed, job.generation) < chaos_rate {
                            (
                                ReplanVerdict::Failed {
                                    error: "chaos: injected solver failure".to_string(),
                                },
                                None,
                            )
                        } else {
                            (ReplanVerdict::Ok { stage3 }, basis)
                        }
                    }
                    Err(e) => (ReplanVerdict::Failed { error: e.to_string() }, None),
                };
                if done_tx
                    .send(SolveDone {
                        generation: job.generation,
                        verdict,
                        basis,
                    })
                    .is_err()
                {
                    break;
                }
            }
        });

        // ---- Listener + connection threads --------------------------------
        let accept_shared = Arc::clone(&shared);
        let accept_tx = queue_tx.clone();
        let read_timeout = Duration::from_millis(cfg.read_timeout_ms.max(1));
        scope.spawn(move || {
            loop {
                if accept_shared.stop.load(Ordering::SeqCst) {
                    break;
                }
                match listener.accept() {
                    Ok((stream, _)) => {
                        let conn_shared = Arc::clone(&accept_shared);
                        let conn_tx = accept_tx.clone();
                        scope.spawn(move || {
                            serve_connection(stream, read_timeout, &conn_shared, &conn_tx);
                        });
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
            }
        });
        drop(queue_tx); // epoch loop's rx must see disconnect at shutdown

        // ---- Epoch loop (this thread) -------------------------------------
        let epoch_wall = Duration::from_millis(cfg.epoch_wall_ms.max(1));
        let solve_timeout = Duration::from_millis(cfg.solve_timeout_ms.max(1));
        let mut generation: u64 = 0;
        let mut inflight: Option<(u64, Instant)> = None;
        let mut warm_basis: Option<Stage3Basis> = None;
        let mut breaker_prev = engine.state().breaker.state;

        loop {
            let tick_start = Instant::now();

            // Drain the queue: reject expired budgets, keep the rest.
            let mut pending: Vec<Pending> = Vec::new();
            while let Ok(p) = queue_rx.try_recv() {
                if p.deadline.is_some_and(|d| Instant::now() > d) {
                    let _ = p.reply.send(Response::Rejected {
                        id: p.batch.id,
                        reason: RejectReason::BudgetExpired,
                        retry_after_ms: 0,
                    });
                    thermaware_obs::counter_add("service.budget_expired", 1);
                    continue;
                }
                pending.push(p);
            }

            // Reify the solve outcome for this epoch.
            let mut verdict = ReplanVerdict::NotAttempted;
            while let Ok(done) = done_rx.try_recv() {
                match inflight {
                    Some((gen, _)) if gen == done.generation => {
                        inflight = None;
                        if let ReplanVerdict::Ok { .. } = done.verdict {
                            warm_basis = done.basis;
                        }
                        verdict = done.verdict;
                    }
                    // Stale result from an abandoned (timed-out) solve.
                    _ => thermaware_obs::counter_add("service.stale_solves", 1),
                }
            }
            if let Some((_, started)) = inflight {
                if started.elapsed() > solve_timeout {
                    inflight = None;
                    verdict = ReplanVerdict::TimedOut;
                    thermaware_obs::counter_add("service.solve_timeouts", 1);
                }
            }

            // Journal (fsynced) → step → ack. The fsync-before-ack
            // barrier is the exactly-once guarantee.
            let epoch = engine.state().epoch;
            let batches: Vec<Batch> = pending.iter().map(|p| p.batch.clone()).collect();
            if let Err(e) = store.append_begin(epoch, &batches, &verdict) {
                loop_result = Err(std::io::Error::other(e.to_string()));
                break;
            }
            let step = engine.step(&batches, &verdict);
            for (p, outcome) in pending.iter().zip(step.batches.iter()) {
                let _ = p.reply.send(Response::Accepted {
                    id: outcome.id,
                    epoch,
                    duplicate: outcome.duplicate,
                });
            }
            let crc = match state_json_crc(engine.state()) {
                Ok((_, crc)) => crc,
                Err(e) => {
                    loop_result = Err(std::io::Error::other(e.to_string()));
                    break;
                }
            };
            if let Err(e) = store.append_commit(epoch, crc) {
                loop_result = Err(std::io::Error::other(e.to_string()));
                break;
            }
            if store.snapshot_due(engine.state().epoch) {
                if let Err(e) = store.snapshot(&engine) {
                    loop_result = Err(std::io::Error::other(e.to_string()));
                    break;
                }
            }

            // Breaker transitions as *spans*: span lines stream to the
            // trace and are flushed every epoch, so the ladder stays
            // visible even when the process is SIGKILLed (counters only
            // reach disk in the summary a kill never writes).
            let breaker_now = engine.state().breaker.state;
            if breaker_now != breaker_prev {
                drop(thermaware_obs::span(match breaker_now {
                    BreakerState::Open => "service.breaker_to_open",
                    BreakerState::HalfOpen => "service.breaker_to_half_open",
                    BreakerState::Closed => "service.breaker_to_closed",
                }));
                breaker_prev = breaker_now;
            }

            // Kick off a replan when the engine wants one and the solver
            // is free (a full job channel means it is still chewing on an
            // abandoned solve — skip, don't queue behind it).
            if inflight.is_none() && engine.wants_replan() {
                generation += 1;
                let (dc, pstates) = engine.solve_request();
                let job = SolveJob {
                    generation,
                    dc,
                    pstates,
                    warm: warm_basis.clone(),
                };
                if job_tx.try_send(job).is_ok() {
                    engine.note_replan_requested();
                    inflight = Some((generation, Instant::now()));
                    thermaware_obs::counter_add("service.solves_spawned", 1);
                }
            }

            // Publish stats and the backpressure hint.
            let stats = stats_of(&engine);
            let hint = (engine.backlog_s() * 1_000.0).clamp(
                cfg.epoch_wall_ms.max(1) as f64,
                60_000.0,
            ) as u64;
            shared.retry_after_ms.store(hint, Ordering::Relaxed);
            if let Ok(mut s) = shared.stats.lock() {
                *s = stats.clone();
            }
            report.stats = stats;
            report.epochs_run += 1;
            // Keep the obs trace on disk — a SIGKILL must not eat the
            // breaker transitions the drill asserts on.
            if let Some(t) = trace {
                let _ = t.flush();
            }

            let done_epochs = cfg
                .max_epochs
                .is_some_and(|max| report.epochs_run >= max);
            if done_epochs || shared.stop.load(Ordering::SeqCst) {
                shared.stop.store(true, Ordering::SeqCst);
                break;
            }
            if let Some(remaining) = epoch_wall.checked_sub(tick_start.elapsed()) {
                std::thread::sleep(remaining);
            }
        }

        // Final checkpoint so a clean shutdown resumes instantly.
        if loop_result.is_ok() {
            if let Err(e) = store.snapshot(&engine) {
                loop_result = Err(std::io::Error::other(e.to_string()));
            }
        }
        shared.stop.store(true, Ordering::SeqCst);
        drop(job_tx); // solver thread exits
        // Connection threads exit on read timeout / stop flag; the
        // scope joins them all.
    });

    loop_result.map(|()| report)
}

/// One connection: line-delimited JSON requests, one response line per
/// request, in order.
fn serve_connection(
    stream: UnixStream,
    read_timeout: Duration,
    shared: &Shared,
    queue: &mpsc::SyncSender<Pending>,
) {
    let _ = stream.set_read_timeout(Some(read_timeout));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            let _ = respond(&mut writer, &Response::ShuttingDown);
            return;
        }
        line.clear();
        // take() caps how much one line may buffer; a longer line is a
        // protocol violation, not a memory commitment.
        let mut limited = (&mut reader).take(MAX_LINE_BYTES as u64 + 1);
        match limited.read_line(&mut line) {
            Ok(0) => return, // client closed
            Ok(n) if n > MAX_LINE_BYTES => {
                let _ = respond(
                    &mut writer,
                    &Response::Error {
                        message: format!("line exceeds {MAX_LINE_BYTES} bytes"),
                    },
                );
                return;
            }
            Ok(_) => {}
            Err(e)
                if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut =>
            {
                // Slow-loris: the client held the socket without
                // completing a line within the timeout.
                thermaware_obs::counter_add("service.read_timeouts", 1);
                return;
            }
            Err(_) => return,
        }
        if line.trim().is_empty() {
            continue;
        }
        if !line.ends_with('\n') {
            // EOF mid-line: a torn frame, not a request.
            let _ = respond(
                &mut writer,
                &Response::Error {
                    message: "unterminated request line".to_string(),
                },
            );
            return;
        }
        let request: Request = match serde_json::from_str(line.trim_end()) {
            Ok(r) => r,
            Err(e) => {
                thermaware_obs::counter_add("service.malformed_requests", 1);
                if respond(
                    &mut writer,
                    &Response::Error {
                        message: format!("bad request: {e}"),
                    },
                )
                .is_err()
                {
                    return;
                }
                continue;
            }
        };
        let keep_going = match request {
            Request::Ping => respond(&mut writer, &Response::Pong).is_ok(),
            Request::Stats => {
                let stats = shared
                    .stats
                    .lock()
                    .map(|s| s.clone())
                    .unwrap_or_default();
                respond(&mut writer, &Response::Stats(stats)).is_ok()
            }
            Request::Shutdown => {
                shared.stop.store(true, Ordering::SeqCst);
                let _ = respond(&mut writer, &Response::ShuttingDown);
                false
            }
            Request::Submit { batch, budget_ms } => {
                handle_submit(&mut writer, shared, queue, batch, budget_ms)
            }
        };
        if !keep_going {
            return;
        }
    }
}

/// Validate, enqueue, and wait for the epoch loop's ack (or reject
/// immediately). Returns `false` when the connection should close.
fn handle_submit(
    writer: &mut UnixStream,
    shared: &Shared,
    queue: &mpsc::SyncSender<Pending>,
    batch: Batch,
    budget_ms: Option<u64>,
) -> bool {
    let id = batch.id;
    if batch.total_tasks() > shared.max_batch_tasks {
        return respond(
            writer,
            &Response::Rejected {
                id,
                reason: RejectReason::BatchTooLarge,
                retry_after_ms: 0,
            },
        )
        .is_ok();
    }
    if !batch.tasks.iter().all(|&(t, _)| t < shared.n_task_types) {
        return respond(
            writer,
            &Response::Rejected {
                id,
                reason: RejectReason::UnknownTaskType,
                retry_after_ms: 0,
            },
        )
        .is_ok();
    }
    let (reply_tx, reply_rx) = mpsc::channel();
    let deadline = budget_ms.map(|ms| Instant::now() + Duration::from_millis(ms));
    let pending = Pending {
        batch,
        deadline,
        reply: reply_tx,
    };
    match queue.try_send(pending) {
        Ok(()) => {}
        Err(mpsc::TrySendError::Full(_)) => {
            thermaware_obs::counter_add("service.queue_full_rejects", 1);
            return respond(
                writer,
                &Response::Rejected {
                    id,
                    reason: RejectReason::QueueFull,
                    retry_after_ms: shared.retry_after_ms.load(Ordering::Relaxed),
                },
            )
            .is_ok();
        }
        Err(mpsc::TrySendError::Disconnected(_)) => {
            let _ = respond(writer, &Response::ShuttingDown);
            return false;
        }
    }
    // Block this connection (not the daemon) until the epoch loop acks.
    match reply_rx.recv() {
        Ok(response) => respond(writer, &response).is_ok(),
        Err(_) => {
            // Epoch loop dropped the reply channel: shutdown mid-flight.
            let _ = respond(writer, &Response::ShuttingDown);
            false
        }
    }
}

fn respond(writer: &mut UnixStream, response: &Response) -> std::io::Result<()> {
    let mut json = serde_json::to_string(response)
        .map_err(|e| std::io::Error::other(e.to_string()))?;
    json.push('\n');
    writer.write_all(json.as_bytes())
}

/// Snapshot the engine into the wire stats shape.
fn stats_of(engine: &ServiceEngine) -> StatsReport {
    let state = engine.state();
    let (completed, late, lost, reward) = engine.per_type().iter().fold(
        (0u64, 0u64, 0u64, 0.0f64),
        |(c, la, lo, r), t| {
            (
                c + t.completed as u64,
                la + t.late as u64,
                lo + t.lost as u64,
                r + t.reward,
            )
        },
    );
    StatsReport {
        epoch: state.epoch,
        now_s: state.now_s,
        admitted_batches: state.totals.admitted_batches,
        duplicate_batches: state.totals.duplicate_batches,
        admitted_tasks: state.totals.admitted_tasks,
        dropped_tasks: state.totals.dropped_tasks,
        shed_tasks: state.totals.shed_tasks,
        completed_tasks: completed,
        late_tasks: late,
        lost_tasks: lost,
        reward,
        replans: state.totals.replans,
        replan_failures: state.totals.replan_failures,
        breaker_opens: state.breaker.opens,
        breaker: state.breaker.state.as_str().to_string(),
        shed_types: state.shed.len(),
        backlog_s: engine.backlog_s(),
        log_dropped: state.log.dropped(),
    }
}

/// A split-mix style hash of (seed, generation) mapped to [0, 1) — the
/// chaos coin flip. Deterministic per generation so a rerun with the
/// same seed injects the same failures.
fn chaos_roll(seed: u64, generation: u64) -> f64 {
    let mut z = seed ^ generation.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}
