//! The wire protocol: line-delimited JSON over a Unix socket.
//!
//! One request per line, one response line per request, in order.
//! Batch ids are client-assigned `u64`s, encoded as 16-digit hex
//! strings (the workspace's seed convention) so the full range
//! survives the f64-backed JSON numbers. Example exchange:
//!
//! ```text
//! → {"type":"submit","id":"00000000000000a1","tasks":[[0,3],[2,1]],"budget_ms":500}
//! ← {"type":"accepted","id":"00000000000000a1","epoch":17,"duplicate":false}
//! → {"type":"submit","id":"00000000000000a2","tasks":[[0,64]]}
//! ← {"type":"rejected","id":"00000000000000a2","reason":"queue_full","retry_after_ms":120}
//! ```
//!
//! Any line that does not parse — oversize, torn, wrong types — gets a
//! single `error` response and the connection stays usable; a client
//! can be arbitrarily hostile without wedging the daemon.

use serde::{Deserialize, Serialize, Value};

/// Longest request or response line the daemon will read, bytes. A
/// line that exceeds this is answered with an `error` response and
/// discarded — the cap is what makes a malicious writer's memory cost
/// bounded.
pub const MAX_LINE_BYTES: usize = 256 * 1024;

/// One admission batch: a client-unique id and task counts by type.
#[derive(Debug, Clone, PartialEq)]
pub struct Batch {
    /// Client-assigned unique id (the exactly-once key).
    pub id: u64,
    /// `(task_type, count)` pairs.
    pub tasks: Vec<(usize, usize)>,
}

impl Batch {
    /// Total tasks across all types.
    pub fn total_tasks(&self) -> usize {
        self.tasks.iter().map(|&(_, n)| n).sum()
    }
}

/// A client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Submit a batch for admission. `budget_ms` is the client's
    /// deadline budget: if the daemon cannot journal the batch within
    /// it, the batch is rejected instead of served late.
    Submit {
        /// The batch.
        batch: Batch,
        /// Admission deadline budget, milliseconds (`None` = no limit).
        budget_ms: Option<u64>,
    },
    /// Fetch a point-in-time stats report.
    Stats,
    /// Liveness probe.
    Ping,
    /// Ask the daemon to checkpoint and exit cleanly.
    Shutdown,
}

/// Why a submit was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RejectReason {
    /// The bounded admission queue is full — retry after the hint.
    QueueFull,
    /// The request's deadline budget expired before the batch could be
    /// journaled.
    BudgetExpired,
    /// The batch exceeds the per-batch task cap.
    BatchTooLarge,
    /// A task type index outside the scenario's workload.
    UnknownTaskType,
}

impl RejectReason {
    fn as_str(self) -> &'static str {
        match self {
            RejectReason::QueueFull => "queue_full",
            RejectReason::BudgetExpired => "budget_expired",
            RejectReason::BatchTooLarge => "batch_too_large",
            RejectReason::UnknownTaskType => "unknown_task_type",
        }
    }

    fn parse(s: &str) -> Option<RejectReason> {
        Some(match s {
            "queue_full" => RejectReason::QueueFull,
            "budget_expired" => RejectReason::BudgetExpired,
            "batch_too_large" => RejectReason::BatchTooLarge,
            "unknown_task_type" => RejectReason::UnknownTaskType,
            _ => return None,
        })
    }
}

/// Point-in-time service statistics (the `stats` response payload).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StatsReport {
    /// Epochs executed.
    pub epoch: usize,
    /// Simulation clock, seconds.
    pub now_s: f64,
    /// Batches admitted (acked, non-duplicate).
    pub admitted_batches: u64,
    /// Batches acked as duplicates (exactly-once hits).
    pub duplicate_batches: u64,
    /// Tasks dispatched onto a core.
    pub admitted_tasks: u64,
    /// Tasks refused by the admission check (no feasible core).
    pub dropped_tasks: u64,
    /// Tasks refused because their type is shed by the breaker ladder.
    pub shed_tasks: u64,
    /// Tasks completed by their deadline.
    pub completed_tasks: u64,
    /// Admitted tasks that finished late (violations).
    pub late_tasks: u64,
    /// Admitted tasks lost to core deaths (violations).
    pub lost_tasks: u64,
    /// Reward collected.
    pub reward: f64,
    /// Successful replans applied.
    pub replans: u64,
    /// Replan attempts that failed or timed out.
    pub replan_failures: u64,
    /// Times the breaker opened.
    pub breaker_opens: u64,
    /// Breaker state: `"closed"`, `"open"`, or `"half_open"`.
    pub breaker: String,
    /// Task types currently shed.
    pub shed_types: usize,
    /// Mean core backlog, seconds (the retry-after basis).
    pub backlog_s: f64,
    /// Event-log entries evicted by the ring bound.
    pub log_dropped: u64,
}

/// A daemon response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The batch is journaled durably and will enter epoch `epoch`.
    /// `duplicate` means the id was already admitted — the batch was
    /// acked again but will not dispatch twice.
    Accepted {
        /// Echoed batch id.
        id: u64,
        /// Epoch the batch enters (or entered, for duplicates).
        epoch: usize,
        /// Exactly-once: this id was already admitted.
        duplicate: bool,
    },
    /// The batch was refused; nothing was journaled.
    Rejected {
        /// Echoed batch id.
        id: u64,
        /// Why.
        reason: RejectReason,
        /// Backpressure hint: when a retry is likely to succeed.
        retry_after_ms: u64,
    },
    /// Stats payload.
    Stats(StatsReport),
    /// Liveness reply.
    Pong,
    /// The daemon acknowledges the shutdown request.
    ShuttingDown,
    /// The request line could not be served (parse error, oversize).
    Error {
        /// What was wrong.
        message: String,
    },
}

// ---- Serde -----------------------------------------------------------------
//
// Payload-carrying enums need manual impls under the vendored serde;
// ids travel as 16-digit hex strings (u64s do not survive f64 JSON
// numbers above 2^53).

fn id_to_value(id: u64) -> Value {
    Value::String(format!("{id:016x}"))
}

fn id_from(entries: &[(String, Value)]) -> Result<u64, serde::Error> {
    let hex: String = serde::field(entries, "id")?;
    u64::from_str_radix(&hex, 16)
        .map_err(|e| serde::Error::custom(format!("bad id '{hex}': {e}")))
}

impl Serialize for Batch {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("id".to_string(), id_to_value(self.id)),
            ("tasks".to_string(), self.tasks.to_value()),
        ])
    }
}

impl Deserialize for Batch {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        let entries = v
            .as_object()
            .ok_or_else(|| serde::Error::custom("Batch: expected object"))?;
        Ok(Batch {
            id: id_from(entries)?,
            tasks: serde::field(entries, "tasks")?,
        })
    }
}

impl Serialize for Request {
    fn to_value(&self) -> Value {
        match self {
            Request::Submit { batch, budget_ms } => {
                let mut entries = vec![
                    ("type".to_string(), "submit".to_value()),
                    ("id".to_string(), id_to_value(batch.id)),
                    ("tasks".to_string(), batch.tasks.to_value()),
                ];
                if let Some(ms) = budget_ms {
                    entries.push(("budget_ms".to_string(), ms.to_value()));
                }
                Value::Object(entries)
            }
            Request::Stats => Value::Object(vec![("type".to_string(), "stats".to_value())]),
            Request::Ping => Value::Object(vec![("type".to_string(), "ping".to_value())]),
            Request::Shutdown => Value::Object(vec![("type".to_string(), "shutdown".to_value())]),
        }
    }
}

impl Deserialize for Request {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        let entries = v
            .as_object()
            .ok_or_else(|| serde::Error::custom("Request: expected object"))?;
        let kind: String = serde::field(entries, "type")?;
        match kind.as_str() {
            "submit" => Ok(Request::Submit {
                batch: Batch {
                    id: id_from(entries)?,
                    tasks: serde::field(entries, "tasks")?,
                },
                budget_ms: serde::field(entries, "budget_ms").ok(),
            }),
            "stats" => Ok(Request::Stats),
            "ping" => Ok(Request::Ping),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(serde::Error::custom(format!(
                "Request: unknown type '{other}'"
            ))),
        }
    }
}

impl Serialize for Response {
    fn to_value(&self) -> Value {
        match self {
            Response::Accepted { id, epoch, duplicate } => Value::Object(vec![
                ("type".to_string(), "accepted".to_value()),
                ("id".to_string(), id_to_value(*id)),
                ("epoch".to_string(), epoch.to_value()),
                ("duplicate".to_string(), duplicate.to_value()),
            ]),
            Response::Rejected { id, reason, retry_after_ms } => Value::Object(vec![
                ("type".to_string(), "rejected".to_value()),
                ("id".to_string(), id_to_value(*id)),
                ("reason".to_string(), reason.as_str().to_value()),
                ("retry_after_ms".to_string(), retry_after_ms.to_value()),
            ]),
            Response::Stats(report) => Value::Object(vec![
                ("type".to_string(), "stats".to_value()),
                ("report".to_string(), report.to_value()),
            ]),
            Response::Pong => Value::Object(vec![("type".to_string(), "pong".to_value())]),
            Response::ShuttingDown => {
                Value::Object(vec![("type".to_string(), "shutting_down".to_value())])
            }
            Response::Error { message } => Value::Object(vec![
                ("type".to_string(), "error".to_value()),
                ("message".to_string(), message.to_value()),
            ]),
        }
    }
}

impl Deserialize for Response {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        let entries = v
            .as_object()
            .ok_or_else(|| serde::Error::custom("Response: expected object"))?;
        let kind: String = serde::field(entries, "type")?;
        match kind.as_str() {
            "accepted" => Ok(Response::Accepted {
                id: id_from(entries)?,
                epoch: serde::field(entries, "epoch")?,
                duplicate: serde::field(entries, "duplicate")?,
            }),
            "rejected" => {
                let reason: String = serde::field(entries, "reason")?;
                Ok(Response::Rejected {
                    id: id_from(entries)?,
                    reason: RejectReason::parse(&reason).ok_or_else(|| {
                        serde::Error::custom(format!("Response: unknown reason '{reason}'"))
                    })?,
                    retry_after_ms: serde::field(entries, "retry_after_ms")?,
                })
            }
            "stats" => Ok(Response::Stats(serde::field(entries, "report")?)),
            "pong" => Ok(Response::Pong),
            "shutting_down" => Ok(Response::ShuttingDown),
            "error" => Ok(Response::Error {
                message: serde::field(entries, "message")?,
            }),
            other => Err(serde::Error::custom(format!(
                "Response: unknown type '{other}'"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let reqs = vec![
            Request::Submit {
                batch: Batch { id: u64::MAX, tasks: vec![(0, 3), (2, 1)] },
                budget_ms: Some(500),
            },
            Request::Submit {
                batch: Batch { id: 7, tasks: Vec::new() },
                budget_ms: None,
            },
            Request::Stats,
            Request::Ping,
            Request::Shutdown,
        ];
        for r in reqs {
            let json = serde_json::to_string(&r).expect("encode");
            let back: Request = serde_json::from_str(&json).expect("decode");
            assert_eq!(back, r, "via {json}");
        }
    }

    #[test]
    fn responses_round_trip() {
        let resps = vec![
            Response::Accepted { id: 0xdead_beef_dead_beef, epoch: 42, duplicate: true },
            Response::Rejected {
                id: 1,
                reason: RejectReason::QueueFull,
                retry_after_ms: 120,
            },
            Response::Stats(StatsReport { epoch: 9, reward: 12.5, ..StatsReport::default() }),
            Response::Pong,
            Response::ShuttingDown,
            Response::Error { message: "line too long".to_string() },
        ];
        for r in resps {
            let json = serde_json::to_string(&r).expect("encode");
            let back: Response = serde_json::from_str(&json).expect("decode");
            assert_eq!(back, r, "via {json}");
        }
    }

    #[test]
    fn full_range_ids_survive_json() {
        for id in [0, 1, 1u64 << 53, u64::MAX] {
            let r = Request::Submit {
                batch: Batch { id, tasks: vec![(0, 1)] },
                budget_ms: None,
            };
            let json = serde_json::to_string(&r).expect("encode");
            match serde_json::from_str(&json).expect("decode") {
                Request::Submit { batch, .. } => assert_eq!(batch.id, id),
                other => panic!("wrong variant: {other:?}"),
            }
        }
    }
}
