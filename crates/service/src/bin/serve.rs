//! `thermaware-serve` — the scheduling daemon.
//!
//! Creates a fresh service directory (solving the initial three-stage
//! plan) or resumes an existing one (journal replay, no re-solving),
//! then serves admissions over a Unix socket until shutdown.

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use thermaware_core::Solver;
use thermaware_datacenter::ScenarioParams;
use thermaware_obs::JsonlRecorder;
use thermaware_service::breaker::BreakerConfig;
use thermaware_service::cli::Args;
use thermaware_service::daemon::{run_daemon, DaemonConfig};
use thermaware_service::engine::{ServiceConfig, ServiceEngine};
use thermaware_service::store::{resume_service, ServiceStore, StoreConfig};

const USAGE: &str = "thermaware-serve: the scheduling-as-a-service daemon

usage: thermaware-serve --dir DIR --socket PATH [options]

state:
  --dir DIR              service directory (journal, snapshots, header)
  --socket PATH          unix socket to listen on
  --seed N               scenario seed for a fresh directory  [1]

epoch loop:
  --epoch-wall-ms N      wall ms per epoch tick               [50]
  --epoch-s S            simulated seconds per epoch          [1.0]
  --queue-capacity N     bounded admission queue, batches     [256]
  --max-epochs N         stop after N epochs (0 = run forever) [0]

replanning:
  --solve-timeout-ms N   wall budget per replan solve         [2000]
  --drift-threshold F    EWMA drift that triggers a replan    [0.25]
  --min-replan-gap N     min epochs between replan requests   [4]
  --breaker-threshold N  consecutive failures that open       [3]
  --breaker-cooldown N   epochs open before a half-open probe [4]

durability:
  --flush-every N        commit appends per fsync barrier     [8]
  --snapshot-interval N  epochs between snapshots             [64]
  --retain N             snapshot generations kept            [3]
  --durable 0|1          fsync at all                         [1]

robustness drills:
  --read-timeout-ms N    per-connection read timeout          [5000]
  --chaos-solver-rate F  inject solver failures, probability  [0]
  --chaos-seed N         chaos RNG seed                       [0]

observability:
  --trace PATH           rotating JSONL trace file
  --trace-max-bytes N    rotate threshold                     [4194304]
  --trace-keep N         rotated generations kept             [2]";

fn main() -> ExitCode {
    let args = Args::parse(USAGE);
    let Some(dir) = args.get_opt_str("dir").map(PathBuf::from) else {
        eprintln!("--dir is required\n{USAGE}");
        return ExitCode::from(2);
    };
    let Some(socket) = args.get_opt_str("socket") else {
        eprintln!("--socket is required\n{USAGE}");
        return ExitCode::from(2);
    };

    let service_cfg = ServiceConfig {
        epoch_s: args.get_f64("epoch-s", 1.0),
        drift_threshold: args.get_f64("drift-threshold", 0.25),
        min_replan_gap_epochs: args.get_usize("min-replan-gap", 4),
        breaker: BreakerConfig {
            failure_threshold: args.get_u64("breaker-threshold", 3) as u32,
            cooldown_epochs: args.get_u64("breaker-cooldown", 4) as u32,
            ..BreakerConfig::default()
        },
        ..ServiceConfig::default()
    };
    let store_cfg = StoreConfig {
        durable: args.get_u64("durable", 1) != 0,
        flush_every: args.get_usize("flush-every", 8),
        snapshot_interval: args.get_usize("snapshot-interval", 64),
        retain: args.get_usize("retain", 3),
        ..StoreConfig::new(&dir)
    };
    let mut daemon_cfg = DaemonConfig::new(&socket);
    daemon_cfg.epoch_wall_ms = args.get_u64("epoch-wall-ms", 50);
    daemon_cfg.queue_capacity = args.get_usize("queue-capacity", 256);
    daemon_cfg.solve_timeout_ms = args.get_u64("solve-timeout-ms", 2_000);
    daemon_cfg.read_timeout_ms = args.get_u64("read-timeout-ms", 5_000);
    daemon_cfg.chaos_solver_rate = args.get_f64("chaos-solver-rate", 0.0);
    daemon_cfg.chaos_seed = args.get_u64("chaos-seed", 0);
    let max_epochs = args.get_usize("max-epochs", 0);
    daemon_cfg.max_epochs = (max_epochs > 0).then_some(max_epochs);

    let trace = match args.get_opt_str("trace") {
        Some(path) => {
            let max_bytes = args.get_u64("trace-max-bytes", 4 * 1024 * 1024);
            let keep = args.get_usize("trace-keep", 2);
            match JsonlRecorder::create_rotating(&path, max_bytes, keep) {
                Ok(r) => Some(Arc::new(r)),
                Err(e) => {
                    eprintln!("cannot create trace {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => None,
    };
    let _guard = trace
        .as_ref()
        .map(|r| thermaware_obs::install(Arc::clone(r) as Arc<dyn thermaware_obs::Recorder>));

    // Resume when the directory already holds a service; bootstrap
    // (scenario build + full three-stage solve) otherwise.
    let (engine, store) = if dir.join("service.json").exists() {
        match resume_service(&dir) {
            Ok((engine, info)) => {
                eprintln!(
                    "resumed: snapshot epoch {}, {} epoch(s) replayed{}{}",
                    info.snapshot_epoch,
                    info.replayed_epochs,
                    if info.tail_begin { ", tail begin re-applied" } else { "" },
                    if info.truncated_bytes > 0 {
                        format!(", {} torn byte(s) truncated", info.truncated_bytes)
                    } else {
                        String::new()
                    }
                );
                match ServiceStore::reopen(store_cfg) {
                    Ok(store) => (engine, store),
                    Err(e) => {
                        eprintln!("cannot reopen store: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            Err(e) => {
                eprintln!("resume failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        let seed = args.get_u64("seed", 1);
        let dc = match ScenarioParams::small_test().build(seed) {
            Ok(dc) => dc,
            Err(e) => {
                eprintln!("scenario build failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        let plan = match Solver::new(&dc).solve() {
            Ok(p) => p,
            Err(e) => {
                eprintln!("initial solve failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        let engine = ServiceEngine::new(dc, service_cfg, &plan.pstates, &plan.stage3);
        let store = match ServiceStore::create(store_cfg, &engine) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot create store: {e}");
                return ExitCode::FAILURE;
            }
        };
        eprintln!("fresh service: seed {seed}, initial reward rate {:.3}", plan.reward_rate());
        (engine, store)
    };

    eprintln!("listening on {socket}");
    let outcome = run_daemon(&daemon_cfg, engine, store, trace.as_deref());
    // Clean exits get the counter/histogram summary lines; a SIGKILL
    // keeps only the streamed spans (which is what the drill checks).
    if let Some(t) = &trace {
        if let Err(e) = t.finish() {
            eprintln!("trace finish failed: {e}");
        }
    }
    match outcome {
        Ok(report) => {
            match serde_json::to_string(&report.stats) {
                Ok(json) => println!("{json}"),
                Err(e) => eprintln!("stats serialization failed: {e}"),
            }
            eprintln!("clean shutdown after {} epoch(s)", report.epochs_run);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("daemon failed: {e}");
            ExitCode::FAILURE
        }
    }
}
