//! `thermaware-loadgen` — drive load (and chaos) at a running
//! `thermaware-serve`, or verify an earlier run's id ledger against a
//! resumed daemon (`--verify-against`).

use std::path::PathBuf;
use std::process::ExitCode;
use thermaware_service::cli::Args;
use thermaware_service::loadgen::{run, verify, LoadReport, LoadgenConfig};
use thermaware_workload::Curve;

const USAGE: &str = "thermaware-loadgen: load generator for thermaware-serve

usage: thermaware-loadgen --socket PATH [options]
       thermaware-loadgen --socket PATH --verify-against REPORT.json [--verify-window N]

load:
  --schedule SPEC        constant:RATE | diurnal:BASE:PEAK:PERIOD |
                         surge:BASE:SURGE:START:LEN   [constant:200]
  --duration-s S         run length                    [10]
  --connections N        client threads                [16]
  --batch-tasks N        tasks per batch               [32]
  --task-types N         task-type universe            [3]
  --budget-ms N          per-request admission budget  [none]
  --seed N               chaos RNG / id-space seed     [1]

chaos:
  --disconnect-rate F    drop socket after send, skip ack   [0]
  --malformed-rate F     send a garbage frame               [0]
  --slowloris-rate F     dribble the frame with a mid-hold  [0]
  --slowloris-hold-ms N  dribble hold                       [20]

output:
  --report PATH          write the JSON report here

verify:
  --verify-against PATH  earlier run's report: every acked id in the
                         window must answer duplicate=true
  --verify-window N      most-recent acked ids to check     [5000]";

fn main() -> ExitCode {
    let args = Args::parse(USAGE);
    let Some(socket) = args.get_opt_str("socket").map(PathBuf::from) else {
        eprintln!("--socket is required\n{USAGE}");
        return ExitCode::from(2);
    };

    if let Some(report_path) = args.get_opt_str("verify-against") {
        let raw = match std::fs::read_to_string(&report_path) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("cannot read {report_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let report: LoadReport = match serde_json::from_str(&raw) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("cannot parse {report_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let connections = args.get_usize("connections", 16);
        let window = args.get_usize("verify-window", 5_000);
        match verify(&socket, &report, connections, window) {
            Ok(outcome) => {
                eprintln!(
                    "verified {} acked id(s): {} lost; {} unacked resolved ({} admitted pre-kill, {} fresh)",
                    outcome.checked,
                    outcome.lost_ids.len(),
                    outcome.unacked_admitted + outcome.unacked_fresh,
                    outcome.unacked_admitted,
                    outcome.unacked_fresh,
                );
                if outcome.lost_ids.is_empty() {
                    ExitCode::SUCCESS
                } else {
                    eprintln!("LOST admitted batches: {:?}", outcome.lost_ids);
                    ExitCode::FAILURE
                }
            }
            Err(e) => {
                eprintln!("verify failed: {e}");
                ExitCode::FAILURE
            }
        }
    } else {
        let mut cfg = LoadgenConfig::new(&socket);
        if let Some(spec) = args.get_opt_str("schedule") {
            match Curve::parse(&spec) {
                Some(s) => cfg.schedule = s,
                None => {
                    eprintln!("bad --schedule '{spec}'\n{USAGE}");
                    return ExitCode::from(2);
                }
            }
        }
        cfg.duration_s = args.get_f64("duration-s", 10.0);
        cfg.connections = args.get_usize("connections", 16);
        cfg.batch_tasks = args.get_usize("batch-tasks", 32);
        cfg.task_types = args.get_usize("task-types", 3);
        cfg.budget_ms = args.get_opt_str("budget-ms").and_then(|v| v.parse().ok());
        cfg.disconnect_rate = args.get_f64("disconnect-rate", 0.0);
        cfg.malformed_rate = args.get_f64("malformed-rate", 0.0);
        cfg.slowloris_rate = args.get_f64("slowloris-rate", 0.0);
        cfg.slowloris_hold_ms = args.get_u64("slowloris-hold-ms", 20);
        cfg.seed = args.get_u64("seed", 1);

        let report = run(&cfg);
        eprintln!(
            "{} batch(es) / {} task(s) in {:.1}s: {} acked, {} dup, {} queue-full, {} budget-expired, {} other-reject, {} proto-err, {} io-err",
            report.sent_batches,
            report.sent_tasks,
            report.duration_s,
            report.acked,
            report.duplicates,
            report.rejected_queue_full,
            report.rejected_budget,
            report.rejected_other,
            report.protocol_errors,
            report.io_errors,
        );
        eprintln!(
            "admission latency: p50 {:.2} ms, p99 {:.2} ms, max {:.2} ms; {} unacked in-doubt",
            report.latency_p50_ms,
            report.latency_p99_ms,
            report.latency_max_ms,
            report.unacked_ids.len(),
        );
        if let Some(path) = args.get_opt_str("report") {
            match serde_json::to_string(&report) {
                Ok(json) => {
                    if let Err(e) = std::fs::write(&path, json) {
                        eprintln!("cannot write report {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                    eprintln!("report written to {path}");
                }
                Err(e) => {
                    eprintln!("report serialization failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        ExitCode::SUCCESS
    }
}
