//! The load generator: open-loop-paced client fleets with optional
//! client-side chaos (mid-request disconnects, malformed frames,
//! slow-loris dribble), plus the post-resume verify mode the CI kill
//! drill uses to prove no acked batch was lost.
//!
//! Ids are globally unique: `run-nonce ⊕ client ⊕ sequence` packed
//! into a u64, so a verify pass after a daemon restart can resubmit an
//! earlier run's ids and read the `duplicate` flag as ground truth.

use crate::proto::{Batch, RejectReason, Request, Response};
use serde::{Deserialize, Serialize};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

// The offered-load shape (constant/diurnal/surge, `rate_at`, `parse`)
// lives in `thermaware_workload::Curve`, shared with the plan-side
// scenario engine so client load and solver demand can never drift
// apart. Import it from there; this module only consumes it.
use thermaware_workload::Curve;

/// Load generator configuration.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Daemon socket.
    pub socket: PathBuf,
    /// Offered-load shape.
    pub schedule: Curve,
    /// Run length, seconds.
    pub duration_s: f64,
    /// Client connections (each its own thread).
    pub connections: usize,
    /// Tasks per batch.
    pub batch_tasks: usize,
    /// Task-type universe to draw from (round-robin).
    pub task_types: usize,
    /// Per-request admission budget, ms (None = unlimited).
    pub budget_ms: Option<u64>,
    /// Probability of dropping the socket right after a send, without
    /// reading the ack (the batch lands in `unacked_ids`).
    pub disconnect_rate: f64,
    /// Probability of sending a garbage frame instead of a request.
    pub malformed_rate: f64,
    /// Probability of dribbling a request: half the line, a hold, the
    /// rest (exercises the server's partial-frame path).
    pub slowloris_rate: f64,
    /// Dribble hold, ms. Above the server's read timeout this becomes
    /// a true slow-loris and the server drops the connection.
    pub slowloris_hold_ms: u64,
    /// Chaos RNG seed; also salts the id-space nonce.
    pub seed: u64,
}

impl LoadgenConfig {
    /// Defaults: constant 200 batches/s, 10 s, 16 connections, 32-task
    /// batches over 3 types, no budget, no chaos.
    pub fn new(socket: impl Into<PathBuf>) -> LoadgenConfig {
        LoadgenConfig {
            socket: socket.into(),
            schedule: Curve::Constant { rate: 200.0 },
            duration_s: 10.0,
            connections: 16,
            batch_tasks: 32,
            task_types: 3,
            budget_ms: None,
            disconnect_rate: 0.0,
            malformed_rate: 0.0,
            slowloris_rate: 0.0,
            slowloris_hold_ms: 20,
            seed: 1,
        }
    }
}

/// What a run observed, written as the report JSON artifact.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LoadReport {
    /// Wall seconds the run actually took.
    pub duration_s: f64,
    /// Batches sent (acked or not).
    pub sent_batches: u64,
    /// Tasks across all sent batches.
    pub sent_tasks: u64,
    /// Batches acked `accepted` (first time).
    pub acked: u64,
    /// Batches acked `accepted` with `duplicate = true`.
    pub duplicates: u64,
    /// `rejected(queue_full)` answers.
    pub rejected_queue_full: u64,
    /// `rejected(budget_expired)` answers.
    pub rejected_budget: u64,
    /// Other rejections.
    pub rejected_other: u64,
    /// `error` answers (malformed frames earn these by design).
    pub protocol_errors: u64,
    /// Socket-level failures and reconnects.
    pub io_errors: u64,
    /// Admission latency p50, ms (submit → ack, acked batches only).
    pub latency_p50_ms: f64,
    /// Admission latency p99, ms.
    pub latency_p99_ms: f64,
    /// Worst admission latency, ms.
    pub latency_max_ms: f64,
    /// Acked batch ids (hex), in ack order: the exactly-once ledger a
    /// verify pass replays against the resumed daemon.
    pub acked_ids: Vec<String>,
    /// Ids sent but never acked (chaos disconnects, shutdown races):
    /// the daemon may or may not have admitted them, so a verify pass
    /// accepts either answer.
    pub unacked_ids: Vec<String>,
}

/// Per-worker tally merged into the final report.
#[derive(Debug, Default)]
struct WorkerTally {
    report: LoadReport,
    latencies_ms: Vec<f64>,
}

/// Outcome of [`verify`]: resubmission answers for an earlier run's id
/// ledger.
#[derive(Debug, Clone, Default)]
pub struct VerifyOutcome {
    /// Acked ids rechecked.
    pub checked: usize,
    /// Acked ids the daemon did **not** recognize as duplicates —
    /// admitted work that was lost. Must be empty.
    pub lost_ids: Vec<String>,
    /// Unacked ids that turned out to have been admitted pre-kill.
    pub unacked_admitted: usize,
    /// Unacked ids admitted fresh by the resubmission.
    pub unacked_fresh: usize,
}

/// A tiny splitmix RNG — the vendored `rand` is not needed for the
/// loadgen's chaos coin flips and keeps the binary dependency-light.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

struct Client {
    reader: BufReader<UnixStream>,
    writer: UnixStream,
}

impl Client {
    fn connect(path: &std::path::Path) -> std::io::Result<Client> {
        let stream = UnixStream::connect(path)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    fn send_line(&mut self, line: &str) -> std::io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")
    }

    fn read_response(&mut self) -> std::io::Result<Response> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        serde_json::from_str(line.trim_end())
            .map_err(|e| std::io::Error::other(format!("bad response: {e}")))
    }

    fn round_trip(&mut self, request: &Request) -> std::io::Result<Response> {
        let json = serde_json::to_string(request)
            .map_err(|e| std::io::Error::other(e.to_string()))?;
        self.send_line(&json)?;
        self.read_response()
    }
}

/// Pack (nonce, client, sequence) into a globally unique batch id.
fn pack_id(nonce: u16, client: usize, seq: u64) -> u64 {
    ((nonce as u64) << 48) | ((client as u64 & 0xff) << 40) | (seq & 0xff_ffff_ffff)
}

/// Round-robin the batch's tasks across the type universe.
fn make_batch(id: u64, seq: u64, batch_tasks: usize, task_types: usize) -> Batch {
    let t = (seq as usize) % task_types.max(1);
    Batch {
        id,
        tasks: vec![(t, batch_tasks)],
    }
}

/// Drive the configured load at the daemon and collect the report.
/// Worker panics are converted into io_errors, not propagated — a
/// chaos run must end with a report.
pub fn run(cfg: &LoadgenConfig) -> LoadReport {
    let nonce = (hash64(cfg.seed) >> 48) as u16;
    let started = Instant::now();
    let tallies: Vec<WorkerTally> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.connections.max(1))
            .map(|client| {
                let cfg = cfg.clone();
                scope.spawn(move || worker(&cfg, client, nonce))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join().unwrap_or_else(|_| {
                    let mut t = WorkerTally::default();
                    t.report.io_errors += 1;
                    t
                })
            })
            .collect()
    });
    let mut merged = LoadReport::default();
    let mut latencies: Vec<f64> = Vec::new();
    for t in tallies {
        merged.sent_batches += t.report.sent_batches;
        merged.sent_tasks += t.report.sent_tasks;
        merged.acked += t.report.acked;
        merged.duplicates += t.report.duplicates;
        merged.rejected_queue_full += t.report.rejected_queue_full;
        merged.rejected_budget += t.report.rejected_budget;
        merged.rejected_other += t.report.rejected_other;
        merged.protocol_errors += t.report.protocol_errors;
        merged.io_errors += t.report.io_errors;
        merged.acked_ids.extend(t.report.acked_ids);
        merged.unacked_ids.extend(t.report.unacked_ids);
        latencies.extend(t.latencies_ms);
    }
    merged.duration_s = started.elapsed().as_secs_f64();
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    merged.latency_p50_ms = percentile(&latencies, 0.50);
    merged.latency_p99_ms = percentile(&latencies, 0.99);
    merged.latency_max_ms = latencies.last().copied().unwrap_or(0.0);
    merged
}

fn worker(cfg: &LoadgenConfig, client_idx: usize, nonce: u16) -> WorkerTally {
    let mut tally = WorkerTally::default();
    let mut rng = Rng(hash64(cfg.seed ^ (client_idx as u64) << 17));
    let mut client = match Client::connect(&cfg.socket) {
        Ok(c) => c,
        Err(_) => {
            tally.report.io_errors += 1;
            return tally;
        }
    };
    let start = Instant::now();
    let mut seq: u64 = 0;
    loop {
        let t = start.elapsed().as_secs_f64();
        if t >= cfg.duration_s {
            break;
        }
        let rate = cfg.schedule.rate_at(t).max(0.001);
        let interval = Duration::from_secs_f64(cfg.connections.max(1) as f64 / rate);
        let id = pack_id(nonce, client_idx, seq);
        let batch = make_batch(id, seq, cfg.batch_tasks, cfg.task_types);
        seq += 1;
        let request = Request::Submit {
            batch: batch.clone(),
            budget_ms: cfg.budget_ms,
        };
        tally.report.sent_batches += 1;
        tally.report.sent_tasks += batch.total_tasks() as u64;

        let roll = rng.next_f64();
        let sent_at = Instant::now();
        let outcome: Option<std::io::Result<Response>> = if roll < cfg.malformed_rate {
            // Garbage frame instead of the request; the batch itself is
            // not sent, so it is neither acked nor in doubt.
            tally.report.sent_batches -= 1;
            tally.report.sent_tasks -= batch.total_tasks() as u64;
            Some(
                client
                    .send_line("{\"kind\": \"submit\", \"batch\": 42}")
                    .and_then(|()| client.read_response()),
            )
        } else if roll < cfg.malformed_rate + cfg.disconnect_rate {
            // Fire and cut the socket: ack lost, admission unknown.
            let json = serde_json::to_string(&request)
                .unwrap_or_default();
            let sent = client.send_line(&json);
            tally.report.unacked_ids.push(format!("{id:016x}"));
            match Client::connect(&cfg.socket) {
                Ok(fresh) => client = fresh,
                Err(_) => {
                    tally.report.io_errors += 1;
                    break;
                }
            }
            if sent.is_err() {
                tally.report.io_errors += 1;
            }
            None
        } else if roll < cfg.malformed_rate + cfg.disconnect_rate + cfg.slowloris_rate {
            // Dribble: half the frame, hold, the rest.
            let json = serde_json::to_string(&request)
                .unwrap_or_default();
            let mid = json.len() / 2;
            let dribble = client
                .writer
                .write_all(json.as_bytes().get(..mid).unwrap_or_default())
                .and_then(|()| {
                    std::thread::sleep(Duration::from_millis(cfg.slowloris_hold_ms));
                    client
                        .writer
                        .write_all(json.as_bytes().get(mid..).unwrap_or_default())
                })
                .and_then(|()| client.writer.write_all(b"\n"))
                .and_then(|()| client.read_response());
            Some(dribble)
        } else {
            Some(client.round_trip(&request))
        };

        match outcome {
            None => {}
            Some(Ok(response)) => {
                record_response(&mut tally, id, &response, sent_at.elapsed());
            }
            Some(Err(_)) => {
                // The request may have reached the daemon before the
                // failure: in doubt, like a disconnect.
                tally.report.io_errors += 1;
                tally.report.unacked_ids.push(format!("{id:016x}"));
                match Client::connect(&cfg.socket) {
                    Ok(fresh) => client = fresh,
                    Err(_) => break,
                }
            }
        }

        if let Some(sleep) = interval.checked_sub(sent_at.elapsed()) {
            std::thread::sleep(sleep);
        }
    }
    tally
}

fn record_response(tally: &mut WorkerTally, id: u64, response: &Response, took: Duration) {
    match response {
        Response::Accepted { duplicate, .. } => {
            if *duplicate {
                tally.report.duplicates += 1;
            } else {
                tally.report.acked += 1;
            }
            tally.report.acked_ids.push(format!("{id:016x}"));
            tally.latencies_ms.push(took.as_secs_f64() * 1_000.0);
        }
        Response::Rejected { reason, .. } => match reason {
            RejectReason::QueueFull => tally.report.rejected_queue_full += 1,
            RejectReason::BudgetExpired => tally.report.rejected_budget += 1,
            _ => tally.report.rejected_other += 1,
        },
        Response::Error { .. } => tally.report.protocol_errors += 1,
        Response::ShuttingDown => tally.report.io_errors += 1,
        _ => tally.report.rejected_other += 1,
    }
}

/// Replay an earlier run's id ledger against a (resumed) daemon.
///
/// Every acked id inside `window` (the most recent ones — the daemon's
/// dedup window is bounded, so arbitrarily old ids legitimately age
/// out) must answer `duplicate = true`; one that answers fresh was
/// admitted work the daemon lost. Unacked ids may answer either way.
pub fn verify(
    socket: &std::path::Path,
    report: &LoadReport,
    connections: usize,
    window: usize,
) -> std::io::Result<VerifyOutcome> {
    let tail_start = report.acked_ids.len().saturating_sub(window);
    let acked: Vec<u64> = parse_ids(&report.acked_ids[tail_start..]);
    let unacked: Vec<u64> = parse_ids(&report.unacked_ids);
    let shards = connections.max(1);
    let outcomes: Vec<std::io::Result<VerifyOutcome>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..shards)
            .map(|shard| {
                let acked: Vec<u64> = acked
                    .iter()
                    .copied()
                    .skip(shard)
                    .step_by(shards)
                    .collect();
                let unacked: Vec<u64> = unacked
                    .iter()
                    .copied()
                    .skip(shard)
                    .step_by(shards)
                    .collect();
                scope.spawn(move || verify_shard(socket, &acked, &unacked))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|_| Err(std::io::Error::other("verify worker panicked")))
            })
            .collect()
    });
    let mut merged = VerifyOutcome::default();
    for outcome in outcomes {
        let o = outcome?;
        merged.checked += o.checked;
        merged.lost_ids.extend(o.lost_ids);
        merged.unacked_admitted += o.unacked_admitted;
        merged.unacked_fresh += o.unacked_fresh;
    }
    Ok(merged)
}

fn verify_shard(
    socket: &std::path::Path,
    acked: &[u64],
    unacked: &[u64],
) -> std::io::Result<VerifyOutcome> {
    let mut out = VerifyOutcome::default();
    let mut client = Client::connect(socket)?;
    for &id in acked {
        let probe = Request::Submit {
            batch: Batch { id, tasks: Vec::new() },
            budget_ms: None,
        };
        match client.round_trip(&probe)? {
            Response::Accepted { duplicate: true, .. } => out.checked += 1,
            Response::Accepted { duplicate: false, .. } => {
                out.checked += 1;
                out.lost_ids.push(format!("{id:016x}"));
            }
            other => {
                return Err(std::io::Error::other(format!(
                    "verify probe for {id:016x} got unexpected answer: {other:?}"
                )))
            }
        }
    }
    for &id in unacked {
        let probe = Request::Submit {
            batch: Batch { id, tasks: Vec::new() },
            budget_ms: None,
        };
        match client.round_trip(&probe)? {
            Response::Accepted { duplicate: true, .. } => out.unacked_admitted += 1,
            Response::Accepted { duplicate: false, .. } => out.unacked_fresh += 1,
            other => {
                return Err(std::io::Error::other(format!(
                    "verify probe for {id:016x} got unexpected answer: {other:?}"
                )))
            }
        }
    }
    Ok(out)
}

fn parse_ids(hex: &[String]) -> Vec<u64> {
    hex.iter()
        .filter_map(|h| u64::from_str_radix(h, 16).ok())
        .collect()
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn hash64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Curve parsing/shape tests live with the type in
    // `thermaware_workload::curve` — this module only consumes it.

    #[test]
    fn ids_are_unique_across_clients_and_sequences() {
        let mut seen = std::collections::BTreeSet::new();
        for client in 0..8 {
            for seq in 0..100 {
                assert!(seen.insert(pack_id(7, client, seq)));
            }
        }
    }

    #[test]
    fn load_report_round_trips() {
        let report = LoadReport {
            duration_s: 1.5,
            sent_batches: 10,
            acked: 8,
            acked_ids: vec!["00070000000000aa".to_string()],
            unacked_ids: vec!["00070000000000ab".to_string()],
            latency_p99_ms: 12.5,
            ..LoadReport::default()
        };
        let json = serde_json::to_string(&report).expect("encode");
        let back: LoadReport = serde_json::from_str(&json).expect("decode");
        assert_eq!(back.acked, 8);
        assert_eq!(back.acked_ids, report.acked_ids);
        assert_eq!(back.latency_p99_ms, 12.5);
    }
}
