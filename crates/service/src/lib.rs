//! Scheduling-as-a-service: a persistent daemon wrapping the
//! three-stage optimizer and the dynamic dispatcher behind an
//! admission API, plus the load generator that tries to break it.
//!
//! The crate splits along a strict determinism boundary:
//!
//! * [`engine`] and [`store`] are the **deterministic core**: the epoch
//!   step is a pure function of (state, admitted batches, replan
//!   verdict), and the store journals exactly those inputs — so a
//!   SIGKILL at any byte resumes bit-identically by replay, and no
//!   wall clock, thread timing, or solver latency can leak in.
//! * [`daemon`] and [`loadgen`] are the **live shell**: sockets,
//!   threads, wall-clock epochs, solve timeouts, and chaos. Every
//!   nondeterministic outcome they produce (a solve that timed out, a
//!   solve that failed) is reified as a [`engine::ReplanVerdict`] and
//!   journaled *before* it is applied.
//!
//! Overload protection is layered: a bounded admission queue with
//! reject-plus-retry-after backpressure, per-request deadline budgets,
//! a wall-clock solve timeout that falls back to the previous plan,
//! and a circuit [`breaker`] around LP solves that serves the stale
//! plan and sheds the lowest-reward task type while open.

pub mod breaker;
pub mod cli;
pub mod daemon;
pub mod engine;
pub mod loadgen;
pub mod proto;
pub mod store;

pub use breaker::{BreakerConfig, BreakerState, CircuitBreaker};
pub use daemon::{run_daemon, DaemonConfig};
pub use engine::{ReplanVerdict, ServiceConfig, ServiceEngine};
pub use proto::{Batch, Request, Response};
pub use store::{resume_service, ServiceStore};
