//! Circuit breaker around LP replans.
//!
//! State machine (all transitions happen inside the deterministic
//! engine step, driven by journaled [`crate::engine::ReplanVerdict`]s,
//! so replay reproduces every transition bit-for-bit):
//!
//! ```text
//!            N consecutive failures
//!   Closed ─────────────────────────▶ Open ── cooldown elapsed ──▶ HalfOpen
//!     ▲                                ▲                              │
//!     │        probe succeeded         │       probe failed           │
//!     └────────────────────────────────┼──────────────────────────────┤
//!                                      └──────── (cooldown ×2, capped)┘
//! ```
//!
//! While `Open` no solves are attempted at all: the daemon serves the
//! stale plan and the engine sheds the lowest-reward task type (the
//! PR-1 degradation ladder's last rung). `HalfOpen` admits exactly one
//! probe solve; success closes the breaker and unsheds everything,
//! failure reopens it with a doubled (capped) cooldown.

use serde::{Deserialize, Serialize};

/// Breaker tuning.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BreakerConfig {
    /// Consecutive failed/timed-out replans that open the breaker.
    pub failure_threshold: u32,
    /// Epochs the breaker stays open before the first half-open probe.
    pub cooldown_epochs: u32,
    /// Cap on the doubling cooldown.
    pub max_cooldown_epochs: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 3,
            cooldown_epochs: 4,
            max_cooldown_epochs: 64,
        }
    }
}

/// Where the breaker is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BreakerState {
    /// Normal operation: solves allowed.
    Closed,
    /// Solves suppressed; serving the stale plan, shedding load.
    Open,
    /// Cooldown elapsed: one probe solve allowed.
    HalfOpen,
}

impl BreakerState {
    /// Lowercase name for stats/trace output.
    pub fn as_str(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }
}

/// The breaker itself — plain serializable data, mutated only by the
/// engine's deterministic step.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CircuitBreaker {
    /// Current state.
    pub state: BreakerState,
    /// Consecutive failures while closed.
    pub consecutive_failures: u32,
    /// Epochs left before an open breaker goes half-open.
    pub cooldown_left: u32,
    /// Cooldown the *next* reopen will use (doubles, capped).
    pub cooldown_len: u32,
    /// Times the breaker has opened over its life.
    pub opens: u64,
}

impl CircuitBreaker {
    /// A closed breaker with `cfg`'s initial cooldown.
    pub fn new(cfg: &BreakerConfig) -> CircuitBreaker {
        CircuitBreaker {
            state: BreakerState::Closed,
            consecutive_failures: 0,
            cooldown_left: 0,
            cooldown_len: cfg.cooldown_epochs.max(1),
            opens: 0,
        }
    }

    /// May a solve be spawned right now? (`HalfOpen` allows the probe;
    /// the caller is responsible for spawning at most one at a time.)
    pub fn allows_solve(&self) -> bool {
        !matches!(self.state, BreakerState::Open)
    }

    /// Advance one epoch: count an open breaker's cooldown down and go
    /// half-open when it elapses. Returns `true` on the Open→HalfOpen
    /// transition.
    pub fn tick(&mut self) -> bool {
        if self.state == BreakerState::Open {
            self.cooldown_left = self.cooldown_left.saturating_sub(1);
            if self.cooldown_left == 0 {
                self.state = BreakerState::HalfOpen;
                return true;
            }
        }
        false
    }

    /// A replan succeeded. Returns `true` when this *closes* a
    /// half-open breaker (the caller unsheds everything).
    pub fn on_success(&mut self, cfg: &BreakerConfig) -> bool {
        self.consecutive_failures = 0;
        if self.state == BreakerState::HalfOpen {
            self.state = BreakerState::Closed;
            self.cooldown_len = cfg.cooldown_epochs.max(1);
            return true;
        }
        false
    }

    /// A replan failed or timed out. Returns `true` when this *opens*
    /// the breaker (the caller sheds one task type).
    pub fn on_failure(&mut self, cfg: &BreakerConfig) -> bool {
        match self.state {
            BreakerState::Open => false,
            BreakerState::HalfOpen => {
                // Failed probe: reopen, double the cooldown.
                self.state = BreakerState::Open;
                self.cooldown_left = self.cooldown_len;
                self.cooldown_len =
                    (self.cooldown_len.saturating_mul(2)).min(cfg.max_cooldown_epochs.max(1));
                self.opens += 1;
                true
            }
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= cfg.failure_threshold.max(1) {
                    self.state = BreakerState::Open;
                    self.cooldown_left = self.cooldown_len;
                    self.opens += 1;
                    true
                } else {
                    false
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opens_after_threshold_and_recovers_via_probe() {
        let cfg = BreakerConfig { failure_threshold: 3, cooldown_epochs: 2, max_cooldown_epochs: 8 };
        let mut b = CircuitBreaker::new(&cfg);
        assert!(!b.on_failure(&cfg));
        assert!(!b.on_failure(&cfg));
        assert!(b.on_failure(&cfg), "third consecutive failure opens");
        assert_eq!(b.state, BreakerState::Open);
        assert!(!b.allows_solve());
        assert!(!b.tick());
        assert!(b.tick(), "cooldown elapsed: half-open");
        assert_eq!(b.state, BreakerState::HalfOpen);
        assert!(b.allows_solve());
        assert!(b.on_success(&cfg), "probe success closes");
        assert_eq!(b.state, BreakerState::Closed);
        assert_eq!(b.opens, 1);
    }

    #[test]
    fn failed_probe_doubles_cooldown_capped() {
        let cfg = BreakerConfig { failure_threshold: 1, cooldown_epochs: 2, max_cooldown_epochs: 5 };
        let mut b = CircuitBreaker::new(&cfg);
        assert!(b.on_failure(&cfg));
        let mut lens = vec![b.cooldown_left];
        for _ in 0..3 {
            while !b.tick() {}
            assert!(b.on_failure(&cfg), "failed probe reopens");
            lens.push(b.cooldown_left);
        }
        assert_eq!(lens, vec![2, 2, 4, 5], "doubling, capped at 5");
        assert_eq!(b.opens, 4);
    }

    #[test]
    fn round_trips_through_json() {
        let cfg = BreakerConfig::default();
        let mut b = CircuitBreaker::new(&cfg);
        for _ in 0..cfg.failure_threshold {
            b.on_failure(&cfg);
        }
        let json = serde_json::to_string(&b).expect("encode");
        let back: CircuitBreaker = serde_json::from_str(&json).expect("decode");
        assert_eq!(back, b);
        assert_eq!(serde_json::to_string(&back).expect("re-encode"), json);
    }
}
