//! A tiny `--key value` flag parser for the service binaries (the
//! offline dependency set has no CLI crate; mirrors the bench crate's
//! helper so both binaries feel the same).

use std::collections::HashMap;

/// Parsed `--key value` flags.
#[derive(Debug, Clone, Default)]
pub struct Args {
    flags: HashMap<String, String>,
}

impl Args {
    /// Parse the process arguments; `--help` prints `usage` and exits.
    pub fn parse(usage: &str) -> Args {
        let mut flags = HashMap::new();
        let mut it = std::env::args().skip(1);
        while let Some(arg) = it.next() {
            if arg == "--help" || arg == "-h" {
                eprintln!("{usage}");
                std::process::exit(0);
            }
            let Some(key) = arg.strip_prefix("--") else {
                eprintln!("unexpected argument '{arg}'\n{usage}");
                std::process::exit(2);
            };
            let Some(value) = it.next() else {
                eprintln!("flag --{key} needs a value\n{usage}");
                std::process::exit(2);
            };
            flags.insert(key.to_owned(), value);
        }
        Args { flags }
    }

    /// A `usize` flag with a default.
    pub fn get_usize(&self, key: &str, default: usize) -> usize {
        self.get_parsed(key).unwrap_or(default)
    }

    /// A `u64` flag with a default.
    pub fn get_u64(&self, key: &str, default: u64) -> u64 {
        self.get_parsed(key).unwrap_or(default)
    }

    /// An `f64` flag with a default.
    pub fn get_f64(&self, key: &str, default: f64) -> f64 {
        self.get_parsed(key).unwrap_or(default)
    }

    /// A string flag with a default.
    pub fn get_str(&self, key: &str, default: &str) -> String {
        self.flags
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_owned())
    }

    /// A string flag, `None` when absent.
    pub fn get_opt_str(&self, key: &str) -> Option<String> {
        self.flags.get(key).cloned()
    }

    fn get_parsed<T: std::str::FromStr>(&self, key: &str) -> Option<T> {
        self.flags.get(key).map(|v| {
            v.parse().unwrap_or_else(|_| {
                eprintln!("flag --{key}: cannot parse '{v}'");
                std::process::exit(2);
            })
        })
    }
}
