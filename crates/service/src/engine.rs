//! The deterministic service core: admission, dispatch, demand
//! tracking, and the breaker ladder, advanced one epoch at a time.
//!
//! [`ServiceEngine::step`] is a **pure function** of the current
//! [`ServiceState`], the admitted batches, and the [`ReplanVerdict`].
//! Everything wall-clock-dependent — whether a solve finished, timed
//! out, or failed — is reified into the verdict *by the caller* and
//! journaled before the step runs, so crash-recovery replay
//! re-executes the exact same computation without ever re-solving.
//! This is why a resume is bit-identical regardless of how long the
//! original solves took.

use crate::breaker::{BreakerConfig, BreakerState, CircuitBreaker};
use crate::proto::Batch;
use serde::{Deserialize, Serialize, Value};
use std::collections::BTreeSet;
use thermaware_core::stage3::Stage3Solution;
use thermaware_datacenter::DataCenter;
use thermaware_runtime::{Action, EventKind, EventLog};
use thermaware_scheduler::{DispatchDecision, EpochSim, EpochSimState};

/// Service tuning. Everything here is deterministic policy; wall-clock
/// knobs (epoch interval, solve timeout) live in
/// [`crate::daemon::DaemonConfig`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceConfig {
    /// Simulated seconds per epoch.
    pub epoch_s: f64,
    /// Largest admissible batch, tasks.
    pub max_batch_tasks: usize,
    /// Recently admitted batch ids remembered for exactly-once dedup.
    /// A resubmit inside the window acks as a duplicate; the window is
    /// bounded so a year of traffic cannot grow it.
    pub dedup_window: usize,
    /// EWMA smoothing for the offered per-type arrival rate.
    pub ewma_alpha: f64,
    /// Relative EWMA drift from the planned rates that marks the plan
    /// stale and requests a replan.
    pub drift_threshold: f64,
    /// Minimum epochs between replan requests.
    pub min_replan_gap_epochs: usize,
    /// Event-log ring capacity.
    pub log_capacity: usize,
    /// Breaker tuning.
    pub breaker: BreakerConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            epoch_s: 1.0,
            max_batch_tasks: 4096,
            dedup_window: 65_536,
            ewma_alpha: 0.3,
            drift_threshold: 0.25,
            min_replan_gap_epochs: 4,
            log_capacity: thermaware_runtime::event::DEFAULT_LOG_CAPACITY,
            breaker: BreakerConfig::default(),
        }
    }
}

/// Lifetime counters (monotone; settled into from every epoch).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ServiceTotals {
    /// Batches admitted (non-duplicate).
    pub admitted_batches: u64,
    /// Batches re-acked as duplicates.
    pub duplicate_batches: u64,
    /// Tasks dispatched onto a core.
    pub admitted_tasks: u64,
    /// Tasks refused by the admission check.
    pub dropped_tasks: u64,
    /// Tasks refused because their type is shed.
    pub shed_tasks: u64,
    /// Reward forgone by shedding (count × per-task reward).
    pub shed_reward: f64,
    /// Successful replans applied.
    pub replans: u64,
    /// Failed or timed-out replan attempts.
    pub replan_failures: u64,
}

/// What the live shell learned about a replan attempt, journaled in
/// the epoch's begin record. `Ok` carries the full new plan so replay
/// never re-solves.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplanVerdict {
    /// No solve finished this epoch.
    NotAttempted,
    /// A solve finished with this Stage-3 plan.
    Ok {
        /// The new rate plan (P-states unchanged — Section V.B rule).
        stage3: Stage3Solution,
    },
    /// The solve exceeded the wall-clock budget and was abandoned.
    TimedOut,
    /// The solve returned an error.
    Failed {
        /// Rendered solver error.
        error: String,
    },
}

/// The full serializable engine state — the unit the store snapshots
/// and CRC-checks.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceState {
    /// Epochs executed.
    pub epoch: usize,
    /// Simulation clock, seconds (`epoch × epoch_s`).
    pub now_s: f64,
    /// Active per-core P-states (fixed between full solves).
    pub pstates: Vec<usize>,
    /// Active Stage-3 plan.
    pub stage3: Stage3Solution,
    /// Dispatch/simulation state.
    pub sim: EpochSimState,
    /// LP circuit breaker.
    pub breaker: CircuitBreaker,
    /// Shed task types, most recent last (the unshed order).
    pub shed: Vec<usize>,
    /// EWMA of the offered arrival rate per type, tasks/s.
    pub ewma: Vec<f64>,
    /// Rates the active plan was built for (drift baseline).
    pub planned_rates: Vec<f64>,
    /// Recently admitted batch ids, oldest first (dedup window).
    pub recent_ids: Vec<u64>,
    /// Epoch of the last replan *request* (rate limiting).
    pub last_replan_epoch: usize,
    /// Lifetime counters.
    pub totals: ServiceTotals,
    /// Typed event history (ring-bounded).
    pub log: EventLog,
}

/// Per-batch outcome of one epoch step, in batch order.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchOutcome {
    /// The batch id.
    pub id: u64,
    /// It was a duplicate: nothing dispatched.
    pub duplicate: bool,
    /// Tasks dispatched onto cores.
    pub admitted: usize,
    /// Tasks refused by the admission check.
    pub dropped: usize,
    /// Tasks refused because their type is shed.
    pub shed: usize,
}

/// What one epoch did (derived, not journaled — replay recomputes it).
#[derive(Debug, Clone, Default)]
pub struct EpochReport {
    /// Per-batch outcomes.
    pub batches: Vec<BatchOutcome>,
    /// The breaker opened this epoch.
    pub breaker_opened: bool,
    /// The breaker closed this epoch.
    pub breaker_closed: bool,
    /// A new plan was applied this epoch.
    pub replanned: bool,
}

/// The deterministic core. Owns the data center and the state; the
/// daemon owns the wall clock, the sockets, and the solver thread.
pub struct ServiceEngine {
    dc: DataCenter,
    cfg: ServiceConfig,
    state: ServiceState,
    /// Dedup membership mirror of `state.recent_ids` (rebuilt on load;
    /// never serialized).
    recent_set: BTreeSet<u64>,
}

impl ServiceEngine {
    /// A fresh engine from a solved plan's P-states and Stage-3 rates.
    pub fn new(
        dc: DataCenter,
        cfg: ServiceConfig,
        pstates: &[usize],
        stage3: &Stage3Solution,
    ) -> ServiceEngine {
        let sim = EpochSim::new(&dc, pstates, stage3).to_state();
        let planned_rates: Vec<f64> =
            dc.workload.task_types.iter().map(|t| t.arrival_rate).collect();
        let state = ServiceState {
            epoch: 0,
            now_s: 0.0,
            pstates: pstates.to_vec(),
            stage3: stage3.clone(),
            sim,
            breaker: CircuitBreaker::new(&cfg.breaker),
            shed: Vec::new(),
            ewma: planned_rates.clone(),
            planned_rates,
            recent_ids: Vec::new(),
            last_replan_epoch: 0,
            totals: ServiceTotals::default(),
            log: EventLog::with_capacity(cfg.log_capacity),
        };
        ServiceEngine::from_state(dc, cfg, state)
    }

    /// Reattach an engine to a (restored) data center and state.
    pub fn from_state(dc: DataCenter, cfg: ServiceConfig, state: ServiceState) -> ServiceEngine {
        let recent_set = state.recent_ids.iter().copied().collect();
        ServiceEngine { dc, cfg, state, recent_set }
    }

    /// The current state (serialize it for snapshots/CRCs).
    pub fn state(&self) -> &ServiceState {
        &self.state
    }

    /// The engine's configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.cfg
    }

    /// The data center the engine runs against.
    pub fn dc(&self) -> &DataCenter {
        &self.dc
    }

    /// Would this batch id ack as a duplicate right now?
    pub fn would_duplicate(&self, id: u64) -> bool {
        self.recent_set.contains(&id)
    }

    /// Does a batch reference only known task types?
    pub fn batch_types_valid(&self, batch: &Batch) -> bool {
        batch.tasks.iter().all(|&(t, _)| t < self.dc.n_task_types())
    }

    /// Mean core backlog at the current sim time, seconds — the
    /// daemon's retry-after basis.
    pub fn backlog_s(&self) -> f64 {
        // The scheduler state is authoritative; rebuilding the sim view
        // is cheap (no copy of the admitted list).
        self.state
            .sim
            .scheduler
            .busy_until
            .iter()
            .zip(self.state.sim.scheduler.alive.iter())
            .filter(|&(_, &alive)| alive)
            .map(|(&up, _)| (up - self.state.now_s).max(0.0))
            .sum::<f64>()
            / self
                .state
                .sim
                .scheduler
                .alive
                .iter()
                .filter(|&&a| a)
                .count()
                .max(1) as f64
    }

    /// Is the active plan stale enough (or a probe pending) that the
    /// daemon should spawn a solve? Deterministic: state-only.
    pub fn wants_replan(&self) -> bool {
        if !self.state.breaker.allows_solve() {
            return false;
        }
        // A half-open breaker always wants its probe — the cooldown
        // already rate-limited it, the replan gap must not.
        if self.state.breaker.state == BreakerState::HalfOpen {
            return true;
        }
        if self.state.epoch < self.state.last_replan_epoch + self.cfg.min_replan_gap_epochs.max(1)
        {
            return false;
        }
        // Demand drift: any type's offered EWMA strayed beyond the
        // threshold from what the plan was built for.
        self.state
            .ewma
            .iter()
            .zip(self.state.planned_rates.iter())
            .any(|(&now, &planned)| {
                let scale = planned.abs().max(1e-9);
                (now - planned).abs() / scale > self.cfg.drift_threshold
            })
    }

    /// The inputs a solver thread needs: a data-center clone whose
    /// workload demand is the current EWMA (shed types zeroed) plus the
    /// fixed P-states. Called by the daemon at spawn time; the result
    /// of the solve comes back as a journaled [`ReplanVerdict`].
    pub fn solve_request(&self) -> (DataCenter, Vec<usize>) {
        let mut dc = self.dc.clone();
        for (i, t) in dc.workload.task_types.iter_mut().enumerate() {
            t.arrival_rate = if self.state.shed.contains(&i) {
                0.0
            } else {
                self.state.ewma[i]
            };
        }
        (dc, self.state.pstates.clone())
    }

    /// Record that a solve was spawned (rate limiting baseline).
    pub fn note_replan_requested(&mut self) {
        self.state.last_replan_epoch = self.state.epoch;
    }

    /// Execute one epoch: dispatch `batches` (in order), update demand
    /// EWMAs, apply the journaled `verdict` to the breaker and the
    /// plan, settle finished tasks, and advance the clock.
    pub fn step(&mut self, batches: &[Batch], verdict: &ReplanVerdict) -> EpochReport {
        let _span = thermaware_obs::span("service.step");
        // Field-level borrows: the sim holds `dc` for its whole scope,
        // so every mutation below goes through `state`/`recent_set`
        // directly rather than `&mut self` methods.
        let ServiceEngine { dc, cfg, state, recent_set } = self;
        let t0 = state.now_s;
        let epoch_s = cfg.epoch_s.max(1e-9);
        let mut report = EpochReport::default();
        let mut sim = EpochSim::from_state(dc, state.sim.clone());

        // ---- Admission ----------------------------------------------------
        let mut counts = vec![0usize; dc.n_task_types()];
        let total_tasks: usize = batches
            .iter()
            .filter(|b| !recent_set.contains(&b.id))
            .map(|b| b.total_tasks())
            .sum();
        let mut k = 0usize; // running task index for the arrival spread
        for batch in batches {
            if recent_set.contains(&batch.id) {
                state.totals.duplicate_batches += 1;
                report.batches.push(BatchOutcome {
                    id: batch.id,
                    duplicate: true,
                    admitted: 0,
                    dropped: 0,
                    shed: 0,
                });
                continue;
            }
            remember(recent_set, &mut state.recent_ids, cfg.dedup_window, batch.id);
            state.totals.admitted_batches += 1;
            let mut outcome = BatchOutcome {
                id: batch.id,
                duplicate: false,
                admitted: 0,
                dropped: 0,
                shed: 0,
            };
            for &(task_type, n) in &batch.tasks {
                for _ in 0..n {
                    // Spread the epoch's arrivals uniformly over the
                    // epoch: deterministic, order-preserving, and it
                    // keeps the admission check honest (an instant
                    // burst at t0 would overstate backlogs).
                    let at = t0 + epoch_s * (k as f64 / total_tasks.max(1) as f64);
                    k += 1;
                    counts[task_type] += 1;
                    if state.shed.contains(&task_type) {
                        outcome.shed += 1;
                        state.totals.shed_tasks += 1;
                        state.totals.shed_reward += dc.workload.task_types[task_type].reward;
                        continue;
                    }
                    let deadline = at + dc.workload.task_types[task_type].deadline_slack;
                    match sim.dispatch(task_type, at, deadline) {
                        DispatchDecision::Assigned { .. } => {
                            outcome.admitted += 1;
                            state.totals.admitted_tasks += 1;
                        }
                        DispatchDecision::Dropped => {
                            outcome.dropped += 1;
                            state.totals.dropped_tasks += 1;
                        }
                    }
                }
            }
            report.batches.push(outcome);
        }

        // ---- Demand EWMA --------------------------------------------------
        let alpha = cfg.ewma_alpha.clamp(0.0, 1.0);
        for (i, &n) in counts.iter().enumerate() {
            let offered = n as f64 / epoch_s;
            state.ewma[i] = alpha * offered + (1.0 - alpha) * state.ewma[i];
        }

        // ---- Verdict → breaker → plan/ladder ------------------------------
        let t1 = t0 + epoch_s;
        match verdict {
            ReplanVerdict::NotAttempted => {}
            ReplanVerdict::Ok { stage3 } => {
                sim.replan(&state.pstates, stage3, t1);
                state.stage3 = stage3.clone();
                state.planned_rates = state.ewma.clone();
                state.totals.replans += 1;
                report.replanned = true;
                state.log.record(t1, EventKind::ActionTaken(Action::Replan));
                if state.breaker.on_success(&cfg.breaker) {
                    report.breaker_closed = true;
                    unshed_all(&mut state.shed, &mut state.log, t1);
                    thermaware_obs::counter_add("service.breaker_close", 1);
                }
            }
            ReplanVerdict::TimedOut | ReplanVerdict::Failed { .. } => {
                state.totals.replan_failures += 1;
                let error = match verdict {
                    ReplanVerdict::Failed { error } => error.clone(),
                    _ => "solve timed out".to_string(),
                };
                state.log.record(
                    t1,
                    EventKind::ReplanFailed {
                        attempt: state.breaker.consecutive_failures + 1,
                        error,
                    },
                );
                thermaware_obs::counter_add("service.replan_failures", 1);
                if state.breaker.on_failure(&cfg.breaker) {
                    report.breaker_opened = true;
                    shed_lowest_reward(dc, &mut state.shed, &mut state.log, t1);
                    thermaware_obs::counter_add("service.breaker_open", 1);
                }
            }
        }
        if state.breaker.tick() {
            thermaware_obs::counter_add("service.breaker_half_open", 1);
        }

        // ---- Settle & advance ---------------------------------------------
        sim.settle(t1);
        state.sim = sim.to_state();
        state.epoch += 1;
        state.now_s = t1;
        report
    }

    /// Per-type outcome stats accumulated by the simulation so far.
    pub fn per_type(&self) -> &[thermaware_scheduler::TypeStats] {
        &self.state.sim.per_type
    }
}

/// Admit `id` into the bounded dedup window, evicting the oldest.
fn remember(recent_set: &mut BTreeSet<u64>, recent_ids: &mut Vec<u64>, window: usize, id: u64) {
    if recent_set.insert(id) {
        recent_ids.push(id);
        let window = window.max(1);
        while recent_ids.len() > window {
            let evicted = recent_ids.remove(0);
            recent_set.remove(&evicted);
        }
    }
}

/// The breaker opened: shed the lowest-reward task type not already
/// shed (the degradation ladder's last rung).
fn shed_lowest_reward(dc: &DataCenter, shed: &mut Vec<usize>, log: &mut EventLog, at_s: f64) {
    let candidate = (0..dc.n_task_types())
        .filter(|t| !shed.contains(t))
        .min_by(|&a, &b| {
            let ra = dc.workload.task_types[a].reward;
            let rb = dc.workload.task_types[b].reward;
            ra.partial_cmp(&rb).unwrap_or(std::cmp::Ordering::Equal)
        });
    if let Some(task_type) = candidate {
        let reward = dc.workload.task_types[task_type].reward;
        shed.push(task_type);
        log.record(at_s, EventKind::ActionTaken(Action::ShedTaskType { task_type, reward }));
    }
}

/// The breaker closed: restore every shed type.
fn unshed_all(shed: &mut Vec<usize>, log: &mut EventLog, at_s: f64) {
    if !shed.is_empty() {
        shed.clear();
        log.record(at_s, EventKind::Recovered { margin_c: 0.0 });
    }
}

// ---- Serde -----------------------------------------------------------------

impl Serialize for ReplanVerdict {
    fn to_value(&self) -> Value {
        match self {
            ReplanVerdict::NotAttempted => {
                Value::Object(vec![("kind".to_string(), "not_attempted".to_value())])
            }
            ReplanVerdict::Ok { stage3 } => Value::Object(vec![
                ("kind".to_string(), "ok".to_value()),
                ("stage3".to_string(), stage3.to_value()),
            ]),
            ReplanVerdict::TimedOut => {
                Value::Object(vec![("kind".to_string(), "timed_out".to_value())])
            }
            ReplanVerdict::Failed { error } => Value::Object(vec![
                ("kind".to_string(), "failed".to_value()),
                ("error".to_string(), error.to_value()),
            ]),
        }
    }
}

impl Deserialize for ReplanVerdict {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        let entries = v
            .as_object()
            .ok_or_else(|| serde::Error::custom("ReplanVerdict: expected object"))?;
        let kind: String = serde::field(entries, "kind")?;
        match kind.as_str() {
            "not_attempted" => Ok(ReplanVerdict::NotAttempted),
            "ok" => Ok(ReplanVerdict::Ok {
                stage3: serde::field(entries, "stage3")?,
            }),
            "timed_out" => Ok(ReplanVerdict::TimedOut),
            "failed" => Ok(ReplanVerdict::Failed {
                error: serde::field(entries, "error")?,
            }),
            other => Err(serde::Error::custom(format!(
                "ReplanVerdict: unknown kind '{other}'"
            ))),
        }
    }
}

impl Serialize for ServiceState {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("epoch".to_string(), self.epoch.to_value()),
            ("now_s".to_string(), self.now_s.to_value()),
            ("pstates".to_string(), self.pstates.to_value()),
            ("stage3".to_string(), self.stage3.to_value()),
            ("sim".to_string(), self.sim.to_value()),
            ("breaker".to_string(), self.breaker.to_value()),
            ("shed".to_string(), self.shed.to_value()),
            ("ewma".to_string(), self.ewma.to_value()),
            ("planned_rates".to_string(), self.planned_rates.to_value()),
            (
                "recent_ids".to_string(),
                Value::Array(
                    self.recent_ids
                        .iter()
                        .map(|id| Value::String(format!("{id:016x}")))
                        .collect(),
                ),
            ),
            (
                "last_replan_epoch".to_string(),
                self.last_replan_epoch.to_value(),
            ),
            ("totals".to_string(), self.totals.to_value()),
            ("log".to_string(), self.log.to_value()),
        ])
    }
}

impl Deserialize for ServiceState {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        let entries = v
            .as_object()
            .ok_or_else(|| serde::Error::custom("ServiceState: expected object"))?;
        let raw_ids = entries
            .iter()
            .find(|(k, _)| k == "recent_ids")
            .map(|(_, v)| v)
            .and_then(|v| v.as_array())
            .ok_or_else(|| serde::Error::custom("ServiceState: missing 'recent_ids'"))?;
        let mut recent_ids = Vec::with_capacity(raw_ids.len());
        for v in raw_ids {
            let hex = v
                .as_str()
                .ok_or_else(|| serde::Error::custom("ServiceState: id must be a hex string"))?;
            recent_ids.push(u64::from_str_radix(hex, 16).map_err(|e| {
                serde::Error::custom(format!("ServiceState: bad id '{hex}': {e}"))
            })?);
        }
        Ok(ServiceState {
            epoch: serde::field(entries, "epoch")?,
            now_s: serde::field(entries, "now_s")?,
            pstates: serde::field(entries, "pstates")?,
            stage3: serde::field(entries, "stage3")?,
            sim: serde::field(entries, "sim")?,
            breaker: serde::field(entries, "breaker")?,
            shed: serde::field(entries, "shed")?,
            ewma: serde::field(entries, "ewma")?,
            planned_rates: serde::field(entries, "planned_rates")?,
            recent_ids,
            last_replan_epoch: serde::field(entries, "last_replan_epoch")?,
            totals: serde::field(entries, "totals")?,
            log: serde::field(entries, "log")?,
        })
    }
}
