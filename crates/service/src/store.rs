//! The service's durable layer: a write-ahead journal of (batches,
//! verdict) epoch inputs plus periodic full-state snapshots, built on
//! the runtime persist crate's framed-journal primitives.
//!
//! # Exactly-once admission across SIGKILL
//!
//! The daemon's epoch loop appends a [`ServiceRecord::Begin`] holding
//! the epoch's admitted batches and the journaled
//! [`ReplanVerdict`], **fsyncs it, and only then acknowledges the
//! batches to clients** ([`ServiceStore::append_begin`] enforces the
//! barrier). A SIGKILL after the ack therefore cannot lose admitted
//! work: resume replays the Begin, and because batch ids live in the
//! engine's dedup window, a client retransmitting an acked batch gets
//! `duplicate` back rather than double admission. A SIGKILL *before*
//! the ack may lose the batch — which is fine, the client never heard
//! an ack and will retry.
//!
//! [`ServiceRecord::Commit`] (the post-step state CRC) and snapshots
//! ride the batched-fsync path: losing them costs replay time, never
//! correctness.
//!
//! # Layout
//!
//! ```text
//! dir/
//!   service.json    header: scenario + config + initial plan
//!   journal.jsonl   CRC-framed Begin/Commit records
//!   snap-XXXXXXXX.json  full ServiceState snapshots (retained: newest K)
//! ```

use crate::engine::{ReplanVerdict, ServiceConfig, ServiceEngine, ServiceState};
use crate::proto::Batch;
use serde::{Deserialize, Serialize, Value};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use thermaware_core::stage3::Stage3Solution;
use thermaware_datacenter::{atomic_write, ScenarioSnapshot};
use thermaware_runtime::persist::{
    crc32, read_framed_journal, truncate_journal, JournalWriter, PersistError,
};

/// On-disk format version for the service store.
pub const SERVICE_FORMAT_VERSION: u64 = 1;

const HEADER_FILE: &str = "service.json";
const JOURNAL_FILE: &str = "journal.jsonl";
const SNAP_PREFIX: &str = "snap-";
const SNAP_SUFFIX: &str = ".json";

/// The immutable run description written once at store creation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServiceHeader {
    /// The full scenario (floor, coefficients, workload, budget).
    pub scenario: ScenarioSnapshot,
    /// Deterministic service policy.
    pub cfg: ServiceConfig,
    /// Initial per-core P-states (fixed across replans).
    pub pstates: Vec<usize>,
    /// Initial Stage-3 plan.
    pub stage3: Stage3Solution,
}

/// One write-ahead record.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceRecord {
    /// Fsynced *before* epoch `epoch`'s batches are acknowledged: the
    /// complete deterministic input of the epoch step.
    Begin {
        /// The epoch these inputs drive.
        epoch: usize,
        /// Admitted batches, in admission order.
        batches: Vec<Batch>,
        /// The replan verdict the live shell reified for this epoch.
        verdict: ReplanVerdict,
    },
    /// Appended after the step: the CRC-32 of the post-step state JSON,
    /// for replay divergence detection. Batched-fsync; loss is benign.
    Commit {
        /// The epoch that just executed.
        epoch: usize,
        /// CRC-32 over the post-step [`ServiceState`] JSON.
        state_crc: u32,
    },
}

impl Serialize for ServiceRecord {
    fn to_value(&self) -> Value {
        match self {
            ServiceRecord::Begin {
                epoch,
                batches,
                verdict,
            } => Value::Object(vec![
                ("rec".to_string(), "begin".to_value()),
                ("epoch".to_string(), epoch.to_value()),
                ("batches".to_string(), batches.to_value()),
                ("verdict".to_string(), verdict.to_value()),
            ]),
            ServiceRecord::Commit { epoch, state_crc } => Value::Object(vec![
                ("rec".to_string(), "commit".to_value()),
                ("epoch".to_string(), epoch.to_value()),
                ("state_crc".to_string(), state_crc.to_value()),
            ]),
        }
    }
}

impl Deserialize for ServiceRecord {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        let entries = v
            .as_object()
            .ok_or_else(|| serde::Error::custom("service record: expected object"))?;
        let rec: String = serde::field(entries, "rec")?;
        match rec.as_str() {
            "begin" => Ok(ServiceRecord::Begin {
                epoch: serde::field(entries, "epoch")?,
                batches: serde::field(entries, "batches")?,
                verdict: serde::field(entries, "verdict")?,
            }),
            "commit" => Ok(ServiceRecord::Commit {
                epoch: serde::field(entries, "epoch")?,
                state_crc: serde::field(entries, "state_crc")?,
            }),
            other => Err(serde::Error::custom(format!(
                "service record: unknown rec '{other}'"
            ))),
        }
    }
}

/// Durability policy for a service store.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Store directory (created if missing).
    pub dir: PathBuf,
    /// fsync journal appends and snapshot writes. Tests may disable.
    pub durable: bool,
    /// Commit-record appends per fsync barrier (Begin records always
    /// sync — they gate acks).
    pub flush_every: usize,
    /// Epochs between full snapshots.
    pub snapshot_interval: usize,
    /// Snapshot generations retained.
    pub retain: usize,
}

impl StoreConfig {
    /// Defaults: durable, commit batches of 8, snapshot every 64 epochs,
    /// keep 3 generations.
    pub fn new(dir: impl Into<PathBuf>) -> StoreConfig {
        StoreConfig {
            dir: dir.into(),
            durable: true,
            flush_every: 8,
            snapshot_interval: 64,
            retain: 3,
        }
    }
}

/// Serialize a state and CRC it — the (json, crc) pair snapshots and
/// commit records share.
pub fn state_json_crc(state: &ServiceState) -> Result<(String, u32), PersistError> {
    let json = serde_json::to_string(state)
        .map_err(|e| PersistError::State { reason: e.to_string() })?;
    let crc = crc32(json.as_bytes());
    Ok((json, crc))
}

/// Writes the journal and snapshots for one service run.
pub struct ServiceStore {
    cfg: StoreConfig,
    journal: JournalWriter,
}

impl ServiceStore {
    /// Initialize a fresh store directory: write the header, clear stale
    /// snapshots, start an empty journal, and snapshot epoch 0.
    pub fn create(cfg: StoreConfig, engine: &ServiceEngine) -> Result<ServiceStore, PersistError> {
        fs::create_dir_all(&cfg.dir)?;
        for (_, path) in snapshot_paths(&cfg.dir)? {
            fs::remove_file(path)?;
        }
        let header = ServiceHeader {
            scenario: ScenarioSnapshot::capture(engine.dc()),
            cfg: engine.config().clone(),
            pstates: engine.state().pstates.clone(),
            stage3: engine.state().stage3.clone(),
        };
        let envelope = Value::Object(vec![
            ("version".to_string(), SERVICE_FORMAT_VERSION.to_value()),
            ("header".to_string(), header.to_value()),
        ]);
        let json = serde_json::to_string(&envelope)
            .map_err(|e| PersistError::State { reason: e.to_string() })?;
        atomic_write(&cfg.dir.join(HEADER_FILE), json.as_bytes(), cfg.durable)?;
        let journal =
            JournalWriter::create(&cfg.dir.join(JOURNAL_FILE), cfg.durable, cfg.flush_every)?;
        let mut store = ServiceStore { cfg, journal };
        store.snapshot(engine)?;
        Ok(store)
    }

    /// Reattach to an existing store directory (after
    /// [`resume_service`]): journal opened for append, header untouched.
    pub fn reopen(cfg: StoreConfig) -> Result<ServiceStore, PersistError> {
        let journal =
            JournalWriter::open_append(&cfg.dir.join(JOURNAL_FILE), cfg.durable, cfg.flush_every)?;
        Ok(ServiceStore { cfg, journal })
    }

    /// Journal the epoch's inputs and **fsync before returning** — the
    /// ack barrier. Only after this returns may the daemon acknowledge
    /// the batches to clients.
    pub fn append_begin(
        &mut self,
        epoch: usize,
        batches: &[Batch],
        verdict: &ReplanVerdict,
    ) -> Result<(), PersistError> {
        self.journal.append(&ServiceRecord::Begin {
            epoch,
            batches: batches.to_vec(),
            verdict: verdict.clone(),
        })?;
        self.journal.sync()
    }

    /// Journal the post-step state CRC (batched fsync — losing a commit
    /// record costs replay verification, never admitted work).
    pub fn append_commit(&mut self, epoch: usize, state_crc: u32) -> Result<(), PersistError> {
        self.journal
            .append(&ServiceRecord::Commit { epoch, state_crc })
    }

    /// Force the journal's fsync barrier now.
    pub fn sync(&mut self) -> Result<(), PersistError> {
        self.journal.sync()
    }

    /// Should the daemon snapshot after `epoch` executed?
    pub fn snapshot_due(&self, epoch: usize) -> bool {
        let interval = self.cfg.snapshot_interval.max(1);
        epoch.is_multiple_of(interval)
    }

    /// Write a full snapshot of the engine state and prune old
    /// generations. The journal is synced first so a snapshot never
    /// describes state the journal cannot reproduce.
    pub fn snapshot(&mut self, engine: &ServiceEngine) -> Result<(), PersistError> {
        self.journal.sync()?;
        let (json, crc) = state_json_crc(engine.state())?;
        let envelope = Value::Object(vec![
            ("version".to_string(), SERVICE_FORMAT_VERSION.to_value()),
            ("epoch".to_string(), engine.state().epoch.to_value()),
            ("state_crc".to_string(), crc.to_value()),
            ("state".to_string(), json.to_value()),
        ]);
        let out = serde_json::to_string(&envelope)
            .map_err(|e| PersistError::State { reason: e.to_string() })?;
        let name = format!("{SNAP_PREFIX}{:08}{SNAP_SUFFIX}", engine.state().epoch);
        let start = thermaware_obs::enabled().then(std::time::Instant::now);
        atomic_write(&self.cfg.dir.join(name), out.as_bytes(), self.cfg.durable)?;
        if let Some(t) = start {
            thermaware_obs::counter_add("service.snapshots", 1);
            thermaware_obs::observe("service.snapshot_write_us", t.elapsed().as_micros() as f64);
        }
        let mut snaps = snapshot_paths(&self.cfg.dir)?;
        let retain = self.cfg.retain.max(1);
        if snaps.len() > retain {
            snaps.sort_by_key(|(e, _)| *e);
            for (_, path) in snaps.iter().take(snaps.len() - retain) {
                fs::remove_file(path)?;
            }
        }
        Ok(())
    }
}

/// What [`resume_service`] reconstructed, for logging/assertions.
#[derive(Debug, Clone)]
pub struct ServiceRecoveryInfo {
    /// Epoch of the snapshot replay started from (0 = header bootstrap).
    pub snapshot_epoch: usize,
    /// Journaled epochs re-executed on top of the snapshot.
    pub replayed_epochs: usize,
    /// The journal ended on a Begin without its Commit (the epoch that
    /// was in flight when the process died — replayed exactly once).
    pub tail_begin: bool,
    /// Bytes of torn/corrupt journal tail truncated away.
    pub truncated_bytes: u64,
}

/// Rebuild a [`ServiceEngine`] from a store directory: restore the
/// scenario, load the newest valid snapshot, replay journaled epochs
/// deterministically (verdicts come from the journal — **no solve is
/// ever re-run**), verify commit CRCs, and truncate any torn tail.
pub fn resume_service(dir: &Path) -> Result<(ServiceEngine, ServiceRecoveryInfo), PersistError> {
    let _span = thermaware_obs::span("service.resume");
    let header_path = dir.join(HEADER_FILE);
    let raw = match fs::read_to_string(&header_path) {
        Ok(s) => s,
        Err(e) if e.kind() == io::ErrorKind::NotFound => {
            return Err(PersistError::NoCheckpoint { dir: dir.to_path_buf() })
        }
        Err(e) => return Err(e.into()),
    };
    let envelope: Value = serde_json::from_str(&raw).map_err(|e| PersistError::Corrupt {
        path: header_path.clone(),
        reason: format!("header JSON: {e}"),
    })?;
    let entries = envelope.as_object().ok_or_else(|| PersistError::Corrupt {
        path: header_path.clone(),
        reason: "header envelope is not an object".to_string(),
    })?;
    let version: u64 = serde::field(entries, "version").map_err(|e| PersistError::Corrupt {
        path: header_path.clone(),
        reason: e.to_string(),
    })?;
    if version > SERVICE_FORMAT_VERSION {
        return Err(PersistError::UnsupportedVersion { path: header_path, version });
    }
    let header: ServiceHeader =
        serde::field(entries, "header").map_err(|e| PersistError::Corrupt {
            path: header_path.clone(),
            reason: e.to_string(),
        })?;
    let dc = header
        .scenario
        .clone()
        .restore()
        .map_err(|e| PersistError::State { reason: format!("scenario restore: {e}") })?;

    // Newest snapshot that passes its CRC wins; corrupt generations are
    // skipped, and with none valid we bootstrap epoch 0 from the header.
    let mut snaps = snapshot_paths(dir)?;
    snaps.sort_by_key(|(e, _)| *e);
    let mut state: Option<ServiceState> = None;
    let mut snapshot_epoch = 0usize;
    for (epoch, path) in snaps.iter().rev() {
        if let Some(s) = load_snapshot(path) {
            state = Some(s);
            snapshot_epoch = *epoch;
            break;
        }
    }
    let mut engine = match state {
        Some(s) => ServiceEngine::from_state(dc, header.cfg.clone(), s),
        None => ServiceEngine::new(dc, header.cfg.clone(), &header.pstates, &header.stage3),
    };

    // Replay the journal's valid prefix on top of the snapshot.
    let journal_path = dir.join(JOURNAL_FILE);
    let (records, valid, total) = read_framed_journal::<ServiceRecord>(&journal_path)?;
    let truncated_bytes = total - valid;
    if truncated_bytes > 0 {
        truncate_journal(&journal_path, valid)?;
    }
    let mut replayed = 0usize;
    let mut tail_begin = false;
    for rec in &records {
        match rec {
            ServiceRecord::Begin { epoch, batches, verdict } => {
                if *epoch < engine.state().epoch {
                    continue; // already inside the snapshot
                }
                if *epoch > engine.state().epoch {
                    return Err(PersistError::Corrupt {
                        path: journal_path.clone(),
                        reason: format!(
                            "journal gap: begin for epoch {epoch} but state is at {}",
                            engine.state().epoch
                        ),
                    });
                }
                engine.step(batches, verdict);
                replayed += 1;
                tail_begin = true;
            }
            ServiceRecord::Commit { epoch, state_crc } => {
                if epoch + 1 < engine.state().epoch {
                    continue; // commit already covered by the snapshot
                }
                if epoch + 1 > engine.state().epoch {
                    return Err(PersistError::Corrupt {
                        path: journal_path.clone(),
                        reason: format!(
                            "journal gap: commit for epoch {epoch} but state is at {}",
                            engine.state().epoch
                        ),
                    });
                }
                let (_, crc) = state_json_crc(engine.state())?;
                if crc != *state_crc {
                    return Err(PersistError::Corrupt {
                        path: journal_path.clone(),
                        reason: format!(
                            "replay divergence at epoch {epoch}: state CRC {crc:08x} != journaled {state_crc:08x}"
                        ),
                    });
                }
                tail_begin = false;
            }
        }
    }
    Ok((
        engine,
        ServiceRecoveryInfo {
            snapshot_epoch,
            replayed_epochs: replayed,
            tail_begin,
            truncated_bytes,
        },
    ))
}

fn load_snapshot(path: &Path) -> Option<ServiceState> {
    let raw = fs::read_to_string(path).ok()?;
    let envelope: Value = serde_json::from_str(&raw).ok()?;
    let entries = envelope.as_object()?;
    let version: u64 = serde::field(entries, "version").ok()?;
    if version > SERVICE_FORMAT_VERSION {
        return None;
    }
    let want: u32 = serde::field(entries, "state_crc").ok()?;
    let json: String = serde::field(entries, "state").ok()?;
    if crc32(json.as_bytes()) != want {
        return None;
    }
    serde_json::from_str(&json).ok()
}

fn snapshot_paths(dir: &Path) -> Result<Vec<(usize, PathBuf)>, PersistError> {
    let mut out = Vec::new();
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(e.into()),
    };
    for entry in entries {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(rest) = name.strip_prefix(SNAP_PREFIX) else {
            continue;
        };
        let Some(num) = rest.strip_suffix(SNAP_SUFFIX) else {
            continue;
        };
        if let Ok(epoch) = num.parse::<usize>() {
            out.push((epoch, entry.path()));
        }
    }
    Ok(out)
}
