//! P-state tables (paper Section III.C).
//!
//! P-state 0 has the highest clock and power; each consecutive P-state is
//! slower and cheaper. The *off* state is modeled, exactly as in the paper,
//! as one extra P-state appended after the deepest active one, with zero
//! power and zero computational speed.

use serde::{Deserialize, Serialize};

/// The P-state ladder of one core type, off state included.
///
/// Index convention (matching the paper): indices `0..n_active()` are the
/// active P-states ordered by decreasing frequency/power; index
/// [`PStateTable::off_index`] (= `n_active()`) is the off state. The
/// paper's `η_j` equals [`PStateTable::n_total`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PStateTable {
    /// Power (kW) of each active P-state, strictly decreasing.
    powers_kw: Vec<f64>,
    /// Clock (MHz) of each active P-state, strictly decreasing.
    freqs_mhz: Vec<f64>,
    /// Supply voltage (V) of each active P-state.
    voltages: Vec<f64>,
}

impl PStateTable {
    /// Build a table from parallel per-active-P-state arrays.
    ///
    /// # Panics
    /// Panics if the arrays differ in length, are empty, or the power or
    /// frequency ladders are not strictly decreasing — such a table is a
    /// configuration bug.
    pub fn new(powers_kw: Vec<f64>, freqs_mhz: Vec<f64>, voltages: Vec<f64>) -> Self {
        assert!(!powers_kw.is_empty(), "at least one active P-state required");
        assert_eq!(powers_kw.len(), freqs_mhz.len());
        assert_eq!(powers_kw.len(), voltages.len());
        for w in powers_kw.windows(2) {
            assert!(w[0] > w[1], "P-state powers must strictly decrease: {powers_kw:?}");
        }
        for w in freqs_mhz.windows(2) {
            assert!(w[0] > w[1], "P-state clocks must strictly decrease: {freqs_mhz:?}");
        }
        assert!(powers_kw.iter().all(|&p| p > 0.0), "active P-state with non-positive power");
        PStateTable {
            powers_kw,
            freqs_mhz,
            voltages,
        }
    }

    /// Number of active (running) P-states.
    pub fn n_active(&self) -> usize {
        self.powers_kw.len()
    }

    /// Total number of P-states including the off state (the paper's `η`).
    pub fn n_total(&self) -> usize {
        self.powers_kw.len() + 1
    }

    /// Index of the off state.
    pub fn off_index(&self) -> usize {
        self.powers_kw.len()
    }

    /// Whether `k` is the off state.
    pub fn is_off(&self, k: usize) -> bool {
        k == self.off_index()
    }

    /// Power of P-state `k` in kW (0 for the off state).
    ///
    /// # Panics
    /// Panics if `k` exceeds the off index.
    pub fn power_kw(&self, k: usize) -> f64 {
        assert!(k <= self.off_index(), "P-state {k} out of range");
        if k == self.off_index() {
            0.0
        } else {
            self.powers_kw[k]
        }
    }

    /// Clock of P-state `k` in MHz (0 for the off state).
    pub fn freq_mhz(&self, k: usize) -> f64 {
        assert!(k <= self.off_index(), "P-state {k} out of range");
        if k == self.off_index() {
            0.0
        } else {
            self.freqs_mhz[k]
        }
    }

    /// Supply voltage of active P-state `k`.
    pub fn voltage(&self, k: usize) -> f64 {
        assert!(k < self.n_active(), "no voltage for P-state {k}");
        self.voltages[k]
    }

    /// The *highest-index* (deepest, cheapest) P-state whose power is still
    /// `>= target_kw` — the Stage-2 rounding primitive (Section V.B.3,
    /// step 1). Returns the off state when even it satisfies the target
    /// (i.e. `target_kw <= 0`).
    pub fn deepest_at_or_above(&self, target_kw: f64) -> usize {
        if target_kw <= 0.0 {
            return self.off_index();
        }
        // Powers strictly decrease with index, so scan from the deep end.
        for k in (0..self.n_active()).rev() {
            if self.powers_kw[k] >= target_kw - 1e-12 {
                return k;
            }
        }
        0
    }

    /// Iterate over `(index, power_kw)` of all states, off included.
    pub fn iter_powers(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        (0..self.n_total()).map(|k| (k, self.power_kw(k)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> PStateTable {
        PStateTable::new(
            vec![0.15, 0.10, 0.05],
            vec![2500.0, 2000.0, 1500.0],
            vec![1.3, 1.2, 1.1],
        )
    }

    #[test]
    fn indexing_conventions() {
        let t = table();
        assert_eq!(t.n_active(), 3);
        assert_eq!(t.n_total(), 4);
        assert_eq!(t.off_index(), 3);
        assert!(t.is_off(3));
        assert!(!t.is_off(0));
        assert_eq!(t.power_kw(3), 0.0);
        assert_eq!(t.freq_mhz(3), 0.0);
        assert_eq!(t.power_kw(1), 0.10);
    }

    #[test]
    fn deepest_at_or_above_rounds_up_in_power() {
        let t = table();
        assert_eq!(t.deepest_at_or_above(0.15), 0);
        assert_eq!(t.deepest_at_or_above(0.12), 0);
        assert_eq!(t.deepest_at_or_above(0.10), 1);
        assert_eq!(t.deepest_at_or_above(0.07), 1);
        assert_eq!(t.deepest_at_or_above(0.05), 2);
        assert_eq!(t.deepest_at_or_above(0.01), 2);
        assert_eq!(t.deepest_at_or_above(0.0), 3);
        assert_eq!(t.deepest_at_or_above(-1.0), 3);
        // Above P0's power, the best we can do is P0.
        assert_eq!(t.deepest_at_or_above(0.2), 0);
    }

    #[test]
    #[should_panic(expected = "strictly decrease")]
    fn non_monotone_powers_rejected() {
        PStateTable::new(vec![0.1, 0.2], vec![2000.0, 1000.0], vec![1.2, 1.1]);
    }

    #[test]
    fn iter_powers_covers_off() {
        let t = table();
        let all: Vec<_> = t.iter_powers().collect();
        assert_eq!(all.len(), 4);
        assert_eq!(all[3], (3, 0.0));
    }
}
