//! Power models for heterogeneous compute nodes (paper Sections III.C and
//! Appendix A).
//!
//! A compute node's power is its *base* power (disks, fans — constant while
//! the node is on, Eq. 1) plus the sum of its cores' P-state powers. Core
//! power follows the CMOS model of Appendix A (Eq. 23):
//!
//! ```text
//! π(j, k) = SC_j · f_{j,k} · V_{j,k}² + β_j · V_{j,k}
//! ```
//!
//! where the first term is dynamic (switching) power and the second static
//! (leakage) power. `SC_j` and `β_j` are calibrated from the measured
//! P-state-0 power and an assumed static-power share at P-state 0 — the
//! paper's simulations use 30% and 20% shares, which is also what flips the
//! sign of the headline result (Fig. 6, first observation).
//!
//! The crate ships the paper's two Table-I node types: the HP ProLiant
//! DL785 G5 (8× AMD Opteron 8381 HE) and the NEC Express5800/A1080a-S
//! (4× Intel Xeon X7560).
//!
//! # Example
//!
//! ```
//! use thermaware_power::NodeType;
//!
//! let hp = NodeType::hp_proliant_dl785(0.3);
//! assert_eq!(hp.cores_per_node, 32);
//! // P-state 0 power matches Table I.
//! assert!((hp.core.pstates.power_kw(0) - 0.01375).abs() < 1e-12);
//! // The off state consumes nothing.
//! assert_eq!(hp.core.pstates.power_kw(hp.core.pstates.off_index()), 0.0);
//! ```

mod cmos;
mod node;
mod pstate;

pub use cmos::{derive_cmos, CmosParams};
pub use node::{CoreType, NodeType};
pub use pstate::PStateTable;
