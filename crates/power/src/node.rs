//! Compute node types (paper Section III.C, Table I, Appendix A).

use crate::{derive_cmos, PStateTable};
use serde::{Deserialize, Serialize};

/// A core type: its P-state ladder (powers derived from the CMOS model).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoreType {
    /// Human-readable name, e.g. `"AMD Opteron 8381 HE"`.
    pub name: String,
    /// The P-state ladder, off state included.
    pub pstates: PStateTable,
}

/// A compute node type. Nodes of the same type are identical (same cores,
/// same base power, same airflow) — paper Section III.C.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeType {
    /// Human-readable name, e.g. `"HP ProLiant DL785 G5"`.
    pub name: String,
    /// Base (non-compute: disks, fans) power in kW — `B_j` in Eq. 1.
    /// Consumed whenever the node is powered, regardless of core activity.
    pub base_power_kw: f64,
    /// Number of identical cores in the node.
    pub cores_per_node: usize,
    /// The node's core type.
    pub core: CoreType,
    /// Air flow rate through the node in m³/s — `FCN` in Eq. 4.
    pub air_flow_m3s: f64,
}

impl NodeType {
    /// Node power for a concrete per-core P-state assignment (Eq. 1):
    /// base power plus the sum of the assigned P-state powers.
    ///
    /// # Panics
    /// Panics if `assignment.len() != cores_per_node` or any P-state index
    /// is out of range.
    pub fn node_power_kw(&self, assignment: &[usize]) -> f64 {
        assert_eq!(
            assignment.len(),
            self.cores_per_node,
            "assignment length != cores per node"
        );
        self.base_power_kw
            + assignment
                .iter()
                .map(|&k| self.core.pstates.power_kw(k))
                .sum::<f64>()
    }

    /// Maximum node power: every core in P-state 0.
    pub fn max_power_kw(&self) -> f64 {
        self.base_power_kw + self.cores_per_node as f64 * self.core.pstates.power_kw(0)
    }

    /// Minimum node power: every core off. The node itself stays on — the
    /// paper's oversubscribed setting never powers nodes down — so the
    /// base power remains.
    pub fn min_power_kw(&self) -> f64 {
        self.base_power_kw
    }

    /// **Node type 1** of Table I: HP ProLiant DL785 G5 — 8× AMD Opteron
    /// 8381 HE, 4 cores each (32 cores).
    ///
    /// `static_share` is the static fraction of P-state-0 core power used
    /// to calibrate the CMOS model (0.3 in the paper's first two
    /// simulation sets, 0.2 in the third).
    pub fn hp_proliant_dl785(static_share: f64) -> NodeType {
        // Appendix A: processor TDP 0.055 kW over 4 cores -> 0.01375 kW
        // per core at P0; server draws 0.793 kW at 100% utilization, so
        // base = 0.793 - 8 * 0.055 = 0.353 kW.
        let p0 = 0.01375;
        let freqs = [2500.0, 2100.0, 1700.0, 800.0];
        let volts = [1.325, 1.25, 1.175, 1.025];
        let cmos = derive_cmos(p0, static_share, freqs[0], volts[0]);
        let powers: Vec<f64> = freqs
            .iter()
            .zip(&volts)
            .map(|(&f, &v)| cmos.power_kw(f, v))
            .collect();
        NodeType {
            name: "HP ProLiant DL785 G5".to_owned(),
            base_power_kw: 0.353,
            cores_per_node: 32,
            core: CoreType {
                name: "AMD Opteron 8381 HE".to_owned(),
                pstates: PStateTable::new(powers, freqs.to_vec(), volts.to_vec()),
            },
            air_flow_m3s: 0.07,
        }
    }

    /// **Node type 2** of Table I: NEC Express5800/A1080a-S — 4× Intel
    /// Xeon X7560, 8 cores each (32 cores).
    pub fn nec_express5800(static_share: f64) -> NodeType {
        let p0 = 0.01625;
        let freqs = [2666.0, 2200.0, 1700.0, 1000.0];
        let volts = [1.35, 1.268, 1.18, 1.056];
        let cmos = derive_cmos(p0, static_share, freqs[0], volts[0]);
        let powers: Vec<f64> = freqs
            .iter()
            .zip(&volts)
            .map(|(&f, &v)| cmos.power_kw(f, v))
            .collect();
        NodeType {
            name: "NEC Express5800/A1080a-S".to_owned(),
            base_power_kw: 0.418,
            cores_per_node: 32,
            core: CoreType {
                name: "Intel Xeon X7560".to_owned(),
                pstates: PStateTable::new(powers, freqs.to_vec(), volts.to_vec()),
            },
            air_flow_m3s: 0.0828,
        }
    }

    /// Both Table-I node types, in paper order (type 1, type 2).
    pub fn paper_node_types(static_share: f64) -> Vec<NodeType> {
        vec![
            NodeType::hp_proliant_dl785(static_share),
            NodeType::nec_express5800(static_share),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_parameters() {
        let hp = NodeType::hp_proliant_dl785(0.3);
        assert_eq!(hp.cores_per_node, 32);
        assert!((hp.base_power_kw - 0.353).abs() < 1e-12);
        assert!((hp.core.pstates.power_kw(0) - 0.01375).abs() < 1e-12);
        assert_eq!(hp.core.pstates.n_active(), 4);
        assert!((hp.air_flow_m3s - 0.07).abs() < 1e-12);
        assert_eq!(hp.core.pstates.freq_mhz(3), 800.0);

        let nec = NodeType::nec_express5800(0.3);
        assert_eq!(nec.cores_per_node, 32);
        assert!((nec.base_power_kw - 0.418).abs() < 1e-12);
        assert!((nec.core.pstates.power_kw(0) - 0.01625).abs() < 1e-12);
        assert_eq!(nec.core.pstates.freq_mhz(0), 2666.0);
        assert!((nec.air_flow_m3s - 0.0828).abs() < 1e-12);
    }

    #[test]
    fn node_power_at_extremes_matches_appendix_a() {
        let hp = NodeType::hp_proliant_dl785(0.3);
        // All cores at P0: the Appendix-A measured 0.793 kW.
        assert!((hp.max_power_kw() - 0.793).abs() < 1e-9);
        let all_p0 = vec![0usize; 32];
        assert!((hp.node_power_kw(&all_p0) - 0.793).abs() < 1e-9);
        // All cores off: base power only.
        let all_off = vec![hp.core.pstates.off_index(); 32];
        assert!((hp.node_power_kw(&all_off) - 0.353).abs() < 1e-12);
        assert_eq!(hp.min_power_kw(), 0.353);
    }

    #[test]
    fn mixed_assignment_sums_pstate_powers() {
        let hp = NodeType::hp_proliant_dl785(0.3);
        let mut assignment = vec![hp.core.pstates.off_index(); 32];
        assignment[0] = 0;
        assignment[1] = 2;
        let expected =
            0.353 + hp.core.pstates.power_kw(0) + hp.core.pstates.power_kw(2);
        assert!((hp.node_power_kw(&assignment) - expected).abs() < 1e-12);
    }

    #[test]
    fn static_share_preserves_p0_but_changes_deeper_states() {
        let a = NodeType::hp_proliant_dl785(0.2);
        let b = NodeType::hp_proliant_dl785(0.3);
        assert!((a.core.pstates.power_kw(0) - b.core.pstates.power_kw(0)).abs() < 1e-15);
        // More static share -> deeper states keep more (voltage-scaled)
        // leakage -> strictly more power at P3.
        assert!(a.core.pstates.power_kw(3) < b.core.pstates.power_kw(3));
    }

    #[test]
    fn max_temperature_rise_is_9_4_celsius() {
        // Appendix A: flow 0.07 m³/s guarantees <= 9.4 °C rise at max
        // power with rho = 1.205, Cp = 1.
        let hp = NodeType::hp_proliant_dl785(0.3);
        let rise = hp.max_power_kw() / (1.205 * 1.0 * hp.air_flow_m3s);
        assert!((rise - 9.4).abs() < 0.05, "rise = {rise}");
    }

    #[test]
    fn serde_round_trip() {
        let hp = NodeType::hp_proliant_dl785(0.25);
        let json = serde_json::to_string(&hp).unwrap();
        let back: NodeType = serde_json::from_str(&json).unwrap();
        assert_eq!(hp, back);
    }
}
