//! The CMOS core power model of Appendix A (Eq. 23).

use serde::{Deserialize, Serialize};

/// Calibrated CMOS constants for one core type.
///
/// `π(f, V) = sc · f · V² + beta · V` with `f` in MHz, `V` in volts, and
/// power in kW (the MHz→Hz and unit constants are absorbed into `sc`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CmosParams {
    /// Effective switched capacitance times activity (`S_j · CL_j`),
    /// assumed P-state independent (Appendix A).
    pub sc: f64,
    /// Static (leakage) power coefficient; static power is `beta · V`
    /// (Butts & Sohi \[11\] as cited by the paper).
    pub beta: f64,
}

impl CmosParams {
    /// Core power at clock `f_mhz` and supply voltage `v`, in kW (Eq. 23).
    pub fn power_kw(&self, f_mhz: f64, v: f64) -> f64 {
        self.sc * f_mhz * v * v + self.beta * v
    }

    /// Static component of the power at supply voltage `v`.
    pub fn static_kw(&self, v: f64) -> f64 {
        self.beta * v
    }

    /// Dynamic component of the power at clock `f_mhz`, voltage `v`.
    pub fn dynamic_kw(&self, f_mhz: f64, v: f64) -> f64 {
        self.sc * f_mhz * v * v
    }
}

/// Calibrate [`CmosParams`] from a measured P-state-0 operating point.
///
/// Given the total P-state-0 core power `p0_kw`, the share of it that is
/// static (`static_share`, e.g. 0.3 for the paper's first two simulation
/// sets), and the P-state-0 clock/voltage, solve Eq. 23 for `SC` and `β`:
///
/// * `β = static_share · p0 / V0`
/// * `SC = (1 − static_share) · p0 / (f0 · V0²)`
///
/// # Panics
/// Panics when `static_share` is outside `[0, 1)` or the operating point is
/// non-positive — calibration inputs are constants, not runtime data.
pub fn derive_cmos(p0_kw: f64, static_share: f64, f0_mhz: f64, v0: f64) -> CmosParams {
    assert!(
        (0.0..1.0).contains(&static_share),
        "static share {static_share} outside [0, 1)"
    );
    assert!(p0_kw > 0.0 && f0_mhz > 0.0 && v0 > 0.0, "non-positive operating point");
    let beta = static_share * p0_kw / v0;
    let sc = (1.0 - static_share) * p0_kw / (f0_mhz * v0 * v0);
    CmosParams { sc, beta }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_reproduces_p0_power() {
        for share in [0.0, 0.2, 0.3, 0.5, 0.9] {
            let c = derive_cmos(0.01375, share, 2500.0, 1.325);
            let p0 = c.power_kw(2500.0, 1.325);
            assert!((p0 - 0.01375).abs() < 1e-15, "share {share}: p0 = {p0}");
            let s = c.static_kw(1.325);
            assert!((s - share * 0.01375).abs() < 1e-15);
        }
    }

    #[test]
    fn static_plus_dynamic_equals_total() {
        let c = derive_cmos(0.016, 0.25, 2666.0, 1.35);
        for (f, v) in [(2666.0, 1.35), (2200.0, 1.268), (1000.0, 1.056)] {
            let total = c.power_kw(f, v);
            let parts = c.static_kw(v) + c.dynamic_kw(f, v);
            assert!((total - parts).abs() < 1e-18);
        }
    }

    #[test]
    fn lower_pstates_consume_less() {
        // Monotonicity along the paper's AMD Opteron ladder.
        let c = derive_cmos(0.01375, 0.3, 2500.0, 1.325);
        let ladder = [(2500.0, 1.325), (2100.0, 1.25), (1700.0, 1.175), (800.0, 1.025)];
        let powers: Vec<f64> = ladder.iter().map(|&(f, v)| c.power_kw(f, v)).collect();
        for w in powers.windows(2) {
            assert!(w[0] > w[1], "P-state powers must strictly decrease: {powers:?}");
        }
    }

    #[test]
    fn higher_static_share_flattens_the_ladder() {
        // With more static power, deep P-states save proportionally less:
        // their perf/W advantage over P0 shrinks. This is the mechanism
        // behind the paper's first Fig.-6 observation.
        let lo = derive_cmos(0.01375, 0.2, 2500.0, 1.325);
        let hi = derive_cmos(0.01375, 0.3, 2500.0, 1.325);
        // perf/W of P2 relative to P0, under each share.
        let ratio = |c: &CmosParams| {
            let p0 = 2500.0 / c.power_kw(2500.0, 1.325);
            let p2 = 1700.0 / c.power_kw(1700.0, 1.175);
            p2 / p0
        };
        assert!(ratio(&lo) > ratio(&hi));
    }

    #[test]
    #[should_panic(expected = "static share")]
    fn bad_share_panics() {
        derive_cmos(0.01, 1.0, 2500.0, 1.3);
    }
}
