//! Property tests for the CMOS power model: invariants of Eq. 23 under
//! arbitrary calibration inputs and P-state ladders.

use proptest::prelude::*;
use thermaware_power::{derive_cmos, NodeType, PStateTable};

proptest! {
    #[test]
    fn calibration_is_exact_at_p0(
        p0 in 0.001f64..0.1,
        share in 0.0f64..0.99,
        f0 in 500.0f64..4000.0,
        v0 in 0.8f64..1.6,
    ) {
        let c = derive_cmos(p0, share, f0, v0);
        prop_assert!((c.power_kw(f0, v0) - p0).abs() < 1e-12 * p0.max(1.0));
        prop_assert!((c.static_kw(v0) - share * p0).abs() < 1e-12);
        prop_assert!(c.sc >= 0.0 && c.beta >= 0.0);
    }

    #[test]
    fn power_is_monotone_in_frequency_and_voltage(
        p0 in 0.001f64..0.1,
        share in 0.0f64..0.9,
        f in 500.0f64..2000.0,
        df in 1.0f64..1000.0,
        v in 0.8f64..1.2,
        dv in 0.001f64..0.4,
    ) {
        let c = derive_cmos(p0, share, 2500.0, 1.325);
        prop_assert!(c.power_kw(f + df, v) >= c.power_kw(f, v));
        prop_assert!(c.power_kw(f, v + dv) >= c.power_kw(f, v));
    }

    #[test]
    fn node_power_is_sum_of_parts(
        share in 0.05f64..0.5,
        pstates in prop::collection::vec(0usize..5, 32),
    ) {
        let nt = NodeType::hp_proliant_dl785(share);
        let total = nt.node_power_kw(&pstates);
        let manual: f64 = nt.base_power_kw
            + pstates.iter().map(|&k| nt.core.pstates.power_kw(k)).sum::<f64>();
        prop_assert!((total - manual).abs() < 1e-12);
        prop_assert!(total >= nt.min_power_kw() - 1e-12);
        prop_assert!(total <= nt.max_power_kw() + 1e-12);
    }

    #[test]
    fn deepest_at_or_above_is_correct_for_any_target(
        target in -0.01f64..0.05,
        share in 0.05f64..0.5,
    ) {
        let t = NodeType::nec_express5800(share).core.pstates;
        let k = t.deepest_at_or_above(target);
        if target <= 0.0 {
            // Nothing to cover: off state.
            prop_assert_eq!(k, t.off_index());
        } else if target > t.power_kw(0) {
            // Unreachable target: best effort is P0 (documented).
            prop_assert_eq!(k, 0);
        } else {
            // The chosen state's power covers the target...
            prop_assert!(t.power_kw(k) >= target - 1e-12);
            // ...and no deeper state does (k is maximal).
            let deeper_power = t.power_kw(k + 1);
            prop_assert!(deeper_power < target + 1e-9);
        }
    }

    #[test]
    fn paper_ladders_always_strictly_decrease(share in 0.0f64..0.95) {
        for nt in NodeType::paper_node_types(share) {
            let t = &nt.core.pstates;
            for k in 1..t.n_active() {
                prop_assert!(
                    t.power_kw(k) < t.power_kw(k - 1),
                    "{} share {share}: P{k} not below P{}",
                    nt.name,
                    k - 1
                );
            }
        }
    }
}

// Non-proptest edge case kept here with the ladder invariants: a table
// with a single active state plus off.
#[test]
fn single_state_ladder() {
    let t = PStateTable::new(vec![0.02], vec![1000.0], vec![1.0]);
    assert_eq!(t.n_total(), 2);
    assert_eq!(t.deepest_at_or_above(0.01), 0);
    assert_eq!(t.deepest_at_or_above(0.03), 0);
    assert_eq!(t.deepest_at_or_above(0.0), 1);
}
