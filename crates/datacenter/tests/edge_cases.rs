//! Edge cases for scenario assembly and the CRAC-outlet search.

use thermaware_datacenter::{
    optimize_crac_outlets, CracSearchOptions, ScenarioParams,
};
use thermaware_thermal::CracUnit;

#[test]
fn coarse_only_search_still_finds_the_region() {
    // Very coarse step with no refinement radius: the search must still
    // land within one coarse step of the true optimum.
    let cracs = [CracUnit {
        flow_m3s: 1.0,
        min_outlet_c: 10.0,
        max_outlet_c: 25.0,
    }];
    let opts = CracSearchOptions {
        coarse_step_c: 7.5,
        fine_step_c: 7.5,
        refine_radius: 0,
        exhaustive_refine: true,
    };
    let (best, _) =
        optimize_crac_outlets(&cracs, opts, |t| Some(-(t[0] - 18.0).powi(2))).unwrap();
    assert!((best[0] - 18.0).abs() <= 7.5 + 1e-9);
}

#[test]
fn degenerate_range_single_temperature() {
    // min == max: exactly one candidate.
    let cracs = [CracUnit {
        flow_m3s: 1.0,
        min_outlet_c: 16.0,
        max_outlet_c: 16.0,
    }];
    let (best, score) =
        optimize_crac_outlets(&cracs, CracSearchOptions::default(), |t| Some(t[0])).unwrap();
    assert_eq!(best, vec![16.0]);
    assert_eq!(score, 16.0);
}

#[test]
fn scoring_function_sees_every_crac() {
    // With 3 CRACs the score closure must receive 3-long slices.
    let unit = CracUnit {
        flow_m3s: 1.0,
        min_outlet_c: 10.0,
        max_outlet_c: 20.0,
    };
    let cracs = [unit.clone(), unit.clone(), unit];
    let mut max_len = 0;
    optimize_crac_outlets(&cracs, CracSearchOptions::default(), |t| {
        max_len = max_len.max(t.len());
        Some(0.0)
    });
    assert_eq!(max_len, 3);
}

#[test]
fn one_node_per_label_scenarios_build() {
    // Small floors exercise partial-rack labeling; all of these must
    // assemble (possibly after rejection-resampling node types).
    for n_nodes in [4usize, 5, 7, 9, 11, 15] {
        let params = ScenarioParams {
            n_nodes,
            n_crac: 1,
            ..ScenarioParams::paper(0.3, 0.1)
        };
        let dc = params.build(3).unwrap_or_else(|e| panic!("{n_nodes} nodes: {e}"));
        assert_eq!(dc.n_nodes(), n_nodes);
    }
}

#[test]
fn budgets_scale_with_floor_size() {
    let small = ScenarioParams {
        n_nodes: 8,
        n_crac: 1,
        ..ScenarioParams::paper(0.3, 0.1)
    }
    .build(1)
    .unwrap();
    let large = ScenarioParams {
        n_nodes: 24,
        n_crac: 1,
        ..ScenarioParams::paper(0.3, 0.1)
    }
    .build(1)
    .unwrap();
    assert!(large.budget.p_min_kw > small.budget.p_min_kw);
    assert!(large.budget.p_max_kw > small.budget.p_max_kw);
    // Roughly 3x the nodes -> roughly 3x the IT envelope.
    let ratio = large.budget.p_max_kw / small.budget.p_max_kw;
    assert!(ratio > 2.0 && ratio < 4.5, "ratio {ratio}");
}

#[test]
fn arrival_rates_scale_with_core_count() {
    // Eq. 15 sizes arrivals to the floor: more cores, more work.
    let small = ScenarioParams {
        n_nodes: 8,
        n_crac: 1,
        ..ScenarioParams::paper(0.3, 0.1)
    }
    .build(2)
    .unwrap();
    let large = ScenarioParams {
        n_nodes: 24,
        n_crac: 1,
        ..ScenarioParams::paper(0.3, 0.1)
    }
    .build(2)
    .unwrap();
    let total_small: f64 = small.workload.task_types.iter().map(|t| t.arrival_rate).sum();
    let total_large: f64 = large.workload.task_types.iter().map(|t| t.arrival_rate).sum();
    assert!(total_large > 1.5 * total_small);
}
