//! Discretized coarse-to-fine search over CRAC outlet temperatures.
//!
//! The paper (Section V.B.2, last paragraph) observes that CRAC outlet
//! temperatures have ~1 °C granularity and proposes "a multi-step method
//! where the first step is a coarse-grained search for the entire range of
//! possible outlet temperatures" with each subsequent step refining around
//! the best combination. This module implements exactly that, generic over
//! the inner evaluation (a total-power computation for the Eq.-17 bounds,
//! a full Stage-1 LP for the assignment problem, the Eq.-21 baseline LP…).

use thermaware_thermal::CracUnit;

/// Options for the coarse-to-fine search.
#[derive(Debug, Clone, Copy)]
pub struct CracSearchOptions {
    /// Coarse-pass step in °C (paper-style multi-step search starts wide).
    pub coarse_step_c: f64,
    /// Final granularity in °C (1 °C per the paper).
    pub fine_step_c: f64,
    /// Radius (in fine steps) of the refinement window around the coarse
    /// optimum.
    pub refine_radius: usize,
    /// When true, refine with full grid enumeration; when false, use
    /// per-CRAC coordinate descent (cheaper for > 3 CRAC units).
    pub exhaustive_refine: bool,
}

impl Default for CracSearchOptions {
    fn default() -> Self {
        CracSearchOptions {
            coarse_step_c: 5.0,
            fine_step_c: 1.0,
            refine_radius: 2,
            exhaustive_refine: true,
        }
    }
}

/// Search CRAC outlet temperature combinations, maximizing `score`.
///
/// `score` returns `None` for infeasible combinations (e.g. redline
/// violations or an infeasible inner LP). Returns the best combination and
/// its score, or `None` when every combination was infeasible.
///
/// The search enumerates a coarse grid over each unit's admissible range,
/// then refines around the winner at `fine_step_c`; with
/// `exhaustive_refine` unset, refinement is coordinate descent, matching
/// the paper's remark that full enumeration grows exponentially in the
/// number of CRAC units.
pub fn optimize_crac_outlets<F>(
    cracs: &[CracUnit],
    options: CracSearchOptions,
    mut score: F,
) -> Option<(Vec<f64>, f64)>
where
    F: FnMut(&[f64]) -> Option<f64>,
{
    let _span = thermaware_obs::span("crac_search");
    // Candidate accounting goes through a wrapper so both passes (and
    // both refinement strategies) are counted uniformly: `evaluated` is
    // every combination handed to the caller's scorer, `pruned` the
    // subset the scorer rejected as infeasible.
    let mut evaluated: u64 = 0;
    let mut pruned: u64 = 0;
    let result = search_impl(cracs, options, &mut |combo: &[f64]| {
        evaluated += 1;
        let s = score(combo);
        if s.is_none() {
            pruned += 1;
        }
        s
    });
    if thermaware_obs::enabled() {
        thermaware_obs::counter_add("crac.candidates", evaluated);
        thermaware_obs::counter_add("crac.pruned", pruned);
        thermaware_obs::observe("crac.candidates_per_search", evaluated as f64);
        thermaware_obs::gauge_set("crac.coarse_step_c", options.coarse_step_c);
        thermaware_obs::gauge_set("crac.fine_step_c", options.fine_step_c);
        if result.is_none() {
            thermaware_obs::counter_add("crac.search_exhausted", 1);
        }
    }
    result
}

fn search_impl<F>(
    cracs: &[CracUnit],
    options: CracSearchOptions,
    score: &mut F,
) -> Option<(Vec<f64>, f64)>
where
    F: FnMut(&[f64]) -> Option<f64>,
{
    assert!(!cracs.is_empty());
    assert!(options.coarse_step_c > 0.0 && options.fine_step_c > 0.0);

    // ---- Coarse pass: full grid ------------------------------------------
    let coarse_span = thermaware_obs::span("crac_search.coarse");
    let coarse_axes: Vec<Vec<f64>> = cracs
        .iter()
        .map(|c| axis(c.min_outlet_c, c.max_outlet_c, options.coarse_step_c))
        .collect();
    let mut best: Option<(Vec<f64>, f64)> = None;
    enumerate(&coarse_axes, &mut |combo| {
        if let Some(s) = score(combo) {
            if best.as_ref().is_none_or(|(_, b)| s > *b) {
                best = Some((combo.to_vec(), s));
            }
        }
    });
    drop(coarse_span);
    let (mut current, mut current_score) = best?;

    // ---- Refinement ------------------------------------------------------
    let _refine_span = thermaware_obs::span("crac_search.refine");
    let radius = options.refine_radius as f64 * options.fine_step_c;
    if options.exhaustive_refine {
        let fine_axes: Vec<Vec<f64>> = cracs
            .iter()
            .zip(&current)
            .map(|(c, &center)| {
                axis(
                    (center - radius).max(c.min_outlet_c),
                    (center + radius).min(c.max_outlet_c),
                    options.fine_step_c,
                )
            })
            .collect();
        let mut best_fine = (current.clone(), current_score);
        enumerate(&fine_axes, &mut |combo| {
            if let Some(s) = score(combo) {
                if s > best_fine.1 {
                    best_fine = (combo.to_vec(), s);
                }
            }
        });
        return Some(best_fine);
    }

    // Coordinate descent at fine granularity: sweep each CRAC's axis while
    // holding the others, repeat until a full sweep makes no progress.
    for _ in 0..8 {
        thermaware_obs::counter_add("crac.descent_sweeps", 1);
        let mut improved = false;
        for i in 0..cracs.len() {
            let lo = (current[i] - radius).max(cracs[i].min_outlet_c);
            let hi = (current[i] + radius).min(cracs[i].max_outlet_c);
            for t in axis(lo, hi, options.fine_step_c) {
                if t == current[i] {
                    continue;
                }
                let mut candidate = current.clone();
                candidate[i] = t;
                if let Some(s) = score(&candidate) {
                    if s > current_score + 1e-12 {
                        current = candidate;
                        current_score = s;
                        improved = true;
                    }
                }
            }
        }
        if !improved {
            break;
        }
    }
    Some((current, current_score))
}

/// Inclusive axis from `lo` to `hi` with the given step (always includes
/// `hi`).
fn axis(lo: f64, hi: f64, step: f64) -> Vec<f64> {
    let mut v = Vec::new();
    let mut t = lo;
    while t < hi - 1e-9 {
        v.push(t);
        t += step;
    }
    v.push(hi);
    v
}

/// Call `f` with every combination of the axes (odometer enumeration, no
/// recursion, single scratch buffer).
fn enumerate<F: FnMut(&[f64])>(axes: &[Vec<f64>], f: &mut F) {
    let n = axes.len();
    let mut idx = vec![0usize; n];
    let mut combo = vec![0.0; n];
    loop {
        for (d, &i) in idx.iter().enumerate() {
            combo[d] = axes[d][i];
        }
        f(&combo);
        // Odometer increment.
        let mut d = 0;
        loop {
            if d == n {
                return;
            }
            idx[d] += 1;
            if idx[d] < axes[d].len() {
                break;
            }
            idx[d] = 0;
            d += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(lo: f64, hi: f64) -> CracUnit {
        CracUnit {
            flow_m3s: 1.0,
            min_outlet_c: lo,
            max_outlet_c: hi,
        }
    }

    #[test]
    fn finds_separable_quadratic_peak() {
        // score = -(t0 - 17)^2 - (t1 - 12)^2, peak at (17, 12).
        let cracs = [unit(10.0, 25.0), unit(10.0, 25.0)];
        let (best, score) = optimize_crac_outlets(&cracs, CracSearchOptions::default(), |t| {
            Some(-(t[0] - 17.0).powi(2) - (t[1] - 12.0).powi(2))
        })
        .unwrap();
        assert!((best[0] - 17.0).abs() < 1.01, "{best:?}");
        assert!((best[1] - 12.0).abs() < 1.01);
        assert!(score > -2.5);
    }

    #[test]
    fn coordinate_descent_agrees_on_separable_objective() {
        let cracs = [unit(10.0, 25.0), unit(10.0, 25.0), unit(10.0, 25.0)];
        let opts = CracSearchOptions {
            exhaustive_refine: false,
            ..CracSearchOptions::default()
        };
        let (best, _) = optimize_crac_outlets(&cracs, opts, |t| {
            Some(-(t[0] - 14.0).powi(2) - (t[1] - 21.0).powi(2) - (t[2] - 11.0).powi(2))
        })
        .unwrap();
        assert!((best[0] - 14.0).abs() < 1.01);
        assert!((best[1] - 21.0).abs() < 1.01);
        assert!((best[2] - 11.0).abs() < 1.01);
    }

    #[test]
    fn all_infeasible_returns_none() {
        let cracs = [unit(10.0, 25.0)];
        let r = optimize_crac_outlets(&cracs, CracSearchOptions::default(), |_| None);
        assert!(r.is_none());
    }

    #[test]
    fn partial_feasibility_is_respected() {
        // Only temperatures >= 20 are feasible; the optimum inside the
        // feasible region is at 20.
        let cracs = [unit(10.0, 25.0)];
        let (best, _) = optimize_crac_outlets(&cracs, CracSearchOptions::default(), |t| {
            if t[0] >= 20.0 {
                Some(-t[0])
            } else {
                None
            }
        })
        .unwrap();
        assert!((best[0] - 20.0).abs() < 1e-9);
    }

    #[test]
    fn axis_includes_endpoints() {
        let a = axis(10.0, 25.0, 5.0);
        assert_eq!(a, vec![10.0, 15.0, 20.0, 25.0]);
        let b = axis(10.0, 12.0, 5.0);
        assert_eq!(b, vec![10.0, 12.0]);
        let c = axis(10.0, 10.0, 5.0);
        assert_eq!(c, vec![10.0]);
    }

    #[test]
    fn enumerate_visits_all_combinations() {
        let axes = vec![vec![1.0, 2.0], vec![10.0, 20.0, 30.0]];
        let mut seen = Vec::new();
        enumerate(&axes, &mut |c| seen.push((c[0], c[1])));
        assert_eq!(seen.len(), 6);
        assert!(seen.contains(&(2.0, 30.0)));
        assert!(seen.contains(&(1.0, 10.0)));
    }
}
