//! Scenario snapshots: serialize a fully assembled [`DataCenter`] —
//! including the generated cross-interference coefficients — and restore
//! it bit-for-bit later.
//!
//! The scenario *generator* is already reproducible from `(params, seed)`,
//! but a snapshot is what you attach to a paper artifact or a bug report:
//! it pins the exact floor, coefficients, workload, and budget without
//! requiring the generator version that produced them.
//!
//! The module also owns the workspace's crash-consistent file writer,
//! [`atomic_write`]: temp file in the target directory, `fsync`, atomic
//! rename, directory `fsync`. The runtime's checkpoint/journal layer
//! builds on the same helper so every durable artifact in the workspace
//! shares one write discipline.

use crate::budget::PowerBudget;
use crate::datacenter::DataCenter;
use crate::scenario::{validate_workload, ScenarioError};
use serde::{Deserialize, Serialize};
use std::fs::{self, File};
use std::io::{self, Write};
use std::path::Path;
use thermaware_power::NodeType;
use thermaware_thermal::{CracUnit, CrossInterference, Layout, ThermalModel};
use thermaware_workload::Workload;

/// Write `bytes` to `path` crash-consistently: the content goes to a
/// temporary file in the same directory, is flushed (and `fsync`ed when
/// `durable`), and is renamed over the target in one atomic step, after
/// which the directory entry itself is synced. A reader therefore sees
/// either the complete old file or the complete new file — never a torn
/// mixture — and after the call returns with `durable = true` the data
/// survives power loss.
pub fn atomic_write(path: &Path, bytes: &[u8], durable: bool) -> io::Result<()> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let file_name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    let mut tmp_name = file_name.to_os_string();
    tmp_name.push(".tmp");
    let tmp = match dir {
        Some(d) => d.join(&tmp_name),
        None => std::path::PathBuf::from(&tmp_name),
    };
    {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.flush()?;
        if durable {
            f.sync_all()?;
        }
    }
    fs::rename(&tmp, path)?;
    if durable {
        if let Some(d) = dir {
            // Persist the rename itself: fsync the directory so the new
            // entry survives a crash (Linux supports fsync on directory
            // fds; best effort elsewhere).
            if let Ok(df) = File::open(d) {
                let _ = df.sync_all();
            }
        }
    }
    Ok(())
}

/// Everything needed to reconstruct a [`DataCenter`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioSnapshot {
    /// Floor plan.
    pub layout: Layout,
    /// Node type catalog.
    pub node_types: Vec<NodeType>,
    /// Node-type index per node.
    pub node_type_of: Vec<usize>,
    /// CRAC units.
    pub cracs: Vec<CracUnit>,
    /// Per-unit air flows `[CRACs | nodes]`, m³/s.
    pub flows: Vec<f64>,
    /// The generated cross-interference coefficients.
    pub interference: CrossInterference,
    /// Node inlet redline, °C.
    pub node_redline_c: f64,
    /// CRAC inlet redline, °C.
    pub crac_redline_c: f64,
    /// The workload.
    pub workload: Workload,
    /// The power budget (preserved, not recomputed, so restored scenarios
    /// match to the last bit).
    pub budget: PowerBudget,
}

impl ScenarioSnapshot {
    /// Capture a snapshot of an assembled data center.
    pub fn capture(dc: &DataCenter) -> ScenarioSnapshot {
        ScenarioSnapshot {
            layout: dc.layout.clone(),
            node_types: dc.node_types.clone(),
            node_type_of: dc.node_type_of.clone(),
            cracs: dc.cracs.clone(),
            flows: dc.thermal.flows().to_vec(),
            interference: dc.interference.clone(),
            node_redline_c: dc.thermal.node_redline_c,
            crac_redline_c: dc.thermal.crac_redline_c,
            workload: dc.workload.clone(),
            budget: dc.budget.clone(),
        }
    }

    /// Rebuild the data center (re-factoring the thermal model from the
    /// stored coefficients), rejecting degenerate or corrupted snapshots
    /// with a typed [`ScenarioError`] instead of building a data center
    /// that panics later.
    pub fn restore(self) -> Result<DataCenter, ScenarioError> {
        if self.node_type_of.is_empty() {
            return Err(ScenarioError::ZeroNodes);
        }
        if self.cracs.is_empty() {
            return Err(ScenarioError::ZeroCracs);
        }
        if self.node_types.is_empty() {
            return Err(ScenarioError::LengthMismatch {
                what: "snapshot has no node types".to_string(),
            });
        }
        for (node, &t) in self.node_type_of.iter().enumerate() {
            if t >= self.node_types.len() {
                return Err(ScenarioError::NodeTypeOutOfRange {
                    node,
                    node_type: t,
                    n_types: self.node_types.len(),
                });
            }
        }
        let expected_flows = self.cracs.len() + self.node_type_of.len();
        if self.flows.len() != expected_flows {
            return Err(ScenarioError::LengthMismatch {
                what: format!(
                    "snapshot has {} flows for {} units",
                    self.flows.len(),
                    expected_flows
                ),
            });
        }
        if !self.flows.iter().all(|f| f.is_finite()) {
            return Err(ScenarioError::NonFinite { field: "flows" });
        }
        if !self.node_redline_c.is_finite() {
            return Err(ScenarioError::NonFinite {
                field: "node_redline_c",
            });
        }
        if !self.crac_redline_c.is_finite() {
            return Err(ScenarioError::NonFinite {
                field: "crac_redline_c",
            });
        }
        validate_workload(&self.workload)?;
        let thermal = ThermalModel::new(
            &self.layout,
            &self.flows,
            &self.interference,
            self.node_redline_c,
            self.crac_redline_c,
        )
        .map_err(|reason| ScenarioError::Generation { reason })?;
        Ok(DataCenter::new(
            self.layout,
            self.node_types,
            self.node_type_of,
            self.cracs,
            thermal,
            self.interference,
            self.workload,
            self.budget,
        ))
    }

    /// Serialize to JSON and [`atomic_write`] it to `path`.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let json = serde_json::to_string_pretty(self)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        atomic_write(path, json.as_bytes(), true)
    }

    /// Load a snapshot previously written with [`ScenarioSnapshot::save`].
    pub fn load(path: &Path) -> io::Result<ScenarioSnapshot> {
        let text = fs::read_to_string(path)?;
        serde_json::from_str(&text)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioParams;

    #[test]
    fn capture_restore_round_trip_preserves_everything() {
        let dc = ScenarioParams::small_test().build(11).unwrap();
        let snap = ScenarioSnapshot::capture(&dc);
        let json = serde_json::to_string(&snap).unwrap();
        let back: ScenarioSnapshot = serde_json::from_str(&json).unwrap();
        let dc2 = back.restore().expect("restore");

        assert_eq!(dc.n_nodes(), dc2.n_nodes());
        assert_eq!(dc.n_cores(), dc2.n_cores());
        assert_eq!(dc.node_type_of, dc2.node_type_of);
        // JSON float printing can drop the last ULP.
        assert!((dc.budget.p_min_kw - dc2.budget.p_min_kw).abs() < 1e-12);
        assert!((dc.budget.p_max_kw - dc2.budget.p_max_kw).abs() < 1e-12);
        assert!((dc.budget.p_const_kw - dc2.budget.p_const_kw).abs() < 1e-12);
        assert_eq!(dc.budget.min_outlets_c, dc2.budget.min_outlets_c);

        // The thermal models must agree numerically (JSON float printing
        // can drop a ULP, hence the tolerance).
        let outlets = vec![16.0; dc.n_crac()];
        let powers: Vec<f64> = (0..dc.n_nodes()).map(|i| 0.4 + 0.01 * i as f64).collect();
        let a = dc.thermal.steady_state(&outlets, &powers);
        let b = dc2.thermal.steady_state(&outlets, &powers);
        for (x, y) in a.t_in.iter().zip(&b.t_in) {
            assert!((x - y).abs() < 1e-9, "{x} vs {y}");
        }
    }

    #[test]
    fn restored_scenario_plans_identically() {
        // 6 nodes keep the per-core check LP fast in debug builds.
        let dc = ScenarioParams {
            n_nodes: 6,
            ..ScenarioParams::small_test()
        }
        .build(12)
        .unwrap();
        let snap = ScenarioSnapshot::capture(&dc);
        let dc2 = snap.restore().unwrap();
        // The Stage-3 LP on a fixed assignment must give the same reward.
        let pstates = vec![2usize; dc.n_cores()];
        let a = crate_stage3(&dc, &pstates);
        let b = crate_stage3(&dc2, &pstates);
        assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }

    /// Minimal Stage-3-like LP built here (the datacenter crate cannot
    /// depend on thermaware-core), checking grouped capacity + arrivals.
    fn crate_stage3(dc: &DataCenter, pstates: &[usize]) -> f64 {
        use thermaware_lp::{Problem, RowOp, Sense};
        let t = dc.n_task_types();
        let mut p = Problem::new(Sense::Maximize);
        let mut per_type_terms: Vec<Vec<(thermaware_lp::VarId, f64)>> = vec![Vec::new(); t];
        for k in 0..dc.n_cores() {
            let nt = dc.core_type(k);
            let ps = pstates[k];
            let mut cap_terms = Vec::new();
            for (i, terms) in per_type_terms.iter_mut().enumerate() {
                let ecs = dc.workload.ecs.ecs(i, nt, ps);
                if ecs > 0.0 && dc.workload.deadline_feasible(i, nt, ps) {
                    let v = p.add_var(
                        &format!("tc_{i}_{k}"),
                        0.0,
                        f64::INFINITY,
                        dc.workload.task_types[i].reward,
                    );
                    cap_terms.push((v, 1.0 / ecs));
                    terms.push((v, 1.0));
                }
            }
            if !cap_terms.is_empty() {
                p.add_row_nodup(&format!("cap{k}"), &cap_terms, RowOp::Le, 1.0);
            }
        }
        for (i, terms) in per_type_terms.iter().enumerate() {
            if !terms.is_empty() {
                p.add_row_nodup(
                    &format!("arr{i}"),
                    terms,
                    RowOp::Le,
                    dc.workload.task_types[i].arrival_rate,
                );
            }
        }
        p.solve().unwrap().objective
    }
}
