//! The Section-VI scenario generator: one seed → one reproducible data
//! center.

use crate::budget::PowerBudget;
use crate::datacenter::DataCenter;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::fmt;
use thermaware_power::NodeType;
use thermaware_thermal::{interference, CracUnit, Layout, ThermalModel};
use thermaware_workload::{Workload, WorkloadGenParams};

/// Why a scenario could not be built or loaded. Degenerate inputs that
/// used to panic deep inside the generator (or silently produce an
/// unusable floor) are rejected up front with a machine-readable cause.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// A data center needs at least one compute node.
    ZeroNodes,
    /// A data center needs at least one CRAC unit.
    ZeroCracs,
    /// The workload defines no task types.
    ZeroTaskTypes,
    /// A parameter that must be a finite number is NaN or infinite.
    NonFinite {
        /// The offending field.
        field: &'static str,
    },
    /// A parameter that must be strictly positive is zero or negative.
    NonPositive {
        /// The offending field.
        field: &'static str,
    },
    /// A `(lo, hi)` range with `lo > hi`.
    InvalidRange {
        /// The offending field.
        field: &'static str,
    },
    /// A task type carries a negative arrival rate.
    NegativeArrivalRate {
        /// Task type position in the workload.
        task_type: usize,
        /// The offending rate.
        rate: f64,
    },
    /// Two task types claim the same identity index.
    DuplicateTaskIndex {
        /// The duplicated `TaskType::index`.
        index: usize,
    },
    /// A node references a node type that does not exist.
    NodeTypeOutOfRange {
        /// The node position.
        node: usize,
        /// The out-of-range type index.
        node_type: usize,
        /// Number of known node types.
        n_types: usize,
    },
    /// Structurally inconsistent collections (wrong vector lengths, …).
    LengthMismatch {
        /// A description of the inconsistency.
        what: String,
    },
    /// The (validated) inputs still failed downstream generation — e.g.
    /// no satisfiable cross-interference draw.
    Generation {
        /// The generator's message.
        reason: String,
    },
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::ZeroNodes => write!(f, "scenario has zero compute nodes"),
            ScenarioError::ZeroCracs => write!(f, "scenario has zero CRAC units"),
            ScenarioError::ZeroTaskTypes => write!(f, "workload has zero task types"),
            ScenarioError::NonFinite { field } => {
                write!(f, "field '{field}' is NaN or infinite")
            }
            ScenarioError::NonPositive { field } => {
                write!(f, "field '{field}' must be > 0")
            }
            ScenarioError::InvalidRange { field } => {
                write!(f, "range '{field}' has lo > hi")
            }
            ScenarioError::NegativeArrivalRate { task_type, rate } => {
                write!(f, "task type {task_type} has negative arrival rate {rate}")
            }
            ScenarioError::DuplicateTaskIndex { index } => {
                write!(f, "duplicate task type index {index}")
            }
            ScenarioError::NodeTypeOutOfRange {
                node,
                node_type,
                n_types,
            } => write!(
                f,
                "node {node} references node type {node_type} (only {n_types} defined)"
            ),
            ScenarioError::LengthMismatch { what } => write!(f, "{what}"),
            ScenarioError::Generation { reason } => {
                write!(f, "scenario generation failed: {reason}")
            }
        }
    }
}

impl std::error::Error for ScenarioError {}

/// Legacy-compatible conversion for call sites accumulating `String`
/// errors (`?` into `Result<_, String>`).
impl From<ScenarioError> for String {
    fn from(e: ScenarioError) -> String {
        e.to_string()
    }
}

/// Validate a fully generated (or deserialized) workload: every task
/// type must carry finite, non-negative rates/rewards, a positive
/// deadline slack, and a unique identity index.
pub fn validate_workload(workload: &Workload) -> Result<(), ScenarioError> {
    if workload.task_types.is_empty() {
        return Err(ScenarioError::ZeroTaskTypes);
    }
    let mut seen = vec![false; workload.task_types.len()];
    for (i, t) in workload.task_types.iter().enumerate() {
        if !t.arrival_rate.is_finite() {
            return Err(ScenarioError::NonFinite {
                field: "task_types.arrival_rate",
            });
        }
        if t.arrival_rate < 0.0 {
            return Err(ScenarioError::NegativeArrivalRate {
                task_type: i,
                rate: t.arrival_rate,
            });
        }
        if !t.reward.is_finite() {
            return Err(ScenarioError::NonFinite {
                field: "task_types.reward",
            });
        }
        if !t.deadline_slack.is_finite() {
            return Err(ScenarioError::NonFinite {
                field: "task_types.deadline_slack",
            });
        }
        if t.deadline_slack <= 0.0 {
            return Err(ScenarioError::NonPositive {
                field: "task_types.deadline_slack",
            });
        }
        match seen.get_mut(t.index) {
            Some(slot) if !*slot => *slot = true,
            Some(_) => return Err(ScenarioError::DuplicateTaskIndex { index: t.index }),
            None => {
                return Err(ScenarioError::LengthMismatch {
                    what: format!(
                        "task type {} has identity index {} outside 0..{}",
                        i,
                        t.index,
                        workload.task_types.len()
                    ),
                })
            }
        }
    }
    Ok(())
}

/// Which cross-interference generator to use (see
/// `thermaware_thermal::interference`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InterferenceMethod {
    /// Iterative proportional fitting — milliseconds at 153 units; the
    /// default for the Figure-6 replication.
    Ipf,
    /// The Appendix-B LP feasibility problem — exact, slower; used at
    /// small scale and in cross-validation tests.
    Lp,
}

/// Everything that defines a simulated data center except the seed.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioParams {
    /// Number of compute nodes (150 in the paper's runs).
    pub n_nodes: usize,
    /// Number of CRAC units (3 in the paper's runs).
    pub n_crac: usize,
    /// Static share of P-state-0 core power used to calibrate the CMOS
    /// model (0.3 for simulation sets 1–2, 0.2 for set 3).
    pub static_share: f64,
    /// Workload generation parameters (Section VI.C–D).
    pub workload: WorkloadGenParams,
    /// Node inlet redline, °C (25 in the paper).
    pub node_redline_c: f64,
    /// CRAC inlet redline, °C (40 in the paper).
    pub crac_redline_c: f64,
    /// Searchable CRAC outlet range, °C.
    pub crac_outlet_range: (f64, f64),
    /// CRAC air-flow oversizing relative to the paper's Section-VI.G
    /// rule (flows summing exactly to the node total). 1.0 = the paper;
    /// values above 1 buy N−1 failure margin (see the `crac_failure`
    /// experiment).
    pub crac_flow_margin: f64,
    /// Cross-interference generator.
    pub interference: InterferenceMethod,
}

impl ScenarioParams {
    /// The paper's simulation configuration: 150 nodes, 3 CRACs, 8 task
    /// types, with the given static power share and `V_prop` (the two
    /// knobs Figure 6 varies).
    pub fn paper(static_share: f64, v_prop: f64) -> ScenarioParams {
        let mut workload = WorkloadGenParams::default();
        workload.ecs.v_prop = v_prop;
        ScenarioParams {
            n_nodes: 150,
            n_crac: 3,
            static_share,
            workload,
            node_redline_c: 25.0,
            crac_redline_c: 40.0,
            crac_outlet_range: (10.0, 25.0),
            crac_flow_margin: 1.0,
            interference: InterferenceMethod::Ipf,
        }
    }

    /// A small configuration for fast tests: 1 CRAC, 10 nodes.
    pub fn small_test() -> ScenarioParams {
        ScenarioParams {
            n_nodes: 10,
            n_crac: 1,
            ..ScenarioParams::paper(0.3, 0.1)
        }
    }

    /// Reject degenerate parameter sets up front — zero nodes/CRACs,
    /// NaN/infinite knobs, inverted ranges — so the generator never
    /// panics or silently produces an unusable floor.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        if self.n_nodes == 0 {
            return Err(ScenarioError::ZeroNodes);
        }
        if self.n_crac == 0 {
            return Err(ScenarioError::ZeroCracs);
        }
        let finite_pos: [(&'static str, f64); 3] = [
            ("static_share", self.static_share),
            ("crac_flow_margin", self.crac_flow_margin),
            ("workload.deadline_factor", self.workload.deadline_factor),
        ];
        for (field, v) in finite_pos {
            if !v.is_finite() {
                return Err(ScenarioError::NonFinite { field });
            }
            if v <= 0.0 {
                return Err(ScenarioError::NonPositive { field });
            }
        }
        let finite_nonneg: [(&'static str, f64); 3] = [
            ("workload.v_arrival", self.workload.v_arrival),
            ("workload.ecs.v_ecs", self.workload.ecs.v_ecs),
            ("workload.ecs.v_prop", self.workload.ecs.v_prop),
        ];
        for (field, v) in finite_nonneg {
            if !v.is_finite() {
                return Err(ScenarioError::NonFinite { field });
            }
            if v < 0.0 {
                return Err(ScenarioError::NonPositive { field });
            }
        }
        if self.workload.ecs.n_task_types == 0 {
            return Err(ScenarioError::ZeroTaskTypes);
        }
        if self.workload.ecs.node_type_perf.is_empty() {
            return Err(ScenarioError::LengthMismatch {
                what: "workload.ecs.node_type_perf is empty".to_string(),
            });
        }
        if !self
            .workload
            .ecs
            .node_type_perf
            .iter()
            .all(|p| p.is_finite())
        {
            return Err(ScenarioError::NonFinite {
                field: "workload.ecs.node_type_perf",
            });
        }
        if !self.node_redline_c.is_finite() {
            return Err(ScenarioError::NonFinite {
                field: "node_redline_c",
            });
        }
        if !self.crac_redline_c.is_finite() {
            return Err(ScenarioError::NonFinite {
                field: "crac_redline_c",
            });
        }
        let (lo, hi) = self.crac_outlet_range;
        if !lo.is_finite() || !hi.is_finite() {
            return Err(ScenarioError::NonFinite {
                field: "crac_outlet_range",
            });
        }
        if lo > hi {
            return Err(ScenarioError::InvalidRange {
                field: "crac_outlet_range",
            });
        }
        Ok(())
    }

    /// Build the scenario for a seed. Every random draw (node types,
    /// interference, workload) comes from one `StdRng`, so a
    /// `(params, seed)` pair is fully reproducible.
    ///
    /// Parameters are [`validate`](ScenarioParams::validate)d first, and
    /// the generated workload is re-checked with [`validate_workload`]
    /// before it is accepted.
    ///
    /// Rarely — mostly at small node counts — a drawn node-type placement
    /// makes Table II's EC/RC ranges unsatisfiable (see
    /// `thermaware_thermal::interference`); such draws are rejected and
    /// redrawn deterministically, up to 20 attempts.
    pub fn build(&self, seed: u64) -> Result<DataCenter, ScenarioError> {
        self.validate()?;
        let mut last_err = String::new();
        for attempt in 0..20u64 {
            match self.build_attempt(seed.wrapping_add(attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15))) {
                Ok(dc) => {
                    validate_workload(&dc.workload)?;
                    return Ok(dc);
                }
                Err(e) => last_err = e,
            }
        }
        Err(ScenarioError::Generation {
            reason: format!("no satisfiable draw in 20 attempts: {last_err}"),
        })
    }

    fn build_attempt(&self, seed: u64) -> Result<DataCenter, String> {
        let mut rng = StdRng::seed_from_u64(seed);
        let layout = Layout::hot_cold_aisle(self.n_crac, self.n_nodes);

        // Node types: uniform random assignment (Section VI.B).
        let node_types = NodeType::paper_node_types(self.static_share);
        let node_type_of: Vec<usize> = (0..self.n_nodes)
            .map(|_| rng.gen_range(0..node_types.len()))
            .collect();

        // Flows and cross-interference.
        let node_flows: Vec<f64> = node_type_of
            .iter()
            .map(|&t| node_types[t].air_flow_m3s)
            .collect();
        let flows =
            interference::flows_with_margin(&layout, &node_flows, self.crac_flow_margin);
        let ci = match self.interference {
            InterferenceMethod::Ipf => interference::generate_ipf(&layout, &flows, &mut rng)?,
            InterferenceMethod::Lp => interference::generate_lp(&layout, &flows, &mut rng)?,
        };
        let thermal = ThermalModel::new(
            &layout,
            &flows,
            &ci,
            self.node_redline_c,
            self.crac_redline_c,
        )?;

        // CRAC units: flow per Section VI.G, outlet range per DESIGN.md.
        let cracs: Vec<CracUnit> = (0..self.n_crac)
            .map(|i| CracUnit {
                flow_m3s: flows[i],
                min_outlet_c: self.crac_outlet_range.0,
                max_outlet_c: self.crac_outlet_range.1,
            })
            .collect();

        // Workload sized to this floor's core counts (Eq. 15).
        let freqs: Vec<Vec<f64>> = node_types
            .iter()
            .map(|nt| {
                (0..nt.core.pstates.n_active())
                    .map(|k| nt.core.pstates.freq_mhz(k))
                    .collect()
            })
            .collect();
        let mut cores_of_type = vec![0usize; node_types.len()];
        for &t in &node_type_of {
            cores_of_type[t] += node_types[t].cores_per_node;
        }
        let workload = self.workload.generate(&freqs, &cores_of_type, &mut rng);

        // Power bounds and budget (Eqs. 17-18).
        let budget = PowerBudget::compute(&thermal, &cracs, &node_types, &node_type_of)?;

        Ok(DataCenter::new(
            layout,
            node_types,
            node_type_of,
            cracs,
            thermal,
            ci,
            workload,
            budget,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_scenario_builds() {
        let dc = ScenarioParams::small_test().build(1).expect("build");
        assert_eq!(dc.n_nodes(), 10);
        assert_eq!(dc.n_crac(), 1);
        assert_eq!(dc.n_cores(), 10 * 32);
        assert_eq!(dc.n_task_types(), 8);
    }

    #[test]
    fn budget_orders_and_oversubscription() {
        let dc = ScenarioParams::small_test().build(2).expect("build");
        let b = &dc.budget;
        assert!(b.p_min_kw > 0.0);
        assert!(b.p_min_kw < b.p_const_kw);
        assert!(b.p_const_kw < b.p_max_kw);
        assert!((b.p_const_kw - 0.5 * (b.p_min_kw + b.p_max_kw)).abs() < 1e-12);
        // Oversubscribed: the budget cannot cover all-P0 operation.
        let (it, cooling, _) = dc.total_power_kw(&b.max_outlets_c, &dc.max_node_powers());
        assert!(it + cooling > b.p_const_kw);
    }

    #[test]
    fn core_indexing_round_trips() {
        let dc = ScenarioParams::small_test().build(3).expect("build");
        for node in 0..dc.n_nodes() {
            for core in dc.cores_of_node(node) {
                assert_eq!(dc.node_of_core(core), node, "core {core}");
                assert_eq!(dc.core_type(core), dc.node_type_of[node]);
            }
        }
        let counts = dc.cores_of_type();
        assert_eq!(counts.iter().sum::<usize>(), dc.n_cores());
    }

    #[test]
    fn deterministic_under_seed() {
        let a = ScenarioParams::small_test().build(7).unwrap();
        let b = ScenarioParams::small_test().build(7).unwrap();
        assert_eq!(a.node_type_of, b.node_type_of);
        assert_eq!(a.workload, b.workload);
        assert_eq!(a.budget.p_const_kw, b.budget.p_const_kw);
    }

    #[test]
    fn different_seeds_differ() {
        let a = ScenarioParams::small_test().build(10).unwrap();
        let b = ScenarioParams::small_test().build(11).unwrap();
        assert!(a.workload != b.workload || a.node_type_of != b.node_type_of);
    }

    #[test]
    fn node_powers_track_pstates() {
        let dc = ScenarioParams::small_test().build(4).unwrap();
        // All cores at P0 equals the advertised maximum.
        let close = |a: &[f64], b: &[f64]| {
            a.iter().zip(b).all(|(x, y)| (x - y).abs() < 1e-12)
        };
        let p0 = vec![0usize; dc.n_cores()];
        let max = dc.node_powers_from_pstates(&p0);
        // Summation order differs (per-core loop vs count * power), so
        // compare within float tolerance.
        assert!(close(&max, &dc.max_node_powers()));
        // All off equals the minimum.
        let off: Vec<usize> = (0..dc.n_cores())
            .map(|k| dc.node_type(dc.node_of_core(k)).core.pstates.off_index())
            .collect();
        let min = dc.node_powers_from_pstates(&off);
        assert!(close(&min, &dc.min_node_powers()));
    }

    #[test]
    fn lp_interference_scenario_builds() {
        let params = ScenarioParams {
            interference: InterferenceMethod::Lp,
            ..ScenarioParams::small_test()
        };
        let dc = params.build(5).expect("LP interference build");
        assert_eq!(dc.n_nodes(), 10);
    }

    #[test]
    fn zero_nodes_rejected() {
        let params = ScenarioParams {
            n_nodes: 0,
            ..ScenarioParams::small_test()
        };
        assert_eq!(params.build(1).unwrap_err(), ScenarioError::ZeroNodes);
    }

    #[test]
    fn zero_cracs_rejected() {
        let params = ScenarioParams {
            n_crac: 0,
            ..ScenarioParams::small_test()
        };
        assert_eq!(params.build(1).unwrap_err(), ScenarioError::ZeroCracs);
    }

    #[test]
    fn nan_and_inf_fields_rejected() {
        let params = ScenarioParams {
            node_redline_c: f64::NAN,
            ..ScenarioParams::small_test()
        };
        assert_eq!(
            params.build(1).unwrap_err(),
            ScenarioError::NonFinite {
                field: "node_redline_c"
            }
        );
        let params = ScenarioParams {
            crac_outlet_range: (10.0, f64::INFINITY),
            ..ScenarioParams::small_test()
        };
        assert_eq!(
            params.build(1).unwrap_err(),
            ScenarioError::NonFinite {
                field: "crac_outlet_range"
            }
        );
        let mut params = ScenarioParams::small_test();
        params.workload.v_arrival = f64::NAN;
        assert_eq!(
            params.build(1).unwrap_err(),
            ScenarioError::NonFinite {
                field: "workload.v_arrival"
            }
        );
    }

    #[test]
    fn non_positive_knobs_rejected() {
        let params = ScenarioParams {
            static_share: 0.0,
            ..ScenarioParams::small_test()
        };
        assert_eq!(
            params.build(1).unwrap_err(),
            ScenarioError::NonPositive {
                field: "static_share"
            }
        );
        let mut params = ScenarioParams::small_test();
        params.workload.deadline_factor = -1.0;
        assert_eq!(
            params.build(1).unwrap_err(),
            ScenarioError::NonPositive {
                field: "workload.deadline_factor"
            }
        );
    }

    #[test]
    fn inverted_outlet_range_rejected() {
        let params = ScenarioParams {
            crac_outlet_range: (25.0, 10.0),
            ..ScenarioParams::small_test()
        };
        assert_eq!(
            params.build(1).unwrap_err(),
            ScenarioError::InvalidRange {
                field: "crac_outlet_range"
            }
        );
    }

    #[test]
    fn zero_task_types_rejected() {
        let mut params = ScenarioParams::small_test();
        params.workload.ecs.n_task_types = 0;
        assert_eq!(params.build(1).unwrap_err(), ScenarioError::ZeroTaskTypes);
    }

    #[test]
    fn workload_validation_catches_corruption() {
        let dc = ScenarioParams::small_test().build(6).unwrap();
        let mut w = dc.workload.clone();
        w.task_types[2].arrival_rate = -4.0;
        assert_eq!(
            validate_workload(&w).unwrap_err(),
            ScenarioError::NegativeArrivalRate {
                task_type: 2,
                rate: -4.0
            }
        );
        let mut w = dc.workload.clone();
        let idx = w.task_types[0].index;
        w.task_types[1].index = idx;
        assert_eq!(
            validate_workload(&w).unwrap_err(),
            ScenarioError::DuplicateTaskIndex { index: idx }
        );
        let mut w = dc.workload.clone();
        w.task_types[0].deadline_slack = f64::INFINITY;
        assert_eq!(
            validate_workload(&w).unwrap_err(),
            ScenarioError::NonFinite {
                field: "task_types.deadline_slack"
            }
        );
        assert!(validate_workload(&dc.workload).is_ok());
    }

    #[test]
    fn scenario_error_converts_to_string() {
        let e: String = ScenarioError::ZeroCracs.into();
        assert!(e.contains("CRAC"));
    }

    #[test]
    fn params_serde_round_trip() {
        let p = ScenarioParams::paper(0.2, 0.3);
        let json = serde_json::to_string(&p).unwrap();
        let back: ScenarioParams = serde_json::from_str(&json).unwrap();
        assert_eq!(back.n_nodes, 150);
        assert_eq!(back.static_share, 0.2);
        assert_eq!(back.workload.ecs.v_prop, 0.3);
        assert_eq!(back.interference, InterferenceMethod::Ipf);
    }
}
