//! The Section-VI scenario generator: one seed → one reproducible data
//! center.

use crate::budget::PowerBudget;
use crate::datacenter::DataCenter;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use thermaware_power::NodeType;
use thermaware_thermal::{interference, CracUnit, Layout, ThermalModel};
use thermaware_workload::WorkloadGenParams;

/// Which cross-interference generator to use (see
/// `thermaware_thermal::interference`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InterferenceMethod {
    /// Iterative proportional fitting — milliseconds at 153 units; the
    /// default for the Figure-6 replication.
    Ipf,
    /// The Appendix-B LP feasibility problem — exact, slower; used at
    /// small scale and in cross-validation tests.
    Lp,
}

/// Everything that defines a simulated data center except the seed.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioParams {
    /// Number of compute nodes (150 in the paper's runs).
    pub n_nodes: usize,
    /// Number of CRAC units (3 in the paper's runs).
    pub n_crac: usize,
    /// Static share of P-state-0 core power used to calibrate the CMOS
    /// model (0.3 for simulation sets 1–2, 0.2 for set 3).
    pub static_share: f64,
    /// Workload generation parameters (Section VI.C–D).
    pub workload: WorkloadGenParams,
    /// Node inlet redline, °C (25 in the paper).
    pub node_redline_c: f64,
    /// CRAC inlet redline, °C (40 in the paper).
    pub crac_redline_c: f64,
    /// Searchable CRAC outlet range, °C.
    pub crac_outlet_range: (f64, f64),
    /// CRAC air-flow oversizing relative to the paper's Section-VI.G
    /// rule (flows summing exactly to the node total). 1.0 = the paper;
    /// values above 1 buy N−1 failure margin (see the `crac_failure`
    /// experiment).
    pub crac_flow_margin: f64,
    /// Cross-interference generator.
    pub interference: InterferenceMethod,
}

impl ScenarioParams {
    /// The paper's simulation configuration: 150 nodes, 3 CRACs, 8 task
    /// types, with the given static power share and `V_prop` (the two
    /// knobs Figure 6 varies).
    pub fn paper(static_share: f64, v_prop: f64) -> ScenarioParams {
        let mut workload = WorkloadGenParams::default();
        workload.ecs.v_prop = v_prop;
        ScenarioParams {
            n_nodes: 150,
            n_crac: 3,
            static_share,
            workload,
            node_redline_c: 25.0,
            crac_redline_c: 40.0,
            crac_outlet_range: (10.0, 25.0),
            crac_flow_margin: 1.0,
            interference: InterferenceMethod::Ipf,
        }
    }

    /// A small configuration for fast tests: 1 CRAC, 10 nodes.
    pub fn small_test() -> ScenarioParams {
        ScenarioParams {
            n_nodes: 10,
            n_crac: 1,
            ..ScenarioParams::paper(0.3, 0.1)
        }
    }

    /// Build the scenario for a seed. Every random draw (node types,
    /// interference, workload) comes from one `StdRng`, so a
    /// `(params, seed)` pair is fully reproducible.
    ///
    /// Rarely — mostly at small node counts — a drawn node-type placement
    /// makes Table II's EC/RC ranges unsatisfiable (see
    /// `thermaware_thermal::interference`); such draws are rejected and
    /// redrawn deterministically, up to 20 attempts.
    pub fn build(&self, seed: u64) -> Result<DataCenter, String> {
        let mut last_err = String::new();
        for attempt in 0..20u64 {
            match self.build_attempt(seed.wrapping_add(attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15))) {
                Ok(dc) => return Ok(dc),
                Err(e) => last_err = e,
            }
        }
        Err(format!("scenario build failed after 20 attempts: {last_err}"))
    }

    fn build_attempt(&self, seed: u64) -> Result<DataCenter, String> {
        let mut rng = StdRng::seed_from_u64(seed);
        let layout = Layout::hot_cold_aisle(self.n_crac, self.n_nodes);

        // Node types: uniform random assignment (Section VI.B).
        let node_types = NodeType::paper_node_types(self.static_share);
        let node_type_of: Vec<usize> = (0..self.n_nodes)
            .map(|_| rng.gen_range(0..node_types.len()))
            .collect();

        // Flows and cross-interference.
        let node_flows: Vec<f64> = node_type_of
            .iter()
            .map(|&t| node_types[t].air_flow_m3s)
            .collect();
        let flows =
            interference::flows_with_margin(&layout, &node_flows, self.crac_flow_margin);
        let ci = match self.interference {
            InterferenceMethod::Ipf => interference::generate_ipf(&layout, &flows, &mut rng)?,
            InterferenceMethod::Lp => interference::generate_lp(&layout, &flows, &mut rng)?,
        };
        let thermal = ThermalModel::new(
            &layout,
            &flows,
            &ci,
            self.node_redline_c,
            self.crac_redline_c,
        )?;

        // CRAC units: flow per Section VI.G, outlet range per DESIGN.md.
        let cracs: Vec<CracUnit> = (0..self.n_crac)
            .map(|i| CracUnit {
                flow_m3s: flows[i],
                min_outlet_c: self.crac_outlet_range.0,
                max_outlet_c: self.crac_outlet_range.1,
            })
            .collect();

        // Workload sized to this floor's core counts (Eq. 15).
        let freqs: Vec<Vec<f64>> = node_types
            .iter()
            .map(|nt| {
                (0..nt.core.pstates.n_active())
                    .map(|k| nt.core.pstates.freq_mhz(k))
                    .collect()
            })
            .collect();
        let mut cores_of_type = vec![0usize; node_types.len()];
        for &t in &node_type_of {
            cores_of_type[t] += node_types[t].cores_per_node;
        }
        let workload = self.workload.generate(&freqs, &cores_of_type, &mut rng);

        // Power bounds and budget (Eqs. 17-18).
        let budget = PowerBudget::compute(&thermal, &cracs, &node_types, &node_type_of)?;

        Ok(DataCenter::new(
            layout,
            node_types,
            node_type_of,
            cracs,
            thermal,
            ci,
            workload,
            budget,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_scenario_builds() {
        let dc = ScenarioParams::small_test().build(1).expect("build");
        assert_eq!(dc.n_nodes(), 10);
        assert_eq!(dc.n_crac(), 1);
        assert_eq!(dc.n_cores(), 10 * 32);
        assert_eq!(dc.n_task_types(), 8);
    }

    #[test]
    fn budget_orders_and_oversubscription() {
        let dc = ScenarioParams::small_test().build(2).expect("build");
        let b = &dc.budget;
        assert!(b.p_min_kw > 0.0);
        assert!(b.p_min_kw < b.p_const_kw);
        assert!(b.p_const_kw < b.p_max_kw);
        assert!((b.p_const_kw - 0.5 * (b.p_min_kw + b.p_max_kw)).abs() < 1e-12);
        // Oversubscribed: the budget cannot cover all-P0 operation.
        let (it, cooling, _) = dc.total_power_kw(&b.max_outlets_c, &dc.max_node_powers());
        assert!(it + cooling > b.p_const_kw);
    }

    #[test]
    fn core_indexing_round_trips() {
        let dc = ScenarioParams::small_test().build(3).expect("build");
        for node in 0..dc.n_nodes() {
            for core in dc.cores_of_node(node) {
                assert_eq!(dc.node_of_core(core), node, "core {core}");
                assert_eq!(dc.core_type(core), dc.node_type_of[node]);
            }
        }
        let counts = dc.cores_of_type();
        assert_eq!(counts.iter().sum::<usize>(), dc.n_cores());
    }

    #[test]
    fn deterministic_under_seed() {
        let a = ScenarioParams::small_test().build(7).unwrap();
        let b = ScenarioParams::small_test().build(7).unwrap();
        assert_eq!(a.node_type_of, b.node_type_of);
        assert_eq!(a.workload, b.workload);
        assert_eq!(a.budget.p_const_kw, b.budget.p_const_kw);
    }

    #[test]
    fn different_seeds_differ() {
        let a = ScenarioParams::small_test().build(10).unwrap();
        let b = ScenarioParams::small_test().build(11).unwrap();
        assert!(a.workload != b.workload || a.node_type_of != b.node_type_of);
    }

    #[test]
    fn node_powers_track_pstates() {
        let dc = ScenarioParams::small_test().build(4).unwrap();
        // All cores at P0 equals the advertised maximum.
        let close = |a: &[f64], b: &[f64]| {
            a.iter().zip(b).all(|(x, y)| (x - y).abs() < 1e-12)
        };
        let p0 = vec![0usize; dc.n_cores()];
        let max = dc.node_powers_from_pstates(&p0);
        // Summation order differs (per-core loop vs count * power), so
        // compare within float tolerance.
        assert!(close(&max, &dc.max_node_powers()));
        // All off equals the minimum.
        let off: Vec<usize> = (0..dc.n_cores())
            .map(|k| dc.node_type(dc.node_of_core(k)).core.pstates.off_index())
            .collect();
        let min = dc.node_powers_from_pstates(&off);
        assert!(close(&min, &dc.min_node_powers()));
    }

    #[test]
    fn lp_interference_scenario_builds() {
        let params = ScenarioParams {
            interference: InterferenceMethod::Lp,
            ..ScenarioParams::small_test()
        };
        let dc = params.build(5).expect("LP interference build");
        assert_eq!(dc.n_nodes(), 10);
    }

    #[test]
    fn params_serde_round_trip() {
        let p = ScenarioParams::paper(0.2, 0.3);
        let json = serde_json::to_string(&p).unwrap();
        let back: ScenarioParams = serde_json::from_str(&json).unwrap();
        assert_eq!(back.n_nodes, 150);
        assert_eq!(back.static_share, 0.2);
        assert_eq!(back.workload.ecs.v_prop, 0.3);
        assert_eq!(back.interference, InterferenceMethod::Ipf);
    }
}
