//! The assembled [`DataCenter`] value and its power/thermal helpers.

use crate::budget::PowerBudget;
use thermaware_power::NodeType;
use thermaware_thermal::{CracUnit, CrossInterference, Layout, ThermalModel, ThermalState};
use thermaware_workload::Workload;

/// One concrete data center: topology, hardware, cooling, workload, and
/// power budget. Node ordering everywhere matches `layout.nodes`; cores
/// use a global index grouped by node (`core = node * cores_per_node +
/// within`, with per-node sizes from the node's type).
#[derive(Debug, Clone)]
pub struct DataCenter {
    /// The hot-aisle/cold-aisle floor plan.
    pub layout: Layout,
    /// Catalog of node types (the paper's two Table-I servers).
    pub node_types: Vec<NodeType>,
    /// Node-type index of each node.
    pub node_type_of: Vec<usize>,
    /// CRAC units, one per hot aisle.
    pub cracs: Vec<CracUnit>,
    /// Steady-state thermal model (owns the factored heat-flow matrices).
    pub thermal: ThermalModel,
    /// The validated cross-interference coefficients the model was built
    /// from (kept for inspection and re-derivation).
    pub interference: CrossInterference,
    /// The workload: task types and the ECS matrix.
    pub workload: Workload,
    /// Power bounds and the Eq.-18 budget.
    pub budget: PowerBudget,
    /// First global core index of each node (prefix sums), plus the total
    /// at the end.
    core_offsets: Vec<usize>,
}

impl DataCenter {
    /// Assemble a data center from parts (used by the scenario generator;
    /// prefer [`crate::ScenarioParams::build`]).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        layout: Layout,
        node_types: Vec<NodeType>,
        node_type_of: Vec<usize>,
        cracs: Vec<CracUnit>,
        thermal: ThermalModel,
        interference: CrossInterference,
        workload: Workload,
        budget: PowerBudget,
    ) -> DataCenter {
        assert_eq!(node_type_of.len(), layout.n_nodes());
        assert_eq!(cracs.len(), layout.n_crac);
        let mut core_offsets = Vec::with_capacity(layout.n_nodes() + 1);
        let mut acc = 0;
        for &t in &node_type_of {
            core_offsets.push(acc);
            acc += node_types[t].cores_per_node;
        }
        core_offsets.push(acc);
        DataCenter {
            layout,
            node_types,
            node_type_of,
            cracs,
            thermal,
            interference,
            workload,
            budget,
            core_offsets,
        }
    }

    /// Number of compute nodes `NCN`.
    pub fn n_nodes(&self) -> usize {
        self.layout.n_nodes()
    }

    /// Number of CRAC units `NCRAC`.
    pub fn n_crac(&self) -> usize {
        self.layout.n_crac
    }

    /// Total number of cores `NCORES`.
    pub fn n_cores(&self) -> usize {
        *self
            .core_offsets
            .last()
            .expect("core_offsets has n_nodes+1 entries by construction")
    }

    /// Number of task types `T`.
    pub fn n_task_types(&self) -> usize {
        self.workload.n_task_types()
    }

    /// The node type of node `j`.
    pub fn node_type(&self, node: usize) -> &NodeType {
        &self.node_types[self.node_type_of[node]]
    }

    /// Global core-index range of node `j`.
    pub fn cores_of_node(&self, node: usize) -> std::ops::Range<usize> {
        self.core_offsets[node]..self.core_offsets[node + 1]
    }

    /// The node owning global core `k` (`CT_k`'s node), by binary search
    /// over the offset table.
    pub fn node_of_core(&self, core: usize) -> usize {
        debug_assert!(core < self.n_cores());
        match self.core_offsets.binary_search(&core) {
            Ok(node) if node < self.n_nodes() => node,
            Ok(node) => node - 1,
            Err(ins) => ins - 1,
        }
    }

    /// Node-type index of the node owning global core `k` (the paper's
    /// `CT_k`).
    pub fn core_type(&self, core: usize) -> usize {
        self.node_type_of[self.node_of_core(core)]
    }

    /// Total cores of each node type (used by the Eq.-15 arrival sizing).
    pub fn cores_of_type(&self) -> Vec<usize> {
        let mut counts = vec![0; self.node_types.len()];
        for (node, &t) in self.node_type_of.iter().enumerate() {
            counts[t] += self.node_types[t].cores_per_node;
            debug_assert_eq!(
                self.core_offsets[node + 1] - self.core_offsets[node],
                self.node_types[t].cores_per_node
            );
        }
        counts
    }

    /// Node powers (kW, Eq. 1) for per-node *core* power totals: base plus
    /// the given total core draw of each node.
    pub fn node_powers(&self, core_power_per_node: &[f64]) -> Vec<f64> {
        assert_eq!(core_power_per_node.len(), self.n_nodes());
        core_power_per_node
            .iter()
            .enumerate()
            .map(|(j, &p)| self.node_type(j).base_power_kw + p)
            .collect()
    }

    /// Node powers for a full per-core P-state assignment (global core
    /// index order).
    pub fn node_powers_from_pstates(&self, pstates: &[usize]) -> Vec<f64> {
        assert_eq!(pstates.len(), self.n_cores());
        (0..self.n_nodes())
            .map(|j| {
                let nt = self.node_type(j);
                nt.base_power_kw
                    + self.cores_of_node(j)
                        .map(|k| nt.core.pstates.power_kw(pstates[k]))
                        .sum::<f64>()
            })
            .collect()
    }

    /// Minimum node powers: every core off (nodes stay on — the paper's
    /// oversubscribed setting never powers nodes down).
    pub fn min_node_powers(&self) -> Vec<f64> {
        (0..self.n_nodes())
            .map(|j| self.node_type(j).min_power_kw())
            .collect()
    }

    /// Maximum node powers: every core in P-state 0.
    pub fn max_node_powers(&self) -> Vec<f64> {
        (0..self.n_nodes())
            .map(|j| self.node_type(j).max_power_kw())
            .collect()
    }

    /// Total data-center power (IT + cooling, kW) at given CRAC outlets
    /// and node powers, together with the thermal state it was computed
    /// at: `(it_kw, cooling_kw, state)`.
    pub fn total_power_kw(
        &self,
        crac_out_c: &[f64],
        node_powers_kw: &[f64],
    ) -> (f64, f64, ThermalState) {
        let state = self.thermal.steady_state(crac_out_c, node_powers_kw);
        let it: f64 = node_powers_kw.iter().sum();
        let cooling = self.thermal.total_crac_power_kw(&state);
        (it, cooling, state)
    }

    /// Convenience: does this state respect both redlines (Eq. 6)?
    pub fn redlines_ok(&self, state: &ThermalState) -> bool {
        state.redline_violation(self.thermal.node_redline_c, self.thermal.crac_redline_c) <= 1e-9
    }
}
