//! Data center scenario assembly (paper Sections III and VI).
//!
//! This crate glues the substrates together into one [`DataCenter`] value:
//! the Figure-1 floor plan, the Table-I node types, CRAC units, the
//! steady-state thermal model built from generated cross-interference
//! coefficients, the Section-VI synthetic workload, and the power budget
//! `Pconst = (Pmin + Pmax)/2` obtained from the Eq.-17 bound problems.
//!
//! A [`ScenarioParams`] + seed fully determines a scenario (every random
//! draw flows through one seeded `StdRng`), which is what the Figure-6
//! replication fans out over: 25 seeds per simulation set.
//!
//! # Example
//!
//! ```
//! use thermaware_datacenter::ScenarioParams;
//!
//! let params = ScenarioParams::small_test(); // 1 CRAC, 10 nodes
//! let dc = params.build(7).expect("scenario");
//! assert_eq!(dc.n_nodes(), 10);
//! assert!(dc.budget.p_const_kw > dc.budget.p_min_kw);
//! assert!(dc.budget.p_const_kw < dc.budget.p_max_kw);
//! ```

mod budget;
mod crac_search;
mod datacenter;
mod scenario;
mod snapshot;

pub use budget::PowerBudget;
pub use crac_search::{optimize_crac_outlets, CracSearchOptions};
pub use datacenter::DataCenter;
pub use scenario::{validate_workload, InterferenceMethod, ScenarioError, ScenarioParams};
pub use snapshot::{atomic_write, ScenarioSnapshot};
