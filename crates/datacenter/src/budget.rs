//! The data center's power bounds and budget (paper Section VI.F,
//! Eqs. 17–18).
//!
//! `Pmin` is the total power (IT + cooling) with every core off; `Pmax`
//! with every core in P-state 0 — each minimized over the CRAC outlet
//! temperatures subject to the redlines, exactly the Eq.-17 problem. The
//! inner problem at fixed outlets is a closed-form evaluation (node powers
//! are fixed), so the paper's NLP reduces to the coarse-to-fine outlet
//! search; as the paper notes, the result is an *upper bound* on the true
//! minimum because the search is local/discretized.
//!
//! The simulation budget is `Pconst = (Pmin + Pmax)/2` (Eq. 18), which is
//! what makes the data center oversubscribed: there is not enough power to
//! run every core at P-state 0.

use crate::crac_search::{optimize_crac_outlets, CracSearchOptions};
use serde::{Deserialize, Serialize};
use thermaware_power::NodeType;
use thermaware_thermal::{CracUnit, ThermalModel};

/// Power bounds and the Eq.-18 budget, kW.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerBudget {
    /// Upper bound on the minimum total power (all cores off), Eq. 17.
    pub p_min_kw: f64,
    /// Upper bound on the maximum total power (all cores at P-state 0),
    /// Eq. 17.
    pub p_max_kw: f64,
    /// The budget `Pconst = (Pmin + Pmax)/2`, Eq. 18.
    pub p_const_kw: f64,
    /// CRAC outlets minimizing the all-off total (diagnostic).
    pub min_outlets_c: Vec<f64>,
    /// CRAC outlets minimizing the all-P0 total (diagnostic).
    pub max_outlets_c: Vec<f64>,
}

impl PowerBudget {
    /// Solve the two Eq.-17 bound problems and form the Eq.-18 budget.
    ///
    /// Errors when the all-P0 extreme cannot be cooled within redlines at
    /// any searched outlet combination (the scenario is thermally
    /// unbuildable, not merely oversubscribed).
    pub fn compute(
        thermal: &ThermalModel,
        cracs: &[CracUnit],
        node_types: &[NodeType],
        node_type_of: &[usize],
    ) -> Result<PowerBudget, String> {
        let min_powers: Vec<f64> = node_type_of
            .iter()
            .map(|&t| node_types[t].min_power_kw())
            .collect();
        let max_powers: Vec<f64> = node_type_of
            .iter()
            .map(|&t| node_types[t].max_power_kw())
            .collect();

        let solve = |node_powers: &[f64]| -> Option<(Vec<f64>, f64)> {
            optimize_crac_outlets(cracs, CracSearchOptions::default(), |outlets| {
                let state = thermal.steady_state(outlets, node_powers);
                if state.redline_violation(thermal.node_redline_c, thermal.crac_redline_c) > 1e-9
                {
                    return None;
                }
                let it: f64 = node_powers.iter().sum();
                let cooling = thermal.total_crac_power_kw(&state);
                // The search maximizes; we minimize power.
                Some(-(it + cooling))
            })
        };

        let (min_outlets, neg_pmin) = solve(&min_powers)
            .ok_or_else(|| "all-off extreme violates redlines at every outlet".to_owned())?;
        let (max_outlets, neg_pmax) = solve(&max_powers)
            .ok_or_else(|| "all-P0 extreme violates redlines at every outlet".to_owned())?;
        let p_min_kw = -neg_pmin;
        let p_max_kw = -neg_pmax;
        Ok(PowerBudget {
            p_min_kw,
            p_max_kw,
            p_const_kw: 0.5 * (p_min_kw + p_max_kw),
            min_outlets_c: min_outlets,
            max_outlets_c: max_outlets,
        })
    }
}
