//! Task types and the full Section-VI workload generator.

use crate::ecs::{EcsGenParams, EcsMatrix};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One task type of the workload (paper Section III.B).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskType {
    /// Index `i` in the ECS matrix.
    pub index: usize,
    /// Arrival rate `λ_i`, tasks per second.
    pub arrival_rate: f64,
    /// Reward `r_i` collected when a task finishes by its deadline.
    pub reward: f64,
    /// Relative deadline `m_i`: `deadline = arrival + m_i`, seconds.
    pub deadline_slack: f64,
}

/// A complete workload: task types plus the speed matrix they run at.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    /// The `T` task types.
    pub task_types: Vec<TaskType>,
    /// `ECS(i, j, k)` for every task/node-type/P-state triple.
    pub ecs: EcsMatrix,
}

impl Workload {
    /// Number of task types `T`.
    pub fn n_task_types(&self) -> usize {
        self.task_types.len()
    }

    /// Total reward rate if every arriving task earned its reward — an
    /// upper bound on any assignment's objective (Eq. 7 with Constraint 3
    /// tight everywhere).
    pub fn max_reward_rate(&self) -> f64 {
        self.task_types
            .iter()
            .map(|t| t.reward * t.arrival_rate)
            .sum()
    }

    /// Whether a task of type `i` can meet its deadline on node type `j`
    /// in P-state `k` at all (Constraint 2 of Eq. 7): the execution time
    /// `1/ECS` must not exceed the slack `m_i`.
    pub fn deadline_feasible(&self, task_type: usize, node_type: usize, pstate: usize) -> bool {
        self.ecs.etc(task_type, node_type, pstate) <= self.task_types[task_type].deadline_slack
    }
}

/// Parameters for the full Section-VI workload generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadGenParams {
    /// ECS generation parameters (Section VI.C).
    pub ecs: EcsGenParams,
    /// Arrival-rate noise `V_arrival` (0.3 in the paper, Eq. 16).
    pub v_arrival: f64,
    /// Deadline factor (1.5 in the paper, Eq. 14).
    pub deadline_factor: f64,
}

impl Default for WorkloadGenParams {
    fn default() -> Self {
        WorkloadGenParams {
            ecs: EcsGenParams::default(),
            v_arrival: 0.3,
            deadline_factor: 1.5,
        }
    }
}

impl WorkloadGenParams {
    /// Generate a workload for a data center with `cores_of_type[j]` cores
    /// of node type `j` whose active P-state clocks are
    /// `node_type_freqs[j]` (MHz, fastest first).
    ///
    /// Follows Section VI.C–D: ECS via [`EcsGenParams::generate`], rewards
    /// via Eq. 11, deadline slacks via Eqs. 12–14, and arrival rates via
    /// Eqs. 15–16 (sized so the floor absorbs the load at full P-state-0
    /// capacity but oversubscribes under a power cap).
    pub fn generate<R: Rng>(
        &self,
        node_type_freqs: &[Vec<f64>],
        cores_of_type: &[usize],
        rng: &mut R,
    ) -> Workload {
        assert_eq!(node_type_freqs.len(), cores_of_type.len());
        let ecs = self.ecs.generate(node_type_freqs, rng);
        let t = ecs.n_task_types();

        let task_types = (0..t)
            .map(|i| {
                // Eq. 11: reward = 1 / mean P0 speed over node types.
                let reward = 1.0 / ecs.mean_p0_speed(i);
                // Eq. 14: m_i = factor * U[1/MaxECS, 1/MinECS].
                let lo = 1.0 / ecs.max_speed(i);
                let hi = 1.0 / ecs.min_active_speed(i);
                let deadline_slack = self.deadline_factor * rng.gen_range(lo..=hi);
                // Eqs. 15-16: SumECS_i = Σ_cores ECS(i, CT_k, 0) / T.
                let sum_ecs: f64 = cores_of_type
                    .iter()
                    .enumerate()
                    .map(|(j, &count)| count as f64 * ecs.ecs(i, j, 0))
                    .sum::<f64>()
                    / t as f64;
                let arrival_rate =
                    sum_ecs * rng.gen_range(1.0 - self.v_arrival..=1.0 + self.v_arrival);
                TaskType {
                    index: i,
                    arrival_rate,
                    reward,
                    deadline_slack,
                }
            })
            .collect();
        Workload { task_types, ecs }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn paper_freqs() -> Vec<Vec<f64>> {
        vec![
            vec![2500.0, 2100.0, 1700.0, 800.0],
            vec![2666.0, 2200.0, 1700.0, 1000.0],
        ]
    }

    fn workload(seed: u64) -> Workload {
        let params = WorkloadGenParams::default();
        let mut rng = StdRng::seed_from_u64(seed);
        params.generate(&paper_freqs(), &[75 * 32, 75 * 32], &mut rng)
    }

    #[test]
    fn rewards_follow_equation_11() {
        let w = workload(1);
        for t in &w.task_types {
            let expected = 1.0 / w.ecs.mean_p0_speed(t.index);
            assert!((t.reward - expected).abs() < 1e-12);
        }
        // Harder (slower) task types pay more: rewards descend with index.
        for pair in w.task_types.windows(2) {
            assert!(pair[0].reward > pair[1].reward);
        }
    }

    #[test]
    fn deadlines_allow_at_least_one_core_type() {
        let w = workload(2);
        for t in &w.task_types {
            // Eq. 14's lower end is 1.5/MaxECS, so the fastest core always
            // fits with 50% slack.
            assert!(t.deadline_slack >= 1.5 / w.ecs.max_speed(t.index) - 1e-12);
            assert!(w.deadline_feasible(t.index, 0, 0) || w.deadline_feasible(t.index, 1, 0));
        }
    }

    #[test]
    fn some_deep_pstates_miss_deadlines_sometimes() {
        // Across seeds, Eq. 14 must sometimes produce deadlines that the
        // slowest P-state cannot meet (otherwise the deadline constraint
        // is vacuous and Fig. 4 could never occur) and sometimes ones it
        // can (the paper: "a chance ... deadlines can be met by all core
        // types running at their lowest frequency").
        let mut any_infeasible = false;
        let mut any_all_feasible = false;
        for seed in 0..30 {
            let w = workload(seed);
            for t in &w.task_types {
                let all_ok = (0..2).all(|j| w.deadline_feasible(t.index, j, 3));
                if all_ok {
                    any_all_feasible = true;
                } else {
                    any_infeasible = true;
                }
            }
        }
        assert!(any_infeasible && any_all_feasible);
    }

    #[test]
    fn arrival_rates_sized_to_full_capacity() {
        let w = workload(3);
        for t in &w.task_types {
            assert!(t.arrival_rate > 0.0);
            // Within the V_arrival band of SumECS.
            let sum_ecs: f64 = (0..2)
                .map(|j| 75.0 * 32.0 * w.ecs.ecs(t.index, j, 0))
                .sum::<f64>()
                / 8.0;
            assert!(t.arrival_rate >= sum_ecs * 0.7 - 1e-9);
            assert!(t.arrival_rate <= sum_ecs * 1.3 + 1e-9);
        }
    }

    #[test]
    fn max_reward_rate_is_additive() {
        let w = workload(4);
        let manual: f64 = w
            .task_types
            .iter()
            .map(|t| t.reward * t.arrival_rate)
            .sum();
        assert_eq!(w.max_reward_rate(), manual);
    }

    #[test]
    fn deterministic_under_seed() {
        assert_eq!(workload(42), workload(42));
    }

    #[test]
    fn serde_round_trip() {
        // serde_json's shortest-representation float printing can lose the
        // last ULP, so compare fields approximately.
        let w = workload(8);
        let json = serde_json::to_string(&w).unwrap();
        let back: Workload = serde_json::from_str(&json).unwrap();
        assert_eq!(w.n_task_types(), back.n_task_types());
        for (a, b) in w.task_types.iter().zip(&back.task_types) {
            assert_eq!(a.index, b.index);
            let close = |x: f64, y: f64| (x - y).abs() <= 1e-12 * x.abs().max(1.0);
            assert!(close(a.arrival_rate, b.arrival_rate));
            assert!(close(a.reward, b.reward));
            assert!(close(a.deadline_slack, b.deadline_slack));
        }
    }
}
