//! Time-varying demand curves shared by the scenario engine and the
//! service load generator.
//!
//! A [`Curve`] maps seconds-from-start to a non-negative level. The
//! level's meaning is the caller's: the load generator reads it as an
//! aggregate batches/s rate, the runtime supervisor as a dimensionless
//! arrival-rate multiplier, and the `Solver` scenario surface as either
//! a demand multiplier or a price/carbon intensity. The three shapes
//! (constant, sinusoidal diurnal, step surge) are the ones
//! `service::loadgen` grew first; they now live here so the plan-side
//! scenario engine and the client-side load shape can never drift apart.

use serde::{Deserialize, Serialize, Value};

/// A deterministic level-versus-time shape.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Curve {
    /// Flat level.
    Constant {
        /// The level at every time.
        rate: f64,
    },
    /// Sinusoidal day: `base` at the trough, `peak` at the crest, one
    /// full cycle every `period_s` seconds (trough at `t = 0`).
    Diurnal {
        /// Trough level.
        base: f64,
        /// Crest level.
        peak: f64,
        /// Full cycle length, seconds.
        period_s: f64,
    },
    /// Flat `base` with a step to `surge` during
    /// `[start_s, start_s + len_s)`.
    Surge {
        /// Baseline level.
        base: f64,
        /// Level during the surge window.
        surge: f64,
        /// Surge onset, seconds from start.
        start_s: f64,
        /// Surge length, seconds.
        len_s: f64,
    },
}

impl Curve {
    /// A flat curve — the identity scenario when used as a multiplier
    /// with `rate = 1.0`.
    pub fn constant(rate: f64) -> Curve {
        Curve::Constant { rate }
    }

    /// The level at time `t` seconds from start.
    pub fn rate_at(&self, t: f64) -> f64 {
        match *self {
            Curve::Constant { rate } => rate,
            Curve::Diurnal { base, peak, period_s } => {
                let phase = (t / period_s.max(1e-9)) * std::f64::consts::TAU;
                base + (peak - base) * 0.5 * (1.0 - phase.cos())
            }
            Curve::Surge { base, surge, start_s, len_s } => {
                if t >= start_s && t < start_s + len_s {
                    surge
                } else {
                    base
                }
            }
        }
    }

    /// Parse `constant:RATE`, `diurnal:BASE:PEAK:PERIOD`, or
    /// `surge:BASE:SURGE:START:LEN`.
    pub fn parse(s: &str) -> Option<Curve> {
        let parts: Vec<&str> = s.split(':').collect();
        let num = |i: usize| parts.get(i).and_then(|p| p.parse::<f64>().ok());
        match parts.first().copied()? {
            "constant" => Some(Curve::Constant { rate: num(1)? }),
            "diurnal" => Some(Curve::Diurnal {
                base: num(1)?,
                peak: num(2)?,
                period_s: num(3)?,
            }),
            "surge" => Some(Curve::Surge {
                base: num(1)?,
                surge: num(2)?,
                start_s: num(3)?,
                len_s: num(4)?,
            }),
            _ => None,
        }
    }
}

// The vendored serde derive cannot express payload-carrying enums, so
// `Curve` serializes by hand as a tagged object (same convention as
// `runtime::Fault`).

impl Serialize for Curve {
    fn to_value(&self) -> Value {
        let entries = match *self {
            Curve::Constant { rate } => vec![
                ("kind".to_string(), "constant".to_value()),
                ("rate".to_string(), rate.to_value()),
            ],
            Curve::Diurnal { base, peak, period_s } => vec![
                ("kind".to_string(), "diurnal".to_value()),
                ("base".to_string(), base.to_value()),
                ("peak".to_string(), peak.to_value()),
                ("period_s".to_string(), period_s.to_value()),
            ],
            Curve::Surge { base, surge, start_s, len_s } => vec![
                ("kind".to_string(), "surge".to_value()),
                ("base".to_string(), base.to_value()),
                ("surge".to_string(), surge.to_value()),
                ("start_s".to_string(), start_s.to_value()),
                ("len_s".to_string(), len_s.to_value()),
            ],
        };
        Value::Object(entries)
    }
}

impl Deserialize for Curve {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        let entries = v
            .as_object()
            .ok_or_else(|| serde::Error::custom("Curve: expected object"))?;
        let kind: String = serde::field(entries, "kind")?;
        match kind.as_str() {
            "constant" => Ok(Curve::Constant {
                rate: serde::field(entries, "rate")?,
            }),
            "diurnal" => Ok(Curve::Diurnal {
                base: serde::field(entries, "base")?,
                peak: serde::field(entries, "peak")?,
                period_s: serde::field(entries, "period_s")?,
            }),
            "surge" => Ok(Curve::Surge {
                base: serde::field(entries, "base")?,
                surge: serde::field(entries, "surge")?,
                start_s: serde::field(entries, "start_s")?,
                len_s: serde::field(entries, "len_s")?,
            }),
            other => Err(serde::Error::custom(format!(
                "Curve: unknown kind '{other}'"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_flat() {
        let c = Curve::constant(200.0);
        assert_eq!(c.rate_at(0.0), 200.0); // lint: allow(float-eq): constant curve returns its literal level
        assert_eq!(c.rate_at(1e6), 200.0); // lint: allow(float-eq): constant curve returns its literal level
    }

    #[test]
    fn diurnal_troughs_and_crests() {
        let c = Curve::Diurnal { base: 10.0, peak: 30.0, period_s: 100.0 };
        assert!((c.rate_at(0.0) - 10.0).abs() < 1e-9);
        assert!((c.rate_at(50.0) - 30.0).abs() < 1e-9);
        assert!((c.rate_at(100.0) - 10.0).abs() < 1e-9);
        let mid = c.rate_at(25.0);
        assert!(mid > 10.0 && mid < 30.0);
    }

    #[test]
    fn surge_window_is_half_open() {
        let c = Curve::Surge { base: 5.0, surge: 50.0, start_s: 10.0, len_s: 5.0 };
        assert_eq!(c.rate_at(9.999), 5.0); // lint: allow(float-eq): step curve returns one of two literal levels
        assert_eq!(c.rate_at(10.0), 50.0); // lint: allow(float-eq): step curve returns one of two literal levels
        assert_eq!(c.rate_at(14.999), 50.0); // lint: allow(float-eq): step curve returns one of two literal levels
        assert_eq!(c.rate_at(15.0), 5.0); // lint: allow(float-eq): step curve returns one of two literal levels
    }

    #[test]
    fn parse_round_trips_each_shape() {
        assert_eq!(
            Curve::parse("constant:42.5"),
            Some(Curve::Constant { rate: 42.5 })
        );
        assert_eq!(
            Curve::parse("diurnal:10:30:86400"),
            Some(Curve::Diurnal { base: 10.0, peak: 30.0, period_s: 86400.0 })
        );
        assert_eq!(
            Curve::parse("surge:5:50:100:30"),
            Some(Curve::Surge { base: 5.0, surge: 50.0, start_s: 100.0, len_s: 30.0 })
        );
        assert_eq!(Curve::parse("sawtooth:1:2"), None);
        assert_eq!(Curve::parse("diurnal:10"), None);
    }

    #[test]
    fn serde_round_trip() {
        for c in [
            Curve::constant(7.0),
            Curve::Diurnal { base: 1.0, peak: 2.0, period_s: 60.0 },
            Curve::Surge { base: 0.5, surge: 4.0, start_s: 3.0, len_s: 9.0 },
        ] {
            let v = c.to_value();
            let back = Curve::from_value(&v).expect("curve round-trips");
            assert_eq!(back, c);
        }
    }
}
