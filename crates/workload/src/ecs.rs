//! The three-dimensional ECS matrix and its Section-VI.C generator.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Estimated computational speed for every `(task type, node type,
/// P-state)` triple, off state included (its speed is 0, paper III.D).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EcsMatrix {
    n_task_types: usize,
    n_node_types: usize,
    /// Number of P-states per node type, off state included.
    n_pstates: Vec<usize>,
    /// `data[j]` is the `n_task_types × n_pstates[j]` block of node type
    /// `j`, row-major by task type.
    data: Vec<Vec<f64>>,
}

impl EcsMatrix {
    /// Assemble from per-node-type blocks: `blocks[j][i][k]` is the speed
    /// of task type `i` on node type `j` in P-state `k` (off state
    /// included as the last entry, which must be 0).
    ///
    /// # Panics
    /// Panics on ragged input, negative speeds, or a nonzero off state.
    pub fn from_blocks(blocks: Vec<Vec<Vec<f64>>>) -> Self {
        let n_node_types = blocks.len();
        assert!(n_node_types > 0, "need at least one node type");
        let n_task_types = blocks[0].len();
        assert!(n_task_types > 0, "need at least one task type");
        let mut n_pstates = Vec::with_capacity(n_node_types);
        let mut data = Vec::with_capacity(n_node_types);
        for (j, block) in blocks.into_iter().enumerate() {
            assert_eq!(block.len(), n_task_types, "node type {j}: ragged task axis");
            let np = block[0].len();
            assert!(np >= 2, "node type {j}: need one active P-state plus off");
            let mut flat = Vec::with_capacity(n_task_types * np);
            for (i, row) in block.into_iter().enumerate() {
                assert_eq!(row.len(), np, "node type {j} task {i}: ragged P-state axis");
                assert!(
                    row.iter().all(|&v| v >= 0.0),
                    "node type {j} task {i}: negative ECS"
                );
                assert_eq!(
                    row[np - 1], 0.0,
                    "node type {j} task {i}: off state must have ECS 0"
                );
                flat.extend(row);
            }
            n_pstates.push(np);
            data.push(flat);
        }
        EcsMatrix {
            n_task_types,
            n_node_types,
            n_pstates,
            data,
        }
    }

    /// Number of task types `T`.
    pub fn n_task_types(&self) -> usize {
        self.n_task_types
    }

    /// Number of node (= core) types.
    pub fn n_node_types(&self) -> usize {
        self.n_node_types
    }

    /// Number of P-states of node type `j`, off included (the paper's
    /// `η_j`).
    pub fn n_pstates(&self, node_type: usize) -> usize {
        self.n_pstates[node_type]
    }

    /// `ECS(i, j, k)`: tasks of type `i` completed per second on a core of
    /// type `j` in P-state `k` (0 when `k` is the off state).
    #[inline]
    pub fn ecs(&self, task_type: usize, node_type: usize, pstate: usize) -> f64 {
        let np = self.n_pstates[node_type];
        debug_assert!(task_type < self.n_task_types && pstate < np);
        self.data[node_type][task_type * np + pstate]
    }

    /// `ETC = 1/ECS`: estimated time to compute, `f64::INFINITY` when the
    /// speed is 0 (off state or unsupported type). This replaces the
    /// paper's "small enough positive number" device with an explicit
    /// infinity that the optimization layers guard against.
    #[inline]
    pub fn etc(&self, task_type: usize, node_type: usize, pstate: usize) -> f64 {
        let e = self.ecs(task_type, node_type, pstate);
        if e > 0.0 {
            1.0 / e
        } else {
            f64::INFINITY
        }
    }

    /// Mean P-state-0 speed of task type `i` across node types (used by
    /// the Eq. 11 reward rule).
    pub fn mean_p0_speed(&self, task_type: usize) -> f64 {
        (0..self.n_node_types)
            .map(|j| self.ecs(task_type, j, 0))
            .sum::<f64>()
            / self.n_node_types as f64
    }

    /// `MinECS_i` of Eq. 12: the slowest *active* speed over node types
    /// (deepest running P-state).
    pub fn min_active_speed(&self, task_type: usize) -> f64 {
        (0..self.n_node_types)
            .map(|j| self.ecs(task_type, j, self.n_pstates[j] - 2))
            .fold(f64::INFINITY, f64::min)
    }

    /// `MaxECS_i` of Eq. 13: the fastest speed over node types (P-state 0).
    pub fn max_speed(&self, task_type: usize) -> f64 {
        (0..self.n_node_types)
            .map(|j| self.ecs(task_type, j, 0))
            .fold(0.0_f64, f64::max)
    }
}

/// Parameters of the Section-VI.C ECS generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EcsGenParams {
    /// Number of task types `T` (8 in the paper).
    pub n_task_types: usize,
    /// Task-type/node-type affinity noise `V_ECS` (0.1 in the paper).
    pub v_ecs: f64,
    /// Clock-proportionality noise `V_prop` (0.1 or 0.3 in the paper);
    /// larger values give P-states more task-type affinity, which is the
    /// paper's second Fig.-6 observation.
    pub v_prop: f64,
    /// Mean P-state-0 speed of each node type over task types; the paper
    /// uses `[0.6, 1.0]` from the SPECpower ssj_ops ratio.
    pub node_type_perf: Vec<f64>,
}

impl Default for EcsGenParams {
    fn default() -> Self {
        EcsGenParams {
            n_task_types: 8,
            v_ecs: 0.1,
            v_prop: 0.1,
            node_type_perf: vec![0.6, 1.0],
        }
    }
}

impl EcsGenParams {
    /// Generate the ECS matrix. `node_type_freqs[j]` lists node type `j`'s
    /// *active* P-state clocks in MHz, fastest first (the off state is
    /// appended automatically).
    ///
    /// Per Section VI.C: per-task-type means halve going down the index
    /// (`a_i = a_{i+1}/2`), normalized so their mean is 1, keeping the
    /// node-type means at `node_type_perf`. Deeper P-states scale by clock
    /// ratio with `U[1−V_prop, 1+V_prop]` noise (Eq. 10), re-drawn until
    /// the speed ladder is strictly monotone in the P-state index.
    pub fn generate<R: Rng>(&self, node_type_freqs: &[Vec<f64>], rng: &mut R) -> EcsMatrix {
        assert_eq!(
            node_type_freqs.len(),
            self.node_type_perf.len(),
            "one frequency ladder per node type"
        );
        assert!(self.n_task_types > 0);
        assert!((0.0..1.0).contains(&self.v_ecs));
        assert!((0.0..1.0).contains(&self.v_prop));
        let t = self.n_task_types;

        // a_i = 2^i, normalized to mean 1: task type T-1 is the "easiest"
        // (highest completion rate).
        let raw: Vec<f64> = (0..t).map(|i| 2.0_f64.powi(i as i32)).collect();
        let mean: f64 = raw.iter().sum::<f64>() / t as f64;
        let a: Vec<f64> = raw.into_iter().map(|v| v / mean).collect();

        let blocks: Vec<Vec<Vec<f64>>> = node_type_freqs
            .iter()
            .zip(&self.node_type_perf)
            .map(|(freqs, &b_j)| {
                assert!(!freqs.is_empty());
                (0..t)
                    .map(|i| {
                        let p0 = a[i] * b_j * rng.gen_range(1.0 - self.v_ecs..=1.0 + self.v_ecs);
                        let mut row = Vec::with_capacity(freqs.len() + 1);
                        row.push(p0);
                        for k in 1..freqs.len() {
                            let scale = freqs[k] / freqs[0];
                            // Eq. 10 with the monotonicity re-draw; the
                            // re-draw always terminates because the noise
                            // floor (1 - v_prop) times the clock ratio is
                            // below the previous draw's feasible band.
                            let mut v;
                            let mut attempts = 0;
                            loop {
                                v = p0
                                    * scale
                                    * rng.gen_range(1.0 - self.v_prop..=1.0 + self.v_prop);
                                attempts += 1;
                                if v < row[k - 1] || attempts > 1000 {
                                    break;
                                }
                            }
                            row.push(v.min(row[k - 1] * (1.0 - 1e-9)));
                        }
                        row.push(0.0); // off state
                        row
                    })
                    .collect()
            })
            .collect();
        EcsMatrix::from_blocks(blocks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn paper_freqs() -> Vec<Vec<f64>> {
        vec![
            vec![2500.0, 2100.0, 1700.0, 800.0],
            vec![2666.0, 2200.0, 1700.0, 1000.0],
        ]
    }

    fn generate(seed: u64) -> EcsMatrix {
        let params = EcsGenParams::default();
        let mut rng = StdRng::seed_from_u64(seed);
        params.generate(&paper_freqs(), &mut rng)
    }

    #[test]
    fn dimensions_match_paper() {
        let m = generate(1);
        assert_eq!(m.n_task_types(), 8);
        assert_eq!(m.n_node_types(), 2);
        assert_eq!(m.n_pstates(0), 5); // 4 active + off
        assert_eq!(m.n_pstates(1), 5);
    }

    #[test]
    fn speeds_decrease_with_pstate_index() {
        let m = generate(2);
        for i in 0..8 {
            for j in 0..2 {
                for k in 1..m.n_pstates(j) {
                    assert!(
                        m.ecs(i, j, k) < m.ecs(i, j, k - 1),
                        "ECS({i},{j},{k}) not below previous"
                    );
                }
            }
        }
    }

    #[test]
    fn off_state_is_zero_and_etc_is_infinite() {
        let m = generate(3);
        for i in 0..8 {
            for j in 0..2 {
                let off = m.n_pstates(j) - 1;
                assert_eq!(m.ecs(i, j, off), 0.0);
                assert!(m.etc(i, j, off).is_infinite());
                assert!(m.etc(i, j, 0).is_finite());
            }
        }
    }

    #[test]
    fn task_type_means_roughly_halve() {
        // Average many draws so the U[0.9, 1.1] noise washes out.
        let params = EcsGenParams::default();
        let mut rng = StdRng::seed_from_u64(7);
        let mut means = vec![0.0; 8];
        let reps = 200;
        for _ in 0..reps {
            let m = params.generate(&paper_freqs(), &mut rng);
            for (i, mean) in means.iter_mut().enumerate() {
                *mean += m.mean_p0_speed(i);
            }
        }
        for v in &mut means {
            *v /= reps as f64;
        }
        for i in 0..7 {
            let ratio = means[i + 1] / means[i];
            assert!(
                (ratio - 2.0).abs() < 0.1,
                "mean({}) / mean({}) = {ratio}",
                i + 1,
                i
            );
        }
    }

    #[test]
    fn node_type_performance_ratio_is_0_6() {
        let params = EcsGenParams::default();
        let mut rng = StdRng::seed_from_u64(11);
        let mut sums = [0.0_f64; 2];
        let reps = 200;
        for _ in 0..reps {
            let m = params.generate(&paper_freqs(), &mut rng);
            for j in 0..2 {
                for i in 0..8 {
                    sums[j] += m.ecs(i, j, 0);
                }
            }
        }
        let ratio = sums[0] / sums[1];
        assert!((ratio - 0.6).abs() < 0.02, "perf ratio {ratio}");
    }

    #[test]
    fn min_max_speed_accessors() {
        let m = generate(5);
        for i in 0..8 {
            let min = m.min_active_speed(i);
            let max = m.max_speed(i);
            assert!(min > 0.0);
            assert!(max >= min);
            // Eq. 12: min over deepest active P-states.
            let expected_min = m.ecs(i, 0, 3).min(m.ecs(i, 1, 3));
            assert_eq!(min, expected_min);
            let expected_max = m.ecs(i, 0, 0).max(m.ecs(i, 1, 0));
            assert_eq!(max, expected_max);
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let a = generate(99);
        let b = generate(99);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "off state must have ECS 0")]
    fn nonzero_off_state_rejected() {
        EcsMatrix::from_blocks(vec![vec![vec![1.0, 0.5]], vec![vec![1.0, 0.1]]]);
    }

    #[test]
    fn serde_round_trip() {
        // serde_json's shortest-representation float printing can lose the
        // last ULP, so compare entries approximately.
        let m = generate(13);
        let json = serde_json::to_string(&m).unwrap();
        let back: EcsMatrix = serde_json::from_str(&json).unwrap();
        assert_eq!(m.n_task_types(), back.n_task_types());
        assert_eq!(m.n_node_types(), back.n_node_types());
        for i in 0..m.n_task_types() {
            for j in 0..m.n_node_types() {
                for k in 0..m.n_pstates(j) {
                    let (a, b) = (m.ecs(i, j, k), back.ecs(i, j, k));
                    assert!((a - b).abs() <= 1e-12 * a.abs().max(1.0));
                }
            }
        }
    }
}
