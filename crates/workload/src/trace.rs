//! Poisson arrival traces for the second-step dynamic scheduler.
//!
//! The first-step assignment works with *rates*; the dynamic scheduler
//! (paper Section V.C) sees individual tasks "as they come into the data
//! center". This module materializes that stream: independent Poisson
//! processes per task type, merged into one time-ordered trace.

use crate::task::Workload;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One task arrival.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaskArrival {
    /// Arrival time in seconds from the start of the trace.
    pub time: f64,
    /// Task type index.
    pub task_type: usize,
    /// Absolute deadline (arrival + the type's slack), seconds.
    pub deadline: f64,
}

/// A time-ordered stream of task arrivals.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArrivalTrace {
    /// Arrivals sorted by time.
    pub arrivals: Vec<TaskArrival>,
    /// Horizon the trace covers, seconds.
    pub horizon_s: f64,
}

impl ArrivalTrace {
    /// Sample a trace of length `horizon_s` from the workload's arrival
    /// rates: per-type exponential interarrivals, merged and sorted.
    pub fn generate<R: Rng>(workload: &Workload, horizon_s: f64, rng: &mut R) -> ArrivalTrace {
        assert!(horizon_s > 0.0);
        let mut arrivals = Vec::new();
        for t in &workload.task_types {
            if t.arrival_rate <= 0.0 {
                continue;
            }
            let mut clock = 0.0;
            loop {
                // Exponential interarrival via inverse transform; guard the
                // log against a zero uniform draw.
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                clock += -u.ln() / t.arrival_rate;
                if clock > horizon_s {
                    break;
                }
                arrivals.push(TaskArrival {
                    time: clock,
                    task_type: t.index,
                    deadline: clock + t.deadline_slack,
                });
            }
        }
        arrivals.sort_by(|a, b| a.time.total_cmp(&b.time));
        ArrivalTrace {
            arrivals,
            horizon_s,
        }
    }

    /// Number of arrivals of each task type.
    pub fn counts(&self, n_task_types: usize) -> Vec<usize> {
        let mut counts = vec![0; n_task_types];
        for a in &self.arrivals {
            counts[a.task_type] += 1;
        }
        counts
    }

    /// Empirical arrival rate of each task type over the horizon.
    pub fn empirical_rates(&self, n_task_types: usize) -> Vec<f64> {
        self.counts(n_task_types)
            .into_iter()
            .map(|c| c as f64 / self.horizon_s)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::WorkloadGenParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn workload(seed: u64) -> Workload {
        let params = WorkloadGenParams::default();
        let mut rng = StdRng::seed_from_u64(seed);
        params.generate(
            &[
                vec![2500.0, 2100.0, 1700.0, 800.0],
                vec![2666.0, 2200.0, 1700.0, 1000.0],
            ],
            &[320, 320],
            &mut rng,
        )
    }

    #[test]
    fn trace_is_sorted_and_within_horizon() {
        let w = workload(1);
        let mut rng = StdRng::seed_from_u64(2);
        let trace = ArrivalTrace::generate(&w, 10.0, &mut rng);
        assert!(!trace.arrivals.is_empty());
        for pair in trace.arrivals.windows(2) {
            assert!(pair[0].time <= pair[1].time);
        }
        for a in &trace.arrivals {
            assert!(a.time > 0.0 && a.time <= 10.0);
            let slack = w.task_types[a.task_type].deadline_slack;
            assert!((a.deadline - a.time - slack).abs() < 1e-12);
        }
    }

    #[test]
    fn empirical_rates_approach_nominal() {
        let w = workload(3);
        let mut rng = StdRng::seed_from_u64(4);
        // Long horizon: relative error of a Poisson count of mean λT is
        // ~1/sqrt(λT); the busiest types have λ in the thousands, so 30 s
        // gives <1.5% per-type noise for them; check the aggregate.
        let trace = ArrivalTrace::generate(&w, 30.0, &mut rng);
        let rates = trace.empirical_rates(8);
        let nominal: f64 = w.task_types.iter().map(|t| t.arrival_rate).sum();
        let empirical: f64 = rates.iter().sum();
        assert!(
            (empirical - nominal).abs() / nominal < 0.05,
            "empirical {empirical} vs nominal {nominal}"
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let w = workload(5);
        let a = ArrivalTrace::generate(&w, 5.0, &mut StdRng::seed_from_u64(9));
        let b = ArrivalTrace::generate(&w, 5.0, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn zero_rate_type_never_arrives() {
        let mut w = workload(6);
        w.task_types[0].arrival_rate = 0.0;
        let trace = ArrivalTrace::generate(&w, 5.0, &mut StdRng::seed_from_u64(1));
        assert_eq!(trace.counts(8)[0], 0);
    }
}
