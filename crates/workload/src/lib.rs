//! Workload modeling: task types, estimated computational speeds (ECS),
//! rewards, deadlines, and arrival processes (paper Sections III.B, III.D,
//! and VI.C–D).
//!
//! The paper's workload is a stream of tasks drawn from `T` known task
//! types. Type `i` arrives at rate `λ_i`, pays reward `r_i` when a task
//! finishes within `m_i` seconds of its arrival, and runs at the
//! *estimated computational speed* `ECS(i, j, k)` — completed tasks per
//! second — on a core of type `j` in P-state `k`. `ECS = 1/ETC`; assuming
//! known ETC information is standard practice in heterogeneous resource
//! allocation (the paper cites a dozen precedents).
//!
//! The synthetic generator reproduces Section VI exactly:
//!
//! * P-state-0 speeds are `a_i · b_j · U[1−V_ECS, 1+V_ECS]`, where the
//!   per-task-type means halve from type `i+1` to `i` and the node-type
//!   means are (0.6, 1.0) — the SPECpower-derived performance ratio.
//! * Deeper P-states scale by clock ratio with proportionality noise
//!   `U[1−V_prop, 1+V_prop]` (Eq. 10), re-drawn until speeds decrease
//!   monotonically in the P-state index.
//! * Rewards are the reciprocal of mean P-state-0 speed (Eq. 11) — harder
//!   task types pay more.
//! * Deadline slacks `m_i` follow Eq. 14, guaranteeing at least one core
//!   type can finish in time.
//! * Arrival rates follow Eqs. 15–16: the data center can absorb the load
//!   at full P-state-0 capacity but is oversubscribed under a power cap.

mod curve;
mod ecs;
mod task;
mod trace;

pub use curve::Curve;
pub use ecs::{EcsGenParams, EcsMatrix};
pub use task::{TaskType, Workload, WorkloadGenParams};
pub use trace::{ArrivalTrace, TaskArrival};
