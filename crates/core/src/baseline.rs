//! The comparison technique of Section VII.A (Eqs. 19–22), adapted from
//! Parolini et al. \[26\]: each compute node runs a continuous *fraction*
//! of its cores at P-state 0 per task type — `FRAC(i, j)` — and the rest
//! are off. No intermediate P-states.
//!
//! At fixed CRAC outlets this is an LP in `FRAC`; the outlets are searched
//! exactly like Stage 1's. After solving, the fractions of each node are
//! scaled down by a common factor so the number of cores in use (Eq. 22)
//! is an integer — the paper's rounding rule — and the reward rate is
//! re-evaluated at the reduced fractions.
//!
//! Note on Eq. 19: the printed equation omits the `|cores_j|` factor in
//! the power term while the reward term (Eq. 21) includes it; we restore
//! it so a node's power corresponds to the cores its reward presumes (see
//! DESIGN.md).

use crate::error::SolveError;
use thermaware_datacenter::{optimize_crac_outlets, CracSearchOptions, DataCenter};
use thermaware_lp::{Problem, RowOp, Sense, VarId};
use thermaware_thermal::{cop, RHO_CP};

/// The baseline's assignment.
#[derive(Debug, Clone)]
pub struct BaselineSolution {
    /// Chosen CRAC outlet temperatures, °C.
    pub crac_out_c: Vec<f64>,
    /// `frac[j][i]`: fraction of node `j`'s cores running task type `i`
    /// at P-state 0, *after* the Eq.-22 integerization.
    pub frac: Vec<Vec<f64>>,
    /// Cores in use per node after integerization (an integer value).
    pub cores_on: Vec<f64>,
    /// Total reward rate at the reduced fractions — the number Figure 6
    /// compares.
    pub reward_rate: f64,
    /// Reward rate before integerization (diagnostic upper value).
    pub reward_rate_continuous: f64,
}

/// Solve the baseline for a data center.
///
///// Prefer [`crate::Solver::baseline`] — the builder façade wrapping this
/// entry point; this free function is kept as a thin shim for existing
/// call sites and produces bit-identical assignments.
#[doc(hidden)]
pub fn solve_baseline(
    dc: &DataCenter,
    search: CracSearchOptions,
) -> Result<BaselineSolution, SolveError> {
    baseline_impl(dc, search)
}

/// Shared implementation behind [`solve_baseline`] and
/// [`crate::Solver::baseline`].
pub(crate) fn baseline_impl(
    dc: &DataCenter,
    search: CracSearchOptions,
) -> Result<BaselineSolution, SolveError> {
    let _span = thermaware_obs::span("baseline");
    let best = optimize_crac_outlets(&dc.cracs, search, |outlets| {
        solve_fixed_outlets(dc, outlets).map(|(_, obj)| obj)
    })
    .ok_or(SolveError::NoFeasibleOutlets { stage: "baseline" })?;
    let (crac_out_c, _) = best;
    let (frac_cont, reward_rate_continuous) = solve_fixed_outlets(dc, &crac_out_c)
        .ok_or(SolveError::OutletRecheckFailed { stage: "baseline" })?;

    // Eq. 22 integerization: per node, shrink all fractions by a common
    // factor so cores-in-use is an integer.
    let t = dc.n_task_types();
    let mut frac = frac_cont;
    let mut cores_on = vec![0.0; dc.n_nodes()];
    for j in 0..dc.n_nodes() {
        let cores = dc.node_type(j).cores_per_node as f64;
        let used: f64 = frac[j].iter().sum::<f64>() * cores;
        if used > 1e-9 {
            let target = used.floor();
            let scale = target / used;
            for v in &mut frac[j] {
                *v *= scale;
            }
            cores_on[j] = target;
        } else {
            for v in &mut frac[j] {
                *v = 0.0;
            }
        }
    }
    let mut reward_rate = 0.0;
    for j in 0..dc.n_nodes() {
        let nt = dc.node_type_of[j];
        let cores = dc.node_type(j).cores_per_node as f64;
        for i in 0..t {
            reward_rate +=
                dc.workload.task_types[i].reward * dc.workload.ecs.ecs(i, nt, 0) * cores * frac[j][i];
        }
    }

    Ok(BaselineSolution {
        crac_out_c,
        frac,
        cores_on,
        reward_rate,
        reward_rate_continuous,
    })
}

/// Node powers implied by a (possibly reduced) fraction matrix.
pub fn baseline_node_powers(dc: &DataCenter, frac: &[Vec<f64>]) -> Vec<f64> {
    (0..dc.n_nodes())
        .map(|j| {
            let nt = dc.node_type(j);
            let used: f64 = frac[j].iter().sum();
            nt.base_power_kw
                + nt.core.pstates.power_kw(0) * nt.cores_per_node as f64 * used
        })
        .collect()
}

/// The Eq.-21 LP at fixed outlets. Returns per-node fractions and the
/// objective, or `None` when infeasible.
fn solve_fixed_outlets(dc: &DataCenter, outlets: &[f64]) -> Option<(Vec<Vec<f64>>, f64)> {
    let nn = dc.n_nodes();
    let t = dc.n_task_types();
    let coeff = dc.thermal.coefficients(outlets);

    let mut p = Problem::new(Sense::Maximize);
    // vars[j][i], skipping deadline-infeasible pairs (FRAC pinned to 0).
    let mut vars: Vec<Vec<Option<VarId>>> = Vec::with_capacity(nn);
    for j in 0..nn {
        let nt = dc.node_type_of[j];
        let cores = dc.node_type(j).cores_per_node as f64;
        let mut row = Vec::with_capacity(t);
        for i in 0..t {
            let ecs = dc.workload.ecs.ecs(i, nt, 0);
            let ok = ecs > 0.0 && dc.workload.deadline_feasible(i, nt, 0);
            row.push(ok.then(|| {
                p.add_var(
                    &format!("frac_n{j}_t{i}"),
                    0.0,
                    1.0,
                    dc.workload.task_types[i].reward * ecs * cores,
                )
            }));
        }
        vars.push(row);
    }

    // Constraint 1: arrivals.
    for i in 0..t {
        let terms: Vec<(VarId, f64)> = (0..nn)
            .filter_map(|j| {
                vars[j][i].map(|v| {
                    let nt = dc.node_type_of[j];
                    let cores = dc.node_type(j).cores_per_node as f64;
                    (v, cores * dc.workload.ecs.ecs(i, nt, 0))
                })
            })
            .collect();
        if !terms.is_empty() {
            p.add_row_nodup(
                &format!("arrival_t{i}"),
                &terms,
                RowOp::Le,
                dc.workload.task_types[i].arrival_rate,
            );
        }
    }
    // Constraint 2: fractions sum to at most 1 per node.
    for j in 0..nn {
        let terms: Vec<(VarId, f64)> = (0..t)
            .filter_map(|i| vars[j][i].map(|v| (v, 1.0)))
            .collect();
        if !terms.is_empty() {
            p.add_row_nodup(&format!("frac_sum_n{j}"), &terms, RowOp::Le, 1.0);
        }
    }

    // Power coefficient of node j per unit of Σ_i FRAC(i,j).
    let pw: Vec<f64> = (0..nn)
        .map(|j| {
            let nt = dc.node_type(j);
            nt.core.pstates.power_kw(0) * nt.cores_per_node as f64
        })
        .collect();
    let base_power: Vec<f64> = (0..nn).map(|j| dc.node_type(j).base_power_kw).collect();
    // A thermal/power row Σ_j c_j P_j expands over vars with c_j * pw_j.
    let expand = |coeffs: &dyn Fn(usize) -> f64| -> Vec<(VarId, f64)> {
        let mut terms = Vec::with_capacity(nn * t);
        for j in 0..nn {
            let c = coeffs(j) * pw[j];
            if c.abs() < 1e-14 {
                continue;
            }
            for i in 0..t {
                if let Some(v) = vars[j][i] {
                    terms.push((v, c));
                }
            }
        }
        terms
    };

    // Constraint 4 (thermal rows).
    for u in 0..nn {
        let fixed: f64 = (0..nn).map(|j| coeff.g_node[(u, j)] * base_power[j]).sum();
        let rhs = dc.thermal.node_redline_c - coeff.base_node[u] - fixed;
        let terms = expand(&|j| coeff.g_node[(u, j)]);
        p.add_row_nodup(&format!("redline_node{u}"), &terms, RowOp::Le, rhs);
    }
    for c in 0..dc.n_crac() {
        let fixed: f64 = (0..nn).map(|j| coeff.g_crac[(c, j)] * base_power[j]).sum();
        let rhs = dc.thermal.crac_redline_c - coeff.base_crac[c] - fixed;
        let terms = expand(&|j| coeff.g_crac[(c, j)]);
        p.add_row_nodup(&format!("redline_crac{c}"), &terms, RowOp::Le, rhs);
    }
    // Constraint 3 (power budget), linearized exactly like Stage 1's.
    let w: Vec<f64> = (0..dc.n_crac())
        .map(|c| RHO_CP * dc.cracs[c].flow_m3s / cop::cop(outlets[c]))
        .collect();
    let node_coeff: Vec<f64> = (0..nn)
        .map(|j| 1.0 + (0..dc.n_crac()).map(|c| w[c] * coeff.g_crac[(c, j)]).sum::<f64>())
        .collect();
    let fixed_power: f64 = (0..nn).map(|j| node_coeff[j] * base_power[j]).sum::<f64>()
        + (0..dc.n_crac())
            .map(|c| w[c] * (coeff.base_crac[c] - outlets[c]))
            .sum::<f64>();
    let terms = expand(&|j| node_coeff[j]);
    p.add_row_nodup(
        "power_budget",
        &terms,
        RowOp::Le,
        dc.budget.p_const_kw - fixed_power,
    );

    let sol = p.solve().ok()?;
    let frac: Vec<Vec<f64>> = (0..nn)
        .map(|j| {
            (0..t)
                .map(|i| vars[j][i].map_or(0.0, |v| sol.value(v).max(0.0)))
                .collect()
        })
        .collect();

    // Exact clamped-power re-check, mirroring Stage 1.
    let node_powers = baseline_node_powers(dc, &frac);
    let (it, cooling, state) = dc.total_power_kw(outlets, &node_powers);
    if it + cooling > dc.budget.p_const_kw * (1.0 + 1e-7) + 1e-7 {
        return None;
    }
    if !dc.redlines_ok(&state) {
        return None;
    }
    Some((frac, sol.objective))
}

#[cfg(test)]
mod tests {
    use super::*;
    use thermaware_datacenter::ScenarioParams;

    fn dc(seed: u64) -> DataCenter {
        ScenarioParams::small_test().build(seed).unwrap()
    }

    #[test]
    fn baseline_solves_and_is_feasible() {
        let dc = dc(1);
        let sol = solve_baseline(&dc, CracSearchOptions::default()).expect("baseline");
        assert!(sol.reward_rate > 0.0);
        assert!(sol.reward_rate <= sol.reward_rate_continuous + 1e-9);
        assert!(sol.reward_rate <= dc.workload.max_reward_rate() * (1.0 + 1e-9));

        // Exact feasibility of the reduced solution.
        let node_powers = baseline_node_powers(&dc, &sol.frac);
        let (it, cooling, state) = dc.total_power_kw(&sol.crac_out_c, &node_powers);
        assert!(it + cooling <= dc.budget.p_const_kw * (1.0 + 1e-6) + 1e-6);
        assert!(dc.redlines_ok(&state));
    }

    #[test]
    fn integerization_yields_whole_cores() {
        let dc = dc(2);
        let sol = solve_baseline(&dc, CracSearchOptions::default()).unwrap();
        for j in 0..dc.n_nodes() {
            let cores = dc.node_type(j).cores_per_node as f64;
            let used: f64 = sol.frac[j].iter().sum::<f64>() * cores;
            assert!(
                (used - used.round()).abs() < 1e-6,
                "node {j}: {used} cores in use"
            );
            assert!((used - sol.cores_on[j]).abs() < 1e-6);
        }
    }

    #[test]
    fn fractions_respect_node_capacity() {
        let dc = dc(3);
        let sol = solve_baseline(&dc, CracSearchOptions::default()).unwrap();
        for j in 0..dc.n_nodes() {
            let s: f64 = sol.frac[j].iter().sum();
            assert!(s <= 1.0 + 1e-7, "node {j}: fraction sum {s}");
        }
    }

    #[test]
    fn arrival_rates_respected() {
        let dc = dc(4);
        let sol = solve_baseline(&dc, CracSearchOptions::default()).unwrap();
        for i in 0..dc.n_task_types() {
            let total: f64 = (0..dc.n_nodes())
                .map(|j| {
                    let nt = dc.node_type_of[j];
                    let cores = dc.node_type(j).cores_per_node as f64;
                    cores * dc.workload.ecs.ecs(i, nt, 0) * sol.frac[j][i]
                })
                .sum();
            assert!(
                total <= dc.workload.task_types[i].arrival_rate * (1.0 + 1e-6),
                "type {i}"
            );
        }
    }

    #[test]
    fn oversubscription_leaves_cores_off() {
        let dc = dc(5);
        let sol = solve_baseline(&dc, CracSearchOptions::default()).unwrap();
        let total_on: f64 = sol.cores_on.iter().sum();
        assert!(
            total_on < dc.n_cores() as f64,
            "budget should not allow every core at P0"
        );
        assert!(total_on > 0.0);
    }
}
