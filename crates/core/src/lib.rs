//! The paper's primary contribution: **data-center-level, thermal-aware
//! P-state assignment** (paper Section V), plus the baseline it is
//! evaluated against and an exact reference solver.
//!
//! The exact first-step problem (Eq. 7) is a mixed-integer nonlinear
//! program — integer P-states, non-convex CRAC power — and does not scale.
//! The paper's answer, reproduced here, is a three-stage decomposition:
//!
//! 1. **Stage 1** ([`stage1`]): relax P-states to continuous per-core
//!    power. The power→reward tradeoff of a core type is captured by the
//!    *aggregate reward rate* curve [`arr::ArrCurve`] — the average of the
//!    per-task-type [`rr`] curves over the best ψ% of task types, with
//!    non-concave ("bad") P-states dropped (Figs. 3–5). At fixed CRAC
//!    outlet temperatures the resulting problem is an LP; the outlets
//!    themselves are found by the coarse-to-fine search of
//!    `thermaware_datacenter::optimize_crac_outlets`.
//! 2. **Stage 2** ([`stage2`]): round per-core powers to discrete
//!    P-states without exceeding any node's Stage-1 power.
//! 3. **Stage 3** ([`stage3`]): with P-states and outlets fixed, Eq. 7
//!    *is* an LP in the desired execution rates `TC(i,k)`; solve it
//!    exactly (cores grouped by `(node type, P-state)` — identical cores
//!    are interchangeable, so the grouping is lossless).
//!
//! [`baseline`] implements the comparison technique adapted from Parolini
//! et al. \[26\] (Eqs. 19–22): continuous per-node fractions of cores
//! running at P-state 0, everything else off. [`minlp`] brute-forces the
//! exact problem on tiny instances to bound the heuristic's optimality
//! gap in tests. [`min_power`] solves the Section-VIII dual problem
//! (minimize power subject to a reward-rate floor). [`verify`] checks any
//! final assignment against the *exact* (clamped, nonlinear) power and
//! thermal models.

pub mod arr;
pub mod baseline;
pub mod chip_place;
pub mod error;
pub mod min_power;
pub mod minlp;
pub mod objective;
pub mod pwl;
pub mod rr;
pub mod solver;
pub mod stage1;
pub mod stage2;
pub mod stage3;
pub mod task_power;
pub mod three_stage;
pub mod verify;

pub use arr::ArrCurve;
pub use baseline::{solve_baseline, BaselineSolution};
pub use chip_place::place_within_nodes;
pub use error::SolveError;
pub use objective::ObjectiveWeights;
pub use pwl::PiecewiseLinear;
pub use rr::reward_rate_curve;
pub use solver::Solver;
pub use three_stage::{
    solve_three_stage, solve_three_stage_best_of, ThreeStageOptions, ThreeStageSolution,
};
pub use verify::{verify_assignment, VerificationReport};
