//! Piecewise-linear curves over `[0, x_max]` — the representation behind
//! the paper's `RR` and `ARR` functions.

use serde::{Serialize, Value};

/// A continuous piecewise-linear function given by breakpoints with
/// strictly increasing x.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PiecewiseLinear {
    /// `(x, y)` breakpoints, x strictly increasing.
    points: Vec<(f64, f64)>,
}

// Deserialization is written by hand so a corrupted checkpoint yields an
// error rather than tripping `PiecewiseLinear::new`'s panic on
// non-increasing breakpoints.
impl serde::Deserialize for PiecewiseLinear {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        let entries = v
            .as_object()
            .ok_or_else(|| serde::Error::custom("PiecewiseLinear: expected object"))?;
        let points: Vec<(f64, f64)> = serde::field(entries, "points")?;
        if points.is_empty() {
            return Err(serde::Error::custom("PiecewiseLinear: no breakpoints"));
        }
        if !points.iter().all(|(x, y)| x.is_finite() && y.is_finite()) {
            return Err(serde::Error::custom(
                "PiecewiseLinear: non-finite breakpoint",
            ));
        }
        if points.windows(2).any(|w| w[1].0 <= w[0].0) {
            return Err(serde::Error::custom(
                "PiecewiseLinear: breakpoint x not strictly increasing",
            ));
        }
        Ok(PiecewiseLinear { points })
    }
}

impl PiecewiseLinear {
    /// Build from breakpoints.
    ///
    /// # Panics
    /// Panics if fewer than one point or x is not strictly increasing —
    /// curve construction is driven by P-state tables, so violations are
    /// configuration bugs.
    pub fn new(points: Vec<(f64, f64)>) -> Self {
        assert!(!points.is_empty(), "need at least one breakpoint");
        for w in points.windows(2) {
            assert!(
                w[1].0 > w[0].0,
                "breakpoint x must strictly increase: {points:?}"
            );
        }
        PiecewiseLinear { points }
    }

    /// The breakpoints.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Largest x (the curve's domain end).
    pub fn x_max(&self) -> f64 {
        self.points.last().expect("PiecewiseLinear is non-empty by construction").0
    }

    /// Value at the last breakpoint.
    pub fn y_max(&self) -> f64 {
        self.points.last().expect("PiecewiseLinear is non-empty by construction").1
    }

    /// Evaluate at `x`, clamping outside the domain to the end values
    /// (the curves here are flat beyond their last P-state).
    pub fn eval(&self, x: f64) -> f64 {
        let pts = &self.points;
        if x <= pts[0].0 {
            return pts[0].1;
        }
        if x >= pts[pts.len() - 1].0 {
            return pts[pts.len() - 1].1;
        }
        // Binary search for the containing segment.
        let mut lo = 0;
        let mut hi = pts.len() - 1;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if pts[mid].0 <= x {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let (x0, y0) = pts[lo];
        let (x1, y1) = pts[hi];
        y0 + (y1 - y0) * (x - x0) / (x1 - x0)
    }

    /// Whether the curve is concave (segment slopes non-increasing, up to
    /// a tiny tolerance).
    pub fn is_concave(&self) -> bool {
        let slopes = self.slopes();
        slopes.windows(2).all(|w| w[1] <= w[0] + 1e-9)
    }

    /// Per-segment slopes, one per consecutive breakpoint pair.
    pub fn slopes(&self) -> Vec<f64> {
        self.points
            .windows(2)
            .map(|w| (w[1].1 - w[0].1) / (w[1].0 - w[0].0))
            .collect()
    }

    /// Pointwise average of several curves sharing identical x
    /// breakpoints (the paper's ARR averages RR curves, which all break at
    /// the same P-state powers).
    ///
    /// # Panics
    /// Panics if the inputs' x grids differ.
    pub fn average(curves: &[&PiecewiseLinear]) -> PiecewiseLinear {
        assert!(!curves.is_empty());
        let xs: Vec<f64> = curves[0].points.iter().map(|p| p.0).collect();
        for c in curves {
            assert_eq!(c.points.len(), xs.len(), "mismatched breakpoint grids");
            for (p, &x) in c.points.iter().zip(&xs) {
                assert!((p.0 - x).abs() < 1e-12, "mismatched breakpoint grids");
            }
        }
        let n = curves.len() as f64;
        let points = xs
            .iter()
            .enumerate()
            .map(|(i, &x)| {
                let y: f64 = curves.iter().map(|c| c.points[i].1).sum();
                (x, y / n)
            })
            .collect();
        PiecewiseLinear::new(points)
    }

    /// The **upper concave envelope** of the breakpoints — the paper's
    /// "ignore the bad P-states" construction (Fig. 5). Points strictly
    /// below the hull are dropped; the result is concave and touches the
    /// first and last breakpoints.
    pub fn concave_hull(&self) -> PiecewiseLinear {
        if self.points.len() <= 2 {
            return self.clone();
        }
        // Monotone-chain upper hull over points already sorted by x.
        let mut hull: Vec<(f64, f64)> = Vec::with_capacity(self.points.len());
        for &p in &self.points {
            while hull.len() >= 2 {
                let a = hull[hull.len() - 2];
                let b = hull[hull.len() - 1];
                // Remove b when it lies on or below the chord a→p (cross
                // product turns left or is collinear).
                let cross = (b.0 - a.0) * (p.1 - a.1) - (b.1 - a.1) * (p.0 - a.0);
                if cross >= -1e-15 {
                    hull.pop();
                } else {
                    break;
                }
            }
            hull.push(p);
        }
        PiecewiseLinear::new(hull)
    }

    /// Scale the curve to the aggregate of `n` identical copies operated
    /// optimally under a shared budget: `g(x) = n·f(x/n)` — used to lift a
    /// per-core ARR curve to a whole node. Concavity is preserved, and
    /// for concave `f` the equal split behind this formula is optimal.
    pub fn aggregate_copies(&self, n: usize) -> PiecewiseLinear {
        assert!(n >= 1);
        let s = n as f64;
        PiecewiseLinear::new(self.points.iter().map(|&(x, y)| (x * s, y * s)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig3() -> PiecewiseLinear {
        PiecewiseLinear::new(vec![(0.0, 0.0), (0.05, 0.5), (0.1, 0.9), (0.15, 1.2)])
    }

    #[test]
    fn eval_interpolates_and_clamps() {
        let f = fig3();
        assert_eq!(f.eval(0.0), 0.0);
        assert_eq!(f.eval(0.05), 0.5);
        assert!((f.eval(0.025) - 0.25).abs() < 1e-12);
        assert!((f.eval(0.125) - 1.05).abs() < 1e-12);
        // Clamped outside the domain.
        assert_eq!(f.eval(-1.0), 0.0);
        assert_eq!(f.eval(9.0), 1.2);
    }

    #[test]
    fn fig3_curve_is_concave() {
        assert!(fig3().is_concave());
        let slopes = fig3().slopes();
        assert!((slopes[0] - 10.0).abs() < 1e-12);
        assert!((slopes[1] - 8.0).abs() < 1e-12);
        assert!((slopes[2] - 6.0).abs() < 1e-12);
    }

    #[test]
    fn fig4_curve_is_not_concave() {
        // Deadline kills P-state 2: its reward rate drops to 0.
        let f = PiecewiseLinear::new(vec![(0.0, 0.0), (0.05, 0.0), (0.1, 0.9), (0.15, 1.2)]);
        assert!(!f.is_concave());
    }

    #[test]
    fn concave_hull_drops_bad_pstates() {
        // Fig. 5: the hull of the Fig.-4 curve skips (0.05, 0).
        let f = PiecewiseLinear::new(vec![(0.0, 0.0), (0.05, 0.0), (0.1, 0.9), (0.15, 1.2)]);
        let h = f.concave_hull();
        assert_eq!(h.points(), &[(0.0, 0.0), (0.1, 0.9), (0.15, 1.2)]);
        assert!(h.is_concave());
        // The hull dominates the original pointwise.
        for &(x, y) in f.points() {
            assert!(h.eval(x) >= y - 1e-12);
        }
    }

    #[test]
    fn concave_hull_of_concave_curve_is_identity() {
        let f = fig3();
        assert_eq!(f.concave_hull(), f);
    }

    #[test]
    fn average_pointwise() {
        let a = fig3();
        let b = PiecewiseLinear::new(vec![(0.0, 0.0), (0.05, 0.1), (0.1, 0.3), (0.15, 0.4)]);
        let avg = PiecewiseLinear::average(&[&a, &b]);
        assert!((avg.eval(0.05) - 0.3).abs() < 1e-12);
        assert!((avg.eval(0.15) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn aggregate_copies_scales_both_axes() {
        let f = fig3();
        let g = f.aggregate_copies(4);
        assert_eq!(g.x_max(), 0.6);
        assert_eq!(g.y_max(), 4.8);
        // g(x) = 4 f(x/4) pointwise.
        for x in [0.0, 0.1, 0.3, 0.45, 0.6] {
            assert!((g.eval(x) - 4.0 * f.eval(x / 4.0)).abs() < 1e-12);
        }
        assert!(g.is_concave());
    }

    #[test]
    #[should_panic(expected = "strictly increase")]
    fn duplicate_x_rejected() {
        PiecewiseLinear::new(vec![(0.0, 0.0), (0.0, 1.0)]);
    }
}
