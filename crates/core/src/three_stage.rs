//! The end-to-end three-stage assignment (paper Section V.B).

use crate::error::SolveError;
use crate::objective::ObjectiveWeights;
use crate::stage1::{solve_stage1, Stage1Options, Stage1Solution};
use crate::stage2::assign_pstates;
use crate::stage3::{solve_stage3_warm, Stage3Basis, Stage3Solution};
use serde::{Deserialize, Serialize};
use thermaware_datacenter::{CracSearchOptions, DataCenter};

/// Options for the full three-stage solve.
#[derive(Debug, Clone, Copy)]
pub struct ThreeStageOptions {
    /// The ψ parameter (percent of task types in the ARR average).
    pub psi_percent: f64,
    /// CRAC outlet search strategy for Stage 1.
    pub search: CracSearchOptions,
    /// Warm-start Stage 1's fixed-outlet LPs across the CRAC grid
    /// sweep (see [`Stage1Options::warm_start`]).
    pub warm_start: bool,
    /// Objective blend (reward vs electricity/carbon cost). The
    /// reward-only default preserves the paper's objective bit for bit.
    pub objective: ObjectiveWeights,
}

impl Default for ThreeStageOptions {
    fn default() -> Self {
        ThreeStageOptions {
            psi_percent: 50.0,
            search: CracSearchOptions::default(),
            warm_start: true,
            objective: ObjectiveWeights::reward_only(),
        }
    }
}

/// The complete first-step assignment the paper's technique produces: CRAC
/// outlets, per-core P-states, and desired execution rates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThreeStageSolution {
    /// ψ used.
    pub psi_percent: f64,
    /// Stage-1 plan (continuous relaxation).
    pub stage1: Stage1Solution,
    /// Per-core P-state assignment (global core order).
    pub pstates: Vec<usize>,
    /// Stage-3 desired execution rates.
    pub stage3: Stage3Solution,
    /// Optimal basis of the Stage-3 LP, a warm-start seed for runtime
    /// replans of the same structure.
    pub stage3_basis: Option<Stage3Basis>,
}

impl ThreeStageSolution {
    /// The achieved total reward rate (Stage 3's exact LP objective — the
    /// number Figure 6 compares).
    pub fn reward_rate(&self) -> f64 {
        self.stage3.reward_rate
    }

    /// Chosen CRAC outlet temperatures.
    pub fn crac_out_c(&self) -> &[f64] {
        &self.stage1.crac_out_c
    }

    /// Exact total power draw (IT + cooling, kW) of this plan on `dc`.
    pub fn total_power_kw(&self, dc: &DataCenter) -> f64 {
        let node_powers = dc.node_powers_from_pstates(&self.pstates);
        let (it, cooling, _) = dc.total_power_kw(&self.stage1.crac_out_c, &node_powers);
        it + cooling
    }

    /// The blended net objective under `weights`:
    /// `reward_weight·reward_rate − cost_rate·total_power`. With
    /// reward-only weights this is exactly [`reward_rate`]
    /// (no cost arithmetic is performed).
    ///
    /// [`reward_rate`]: ThreeStageSolution::reward_rate
    pub fn net_objective(&self, dc: &DataCenter, weights: &ObjectiveWeights) -> f64 {
        if weights.is_reward_only() {
            return self.reward_rate();
        }
        weights.net_objective(self.reward_rate(), self.total_power_kw(dc))
    }
}

/// Run Stages 1–3 for one ψ.
///
/// Prefer [`crate::Solver`] — the builder façade wrapping this entry
/// point (`Solver::new(&dc).psi(50.0).solve()`); this free function is
/// kept as a thin shim for existing call sites and produces bit-identical
/// plans.
#[doc(hidden)]
pub fn solve_three_stage(
    dc: &DataCenter,
    options: &ThreeStageOptions,
) -> Result<ThreeStageSolution, SolveError> {
    three_stage_impl(dc, options)
}

/// Shared implementation behind [`solve_three_stage`] and
/// [`crate::Solver::solve`] — both paths call this with the same
/// arguments, which is what makes the builder bit-identical to the
/// legacy entry point.
pub(crate) fn three_stage_impl(
    dc: &DataCenter,
    options: &ThreeStageOptions,
) -> Result<ThreeStageSolution, SolveError> {
    let _span = thermaware_obs::span("three_stage");
    thermaware_obs::gauge_set("core.psi_percent", options.psi_percent);
    let stage1 = solve_stage1(
        dc,
        &Stage1Options {
            psi_percent: options.psi_percent,
            search: options.search,
            warm_start: options.warm_start,
            objective: options.objective,
        },
    )?;
    let pstates = {
        let _s2 = thermaware_obs::span("stage2");
        assign_pstates(dc, &stage1)
    };
    let (stage3, stage3_basis) = {
        let _s3 = thermaware_obs::span("stage3");
        solve_stage3_warm(dc, &pstates, None)?
    };
    thermaware_obs::gauge_set("core.reward_rate", stage3.reward_rate);
    thermaware_obs::observe("core.reward_rate_trajectory", stage3.reward_rate);
    Ok(ThreeStageSolution {
        psi_percent: options.psi_percent,
        stage1,
        pstates,
        stage3,
        stage3_basis,
    })
}

/// Run the three-stage technique for several ψ values and keep the best
/// (by Stage-3 reward rate) — the paper's "best of the two" series in
/// Figure 6.
///
/// Prefer [`crate::Solver`] with
/// [`psi_best_of`](crate::Solver::psi_best_of); this free function is
/// kept as a thin shim for existing call sites and produces bit-identical
/// plans.
#[doc(hidden)]
pub fn solve_three_stage_best_of(
    dc: &DataCenter,
    psis: &[f64],
    search: CracSearchOptions,
) -> Result<ThreeStageSolution, SolveError> {
    three_stage_best_of_impl(
        dc,
        psis,
        &ThreeStageOptions {
            search,
            ..ThreeStageOptions::default()
        },
    )
}

/// Shared implementation behind [`solve_three_stage_best_of`] and the
/// builder's best-of mode. `base.psi_percent` is ignored — each
/// candidate in `psis` is solved with the rest of `base`'s options, and
/// the winner is picked by `base.objective`'s net objective (exactly
/// the Stage-3 reward rate under reward-only weights).
pub(crate) fn three_stage_best_of_impl(
    dc: &DataCenter,
    psis: &[f64],
    base: &ThreeStageOptions,
) -> Result<ThreeStageSolution, SolveError> {
    if psis.is_empty() {
        return Err(SolveError::invalid_input("best-of: empty ψ candidate set"));
    }
    let _span = thermaware_obs::span("three_stage_best_of");
    let mut best: Option<ThreeStageSolution> = None;
    let mut last_err: Option<SolveError> = None;
    for &psi in psis {
        thermaware_obs::counter_add("core.psi_candidates", 1);
        match solve_three_stage(
            dc,
            &ThreeStageOptions {
                psi_percent: psi,
                ..*base
            },
        ) {
            Ok(sol) => {
                if best.as_ref().is_none_or(|b| {
                    sol.net_objective(dc, &base.objective)
                        > b.net_objective(dc, &base.objective)
                }) {
                    best = Some(sol);
                }
            }
            Err(e) => {
                thermaware_obs::counter_add("core.psi_failures", 1);
                last_err = Some(e);
            }
        }
    }
    match (best, last_err) {
        (Some(sol), _) => Ok(sol),
        // No ψ succeeded: psis is non-empty, so at least one error was
        // recorded.
        (None, Some(e)) => Err(e),
        (None, None) => Err(SolveError::invalid_input(
            "best-of: no ψ produced a result or an error",
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_assignment;
    use thermaware_datacenter::ScenarioParams;

    #[test]
    fn end_to_end_solves_and_verifies() {
        let dc = ScenarioParams::small_test().build(1).unwrap();
        let sol = solve_three_stage(&dc, &ThreeStageOptions::default()).expect("solve");
        assert!(sol.reward_rate() > 0.0);
        assert!(sol.reward_rate() <= dc.workload.max_reward_rate() * (1.0 + 1e-9));
        let report = verify_assignment(&dc, sol.crac_out_c(), &sol.pstates, Some(&sol.stage3));
        assert!(report.is_feasible(), "{report:?}");
    }

    #[test]
    fn stage3_reward_no_higher_than_stage1_estimate_bound() {
        // Stage 1's objective is an optimistic estimate built from the
        // best-ψ% task mix; Stage 3's exact reward can be lower (the
        // paper explains this for ψ=25) but not absurdly higher than the
        // theoretical max.
        let dc = ScenarioParams::small_test().build(2).unwrap();
        let sol = solve_three_stage(&dc, &ThreeStageOptions::default()).unwrap();
        assert!(sol.reward_rate() <= dc.workload.max_reward_rate() * (1.0 + 1e-9));
        assert!(sol.stage1.objective > 0.0);
    }

    #[test]
    fn best_of_psi_picks_the_better_one() {
        let dc = ScenarioParams::small_test().build(3).unwrap();
        let s25 = solve_three_stage(
            &dc,
            &ThreeStageOptions {
                psi_percent: 25.0,
                ..ThreeStageOptions::default()
            },
        )
        .unwrap();
        let s50 = solve_three_stage(
            &dc,
            &ThreeStageOptions {
                psi_percent: 50.0,
                ..ThreeStageOptions::default()
            },
        )
        .unwrap();
        let best =
            solve_three_stage_best_of(&dc, &[25.0, 50.0], CracSearchOptions::default()).unwrap();
        let expected = s25.reward_rate().max(s50.reward_rate());
        assert!((best.reward_rate() - expected).abs() < 1e-9);
    }

    #[test]
    fn oversubscription_forces_some_cores_off_or_deep() {
        // Pconst = (Pmin+Pmax)/2 cannot power every core at P0: the
        // assignment must park some cores in deeper states or off.
        let dc = ScenarioParams::small_test().build(4).unwrap();
        let sol = solve_three_stage(&dc, &ThreeStageOptions::default()).unwrap();
        let non_p0 = sol.pstates.iter().filter(|&&p| p != 0).count();
        assert!(non_p0 > 0, "all cores at P0 under an oversubscribed budget");
    }
}
