//! Typed solver errors.
//!
//! The stage solvers originally reported failures as `String`s, which
//! forced callers that *respond* to failure — most importantly the
//! runtime supervisor's replan/degradation ladder — to parse prose. The
//! [`SolveError`] enum keeps the failure cause machine-readable:
//! infeasibility (degrade further and retry) is distinguishable from
//! numerical pathology or caller bugs (stop retrying; escalate).

use std::fmt;
use thermaware_lp::LpError;

/// Why a stage solver could not produce a plan.
#[derive(Debug, Clone, PartialEq)]
pub enum SolveError {
    /// No searched CRAC outlet combination admitted a feasible
    /// power/thermal assignment (a thermally unbuildable configuration).
    NoFeasibleOutlets {
        /// Which solver was searching (`"stage1"`, `"baseline"`, ...).
        stage: &'static str,
    },
    /// The outlet combination chosen during the search failed the exact
    /// clamped-model recheck when re-solved — the linearization was
    /// optimistic at precisely the winning point.
    OutletRecheckFailed {
        /// Which solver was rechecking.
        stage: &'static str,
    },
    /// An LP embedded in a stage failed.
    Lp {
        /// Which solver owned the LP.
        stage: &'static str,
        /// The solver-level cause.
        source: LpError,
    },
    /// Caller-supplied input was malformed (wrong vector length, empty
    /// candidate set, ...). Replaces `assert!` panics on public entry
    /// points so a supervisor driving the solvers never aborts.
    InvalidInput {
        /// What was wrong.
        what: String,
    },
}

impl SolveError {
    /// `true` when the failure means "this configuration admits no
    /// plan" — the caller may degrade the configuration and retry.
    /// `false` for caller bugs and numerical pathologies, where retrying
    /// the same way cannot help.
    pub fn is_infeasible(&self) -> bool {
        match self {
            SolveError::NoFeasibleOutlets { .. } | SolveError::OutletRecheckFailed { .. } => true,
            SolveError::Lp { source, .. } => matches!(source, LpError::Infeasible { .. }),
            SolveError::InvalidInput { .. } => false,
        }
    }

    /// Malformed-input constructor.
    pub fn invalid_input(what: impl Into<String>) -> SolveError {
        SolveError::InvalidInput { what: what.into() }
    }
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::NoFeasibleOutlets { stage } => {
                write!(f, "{stage}: no feasible CRAC outlet combination")
            }
            SolveError::OutletRecheckFailed { stage } => {
                write!(f, "{stage}: best outlet combination became infeasible")
            }
            SolveError::Lp { stage, source } => write!(f, "{stage} LP: {source}"),
            SolveError::InvalidInput { what } => write!(f, "invalid input: {what}"),
        }
    }
}

impl std::error::Error for SolveError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SolveError::Lp { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Legacy-compatible conversion: call sites that accumulate errors as
/// `String` (report generators, `?` into `Result<_, String>`) keep
/// working against the typed solvers.
impl From<SolveError> for String {
    fn from(e: SolveError) -> String {
        e.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infeasibility_classification() {
        assert!(SolveError::NoFeasibleOutlets { stage: "stage1" }.is_infeasible());
        assert!(SolveError::OutletRecheckFailed { stage: "baseline" }.is_infeasible());
        assert!(SolveError::Lp {
            stage: "stage3",
            source: LpError::Infeasible { residual: 0.1 },
        }
        .is_infeasible());
        assert!(!SolveError::Lp {
            stage: "stage3",
            source: LpError::IterationLimit { limit: 1000 },
        }
        .is_infeasible());
        assert!(!SolveError::invalid_input("short pstates").is_infeasible());
    }

    #[test]
    fn string_conversion_matches_display() {
        let e = SolveError::NoFeasibleOutlets { stage: "stage1" };
        let s: String = e.clone().into();
        assert_eq!(s, e.to_string());
        assert!(s.contains("stage1"));
    }
}
