//! Typed solver errors.
//!
//! The stage solvers originally reported failures as `String`s, which
//! forced callers that *respond* to failure — most importantly the
//! runtime supervisor's replan/degradation ladder — to parse prose. The
//! [`SolveError`] enum keeps the failure cause machine-readable:
//! infeasibility (degrade further and retry) is distinguishable from
//! numerical pathology or caller bugs (stop retrying; escalate).

use serde::{Deserialize, Serialize, Value};
use std::fmt;
use thermaware_lp::LpError;

/// Stage names appear in [`SolveError`] as `&'static str`; deserialization
/// interns the string back to the known constant (or a recognizable
/// fallback — the set of stages is closed, so hitting the fallback means
/// the payload came from a newer writer).
fn intern_stage(s: &str) -> &'static str {
    const KNOWN: &[&str] = &[
        "stage1",
        "stage2",
        "stage3",
        "baseline",
        "minlp",
        "min_power",
        "task_power",
        "crac_search",
    ];
    KNOWN
        .iter()
        .find(|k| **k == s)
        .copied()
        .unwrap_or("unrecognized")
}

/// Why a stage solver could not produce a plan.
#[derive(Debug, Clone, PartialEq)]
pub enum SolveError {
    /// No searched CRAC outlet combination admitted a feasible
    /// power/thermal assignment (a thermally unbuildable configuration).
    NoFeasibleOutlets {
        /// Which solver was searching (`"stage1"`, `"baseline"`, ...).
        stage: &'static str,
    },
    /// The outlet combination chosen during the search failed the exact
    /// clamped-model recheck when re-solved — the linearization was
    /// optimistic at precisely the winning point.
    OutletRecheckFailed {
        /// Which solver was rechecking.
        stage: &'static str,
    },
    /// An LP embedded in a stage failed.
    Lp {
        /// Which solver owned the LP.
        stage: &'static str,
        /// The solver-level cause.
        source: LpError,
    },
    /// Caller-supplied input was malformed (wrong vector length, empty
    /// candidate set, ...). Replaces `assert!` panics on public entry
    /// points so a supervisor driving the solvers never aborts.
    InvalidInput {
        /// What was wrong.
        what: String,
    },
}

impl SolveError {
    /// `true` when the failure means "this configuration admits no
    /// plan" — the caller may degrade the configuration and retry.
    /// `false` for caller bugs and numerical pathologies, where retrying
    /// the same way cannot help.
    pub fn is_infeasible(&self) -> bool {
        match self {
            SolveError::NoFeasibleOutlets { .. } | SolveError::OutletRecheckFailed { .. } => true,
            SolveError::Lp { source, .. } => matches!(source, LpError::Infeasible { .. }),
            SolveError::InvalidInput { .. } => false,
        }
    }

    /// Malformed-input constructor.
    pub fn invalid_input(what: impl Into<String>) -> SolveError {
        SolveError::InvalidInput { what: what.into() }
    }
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::NoFeasibleOutlets { stage } => {
                write!(f, "{stage}: no feasible CRAC outlet combination")
            }
            SolveError::OutletRecheckFailed { stage } => {
                write!(f, "{stage}: best outlet combination became infeasible")
            }
            SolveError::Lp { stage, source } => write!(f, "{stage} LP: {source}"),
            SolveError::InvalidInput { what } => write!(f, "invalid input: {what}"),
        }
    }
}

impl std::error::Error for SolveError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SolveError::Lp { source, .. } => Some(source),
            _ => None,
        }
    }
}

// Hand-written serde (the vendored derive cannot express payload enums):
// a tagged object `{"kind": ..., <payload>}`, with stage names interned
// back to `&'static str` on the way in.
impl Serialize for SolveError {
    fn to_value(&self) -> Value {
        let entries = match self {
            SolveError::NoFeasibleOutlets { stage } => vec![
                ("kind".to_string(), "no_feasible_outlets".to_value()),
                ("stage".to_string(), stage.to_value()),
            ],
            SolveError::OutletRecheckFailed { stage } => vec![
                ("kind".to_string(), "outlet_recheck_failed".to_value()),
                ("stage".to_string(), stage.to_value()),
            ],
            SolveError::Lp { stage, source } => vec![
                ("kind".to_string(), "lp".to_value()),
                ("stage".to_string(), stage.to_value()),
                ("source".to_string(), source.to_value()),
            ],
            SolveError::InvalidInput { what } => vec![
                ("kind".to_string(), "invalid_input".to_value()),
                ("what".to_string(), what.to_value()),
            ],
        };
        Value::Object(entries)
    }
}

impl Deserialize for SolveError {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        let entries = v
            .as_object()
            .ok_or_else(|| serde::Error::custom("SolveError: expected object"))?;
        let kind: String = serde::field(entries, "kind")?;
        let stage = |entries: &[(String, Value)]| -> Result<&'static str, serde::Error> {
            serde::field::<String>(entries, "stage").map(|s| intern_stage(&s))
        };
        match kind.as_str() {
            "no_feasible_outlets" => Ok(SolveError::NoFeasibleOutlets {
                stage: stage(entries)?,
            }),
            "outlet_recheck_failed" => Ok(SolveError::OutletRecheckFailed {
                stage: stage(entries)?,
            }),
            "lp" => Ok(SolveError::Lp {
                stage: stage(entries)?,
                source: serde::field(entries, "source")?,
            }),
            "invalid_input" => Ok(SolveError::InvalidInput {
                what: serde::field(entries, "what")?,
            }),
            other => Err(serde::Error::custom(format!(
                "SolveError: unknown kind '{other}'"
            ))),
        }
    }
}

/// Legacy-compatible conversion: call sites that accumulate errors as
/// `String` (report generators, `?` into `Result<_, String>`) keep
/// working against the typed solvers.
impl From<SolveError> for String {
    fn from(e: SolveError) -> String {
        e.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infeasibility_classification() {
        assert!(SolveError::NoFeasibleOutlets { stage: "stage1" }.is_infeasible());
        assert!(SolveError::OutletRecheckFailed { stage: "baseline" }.is_infeasible());
        assert!(SolveError::Lp {
            stage: "stage3",
            source: LpError::Infeasible { residual: 0.1 },
        }
        .is_infeasible());
        assert!(!SolveError::Lp {
            stage: "stage3",
            source: LpError::IterationLimit { limit: 1000 },
        }
        .is_infeasible());
        assert!(!SolveError::invalid_input("short pstates").is_infeasible());
    }

    #[test]
    fn serde_round_trips_every_variant() {
        let cases = vec![
            SolveError::NoFeasibleOutlets { stage: "stage1" },
            SolveError::OutletRecheckFailed { stage: "baseline" },
            SolveError::Lp {
                stage: "stage3",
                source: LpError::Unbounded {
                    var: "tc_0_1".to_string(),
                },
            },
            SolveError::Lp {
                stage: "crac_search",
                source: LpError::Infeasible { residual: 1e-3 },
            },
            SolveError::invalid_input("short pstates"),
        ];
        for e in cases {
            let back = SolveError::from_value(&e.to_value()).expect("round trip");
            assert_eq!(back, e);
        }
    }

    #[test]
    fn unknown_stage_interns_to_fallback() {
        let mut v = SolveError::NoFeasibleOutlets { stage: "stage1" }.to_value();
        if let Value::Object(entries) = &mut v {
            for (k, val) in entries.iter_mut() {
                if k == "stage" {
                    *val = Value::String("from_the_future".to_string());
                }
            }
        }
        let back = SolveError::from_value(&v).expect("deserializes");
        assert_eq!(back, SolveError::NoFeasibleOutlets { stage: "unrecognized" });
    }

    #[test]
    fn unknown_kind_rejected() {
        let v = Value::Object(vec![("kind".to_string(), "gremlin".to_value())]);
        assert!(SolveError::from_value(&v).is_err());
    }

    #[test]
    fn string_conversion_matches_display() {
        let e = SolveError::NoFeasibleOutlets { stage: "stage1" };
        let s: String = e.clone().into();
        assert_eq!(s, e.to_string());
        assert!(s.contains("stage1"));
    }
}
