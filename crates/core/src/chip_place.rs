//! Chip-aware within-node P-state placement.
//!
//! Stage 2 decides *how many* cores of each node run in each P-state;
//! it never cared *which* cores, because the room model only sees node
//! power totals. With a [`ChipModel`] attached the choice matters: two
//! shallow-P-state cores side by side heat each other
//! (`thermaware_thermal::chip`), while the same assignment spread
//! across the die stays cooler at identical node power.
//!
//! [`place_within_nodes`] permutes each node's P-state assignment onto
//! the die's coolest-first placement order (largest draws to the
//! positions with the least self-heating). Because it only permutes
//! within a node:
//!
//! * node power totals — and therefore every room-level redline and
//!   the power budget — are untouched, and
//! * Stage 3's `(node type, P-state)` group counts are unchanged, so a
//!   warm Stage-3 re-solve reproduces the same reward at the same
//!   rates, just with the corrected core→group mapping.

use thermaware_datacenter::DataCenter;
use thermaware_thermal::ChipModel;

/// Permute each node's P-states onto its die's coolest-first placement
/// order. Returns the number of cores whose P-state changed. A node is
/// left untouched when the heuristic layout would be hotter than the
/// incoming one (the guard makes the call monotone: peak die
/// temperature never increases), or when the chip model's core count
/// does not match the node's.
pub fn place_within_nodes(dc: &DataCenter, chip: &ChipModel, pstates: &mut [usize]) -> usize {
    assert_eq!(pstates.len(), dc.n_cores());
    let mut moved = 0;
    for node in 0..dc.n_nodes() {
        let t = dc.node_type_of[node];
        if t >= chip.n_types() {
            continue;
        }
        let grid = chip.grid(t);
        let table = &dc.node_types[t].core.pstates;
        let cores: Vec<usize> = dc.cores_of_node(node).collect();
        if cores.len() != grid.n_cores() {
            continue;
        }
        let local: Vec<usize> = cores.iter().map(|&k| pstates[k]).collect();

        // Rank the node's P-states by power, largest first (stable).
        let mut by_power: Vec<usize> = (0..local.len()).collect();
        by_power.sort_by(|&a, &b| {
            table
                .power_kw(local[b])
                .total_cmp(&table.power_kw(local[a]))
                .then(a.cmp(&b))
        });
        let order = grid.placement_order();
        let mut placed = vec![0usize; local.len()];
        for (rank, &src) in by_power.iter().enumerate() {
            placed[order[rank]] = local[src];
        }

        // Guard: only accept a layout at least as cool as the incoming
        // one. Ambient shifts all die temperatures uniformly (the
        // conductance system is a Laplacian plus the ambient diagonal),
        // so the comparison at 0 °C ambient decides for every ambient.
        let powers_old: Vec<f64> = local.iter().map(|&p| table.power_kw(p)).collect();
        let powers_new: Vec<f64> = placed.iter().map(|&p| table.power_kw(p)).collect();
        if grid.peak_c(0.0, &powers_new) <= grid.peak_c(0.0, &powers_old) + 1e-12 {
            for (i, &k) in cores.iter().enumerate() {
                if pstates[k] != placed[i] {
                    moved += 1;
                }
                pstates[k] = placed[i];
            }
        }
    }
    moved
}

#[cfg(test)]
mod tests {
    use super::*;
    use thermaware_datacenter::ScenarioParams;
    use thermaware_thermal::ChipParams;

    fn chip_for(dc: &DataCenter) -> ChipModel {
        let cores: Vec<usize> = dc.node_types.iter().map(|t| t.cores_per_node).collect();
        ChipModel::build(&cores, &ChipParams::default()).expect("chip model builds")
    }

    #[test]
    fn placement_preserves_node_pstate_multisets() {
        let dc = ScenarioParams::small_test().build(11).unwrap();
        let sol = crate::solve_three_stage(&dc, &crate::ThreeStageOptions::default()).unwrap();
        let chip = chip_for(&dc);
        let mut placed = sol.pstates.clone();
        place_within_nodes(&dc, &chip, &mut placed);
        for node in 0..dc.n_nodes() {
            let mut a: Vec<usize> = dc.cores_of_node(node).map(|k| sol.pstates[k]).collect();
            let mut b: Vec<usize> = dc.cores_of_node(node).map(|k| placed[k]).collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "node {node} multiset changed");
        }
    }

    #[test]
    fn placement_never_heats_a_die() {
        let dc = ScenarioParams::small_test().build(12).unwrap();
        let sol = crate::solve_three_stage(&dc, &crate::ThreeStageOptions::default()).unwrap();
        let chip = chip_for(&dc);
        let mut placed = sol.pstates.clone();
        place_within_nodes(&dc, &chip, &mut placed);
        for node in 0..dc.n_nodes() {
            let t = dc.node_type_of[node];
            let grid = chip.grid(t);
            let table = &dc.node_types[t].core.pstates;
            let before: Vec<f64> = dc
                .cores_of_node(node)
                .map(|k| table.power_kw(sol.pstates[k]))
                .collect();
            let after: Vec<f64> = dc
                .cores_of_node(node)
                .map(|k| table.power_kw(placed[k]))
                .collect();
            assert!(
                grid.peak_c(25.0, &after) <= grid.peak_c(25.0, &before) + 1e-9,
                "node {node} got hotter"
            );
        }
    }
}
