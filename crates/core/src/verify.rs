//! Independent verification of a final assignment against the **exact**
//! models — the clamped CRAC power of Eq. 3 and the full steady-state
//! thermal solve — rather than the linearizations the solvers used.

use crate::stage3::Stage3Solution;
use thermaware_datacenter::DataCenter;

/// The outcome of checking one assignment.
#[derive(Debug, Clone)]
pub struct VerificationReport {
    /// Total IT power (nodes, base included), kW.
    pub it_power_kw: f64,
    /// Total cooling power (exact Eq. 3, clamped), kW.
    pub cooling_power_kw: f64,
    /// Power budget headroom: `Pconst − (IT + cooling)`, kW (≥ 0 when
    /// feasible).
    pub power_headroom_kw: f64,
    /// Worst redline violation, °C (≤ 0 when feasible).
    pub worst_redline_violation_c: f64,
    /// Worst per-core utilization implied by the desired rates
    /// (Constraint 1 of Eq. 7; ≤ 1 when feasible). 0 when no rates were
    /// supplied.
    pub worst_core_utilization: f64,
    /// Worst arrival-rate overshoot ratio (Constraint 3; ≤ 1 when
    /// feasible). 0 when no rates were supplied.
    pub worst_arrival_ratio: f64,
}

impl VerificationReport {
    /// All constraints satisfied (with small float tolerances).
    pub fn is_feasible(&self) -> bool {
        self.power_headroom_kw >= -1e-6
            && self.worst_redline_violation_c <= 1e-6
            && self.worst_core_utilization <= 1.0 + 1e-6
            && self.worst_arrival_ratio <= 1.0 + 1e-6
    }
}

/// Check a P-state assignment (and optionally its Stage-3 rates) against
/// the exact power, thermal, capacity, and arrival constraints.
pub fn verify_assignment(
    dc: &DataCenter,
    crac_out_c: &[f64],
    pstates: &[usize],
    rates: Option<&Stage3Solution>,
) -> VerificationReport {
    let node_powers = dc.node_powers_from_pstates(pstates);
    let (it, cooling, state) = dc.total_power_kw(crac_out_c, &node_powers);
    let violation =
        state.redline_violation(dc.thermal.node_redline_c, dc.thermal.crac_redline_c);

    let (worst_util, worst_arrival) = match rates {
        None => (0.0, 0.0),
        Some(s3) => {
            let mut worst_util = 0.0_f64;
            for k in 0..dc.n_cores() {
                let nt = dc.core_type(k);
                let ps = pstates[k];
                let mut load = 0.0;
                for i in 0..dc.n_task_types() {
                    let tc = s3.tc(i, k);
                    if tc > 0.0 {
                        let ecs = dc.workload.ecs.ecs(i, nt, ps);
                        debug_assert!(ecs > 0.0, "rate on a zero-speed core");
                        load += tc / ecs;
                    }
                }
                worst_util = worst_util.max(load);
            }
            let mut worst_arrival = 0.0_f64;
            for i in 0..dc.n_task_types() {
                let total = s3.total_rate(dc, i);
                let lambda = dc.workload.task_types[i].arrival_rate;
                if lambda > 0.0 {
                    worst_arrival = worst_arrival.max(total / lambda);
                }
            }
            (worst_util, worst_arrival)
        }
    };

    VerificationReport {
        it_power_kw: it,
        cooling_power_kw: cooling,
        power_headroom_kw: dc.budget.p_const_kw - (it + cooling),
        worst_redline_violation_c: violation,
        worst_core_utilization: worst_util,
        worst_arrival_ratio: worst_arrival,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thermaware_datacenter::ScenarioParams;

    #[test]
    fn all_off_is_feasible_with_headroom() {
        let dc = ScenarioParams::small_test().build(1).unwrap();
        let pstates: Vec<usize> = (0..dc.n_cores())
            .map(|k| dc.node_type(dc.node_of_core(k)).core.pstates.off_index())
            .collect();
        let r = verify_assignment(&dc, &dc.budget.min_outlets_c.clone(), &pstates, None);
        assert!(r.is_feasible(), "{r:?}");
        assert!(r.power_headroom_kw > 0.0);
        assert_eq!(r.worst_core_utilization, 0.0);
    }

    #[test]
    fn all_p0_breaks_the_budget() {
        // Pconst = (Pmin+Pmax)/2 < Pmax, so all-P0 must be infeasible.
        let dc = ScenarioParams::small_test().build(2).unwrap();
        let pstates = vec![0usize; dc.n_cores()];
        let r = verify_assignment(&dc, &dc.budget.max_outlets_c.clone(), &pstates, None);
        assert!(!r.is_feasible());
        assert!(r.power_headroom_kw < 0.0);
    }

    #[test]
    fn too_warm_outlets_violate_redlines() {
        let dc = ScenarioParams::small_test().build(3).unwrap();
        let pstates = vec![0usize; dc.n_cores()];
        // Outlets at the node redline itself: any compute heat pushes
        // inlets over.
        let outlets = vec![dc.thermal.node_redline_c; dc.n_crac()];
        let r = verify_assignment(&dc, &outlets, &pstates, None);
        assert!(r.worst_redline_violation_c > 0.0);
    }
}
