//! Aggregate reward-rate curves `ARR_j` (paper Section V.B.2, Fig. 5).
//!
//! Stage 1 needs one power→reward curve per *core type*, not per task
//! type. The paper aggregates by averaging the `RR_{i,j}` curves of the
//! "best" ψ% of task types for that core type — best by mean
//! reward-per-watt over the active P-states — and then **dropping the
//! "bad" P-states** (those breaking concavity, like a deadline-infeasible
//! state) by taking the upper concave envelope. Concavity is what lets
//! Stage 1 model each core with plain LP segment variables instead of
//! binaries, and the paper argues the optimum never uses a bad P-state
//! anyway.

use crate::pwl::PiecewiseLinear;
use crate::rr::{mean_reward_per_watt, reward_rate_curve};
use serde::{Deserialize, Serialize};
use thermaware_power::PStateTable;
use thermaware_workload::Workload;

/// The aggregate reward-rate curve of one core type.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArrCurve {
    /// The concave curve Stage 1 optimizes against (upper envelope of
    /// `raw`).
    pub curve: PiecewiseLinear,
    /// The pre-envelope average of the selected task types' RR curves.
    pub raw: PiecewiseLinear,
    /// Task types that were averaged (the best ψ%), best first.
    pub chosen_types: Vec<usize>,
}

impl ArrCurve {
    /// Build `ARR_j` for node type `node_type` with parameter
    /// `psi_percent` ∈ (0, 100].
    ///
    /// Ties in the ranking are broken by task-type index (the paper
    /// breaks them arbitrarily); at least one task type is always chosen.
    pub fn build(
        workload: &Workload,
        pstates: &PStateTable,
        node_type: usize,
        psi_percent: f64,
    ) -> ArrCurve {
        assert!(
            psi_percent > 0.0 && psi_percent <= 100.0,
            "psi must be in (0, 100], got {psi_percent}"
        );
        let t = workload.n_task_types();
        let mut ranked: Vec<(usize, f64)> = (0..t)
            .map(|i| (i, mean_reward_per_watt(workload, pstates, i, node_type)))
            .collect();
        // Highest mean reward-per-watt first; index breaks ties.
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        let keep = ((t as f64 * psi_percent / 100.0).round() as usize).clamp(1, t);
        let chosen_types: Vec<usize> = ranked[..keep].iter().map(|&(i, _)| i).collect();

        let curves: Vec<PiecewiseLinear> = chosen_types
            .iter()
            .map(|&i| reward_rate_curve(workload, pstates, i, node_type))
            .collect();
        let refs: Vec<&PiecewiseLinear> = curves.iter().collect();
        let raw = PiecewiseLinear::average(&refs);
        let curve = raw.concave_hull();
        ArrCurve {
            curve,
            raw,
            chosen_types,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thermaware_workload::{EcsMatrix, TaskType, Workload};

    fn pstates() -> PStateTable {
        PStateTable::new(
            vec![0.15, 0.10, 0.05],
            vec![2500.0, 2000.0, 1500.0],
            vec![1.3, 1.2, 1.1],
        )
    }

    /// Two task types: type 0 is the Section-V.B.2 example; type 1 is a
    /// much less efficient one.
    fn workload(deadline0: f64) -> Workload {
        let ecs = EcsMatrix::from_blocks(vec![vec![
            vec![1.2, 0.9, 0.5, 0.0],
            vec![0.6, 0.45, 0.25, 0.0],
        ]]);
        Workload {
            task_types: vec![
                TaskType {
                    index: 0,
                    arrival_rate: 1.0,
                    reward: 1.0,
                    deadline_slack: deadline0,
                },
                TaskType {
                    index: 1,
                    arrival_rate: 1.0,
                    reward: 1.0,
                    deadline_slack: 100.0,
                },
            ],
            ecs,
        }
    }

    #[test]
    fn psi_selects_the_efficient_type() {
        let w = workload(100.0);
        // ψ = 50% of 2 types -> keep 1, and type 0 (double the speed at
        // the same power) must win.
        let arr = ArrCurve::build(&w, &pstates(), 0, 50.0);
        assert_eq!(arr.chosen_types, vec![0]);
        // With only type 0 chosen, ARR equals RR_0 (already concave).
        assert_eq!(arr.curve.points()[3], (0.15, 1.2));
    }

    #[test]
    fn psi_100_averages_everything() {
        let w = workload(100.0);
        let arr = ArrCurve::build(&w, &pstates(), 0, 100.0);
        assert_eq!(arr.chosen_types.len(), 2);
        // Average of 1.2 and 0.6 at P0.
        assert!((arr.raw.eval(0.15) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn figure_5_bad_pstate_dropped() {
        // Deadline 1.5 kills type 0's P-state 2 (Fig. 4); choosing only
        // type 0, the ARR hull must skip the (0.05, 0) breakpoint, giving
        // the paper's Fig.-5 curve.
        let w = workload(1.5);
        let arr = ArrCurve::build(&w, &pstates(), 0, 50.0);
        assert_eq!(arr.chosen_types, vec![0]);
        assert_eq!(
            arr.curve.points(),
            &[(0.0, 0.0), (0.10, 0.9), (0.15, 1.2)]
        );
        assert!(arr.curve.is_concave());
        assert!(!arr.raw.is_concave());
    }

    #[test]
    fn hull_never_below_raw() {
        for deadline in [0.9, 1.5, 3.0, 100.0] {
            let w = workload(deadline);
            let arr = ArrCurve::build(&w, &pstates(), 0, 100.0);
            for &(x, y) in arr.raw.points() {
                assert!(arr.curve.eval(x) >= y - 1e-12);
            }
            assert!(arr.curve.is_concave());
        }
    }

    #[test]
    #[should_panic(expected = "psi must be in")]
    fn zero_psi_rejected() {
        let w = workload(100.0);
        ArrCurve::build(&w, &pstates(), 0, 0.0);
    }

    #[test]
    fn at_least_one_type_is_kept() {
        let w = workload(100.0);
        // ψ = 1% of 2 types rounds to 0 but clamps to 1.
        let arr = ArrCurve::build(&w, &pstates(), 0, 1.0);
        assert_eq!(arr.chosen_types.len(), 1);
    }
}
