//! Task-type-dependent core power — the model extension the paper
//! sketches in Section III.C: *"it is possible to extend our model to
//! capture the effect of a task type (I/O or compute intensive task
//! types) on core power consumption. A third index would have to be added
//! to π."*
//!
//! Here π gains that third index multiplicatively on the **dynamic**
//! component: a core of type `j` in P-state `s` spending utilization
//! share `u_i` on task type `i` draws
//!
//! ```text
//! static(j,s) + dynamic(j,s) · ( idle·(1 − Σ_i u_i) + Σ_i factor_i · u_i )
//! ```
//!
//! with `u_i = TC(i,k)/ECS(i,j,s)` — I/O-heavy types (factor < 1) burn
//! less than the nameplate P-state power, exactly as the measurement
//! study the paper cites (\[23\]) reports. Since `u_i` is linear in the
//! decision variables, the first-step Stage-3 LP extends cleanly: the
//! power budget and the thermal redlines become rows **in TC** rather
//! than facts fixed by Stage 2.

use crate::stage3::Stage3Solution;
use thermaware_datacenter::DataCenter;
use thermaware_lp::{Problem, RowOp, Sense, VarId};
use thermaware_thermal::{cop, RHO_CP};

/// Per-task-type power behaviour.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskPowerModel {
    /// Multiplier on the dynamic power while executing each task type
    /// (1.0 = the paper's base model; < 1 for I/O-bound types).
    pub factors: Vec<f64>,
    /// Multiplier on the dynamic power while idle in the P-state
    /// (clock-gated idling burns less than full-tilt execution).
    pub idle_factor: f64,
}

impl TaskPowerModel {
    /// The paper's base model: every factor 1 (task type irrelevant).
    pub fn uniform(n_task_types: usize) -> TaskPowerModel {
        TaskPowerModel {
            factors: vec![1.0; n_task_types],
            idle_factor: 1.0,
        }
    }

    /// Validate against a workload size.
    fn check(&self, n_task_types: usize) {
        assert_eq!(self.factors.len(), n_task_types, "one factor per task type");
        assert!(
            self.factors.iter().all(|&f| (0.0..=2.0).contains(&f)),
            "factors outside [0, 2]"
        );
        assert!((0.0..=1.0).contains(&self.idle_factor), "idle factor outside [0, 1]");
    }
}

/// A task-power-aware Stage-3 result.
#[derive(Debug, Clone)]
pub struct TaskAwareSolution {
    /// The optimal reward rate under the extended model.
    pub reward_rate: f64,
    /// The Stage-3-compatible rates (same indexing contract).
    pub stage3: Stage3Solution,
    /// Exact total power (IT + cooling) the mix draws, kW.
    pub total_power_kw: f64,
    /// Dual value of each group's capacity row — the marginal reward per
    /// extra unit of that group's capacity. Drives the reclamation loop.
    pub capacity_duals: Vec<f64>,
    /// `(node, pstate, count)` of each group, aligned with
    /// `capacity_duals`.
    pub group_info: Vec<(usize, usize, usize)>,
}

/// Solve the Stage-3 assignment under task-dependent power: maximize
/// reward subject to capacity, arrivals, **and** the power budget and
/// redlines evaluated at the utilization-dependent node powers.
///
/// With [`TaskPowerModel::uniform`] this reduces to the paper's base
/// model (the power rows become exactly Stage 2's constant powers, which
/// Stage 1 already certified feasible), so the plain
/// [`crate::stage3::solve_stage3`] objective is recovered — asserted in
/// the tests.
pub fn solve_stage3_task_aware(
    dc: &DataCenter,
    pstates: &[usize],
    crac_out_c: &[f64],
    model: &TaskPowerModel,
) -> Result<TaskAwareSolution, String> {
    assert_eq!(pstates.len(), dc.n_cores());
    let t = dc.n_task_types();
    model.check(t);
    let nn = dc.n_nodes();
    let coeff = dc.thermal.coefficients(crac_out_c);

    // ---- Group cores by (node, P-state): cores of one node share a type,
    // so within a node the P-state fully determines behaviour. ----------
    struct Group {
        node: usize,
        pstate: usize,
        count: usize,
        first_core: usize,
    }
    let mut groups: Vec<Group> = Vec::new();
    for node in 0..nn {
        let mut by_ps: std::collections::BTreeMap<usize, (usize, usize)> = Default::default();
        for k in dc.cores_of_node(node) {
            let e = by_ps.entry(pstates[k]).or_insert((0, k));
            e.0 += 1;
        }
        for (ps, (count, first_core)) in by_ps {
            groups.push(Group {
                node,
                pstate: ps,
                count,
                first_core,
            });
        }
    }

    // Static/dynamic split per group (from the node type's calibrated
    // ladder: static scales with voltage, dynamic is the remainder).
    let split: Vec<(f64, f64)> = groups
        .iter()
        .map(|g| {
            let nt = dc.node_type(g.node);
            let ps = &nt.core.pstates;
            if ps.is_off(g.pstate) {
                (0.0, 0.0)
            } else {
                // Reconstruct the static share from the P-state-0
                // calibration: static(s) = beta·V_s; beta = static0/V0.
                // We recover it through the table's voltage column.
                let total = ps.power_kw(g.pstate);
                let v = ps.voltage(g.pstate);
                let v0 = ps.voltage(0);
                // static0 is not stored; derive from the P0 split implied
                // by the deepest state's excess over pure dynamic scaling.
                // Simpler and exact: solve the 2x2 system from two states'
                // totals: total_s = sc·f_s·V_s² + beta·V_s.
                let f0 = ps.freq_mhz(0);
                let t0 = ps.power_kw(0);
                let fs = ps.freq_mhz(g.pstate);
                // [f0·V0², V0; fs·Vs², Vs] [sc, beta]^T = [t0, total]
                let a11 = f0 * v0 * v0;
                let a12 = v0;
                let a21 = fs * v * v;
                let a22 = v;
                let det = a11 * a22 - a12 * a21;
                let (sc, beta) = if det.abs() < 1e-18 {
                    (t0 / a11, 0.0)
                } else {
                    (
                        (t0 * a22 - a12 * total) / det,
                        (a11 * total - t0 * a21) / det,
                    )
                };
                let stat = (beta * v).max(0.0);
                let dyn_ = (sc * fs * v * v).max(0.0);
                // Guard numerical drift: the split must resum to total.
                let sum = stat + dyn_;
                if sum > 0.0 {
                    (stat * total / sum, dyn_ * total / sum)
                } else {
                    (0.0, total)
                }
            }
        })
        .collect();

    // ---- LP ----------------------------------------------------------------
    let mut p = Problem::new(Sense::Maximize);
    // vars[g][i]: total rate of type i over group g's cores.
    let mut vars: Vec<Vec<Option<VarId>>> = Vec::with_capacity(groups.len());
    for (gi, g) in groups.iter().enumerate() {
        let nt_idx = dc.node_type_of[g.node];
        let mut row = Vec::with_capacity(t);
        for i in 0..t {
            let ecs = dc.workload.ecs.ecs(i, nt_idx, g.pstate);
            let ok = ecs > 0.0 && dc.workload.deadline_feasible(i, nt_idx, g.pstate);
            row.push(ok.then(|| {
                p.add_var(
                    &format!("tc_g{gi}_t{i}"),
                    0.0,
                    f64::INFINITY,
                    dc.workload.task_types[i].reward,
                )
            }));
        }
        vars.push(row);
    }
    // Capacity per group (row ids kept so the reclamation loop can read
    // the duals).
    let mut cap_rows: Vec<Option<thermaware_lp::ConstraintId>> = Vec::with_capacity(groups.len());
    for (gi, g) in groups.iter().enumerate() {
        let nt_idx = dc.node_type_of[g.node];
        let terms: Vec<(VarId, f64)> = (0..t)
            .filter_map(|i| {
                vars[gi][i].map(|v| (v, 1.0 / dc.workload.ecs.ecs(i, nt_idx, g.pstate)))
            })
            .collect();
        if !terms.is_empty() {
            cap_rows.push(Some(p.add_row_nodup(
                &format!("cap_g{gi}"),
                &terms,
                RowOp::Le,
                g.count as f64,
            )));
        } else {
            cap_rows.push(None);
        }
    }
    // Arrivals.
    for i in 0..t {
        let terms: Vec<(VarId, f64)> = (0..groups.len())
            .filter_map(|g| vars[g][i].map(|v| (v, 1.0)))
            .collect();
        if !terms.is_empty() {
            p.add_row_nodup(
                &format!("arr_t{i}"),
                &terms,
                RowOp::Le,
                dc.workload.task_types[i].arrival_rate,
            );
        }
    }

    // Node power as an affine function of the TC variables:
    //   P_j = base_j + Σ_{g∈j} [count·(static + dyn·idle)
    //          + Σ_i dyn·(factor_i − idle)/ECS(i) · TC(i,g)]
    let fixed_node_power: Vec<f64> = {
        let mut fixed: Vec<f64> = (0..nn).map(|j| dc.node_type(j).base_power_kw).collect();
        for (gi, g) in groups.iter().enumerate() {
            let (stat, dyn_) = split[gi];
            fixed[g.node] += g.count as f64 * (stat + dyn_ * model.idle_factor);
        }
        fixed
    };
    // TC coefficient of node power, per (group, type).
    let power_coeff = |gi: usize, i: usize| -> f64 {
        let g = &groups[gi];
        let nt_idx = dc.node_type_of[g.node];
        let ecs = dc.workload.ecs.ecs(i, nt_idx, g.pstate);
        if ecs <= 0.0 {
            return 0.0;
        }
        split[gi].1 * (model.factors[i] - model.idle_factor) / ecs
    };

    // Thermal rows: Tin_u = base + Σ_j G[u][j]·P_j(TC) <= redline.
    let add_affine_row = |name: &str,
                              p: &mut Problem,
                              g_of_node: &dyn Fn(usize) -> f64,
                              rhs_minus_base: f64| {
        let mut terms: Vec<(VarId, f64)> = Vec::new();
        let mut fixed = 0.0;
        for (gi, g) in groups.iter().enumerate() {
            let gn = g_of_node(g.node);
            if gn.abs() < 1e-14 {
                continue;
            }
            for i in 0..t {
                if let Some(v) = vars[gi][i] {
                    let c = gn * power_coeff(gi, i);
                    if c != 0.0 { // lint: allow(float-eq): skip exactly-zero computed coefficients; a zero term is harmless either way
                        terms.push((v, c));
                    }
                }
            }
        }
        for j in 0..nn {
            fixed += g_of_node(j) * fixed_node_power[j];
        }
        p.add_row_nodup(name, &terms, RowOp::Le, rhs_minus_base - fixed);
    };
    for u in 0..nn {
        add_affine_row(
            &format!("redline_node{u}"),
            &mut p,
            &|j| coeff.g_node[(u, j)],
            dc.thermal.node_redline_c - coeff.base_node[u],
        );
    }
    for c in 0..dc.n_crac() {
        add_affine_row(
            &format!("redline_crac{c}"),
            &mut p,
            &|j| coeff.g_crac[(c, j)],
            dc.thermal.crac_redline_c - coeff.base_crac[c],
        );
    }
    // Power budget with the linearized CRAC power (as in Stage 1).
    let w: Vec<f64> = (0..dc.n_crac())
        .map(|c| RHO_CP * dc.cracs[c].flow_m3s / cop::cop(crac_out_c[c]))
        .collect();
    let node_coeff: Vec<f64> = (0..nn)
        .map(|j| 1.0 + (0..dc.n_crac()).map(|c| w[c] * coeff.g_crac[(c, j)]).sum::<f64>())
        .collect();
    let crac_fixed: f64 = (0..dc.n_crac())
        .map(|c| w[c] * (coeff.base_crac[c] - crac_out_c[c]))
        .sum();
    add_affine_row(
        "power_budget",
        &mut p,
        &|j| node_coeff[j],
        dc.budget.p_const_kw - crac_fixed,
    );

    let sol = p.solve().map_err(|e| format!("task-aware Stage 3 LP: {e}"))?;

    // ---- Re-package as a Stage3Solution --------------------------------
    let mut group_of_core = vec![usize::MAX; dc.n_cores()];
    for (gi, g) in groups.iter().enumerate() {
        for k in dc.cores_of_node(g.node) {
            if pstates[k] == g.pstate {
                group_of_core[k] = gi;
            }
        }
        debug_assert!(g.first_core < dc.n_cores());
    }
    let rate_per_core: Vec<Vec<f64>> = (0..groups.len())
        .map(|gi| {
            (0..t)
                .map(|i| match vars[gi][i] {
                    Some(v) => sol.value(v).max(0.0) / groups[gi].count as f64,
                    None => 0.0,
                })
                .collect()
        })
        .collect();
    let stage3 = Stage3Solution {
        reward_rate: sol.objective,
        rate_per_core,
        group_of_core,
        groups: groups
            .iter()
            .map(|g| (dc.node_type_of[g.node], g.pstate))
            .collect(),
    };

    // Exact power at the mix.
    let mut node_powers = fixed_node_power;
    for (gi, _) in groups.iter().enumerate() {
        for i in 0..t {
            if let Some(v) = vars[gi][i] {
                node_powers[groups[gi].node] += power_coeff(gi, i) * sol.value(v).max(0.0);
            }
        }
    }
    let (it, cooling, _) = dc.total_power_kw(crac_out_c, &node_powers);

    let capacity_duals: Vec<f64> = cap_rows
        .iter()
        .map(|row| row.map_or(0.0, |r| sol.dual(r)))
        .collect();
    let group_info: Vec<(usize, usize, usize)> = groups
        .iter()
        .map(|g| (g.node, g.pstate, g.count))
        .collect();
    Ok(TaskAwareSolution {
        reward_rate: sol.objective,
        stage3,
        total_power_kw: it + cooling,
        capacity_duals,
        group_info,
    })
}

/// Greedy **power reclamation**: when the task mix draws less than the
/// nameplate P-state powers (I/O-bound types), the budget gains headroom
/// the fixed P-state plan cannot spend. This loop upgrades one core at a
/// time — from the group whose capacity dual (marginal reward per unit
/// capacity) times its speedup pays the most per reclaimed watt — and
/// re-solves, keeping every iterate feasible under the exact models.
///
/// Returns the upgraded P-state assignment and its solution. Stops when
/// no affordable upgrade improves the reward, or after `max_upgrades`.
pub fn reclaim_power(
    dc: &DataCenter,
    pstates: &[usize],
    crac_out_c: &[f64],
    model: &TaskPowerModel,
    max_upgrades: usize,
) -> Result<(Vec<usize>, TaskAwareSolution), String> {
    let mut current = pstates.to_vec();
    let mut best = solve_stage3_task_aware(dc, &current, crac_out_c, model)?;
    for _ in 0..max_upgrades {
        let headroom = dc.budget.p_const_kw - best.total_power_kw;
        if headroom <= 1e-6 {
            break;
        }
        // Candidate upgrades: one core of a binding group moves one
        // P-state shallower. Score = dual * (speed ratio - 1) per
        // nameplate watt.
        let mut candidates: Vec<(f64, usize)> = Vec::new(); // (score, core)
        for (gi, &(node, ps, _count)) in best.group_info.iter().enumerate() {
            if ps == 0 {
                continue; // already shallowest
            }
            let dual = best.capacity_duals[gi];
            if dual <= 1e-9 {
                continue; // capacity not binding; speed buys nothing
            }
            let nt = dc.node_type(node);
            let table = &nt.core.pstates;
            let delta_power = table.power_kw(ps - 1) - table.power_kw(ps);
            if delta_power > headroom * 0.95 {
                continue; // cannot afford (with safety margin for the mix)
            }
            // Mean speedup over task types from ps to ps-1 (off -> use the
            // deepest active state's speeds as "from zero" gain 1.0).
            let nt_idx = dc.node_type_of[node];
            let speedup: f64 = if table.is_off(ps) {
                1.0
            } else {
                let mut num = 0.0;
                let mut den = 0.0;
                for i in 0..dc.n_task_types() {
                    num += dc.workload.ecs.ecs(i, nt_idx, ps - 1);
                    den += dc.workload.ecs.ecs(i, nt_idx, ps);
                }
                if den > 0.0 {
                    (num / den - 1.0).max(0.0)
                } else {
                    1.0
                }
            };
            let score = dual * speedup / delta_power.max(1e-12);
            if score <= 0.0 {
                continue;
            }
            // Any core of this group will do; take the first.
            if let Some(core) = dc
                .cores_of_node(node)
                .find(|&k| current[k] == ps)
            {
                candidates.push((score, core));
            }
        }
        candidates.sort_by(|a, b| b.0.total_cmp(&a.0));
        let mut improved = false;
        for &(_, core) in candidates.iter().take(4) {
            let mut trial = current.clone();
            trial[core] -= 1;
            match solve_stage3_task_aware(dc, &trial, crac_out_c, model) {
                Ok(sol)
                    if sol.total_power_kw <= dc.budget.p_const_kw * (1.0 + 1e-7) + 1e-7
                        && sol.reward_rate > best.reward_rate + 1e-9 =>
                {
                    current = trial;
                    best = sol;
                    improved = true;
                    break;
                }
                _ => {}
            }
        }
        if !improved {
            break;
        }
    }
    Ok((current, best))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::three_stage::{solve_three_stage, ThreeStageOptions};
    use thermaware_datacenter::ScenarioParams;

    fn setup() -> (DataCenter, crate::three_stage::ThreeStageSolution) {
        let dc = ScenarioParams::small_test().build(1).unwrap();
        let plan = solve_three_stage(&dc, &ThreeStageOptions::default()).unwrap();
        (dc, plan)
    }

    #[test]
    fn uniform_factors_recover_the_base_model() {
        let (dc, plan) = setup();
        let model = TaskPowerModel::uniform(dc.n_task_types());
        let aware =
            solve_stage3_task_aware(&dc, &plan.pstates, plan.crac_out_c(), &model).unwrap();
        let diff = (aware.reward_rate - plan.reward_rate()).abs();
        assert!(
            diff <= 1e-5 * (1.0 + plan.reward_rate()),
            "task-aware {} vs base {}",
            aware.reward_rate,
            plan.reward_rate()
        );
    }

    #[test]
    fn cheaper_tasks_never_reduce_reward() {
        // Factors <= 1 only relax the power/thermal rows relative to the
        // uniform model, so the optimum cannot drop.
        let (dc, plan) = setup();
        let uniform = TaskPowerModel::uniform(dc.n_task_types());
        let io_ish = TaskPowerModel {
            factors: vec![0.6; dc.n_task_types()],
            idle_factor: 0.5,
        };
        let base =
            solve_stage3_task_aware(&dc, &plan.pstates, plan.crac_out_c(), &uniform).unwrap();
        let relaxed =
            solve_stage3_task_aware(&dc, &plan.pstates, plan.crac_out_c(), &io_ish).unwrap();
        assert!(relaxed.reward_rate >= base.reward_rate - 1e-9);
        assert!(relaxed.total_power_kw <= dc.budget.p_const_kw * (1.0 + 1e-6));
    }

    #[test]
    fn hungry_tasks_bind_the_budget() {
        // Factors > 1 make execution *more* expensive than the nameplate
        // P-state power; the power row must bind and the reward drop
        // below the base model's.
        let (dc, plan) = setup();
        let hungry = TaskPowerModel {
            factors: vec![2.0; dc.n_task_types()],
            idle_factor: 1.0,
        };
        let aware =
            solve_stage3_task_aware(&dc, &plan.pstates, plan.crac_out_c(), &hungry).unwrap();
        assert!(
            aware.reward_rate < plan.reward_rate(),
            "hungry {} !< base {}",
            aware.reward_rate,
            plan.reward_rate()
        );
        assert!(aware.total_power_kw <= dc.budget.p_const_kw * (1.0 + 1e-5) + 1e-5);
    }

    #[test]
    fn mixed_factors_respect_power_exactly() {
        let (dc, plan) = setup();
        let mixed = TaskPowerModel {
            factors: (0..dc.n_task_types())
                .map(|i| 0.5 + 0.2 * (i % 4) as f64)
                .collect(),
            idle_factor: 0.4,
        };
        let aware =
            solve_stage3_task_aware(&dc, &plan.pstates, plan.crac_out_c(), &mixed).unwrap();
        assert!(aware.reward_rate > 0.0);
        assert!(aware.total_power_kw <= dc.budget.p_const_kw * (1.0 + 1e-5) + 1e-5);
    }

    #[test]
    fn reclamation_uses_freed_headroom() {
        // With an I/O-light mix the fixed plan leaves power on the table;
        // the reclamation loop must convert some of it into reward while
        // staying inside the exact budget.
        let (dc, plan) = setup();
        let io_ish = TaskPowerModel {
            factors: vec![0.5; dc.n_task_types()],
            idle_factor: 0.4,
        };
        let fixed =
            solve_stage3_task_aware(&dc, &plan.pstates, plan.crac_out_c(), &io_ish).unwrap();
        let (upgraded, reclaimed) =
            reclaim_power(&dc, &plan.pstates, plan.crac_out_c(), &io_ish, 32).unwrap();
        assert!(
            reclaimed.reward_rate >= fixed.reward_rate,
            "reclamation lost reward: {} -> {}",
            fixed.reward_rate,
            reclaimed.reward_rate
        );
        assert!(reclaimed.total_power_kw <= dc.budget.p_const_kw * (1.0 + 1e-6) + 1e-6);
        // Some upgrade actually happened (the plan had headroom).
        let changed = upgraded
            .iter()
            .zip(&plan.pstates)
            .filter(|(a, b)| a != b)
            .count();
        // Both rates come out of independent stage-3 accumulations, so
        // "unchanged" means equal up to rounding, not bit-equal.
        assert!(
            changed > 0 || thermaware_linalg::approx::eq_ulps(reclaimed.reward_rate, fixed.reward_rate, 4),
            "no upgrades despite headroom"
        );
    }

    #[test]
    fn reclamation_is_a_noop_without_headroom() {
        // Stage-2 rounding can leave budget headroom even under uniform
        // factors (the discrete ladder rarely lands exactly on the
        // budget), so construct the no-headroom premise explicitly:
        // shrink the budget to the fixed plan's exact draw. The loop must
        // then terminate immediately at the base reward with the
        // P-states untouched.
        let (mut dc, plan) = setup();
        let uniform = TaskPowerModel::uniform(dc.n_task_types());
        let fixed =
            solve_stage3_task_aware(&dc, &plan.pstates, plan.crac_out_c(), &uniform).unwrap();
        dc.budget.p_const_kw = fixed.total_power_kw;
        let (upgraded, sol) =
            reclaim_power(&dc, &plan.pstates, plan.crac_out_c(), &uniform, 8).unwrap();
        let diff = (sol.reward_rate - fixed.reward_rate).abs();
        assert!(
            diff <= 1e-4 * (1.0 + fixed.reward_rate) + 1e-6,
            "noop reclamation changed reward: {} vs {}",
            sol.reward_rate,
            fixed.reward_rate
        );
        assert_eq!(upgraded, plan.pstates, "P-states changed without headroom");
    }

    #[test]
    #[should_panic(expected = "one factor per task type")]
    fn wrong_factor_count_panics() {
        let (dc, plan) = setup();
        let bad = TaskPowerModel {
            factors: vec![1.0; 3],
            idle_factor: 1.0,
        };
        let _ = solve_stage3_task_aware(&dc, &plan.pstates, plan.crac_out_c(), &bad);
    }
}
