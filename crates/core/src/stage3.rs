//! Stage 3: optimal desired execution rates `TC(i, k)` for fixed P-states
//! and CRAC outlets (paper Section V.B.4).
//!
//! With the other two decision groups fixed, Eq. 7 collapses to an LP.
//! Cores with the same `(node type, P-state)` are statistically identical
//! — same speeds, same deadline feasibility — so the LP is solved over
//! *groups* with the per-core capacity constraint scaled by the group
//! size, then split evenly back to cores. The grouping is lossless: any
//! per-core optimum can be symmetrized into a per-group one with the same
//! objective, and vice versa.

use crate::error::SolveError;
use serde::{Deserialize, Serialize};
use thermaware_datacenter::DataCenter;
use thermaware_lp::{Problem, RowOp, Sense, VarId};

/// The Stage-3 result: desired execution rates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Stage3Solution {
    /// The optimal total reward rate (Eq. 7's objective).
    pub reward_rate: f64,
    /// Desired rate of task type `i` on *each individual core* of group
    /// `g`: `rate_per_core[g][i]`.
    pub rate_per_core: Vec<Vec<f64>>,
    /// Group key of every core: `group_of_core[k]` indexes
    /// `rate_per_core`.
    pub group_of_core: Vec<usize>,
    /// `(node_type, pstate)` of each group.
    pub groups: Vec<(usize, usize)>,
}

/// Opaque warm-start handle for Stage-3 re-solves.
///
/// Wraps the LP engine's [`thermaware_lp::Basis`] so downstream crates
/// (the runtime supervisor) can persist and replay it without taking a
/// direct dependency on the LP crate. The handle is only honoured when
/// the rebuilt LP has the same structure (same groups, same rows); a
/// structural change — e.g. a fault creating a new `(type, off)` group —
/// silently degrades to a cold solve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Stage3Basis {
    inner: thermaware_lp::Basis,
}

impl Stage3Solution {
    /// Desired execution rate `TC(i, k)` of task type `i` on core `k`.
    pub fn tc(&self, task_type: usize, core: usize) -> f64 {
        self.rate_per_core[self.group_of_core[core]][task_type]
    }

    /// Total desired rate of task type `i` over all cores.
    pub fn total_rate(&self, dc: &DataCenter, task_type: usize) -> f64 {
        (0..dc.n_cores()).map(|k| self.tc(task_type, k)).sum()
    }
}

/// Solve Stage 3 for a concrete P-state assignment (global core order).
pub fn solve_stage3(dc: &DataCenter, pstates: &[usize]) -> Result<Stage3Solution, SolveError> {
    solve_stage3_warm(dc, pstates, None).map(|(sol, _)| sol)
}

/// [`solve_stage3`] with basis reuse: start from `warm` when compatible
/// and hand back this solve's basis for the next re-solve.
///
/// The supervisor's post-fault replans perturb only a few capacities, so
/// the pre-fault basis is typically a handful of dual-simplex pivots from
/// the new optimum instead of a full cold solve.
pub fn solve_stage3_warm(
    dc: &DataCenter,
    pstates: &[usize],
    warm: Option<&Stage3Basis>,
) -> Result<(Stage3Solution, Option<Stage3Basis>), SolveError> {
    if pstates.len() != dc.n_cores() {
        return Err(SolveError::invalid_input(format!(
            "stage 3: {} P-states for {} cores",
            pstates.len(),
            dc.n_cores()
        )));
    }
    let t = dc.n_task_types();

    // ---- Group cores by (node type, P-state) -----------------------------
    let mut group_index: Vec<Vec<Option<usize>>> = dc
        .node_types
        .iter()
        .map(|nt| vec![None; nt.core.pstates.n_total()])
        .collect();
    let mut groups: Vec<(usize, usize)> = Vec::new();
    let mut counts: Vec<usize> = Vec::new();
    let mut group_of_core = vec![usize::MAX; dc.n_cores()];
    for k in 0..dc.n_cores() {
        let nt = dc.core_type(k);
        let ps = pstates[k];
        let slot = &mut group_index[nt][ps];
        let g = match *slot {
            Some(g) => g,
            None => {
                groups.push((nt, ps));
                counts.push(0);
                *slot = Some(groups.len() - 1);
                groups.len() - 1
            }
        };
        counts[g] += 1;
        group_of_core[k] = g;
    }

    // ---- Grouped LP --------------------------------------------------------
    let mut p = Problem::new(Sense::Maximize);
    // vars[g][i]: total desired rate of type i across group g's cores
    // (None when the type can't run there: off state, zero speed, or
    // deadline-infeasible — Constraint 2 of Eq. 7 fixes those to 0).
    let mut vars: Vec<Vec<Option<VarId>>> = Vec::with_capacity(groups.len());
    for (g, &(nt, ps)) in groups.iter().enumerate() {
        let mut row = Vec::with_capacity(t);
        for i in 0..t {
            let ecs = dc.workload.ecs.ecs(i, nt, ps);
            let feasible = ecs > 0.0 && dc.workload.deadline_feasible(i, nt, ps);
            row.push(feasible.then(|| {
                p.add_var(
                    &format!("tc_g{g}_t{i}"),
                    0.0,
                    f64::INFINITY,
                    dc.workload.task_types[i].reward,
                )
            }));
        }
        vars.push(row);
    }
    // Constraint 1 (capacity), grouped: Σ_i TC(i,g)/ECS <= count(g).
    for (g, &(nt, ps)) in groups.iter().enumerate() {
        let terms: Vec<(VarId, f64)> = (0..t)
            .filter_map(|i| {
                vars[g][i].map(|v| (v, 1.0 / dc.workload.ecs.ecs(i, nt, ps)))
            })
            .collect();
        if !terms.is_empty() {
            p.add_row_nodup(
                &format!("cap_g{g}"),
                &terms,
                RowOp::Le,
                counts[g] as f64,
            );
        }
    }
    // Constraint 3 (arrivals): Σ_g TC(i,g) <= λ_i.
    for i in 0..t {
        let terms: Vec<(VarId, f64)> = (0..groups.len())
            .filter_map(|g| vars[g][i].map(|v| (v, 1.0)))
            .collect();
        if !terms.is_empty() {
            p.add_row_nodup(
                &format!("arrival_t{i}"),
                &terms,
                RowOp::Le,
                dc.workload.task_types[i].arrival_rate,
            );
        }
    }

    let mut sol = p
        .solve_warm(warm.map(|b| &b.inner))
        .map_err(|e| SolveError::Lp {
            stage: "stage3",
            source: e,
        })?;
    let next_basis = sol.take_basis().map(|inner| Stage3Basis { inner });

    let rate_per_core: Vec<Vec<f64>> = (0..groups.len())
        .map(|g| {
            (0..t)
                .map(|i| match vars[g][i] {
                    Some(v) => sol.value(v).max(0.0) / counts[g] as f64,
                    None => 0.0,
                })
                .collect()
        })
        .collect();

    Ok((
        Stage3Solution {
            reward_rate: sol.objective,
            rate_per_core,
            group_of_core,
            groups,
        },
        next_basis,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use thermaware_datacenter::ScenarioParams;

    fn dc() -> DataCenter {
        ScenarioParams::small_test().build(1).unwrap()
    }

    #[test]
    fn all_p0_reward_is_positive_and_bounded() {
        let dc = dc();
        let pstates = vec![0usize; dc.n_cores()];
        let s = solve_stage3(&dc, &pstates).unwrap();
        assert!(s.reward_rate > 0.0);
        assert!(s.reward_rate <= dc.workload.max_reward_rate() * (1.0 + 1e-9));
    }

    #[test]
    fn all_off_earns_nothing() {
        let dc = dc();
        let pstates: Vec<usize> = (0..dc.n_cores())
            .map(|k| dc.node_type(dc.node_of_core(k)).core.pstates.off_index())
            .collect();
        let s = solve_stage3(&dc, &pstates).unwrap();
        assert_eq!(s.reward_rate, 0.0);
        for i in 0..dc.n_task_types() {
            assert_eq!(s.total_rate(&dc, i), 0.0);
        }
    }

    #[test]
    fn capacity_constraint_holds_per_core() {
        let dc = dc();
        let pstates = vec![0usize; dc.n_cores()];
        let s = solve_stage3(&dc, &pstates).unwrap();
        for k in 0..dc.n_cores() {
            let nt = dc.core_type(k);
            let load: f64 = (0..dc.n_task_types())
                .map(|i| {
                    let ecs = dc.workload.ecs.ecs(i, nt, 0);
                    if ecs > 0.0 {
                        s.tc(i, k) / ecs
                    } else {
                        0.0
                    }
                })
                .sum();
            assert!(load <= 1.0 + 1e-7, "core {k} utilization {load}");
        }
    }

    #[test]
    fn arrival_constraint_holds() {
        let dc = dc();
        let pstates = vec![0usize; dc.n_cores()];
        let s = solve_stage3(&dc, &pstates).unwrap();
        for i in 0..dc.n_task_types() {
            let total = s.total_rate(&dc, i);
            assert!(
                total <= dc.workload.task_types[i].arrival_rate * (1.0 + 1e-7),
                "type {i}: {total} > λ"
            );
        }
    }

    #[test]
    fn deeper_pstates_earn_less() {
        let dc = dc();
        let p0 = vec![0usize; dc.n_cores()];
        let p2: Vec<usize> = (0..dc.n_cores()).map(|_| 2).collect();
        let r0 = solve_stage3(&dc, &p0).unwrap().reward_rate;
        let r2 = solve_stage3(&dc, &p2).unwrap().reward_rate;
        assert!(r2 < r0, "P2 reward {r2} !< P0 reward {r0}");
        assert!(r2 > 0.0);
    }

    #[test]
    fn warm_replan_matches_cold_after_pstate_change() {
        let dc = dc();
        // First solve at a mixed assignment yields a reusable basis.
        let pstates: Vec<usize> = (0..dc.n_cores()).map(|k| k % 2).collect();
        let (_, basis) = solve_stage3_warm(&dc, &pstates, None).unwrap();
        assert!(basis.is_some(), "optimal solve must return a basis");
        // Same structure, re-solved warm: identical answer, and the
        // resumed basis is already optimal so no pivots are spent.
        let (warm, _) = solve_stage3_warm(&dc, &pstates, basis.as_ref()).unwrap();
        let cold = solve_stage3(&dc, &pstates).unwrap();
        assert!((warm.reward_rate - cold.reward_rate).abs() < 1e-9);
        assert_eq!(warm.rate_per_core.len(), cold.rate_per_core.len());
        // A structural change (new off group) must degrade gracefully to
        // a cold solve rather than corrupting the answer.
        let off: Vec<usize> = (0..dc.n_cores())
            .map(|k| dc.node_type(dc.node_of_core(k)).core.pstates.off_index())
            .collect();
        let (changed, _) = solve_stage3_warm(&dc, &off, basis.as_ref()).unwrap();
        assert_eq!(changed.reward_rate, 0.0);
    }

    #[test]
    fn mixed_assignment_groups_correctly() {
        let dc = dc();
        let pstates: Vec<usize> = (0..dc.n_cores()).map(|k| k % 3).collect();
        let s = solve_stage3(&dc, &pstates).unwrap();
        // Group count bounded by node types x P-states actually used.
        assert!(s.groups.len() <= dc.node_types.len() * 3);
        // Every core has a valid group.
        for k in 0..dc.n_cores() {
            let g = s.group_of_core[k];
            assert_eq!(s.groups[g].0, dc.core_type(k));
            assert_eq!(s.groups[g].1, pstates[k]);
        }
    }
}
