//! Stage 2: convert continuous per-core powers into discrete P-states
//! (paper Section V.B.3).
//!
//! The paper's procedure, verbatim:
//!
//! 1. Give each core the *highest possible* P-state whose power is still
//!    at least the assigned `PCORE_k`. P-state indices increase as power
//!    falls, so this rounds the power **up** to the nearest P-state.
//! 2. Per node, while Eq. 1's node power exceeds the Stage-1 node power,
//!    increment (deepen by one) the P-state of the core currently holding
//!    the smallest P-state index — by concavity of ARR, the shallow
//!    (power-hungry) states have the worst marginal reward per watt, so
//!    they are the cheapest to give up.
//!
//! Because Stage 1's per-core distribution leaves almost every core
//! exactly on a P-state power, step 2 rarely fires.

use crate::stage1::Stage1Solution;
use thermaware_datacenter::DataCenter;

/// Round a Stage-1 power plan to a per-core P-state assignment (global
/// core order). The returned assignment never exceeds any node's Stage-1
/// core-power total (beyond a 1e-9 float tolerance), so Stage-1
/// feasibility carries over.
pub fn assign_pstates(dc: &DataCenter, stage1: &Stage1Solution) -> Vec<usize> {
    let mut pstates = vec![0usize; dc.n_cores()];
    for node in 0..dc.n_nodes() {
        let table = &dc.node_type(node).core.pstates;
        // Step 1: round each core's power up to a P-state.
        for k in dc.cores_of_node(node) {
            pstates[k] = table.deepest_at_or_above(stage1.core_power_kw[k]);
        }
        // Step 2: walk the node back under its Stage-1 power.
        let budget = stage1.node_core_power_kw[node] + 1e-9;
        loop {
            let used: f64 = dc
                .cores_of_node(node)
                .map(|k| table.power_kw(pstates[k]))
                .sum();
            if used <= budget {
                break;
            }
            // Deepen the core with the smallest (most power-hungry)
            // P-state index; the off state cannot deepen further.
            let victim = dc
                .cores_of_node(node)
                .filter(|&k| pstates[k] < table.off_index())
                .min_by_key(|&k| pstates[k]);
            match victim {
                Some(k) => pstates[k] += 1,
                None => break, // everything already off
            }
        }
    }
    pstates
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stage1::{solve_stage1, Stage1Options};
    use thermaware_datacenter::ScenarioParams;

    #[test]
    fn rounding_respects_stage1_node_power() {
        let dc = ScenarioParams::small_test().build(1).unwrap();
        let s1 = solve_stage1(&dc, &Stage1Options::default()).unwrap();
        let pstates = assign_pstates(&dc, &s1);
        assert_eq!(pstates.len(), dc.n_cores());
        for node in 0..dc.n_nodes() {
            let table = &dc.node_type(node).core.pstates;
            let used: f64 = dc
                .cores_of_node(node)
                .map(|k| table.power_kw(pstates[k]))
                .sum();
            assert!(
                used <= s1.node_core_power_kw[node] + 1e-6,
                "node {node}: {used} > {}",
                s1.node_core_power_kw[node]
            );
        }
    }

    #[test]
    fn rounding_loses_little_power() {
        // Stage 1 leaves cores on P-state powers, so the rounded plan
        // should capture nearly all of the continuous power budget.
        let dc = ScenarioParams::small_test().build(2).unwrap();
        let s1 = solve_stage1(&dc, &Stage1Options::default()).unwrap();
        let pstates = assign_pstates(&dc, &s1);
        let planned: f64 = s1.node_core_power_kw.iter().sum();
        let realized: f64 = (0..dc.n_cores())
            .map(|k| {
                dc.node_type(dc.node_of_core(k))
                    .core
                    .pstates
                    .power_kw(pstates[k])
            })
            .sum();
        assert!(
            realized >= 0.9 * planned,
            "realized {realized} of planned {planned}"
        );
        assert!(realized <= planned + 1e-6);
    }

    #[test]
    fn exact_pstate_powers_round_trip() {
        // A hand-built Stage-1 plan sitting exactly on P-state powers must
        // come back unchanged.
        let dc = ScenarioParams::small_test().build(3).unwrap();
        let table0 = &dc.node_type(0).core.pstates;
        let mut core_power = vec![0.0; dc.n_cores()];
        let mut expected = vec![0usize; dc.n_cores()];
        for k in 0..dc.n_cores() {
            let node = dc.node_of_core(k);
            let t = &dc.node_type(node).core.pstates;
            let ps = k % t.n_total();
            core_power[k] = t.power_kw(ps);
            expected[k] = ps;
        }
        let node_core_power: Vec<f64> = (0..dc.n_nodes())
            .map(|n| dc.cores_of_node(n).map(|k| core_power[k]).sum())
            .collect();
        let s1 = Stage1Solution {
            crac_out_c: vec![15.0; dc.n_crac()],
            node_core_power_kw: node_core_power,
            core_power_kw: core_power,
            objective: 0.0,
            arr_curves: vec![],
        };
        let pstates = assign_pstates(&dc, &s1);
        assert_eq!(pstates, expected);
        let _ = table0;
    }

    #[test]
    fn zero_power_means_all_off() {
        let dc = ScenarioParams::small_test().build(4).unwrap();
        let s1 = Stage1Solution {
            crac_out_c: vec![15.0; dc.n_crac()],
            node_core_power_kw: vec![0.0; dc.n_nodes()],
            core_power_kw: vec![0.0; dc.n_cores()],
            objective: 0.0,
            arr_curves: vec![],
        };
        let pstates = assign_pstates(&dc, &s1);
        for k in 0..dc.n_cores() {
            let t = &dc.node_type(dc.node_of_core(k)).core.pstates;
            assert_eq!(pstates[k], t.off_index());
        }
    }

    #[test]
    fn intermediate_power_rounds_up_then_walks_back() {
        // One core asking for power strictly between P1 and P0 rounds up
        // to P0 (step 1), then step 2 deepens it to P1 because the node
        // budget only covers the Stage-1 total.
        let dc = ScenarioParams::small_test().build(5).unwrap();
        let t = dc.node_type(0).core.pstates.clone();
        let mid = 0.5 * (t.power_kw(0) + t.power_kw(1));
        let mut core_power = vec![0.0; dc.n_cores()];
        let first_core = dc.cores_of_node(0).next().unwrap();
        core_power[first_core] = mid;
        let mut node_power = vec![0.0; dc.n_nodes()];
        node_power[0] = mid;
        let s1 = Stage1Solution {
            crac_out_c: vec![15.0; dc.n_crac()],
            node_core_power_kw: node_power,
            core_power_kw: core_power,
            objective: 0.0,
            arr_curves: vec![],
        };
        let pstates = assign_pstates(&dc, &s1);
        assert_eq!(pstates[first_core], 1, "mid-power core must settle at P1");
    }
}
