//! The Section-VIII dual problem: **minimize total power subject to a
//! reward-rate floor** — the paper's first proposed future-work extension
//! ("in data centers that must provide stringent workload performance
//! guarantees and where power constraints are not active, minimizing the
//! overall power consumption may be a more relevant problem").
//!
//! The machinery mirrors Stage 1 with the objective and constraint
//! swapped: at fixed CRAC outlets, minimize the linearized total power
//! subject to `Σ ARR ≥ reward floor` plus the redlines; search the
//! outlets coarse-to-fine; round the resulting powers **up** to P-states
//! (rounding down could surrender the reward guarantee); then confirm
//! with Stage 3 that the discrete plan still clears the floor.

use crate::arr::ArrCurve;
use crate::stage3::solve_stage3;
use thermaware_datacenter::{optimize_crac_outlets, CracSearchOptions, DataCenter};
use thermaware_lp::{Problem, RowOp, Sense, VarId};
use thermaware_thermal::{cop, RHO_CP};

/// Options for the power-minimization solve.
#[derive(Debug, Clone, Copy)]
pub struct MinPowerOptions {
    /// ψ for the ARR curves.
    pub psi_percent: f64,
    /// CRAC outlet search strategy.
    pub search: CracSearchOptions,
}

impl Default for MinPowerOptions {
    fn default() -> Self {
        MinPowerOptions {
            psi_percent: 100.0,
            search: CracSearchOptions::default(),
        }
    }
}

/// A minimum-power plan meeting a reward floor.
#[derive(Debug, Clone)]
pub struct MinPowerSolution {
    /// Chosen CRAC outlets, °C.
    pub crac_out_c: Vec<f64>,
    /// Per-core P-states (global core order).
    pub pstates: Vec<usize>,
    /// Exact total power (IT + cooling) of the discrete plan, kW.
    pub total_power_kw: f64,
    /// Reward rate certified by Stage 3 for the discrete plan.
    pub reward_rate: f64,
}

/// Minimize total power subject to `reward rate >= reward_floor`.
///
/// Errors when the floor is unattainable within the redlines (it exceeds
/// what even all-P0 operation could earn) or no outlet combination is
/// feasible.
pub fn solve_min_power(
    dc: &DataCenter,
    reward_floor: f64,
    options: &MinPowerOptions,
) -> Result<MinPowerSolution, String> {
    let arr_curves: Vec<ArrCurve> = (0..dc.node_types.len())
        .map(|j| {
            ArrCurve::build(
                &dc.workload,
                &dc.node_types[j].core.pstates,
                j,
                options.psi_percent,
            )
        })
        .collect();
    let node_curves: Vec<crate::pwl::PiecewiseLinear> = (0..dc.node_types.len())
        .map(|j| {
            arr_curves[j]
                .curve
                .aggregate_copies(dc.node_types[j].cores_per_node)
        })
        .collect();

    let best = optimize_crac_outlets(&dc.cracs, options.search, |outlets| {
        // Maximize the negative power.
        solve_fixed(dc, &node_curves, outlets, reward_floor).map(|(_, power)| -power)
    })
    .ok_or_else(|| {
        format!("min-power: reward floor {reward_floor} unattainable within redlines")
    })?;
    let (crac_out_c, _) = best;
    let (core_power, _) = solve_fixed(dc, &node_curves, &crac_out_c, reward_floor)
        .ok_or_else(|| "min-power: best outlets became infeasible".to_owned())?;

    // Round powers *up* to P-states so the continuous reward estimate is
    // not surrendered.
    let pstates: Vec<usize> = (0..dc.n_cores())
        .map(|k| {
            let t = &dc.node_type(dc.node_of_core(k)).core.pstates;
            t.deepest_at_or_above(core_power[k])
        })
        .collect();
    let s3 = solve_stage3(dc, &pstates)?;
    let node_powers = dc.node_powers_from_pstates(&pstates);
    let (it, cooling, _) = dc.total_power_kw(&crac_out_c, &node_powers);
    Ok(MinPowerSolution {
        crac_out_c,
        pstates,
        total_power_kw: it + cooling,
        reward_rate: s3.reward_rate,
    })
}

/// Fixed-outlet LP: minimize linearized total power subject to the reward
/// floor and redlines. Returns per-core powers and the linearized power.
fn solve_fixed(
    dc: &DataCenter,
    node_curves: &[crate::pwl::PiecewiseLinear],
    outlets: &[f64],
    reward_floor: f64,
) -> Option<(Vec<f64>, f64)> {
    let nn = dc.n_nodes();
    let coeff = dc.thermal.coefficients(outlets);
    let base_power: Vec<f64> = (0..nn).map(|j| dc.node_type(j).base_power_kw).collect();
    let w: Vec<f64> = (0..dc.n_crac())
        .map(|c| RHO_CP * dc.cracs[c].flow_m3s / cop::cop(outlets[c]))
        .collect();
    let node_coeff: Vec<f64> = (0..nn)
        .map(|j| 1.0 + (0..dc.n_crac()).map(|c| w[c] * coeff.g_crac[(c, j)]).sum::<f64>())
        .collect();
    let mut p = Problem::new(Sense::Minimize);
    let mut node_vars: Vec<Vec<VarId>> = Vec::with_capacity(nn);
    let mut reward_terms: Vec<(VarId, f64)> = Vec::new();
    for node in 0..nn {
        let curve = &node_curves[dc.node_type_of[node]];
        let pts = curve.points();
        let slopes = curve.slopes();
        let vars: Vec<VarId> = (0..slopes.len())
            .map(|s| {
                let len = pts[s + 1].0 - pts[s].0;
                // Objective: this segment's contribution to total power.
                p.add_var(&format!("seg_n{node}_s{s}"), 0.0, len, node_coeff[node])
            })
            .collect();
        for (s, &v) in vars.iter().enumerate() {
            reward_terms.push((v, slopes[s]));
        }
        node_vars.push(vars);
    }
    // Reward floor. NOTE: a minimization objective would happily leave a
    // later (cheaper-reward) segment filled while an earlier one is not;
    // concavity of the curve plus the floor being a *lower* bound keeps
    // the greedy segment order optimal here too (filling earlier segments
    // first earns at least as much reward per watt).
    p.add_row_nodup("reward_floor", &reward_terms, RowOp::Ge, reward_floor);
    // Redlines.
    let row_terms = |coeffs: &dyn Fn(usize) -> f64| -> Vec<(VarId, f64)> {
        let mut terms = Vec::with_capacity(nn * 4);
        for (node, vars) in node_vars.iter().enumerate() {
            let c = coeffs(node);
            if c.abs() < 1e-14 {
                continue;
            }
            for &v in vars {
                terms.push((v, c));
            }
        }
        terms
    };
    for i in 0..nn {
        let fixed: f64 = (0..nn).map(|j| coeff.g_node[(i, j)] * base_power[j]).sum();
        let rhs = dc.thermal.node_redline_c - coeff.base_node[i] - fixed;
        let terms = row_terms(&|j| coeff.g_node[(i, j)]);
        p.add_row_nodup(&format!("redline_node{i}"), &terms, RowOp::Le, rhs);
    }
    for c in 0..dc.n_crac() {
        let fixed: f64 = (0..nn).map(|j| coeff.g_crac[(c, j)] * base_power[j]).sum();
        let rhs = dc.thermal.crac_redline_c - coeff.base_crac[c] - fixed;
        let terms = row_terms(&|j| coeff.g_crac[(c, j)]);
        p.add_row_nodup(&format!("redline_crac{c}"), &terms, RowOp::Le, rhs);
    }

    let sol = p.solve().ok()?;
    // Redline re-check on the exact model.
    let node_core: Vec<f64> = node_vars
        .iter()
        .map(|vars| vars.iter().map(|&v| sol.value(v).max(0.0)).sum())
        .collect();
    let node_powers: Vec<f64> = (0..nn).map(|j| base_power[j] + node_core[j]).collect();
    let state = dc.thermal.steady_state(outlets, &node_powers);
    if !dc.redlines_ok(&state) {
        return None;
    }
    let exact_power: f64 =
        node_powers.iter().sum::<f64>() + dc.thermal.total_crac_power_kw(&state);

    // Distribute node power to cores (same mixing as Stage 1).
    let mut core_power = vec![0.0; dc.n_cores()];
    for node in 0..nn {
        let t = dc.node_type_of[node];
        let hull = &node_curves[t];
        // node_curves are node-level; per-core hull = divide by count.
        let count = dc.node_type(node).cores_per_node;
        let per_core_hull: Vec<(f64, f64)> = hull
            .points()
            .iter()
            .map(|&(x, y)| (x / count as f64, y / count as f64))
            .collect();
        let cores: Vec<usize> = dc.cores_of_node(node).collect();
        crate::stage1::distribute_node_power(
            node_core[node],
            &per_core_hull,
            &cores,
            &mut core_power,
        );
    }
    Some((core_power, exact_power))
}

#[cfg(test)]
mod tests {
    use super::*;
    use thermaware_datacenter::ScenarioParams;

    #[test]
    fn meets_floor_with_less_power_than_budgeted_operation() {
        let dc = ScenarioParams::small_test().build(1).unwrap();
        // Ask for half of what the budgeted three-stage solve achieves.
        let full = crate::three_stage::solve_three_stage(
            &dc,
            &crate::three_stage::ThreeStageOptions::default(),
        )
        .unwrap();
        let floor = 0.5 * full.reward_rate();
        let sol = solve_min_power(&dc, floor, &MinPowerOptions::default()).expect("min power");
        assert!(
            sol.reward_rate >= floor * (1.0 - 0.02),
            "reward {} below floor {floor}",
            sol.reward_rate
        );
        // Less aggregate power than the budget-saturating plan.
        assert!(sol.total_power_kw <= dc.budget.p_const_kw + 1e-6);
    }

    #[test]
    fn zero_floor_uses_minimal_power() {
        let dc = ScenarioParams::small_test().build(2).unwrap();
        let sol = solve_min_power(&dc, 0.0, &MinPowerOptions::default()).unwrap();
        // With no reward requirement, everything can switch off: power
        // approaches the all-off bound.
        assert!(sol.total_power_kw <= dc.budget.p_min_kw * 1.05 + 1e-6);
    }

    #[test]
    fn impossible_floor_errors() {
        let dc = ScenarioParams::small_test().build(3).unwrap();
        let absurd = dc.workload.max_reward_rate() * 10.0;
        assert!(solve_min_power(&dc, absurd, &MinPowerOptions::default()).is_err());
    }
}
