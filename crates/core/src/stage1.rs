//! Stage 1: continuous power assignment + CRAC outlet temperatures
//! (paper Section V.B.2).
//!
//! With P-states relaxed to continuous per-core power, each core of type
//! `j` earns `ARR_j(p)` reward rate at power `p`. `ARR_j` is concave
//! piecewise-linear (the hull of [`crate::arr::ArrCurve`]), so maximizing
//! total reward under the power cap and redlines is an **LP** once the
//! CRAC outlet temperatures are fixed:
//!
//! * Cores inside a node are identical, so a node's optimal aggregate is
//!   `n·ARR(P/n)` — itself concave PWL. One LP variable per *(node,
//!   hull segment)*, bounded by the segment length, with the segment
//!   slope as objective coefficient, encodes it exactly (concavity makes
//!   the greedy segment order self-enforcing).
//! * Node inlet and CRAC inlet temperatures are affine in node powers at
//!   fixed outlets (`thermaware_thermal::ThermalCoefficients`), so Eq. 6
//!   contributes one row per unit.
//! * CRAC power (Eq. 3) at fixed outlets is linear in the inlet
//!   temperature, hence in node powers; Eq. 7's Constraint 4 is one row.
//!   The Eq.-3 clamp (no negative cooling power) is *not* linear, so
//!   every candidate solution is re-checked against the exact clamped
//!   model and rejected if the linearization was optimistic.
//!
//! The outlet temperatures themselves are found by the paper's
//! discretized coarse-to-fine search
//! ([`thermaware_datacenter::optimize_crac_outlets`]).

use crate::arr::ArrCurve;
use crate::error::SolveError;
use crate::objective::ObjectiveWeights;
use serde::{Deserialize, Serialize};
use thermaware_datacenter::{optimize_crac_outlets, CracSearchOptions, DataCenter};
use thermaware_lp::{Basis, Problem, RowOp, Sense, VarId};
use thermaware_thermal::{cop, RHO_CP};

/// Options for Stage 1.
#[derive(Debug, Clone, Copy)]
pub struct Stage1Options {
    /// The ψ parameter (percent of task types averaged into ARR).
    pub psi_percent: f64,
    /// CRAC outlet search strategy.
    pub search: CracSearchOptions,
    /// Warm-start each fixed-outlet LP from the previous grid point's
    /// optimal basis. Adjacent grid points share structure and differ only
    /// in coefficients, so the previous basis is usually a few pivots from
    /// optimal. Off restores the cold-solve-per-point behaviour (used by
    /// the benchmark baseline).
    pub warm_start: bool,
    /// Objective blend. The reward-only default takes the historical
    /// code path and is bit-identical to pre-multi-objective solves;
    /// non-default weights subtract an electricity/carbon cost from
    /// every segment's reward slope and rank outlet candidates by the
    /// blended net objective.
    pub objective: ObjectiveWeights,
}

impl Default for Stage1Options {
    fn default() -> Self {
        Stage1Options {
            psi_percent: 50.0,
            search: CracSearchOptions::default(),
            warm_start: true,
            objective: ObjectiveWeights::reward_only(),
        }
    }
}

/// Stage-1 output: outlet temperatures and the continuous power plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Stage1Solution {
    /// Chosen CRAC outlet temperatures, °C.
    pub crac_out_c: Vec<f64>,
    /// Total core power (kW, base excluded) assigned to each node.
    pub node_core_power_kw: Vec<f64>,
    /// Per-core power assignment (kW), global core order; node sums match
    /// `node_core_power_kw` and all but at most one core per node sit
    /// exactly on an ARR hull breakpoint (i.e. a P-state power).
    pub core_power_kw: Vec<f64>,
    /// The LP objective: estimated aggregate reward rate.
    pub objective: f64,
    /// Per-node-type ARR curves used (indexed by node type).
    pub arr_curves: Vec<ArrCurve>,
}

/// Solve Stage 1 for a data center.
///
/// Returns an error when no searched CRAC outlet combination admits a
/// feasible power/thermal assignment (a thermally unbuildable scenario).
pub fn solve_stage1(
    dc: &DataCenter,
    options: &Stage1Options,
) -> Result<Stage1Solution, SolveError> {
    let _span = thermaware_obs::span("stage1");
    // ARR per node type, lifted to node-level aggregate curves.
    let arr_curves: Vec<ArrCurve> = (0..dc.node_types.len())
        .map(|j| {
            ArrCurve::build(
                &dc.workload,
                &dc.node_types[j].core.pstates,
                j,
                options.psi_percent,
            )
        })
        .collect();
    if thermaware_obs::enabled() {
        for c in &arr_curves {
            thermaware_obs::observe("core.arr_hull_points", c.curve.points().len() as f64);
        }
    }
    let node_curves: Vec<crate::pwl::PiecewiseLinear> = (0..dc.node_types.len())
        .map(|j| {
            arr_curves[j]
                .curve
                .aggregate_copies(dc.node_types[j].cores_per_node)
        })
        .collect();

    let mut warm: Option<Basis> = None;
    let best = optimize_crac_outlets(&dc.cracs, options.search, |outlets| {
        if !options.warm_start {
            warm = None;
        }
        solve_fixed_outlets(dc, &node_curves, outlets, &options.objective, &mut warm)
            .map(|(_, obj)| obj)
    })
    .ok_or(SolveError::NoFeasibleOutlets { stage: "stage1" })?;
    let (crac_out_c, _) = best;

    if !options.warm_start {
        warm = None;
    }
    let (node_core_power_kw, objective) =
        solve_fixed_outlets(dc, &node_curves, &crac_out_c, &options.objective, &mut warm)
            .ok_or(SolveError::OutletRecheckFailed { stage: "stage1" })?;
    thermaware_obs::gauge_set("core.stage1_objective", objective);

    // Distribute each node's power to its cores along the per-core hull.
    let mut core_power_kw = vec![0.0; dc.n_cores()];
    for node in 0..dc.n_nodes() {
        let t = dc.node_type_of[node];
        let hull = &arr_curves[t].curve;
        let cores: Vec<usize> = dc.cores_of_node(node).collect();
        distribute_node_power(
            node_core_power_kw[node],
            hull.points(),
            &cores,
            &mut core_power_kw,
        );
    }

    Ok(Stage1Solution {
        crac_out_c,
        node_core_power_kw,
        core_power_kw,
        objective,
        arr_curves,
    })
}

/// Solve the fixed-outlet LP. Returns per-node core power and the
/// objective, or `None` when infeasible (including when the exact clamped
/// power model rejects the linearized solution).
///
/// With reward-only `objective` weights this is the historical LP,
/// unchanged coefficient for coefficient. With cost weights each
/// segment's objective coefficient becomes
/// `reward_weight·slope − cost_rate·node_coeff[j]` — `node_coeff[j]`
/// is the *total* power sensitivity to node `j`'s core power (IT plus
/// induced CRAC cooling), so the LP trades reward against the true
/// marginal electricity/carbon cost — and the returned objective has
/// the fixed-power cost subtracted so the outlet search ranks
/// candidates by the blended net objective.
///
/// `warm` carries the optimal basis between calls: the solve starts from
/// it when present and structurally compatible, and on success it is
/// replaced with this solve's basis. Infeasible outlets leave the last
/// good basis in place for the next grid point.
fn solve_fixed_outlets(
    dc: &DataCenter,
    node_curves: &[crate::pwl::PiecewiseLinear],
    outlets: &[f64],
    objective: &ObjectiveWeights,
    warm: &mut Option<Basis>,
) -> Option<(Vec<f64>, f64)> {
    let nn = dc.n_nodes();
    let coeff = dc.thermal.coefficients(outlets);

    // Total-power sensitivities, needed up front when the cost term is
    // active (and later by the power row in every case):
    // w_c = ρ·Cp·F_c / CoP(out_c), node_coeff_j = 1 + Σ_c w_c·g_crac.
    let w: Vec<f64> = (0..dc.n_crac())
        .map(|c| RHO_CP * dc.cracs[c].flow_m3s / cop::cop(outlets[c]))
        .collect();
    let node_coeff: Vec<f64> = (0..nn)
        .map(|j| 1.0 + (0..dc.n_crac()).map(|c| w[c] * coeff.g_crac[(c, j)]).sum::<f64>())
        .collect();
    let reward_only = objective.is_reward_only();
    let cost_rate = objective.cost_rate_per_kws();

    let mut p = Problem::new(Sense::Maximize);
    // Segment variables per node; remember each node's var ids.
    let mut node_vars: Vec<Vec<VarId>> = Vec::with_capacity(nn);
    for node in 0..nn {
        let curve = &node_curves[dc.node_type_of[node]];
        let pts = curve.points();
        let slopes = curve.slopes();
        let vars = (0..slopes.len())
            .map(|s| {
                let len = pts[s + 1].0 - pts[s].0;
                // Reward-only keeps the raw slope (bit-identical path).
                let obj = if reward_only {
                    slopes[s]
                } else {
                    objective.reward_weight * slopes[s] - cost_rate * node_coeff[node]
                };
                p.add_var(&format!("seg_n{node}_s{s}"), 0.0, len, obj)
            })
            .collect();
        node_vars.push(vars);
    }

    // Per-node-power coefficient helper: a row Σ_j c_j · P_core_j (op) rhs
    // expands over each node's segment variables.
    let row_terms = |coeffs: &dyn Fn(usize) -> f64| -> Vec<(VarId, f64)> {
        let mut terms = Vec::with_capacity(nn * 4);
        for (node, vars) in node_vars.iter().enumerate() {
            let c = coeffs(node);
            if c.abs() < 1e-14 {
                continue;
            }
            for &v in vars {
                terms.push((v, c));
            }
        }
        terms
    };

    // Base node powers are constant; they shift every row's rhs.
    let base_power: Vec<f64> = (0..nn).map(|j| dc.node_type(j).base_power_kw).collect();

    // Thermal rows: node inlets <= node redline.
    for i in 0..nn {
        let fixed: f64 = (0..nn).map(|j| coeff.g_node[(i, j)] * base_power[j]).sum();
        let rhs = dc.thermal.node_redline_c - coeff.base_node[i] - fixed;
        let terms = row_terms(&|j| coeff.g_node[(i, j)]);
        p.add_row_nodup(&format!("redline_node{i}"), &terms, RowOp::Le, rhs);
    }
    // Thermal rows: CRAC inlets <= CRAC redline.
    for c in 0..dc.n_crac() {
        let fixed: f64 = (0..nn).map(|j| coeff.g_crac[(c, j)] * base_power[j]).sum();
        let rhs = dc.thermal.crac_redline_c - coeff.base_crac[c] - fixed;
        let terms = row_terms(&|j| coeff.g_crac[(c, j)]);
        p.add_row_nodup(&format!("redline_crac{c}"), &terms, RowOp::Le, rhs);
    }

    // Power row: Σ_j P_j + Σ_c w_c (Tin_c - out_c) <= Pconst, with
    // w_c and node_coeff_j computed above and Tin_c affine in node powers.
    let fixed_power: f64 = (0..nn).map(|j| node_coeff[j] * base_power[j]).sum::<f64>()
        + (0..dc.n_crac())
            .map(|c| w[c] * (coeff.base_crac[c] - outlets[c]))
            .sum::<f64>();
    let terms = row_terms(&|j| node_coeff[j]);
    p.add_row_nodup(
        "power_budget",
        &terms,
        RowOp::Le,
        dc.budget.p_const_kw - fixed_power,
    );

    let mut sol = p.solve_warm(warm.as_ref()).ok()?;
    *warm = sol.take_basis();

    // Recover per-node core power.
    let node_core_power: Vec<f64> = node_vars
        .iter()
        .map(|vars| vars.iter().map(|&v| sol.value(v).max(0.0)).sum())
        .collect();

    // Exact re-check: the LP's CRAC power is unclamped; the true (Eq. 3)
    // power can only be larger, so reject if the budget breaks for real.
    let node_powers: Vec<f64> = (0..nn)
        .map(|j| base_power[j] + node_core_power[j])
        .collect();
    let (it, cooling, state) = dc.total_power_kw(outlets, &node_powers);
    if it + cooling > dc.budget.p_const_kw * (1.0 + 1e-7) + 1e-7 {
        return None;
    }
    if !dc.redlines_ok(&state) {
        return None;
    }
    // The variables only carry the *marginal* cost; fold in the cost of
    // the fixed draw (node bases + outlet-dependent CRAC floor) so the
    // outlet search compares candidates by the full net objective.
    let objective_value = if reward_only {
        sol.objective
    } else {
        sol.objective - cost_rate * fixed_power
    };
    Some((node_core_power, objective_value))
}

/// Split a node's total core power across its cores using adjacent hull
/// breakpoints: if the equal split lands inside hull segment
/// `[b_s, b_{s+1}]`, put `m` cores at `b_{s+1}`, the rest at `b_s`, and at
/// most one core in between. Linearity of the hull segment makes this
/// objective-neutral versus the equal split while leaving nearly every
/// core exactly on a P-state power — which is what makes Stage 2's
/// rounding nearly lossless.
pub(crate) fn distribute_node_power(
    total: f64,
    hull: &[(f64, f64)],
    cores: &[usize],
    out: &mut [f64],
) {
    let n = cores.len();
    if n == 0 {
        return;
    }
    let per_core = (total / n as f64).max(0.0);
    let Some(&(b_max, _)) = hull.last() else {
        return;
    };
    if per_core >= b_max - 1e-15 {
        for &c in cores {
            out[c] = b_max;
        }
        return;
    }
    // Containing segment.
    let mut s = 0;
    while s + 2 < hull.len() && hull[s + 1].0 <= per_core {
        s += 1;
    }
    let lo = hull[s].0;
    let hi = hull[s + 1].0;
    debug_assert!(per_core >= lo - 1e-12 && per_core <= hi + 1e-12);
    // m cores at hi, then one remainder core, the rest at lo.
    let mut remaining = total;
    for (assigned, &c) in cores.iter().enumerate() {
        let left = n - assigned;
        // Greedy: give `hi` while the rest can still absorb at `lo`.
        let give = if remaining - hi >= lo * (left as f64 - 1.0) - 1e-12 {
            hi
        } else {
            // Remainder core: whatever keeps the rest exactly at lo.
            (remaining - lo * (left as f64 - 1.0)).clamp(0.0, hi)
        };
        out[c] = give.min(remaining.max(0.0));
        remaining -= out[c];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thermaware_datacenter::ScenarioParams;

    fn small_dc(seed: u64) -> DataCenter {
        ScenarioParams::small_test().build(seed).unwrap()
    }

    #[test]
    fn stage1_solves_and_respects_constraints() {
        let dc = small_dc(1);
        let sol = solve_stage1(&dc, &Stage1Options::default()).expect("stage 1");
        assert!(sol.objective > 0.0);
        assert_eq!(sol.node_core_power_kw.len(), 10);
        assert_eq!(sol.core_power_kw.len(), dc.n_cores());

        // Exact feasibility at the chosen outlets.
        let node_powers = dc.node_powers(&sol.node_core_power_kw);
        let (it, cooling, state) = dc.total_power_kw(&sol.crac_out_c, &node_powers);
        assert!(it + cooling <= dc.budget.p_const_kw * (1.0 + 1e-6) + 1e-6);
        assert!(dc.redlines_ok(&state));
    }

    #[test]
    fn per_core_distribution_sums_to_node_totals() {
        let dc = small_dc(2);
        let sol = solve_stage1(&dc, &Stage1Options::default()).unwrap();
        for node in 0..dc.n_nodes() {
            let s: f64 = dc.cores_of_node(node).map(|c| sol.core_power_kw[c]).sum();
            assert!(
                (s - sol.node_core_power_kw[node]).abs() < 1e-9,
                "node {node}: {s} vs {}",
                sol.node_core_power_kw[node]
            );
        }
    }

    #[test]
    fn most_cores_sit_on_hull_breakpoints() {
        let dc = small_dc(3);
        let sol = solve_stage1(&dc, &Stage1Options::default()).unwrap();
        let mut off_breakpoint = 0;
        for node in 0..dc.n_nodes() {
            let t = dc.node_type_of[node];
            let hull = &sol.arr_curves[t].curve;
            for c in dc.cores_of_node(node) {
                let p = sol.core_power_kw[c];
                let on = hull
                    .points()
                    .iter()
                    .any(|&(x, _)| (x - p).abs() < 1e-9);
                if !on {
                    off_breakpoint += 1;
                }
            }
        }
        // At most one remainder core per node.
        assert!(off_breakpoint <= dc.n_nodes(), "{off_breakpoint} stray cores");
    }

    #[test]
    fn psi_changes_the_solution() {
        let dc = small_dc(4);
        let a = solve_stage1(
            &dc,
            &Stage1Options {
                psi_percent: 25.0,
                ..Stage1Options::default()
            },
        )
        .unwrap();
        let b = solve_stage1(
            &dc,
            &Stage1Options {
                psi_percent: 100.0,
                ..Stage1Options::default()
            },
        )
        .unwrap();
        // The Stage-1 *estimates* are not comparable as rewards, but both
        // must be positive and generally different.
        assert!(a.objective > 0.0 && b.objective > 0.0);
        assert!((a.objective - b.objective).abs() > 1e-9);
    }

    #[test]
    fn distribute_exact_cases() {
        // Hull (0,0) -> (1,10) -> (2,15); 4 cores, total 6: per-core 1.5
        // in segment [1,2] -> two cores at 2, two at 1 (or one remainder).
        let hull = [(0.0, 0.0), (1.0, 10.0), (2.0, 15.0)];
        let cores = [0, 1, 2, 3];
        let mut out = [0.0; 4];
        distribute_node_power(6.0, &hull, &cores, &mut out);
        let sum: f64 = out.iter().sum();
        assert!((sum - 6.0).abs() < 1e-12, "{out:?}");
        for &p in &out {
            assert!((-1e-12..=2.0 + 1e-12).contains(&p));
        }
        let stray = out
            .iter()
            .filter(|&&p| (p - 1.0).abs() > 1e-9 && (p - 2.0).abs() > 1e-9 && p.abs() > 1e-9)
            .count();
        assert!(stray <= 1, "{out:?}");

        // Saturated: total = 4 * b_max.
        let mut out2 = [0.0; 4];
        distribute_node_power(8.0, &hull, &cores, &mut out2);
        assert!(out2.iter().all(|&p| (p - 2.0).abs() < 1e-12));

        // Zero.
        let mut out3 = [9.0; 4];
        distribute_node_power(0.0, &hull, &cores, &mut out3);
        assert!(out3.iter().all(|&p| p.abs() < 1e-12));
    }
}
