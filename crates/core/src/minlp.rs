//! Exact solution of the first-step MINLP (Eq. 7) by exhaustive
//! enumeration — tractable only for tiny instances, where it bounds the
//! three-stage heuristic's optimality gap.
//!
//! The integer decisions are enumerated directly: per-node *multisets* of
//! P-states (cores within a node are interchangeable, so ordered
//! assignments would only repeat work) crossed with a discretized CRAC
//! outlet grid. For every combination that passes the exact power and
//! thermal checks, the remaining continuous problem in `TC` is the
//! Stage-3 LP, solved exactly. The best feasible combination is the
//! global optimum of Eq. 7 up to the outlet grid's granularity.

use crate::stage3::{solve_stage3, Stage3Solution};
use thermaware_datacenter::DataCenter;

/// Options for the exact solver.
#[derive(Debug, Clone, Copy)]
pub struct MinlpOptions {
    /// CRAC outlet grid step, °C.
    pub crac_step_c: f64,
    /// Safety cap on enumerated P-state combinations (the solver refuses
    /// rather than run forever).
    pub max_combinations: u64,
}

impl Default for MinlpOptions {
    fn default() -> Self {
        MinlpOptions {
            crac_step_c: 1.0,
            max_combinations: 2_000_000,
        }
    }
}

/// The exact optimum found.
#[derive(Debug, Clone)]
pub struct ExactSolution {
    /// Optimal reward rate.
    pub reward_rate: f64,
    /// Optimal per-core P-states (global core order).
    pub pstates: Vec<usize>,
    /// Optimal CRAC outlets, °C.
    pub crac_out_c: Vec<f64>,
    /// The Stage-3 rates at the optimum.
    pub stage3: Stage3Solution,
    /// Number of (P-state multiset, outlet) combinations evaluated.
    pub combinations_checked: u64,
}

/// Enumerate all non-decreasing sequences of length `len` over
/// `0..alphabet` (multisets), invoking `f` on each.
fn for_each_multiset(alphabet: usize, len: usize, f: &mut impl FnMut(&[usize]) -> bool) -> bool {
    let mut seq = vec![0usize; len];
    loop {
        if !f(&seq) {
            return false;
        }
        // Next non-decreasing sequence.
        let mut i = len;
        loop {
            if i == 0 {
                return true;
            }
            i -= 1;
            if seq[i] + 1 < alphabet {
                let v = seq[i] + 1;
                for s in seq.iter_mut().skip(i) {
                    *s = v;
                }
                break;
            }
        }
    }
}

/// Count the multisets that [`for_each_multiset`] will enumerate:
/// `C(alphabet + len - 1, len)`, saturating at `u64::MAX`.
///
/// Computed by the incremental recurrence `c_{k} = c_{k-1}·(a-1+k)/k`;
/// every intermediate value is itself a binomial coefficient, so nothing
/// overflows before the saturation check (a naive `n!/(k!(n-k)!)` would
/// overflow even `u128` at the 32-cores-per-node scale of Table I).
fn multiset_count(alphabet: usize, len: usize) -> u64 {
    let mut c: u128 = 1;
    for i in 0..len {
        c = c * (alphabet as u128 + i as u128) / (i as u128 + 1);
        if c > u64::MAX as u128 {
            return u64::MAX;
        }
    }
    c as u64
}

/// Solve Eq. 7 exactly.
///
/// Errors when the instance exceeds `max_combinations` or no feasible
/// combination exists.
pub fn solve_exact(dc: &DataCenter, options: &MinlpOptions) -> Result<ExactSolution, String> {
    // Size check.
    let mut total: u64 = 1;
    for j in 0..dc.n_nodes() {
        let nt = dc.node_type(j);
        let c = multiset_count(nt.core.pstates.n_total(), nt.cores_per_node);
        total = total.saturating_mul(c);
    }
    if total > options.max_combinations {
        return Err(format!(
            "exact enumeration needs {total} P-state combinations (cap {})",
            options.max_combinations
        ));
    }

    // Outlet grid.
    let axes: Vec<Vec<f64>> = dc
        .cracs
        .iter()
        .map(|c| {
            let mut v = Vec::new();
            let mut t = c.min_outlet_c;
            while t < c.max_outlet_c - 1e-9 {
                v.push(t);
                t += options.crac_step_c;
            }
            v.push(c.max_outlet_c);
            v
        })
        .collect();
    let mut outlet_combos: Vec<Vec<f64>> = vec![vec![]];
    for axis in &axes {
        let mut next = Vec::with_capacity(outlet_combos.len() * axis.len());
        for combo in &outlet_combos {
            for &t in axis {
                let mut c = combo.clone();
                c.push(t);
                next.push(c);
            }
        }
        outlet_combos = next;
    }

    // Enumerate P-state multisets node by node (odometer over nodes, each
    // holding a multiset enumerator state — realized as a recursive
    // product materialization since instances are tiny by construction).
    let mut per_node: Vec<Vec<Vec<usize>>> = Vec::with_capacity(dc.n_nodes());
    for j in 0..dc.n_nodes() {
        let nt = dc.node_type(j);
        let mut sets = Vec::new();
        for_each_multiset(nt.core.pstates.n_total(), nt.cores_per_node, &mut |s| {
            sets.push(s.to_vec());
            true
        });
        per_node.push(sets);
    }

    let mut best: Option<ExactSolution> = None;
    let mut checked: u64 = 0;
    let mut idx = vec![0usize; dc.n_nodes()];
    let mut pstates = vec![0usize; dc.n_cores()];
    'outer: loop {
        // Materialize the current assignment.
        for (j, &i) in idx.iter().enumerate() {
            let set = &per_node[j][i];
            for (offset, k) in dc.cores_of_node(j).enumerate() {
                pstates[k] = set[offset];
            }
        }
        let node_powers = dc.node_powers_from_pstates(&pstates);
        // Try every outlet combo; keep the assignment if any is feasible.
        let mut feasible_outlet: Option<&Vec<f64>> = None;
        for combo in &outlet_combos {
            let (it, cooling, state) = dc.total_power_kw(combo, &node_powers);
            if it + cooling <= dc.budget.p_const_kw + 1e-9 && dc.redlines_ok(&state) {
                feasible_outlet = Some(combo);
                break;
            }
        }
        checked += 1;
        if let Some(outlets) = feasible_outlet {
            // The reward does not depend on the outlets (only feasibility
            // does), so one feasible combo suffices.
            let s3 = solve_stage3(dc, &pstates)?;
            if best
                .as_ref()
                .is_none_or(|b| s3.reward_rate > b.reward_rate)
            {
                best = Some(ExactSolution {
                    reward_rate: s3.reward_rate,
                    pstates: pstates.clone(),
                    crac_out_c: outlets.clone(),
                    stage3: s3,
                    combinations_checked: 0,
                });
            }
        }
        // Odometer over nodes.
        let mut d = 0;
        loop {
            if d == dc.n_nodes() {
                break 'outer;
            }
            idx[d] += 1;
            if idx[d] < per_node[d].len() {
                break;
            }
            idx[d] = 0;
            d += 1;
        }
    }

    match best {
        Some(mut b) => {
            b.combinations_checked = checked;
            Ok(b)
        }
        None => Err("no feasible P-state/outlet combination".to_owned()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiset_enumeration_counts() {
        assert_eq!(multiset_count(3, 2), 6);
        assert_eq!(multiset_count(5, 2), 15);
        let mut n = 0;
        for_each_multiset(3, 2, &mut |s| {
            assert!(s.windows(2).all(|w| w[0] <= w[1]));
            n += 1;
            true
        });
        assert_eq!(n, 6);
    }

    #[test]
    fn multiset_enumeration_is_exhaustive_and_sorted() {
        let mut seen = Vec::new();
        for_each_multiset(4, 3, &mut |s| {
            seen.push(s.to_vec());
            true
        });
        assert_eq!(seen.len() as u64, multiset_count(4, 3));
        let mut dedup = seen.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), seen.len(), "duplicates in enumeration");
    }
}
