//! The [`Solver`] builder — the workspace's primary solve entry point.
//!
//! The free functions [`crate::solve_three_stage`],
//! [`crate::solve_three_stage_best_of`] and [`crate::solve_baseline`]
//! grew one configuration parameter at a time (ψ, the CRAC search
//! options, now an observability recorder), and every addition rippled
//! through each signature. The builder gathers the configuration in one
//! place with defaults matching [`ThreeStageOptions::default`]:
//!
//! ```
//! use thermaware_core::Solver;
//! use thermaware_datacenter::ScenarioParams;
//!
//! let dc = ScenarioParams::small_test().build(1).unwrap();
//! let plan = Solver::new(&dc).psi(50.0).solve().expect("plan");
//! assert!(plan.reward_rate() > 0.0);
//! ```
//!
//! Both paths call the same `pub(crate)` implementations, so a builder
//! solve is **bit-identical** to the equivalent free-function call (a
//! test in `tests/solver_builder.rs` holds this).

use crate::baseline::{baseline_impl, BaselineSolution};
use crate::error::SolveError;
use crate::three_stage::{three_stage_best_of_impl, three_stage_impl};
use crate::{ThreeStageOptions, ThreeStageSolution};
use std::sync::Arc;
use thermaware_datacenter::{CracSearchOptions, DataCenter};
use thermaware_obs::Recorder;

/// Which ψ policy a [`Solver`] runs.
#[derive(Debug, Clone)]
enum PsiPolicy {
    /// One solve at a single ψ (percent).
    Single(f64),
    /// Solve per candidate ψ, keep the best by Stage-3 reward rate.
    BestOf(Vec<f64>),
}

/// Builder façade over the three-stage technique and the baseline.
///
/// Construct with [`Solver::new`], chain configuration, finish with
/// [`solve`](Solver::solve) (or [`baseline`](Solver::baseline)). Every
/// knob has the same default the free functions use, so
/// `Solver::new(&dc).solve()` equals
/// `solve_three_stage(&dc, &ThreeStageOptions::default())`.
pub struct Solver<'a> {
    dc: &'a DataCenter,
    psi: PsiPolicy,
    search: CracSearchOptions,
    recorder: Option<Arc<dyn Recorder>>,
}

impl<'a> Solver<'a> {
    /// A solver over `dc` with default configuration (ψ = 50%, default
    /// coarse-to-fine CRAC search, no recorder).
    pub fn new(dc: &'a DataCenter) -> Solver<'a> {
        Solver {
            dc,
            psi: PsiPolicy::Single(ThreeStageOptions::default().psi_percent),
            search: CracSearchOptions::default(),
            recorder: None,
        }
    }

    /// Use a single ψ (percent of task types averaged into the ARR
    /// curves — paper Section V.B.1).
    pub fn psi(mut self, percent: f64) -> Solver<'a> {
        self.psi = PsiPolicy::Single(percent);
        self
    }

    /// Solve once per candidate ψ and keep the best plan by Stage-3
    /// reward rate (the paper's "best of the two" series in Figure 6).
    /// An empty candidate set fails at [`solve`](Solver::solve) time with
    /// [`SolveError::InvalidInput`].
    pub fn psi_best_of(mut self, psis: impl Into<Vec<f64>>) -> Solver<'a> {
        self.psi = PsiPolicy::BestOf(psis.into());
        self
    }

    /// Configure the coarse-to-fine CRAC outlet temperature search.
    pub fn crac_grid(mut self, search: CracSearchOptions) -> Solver<'a> {
        self.search = search;
        self
    }

    /// Install `recorder` as the process-global observability sink for
    /// the duration of the solve (spans, counters, histograms from every
    /// layer down to the simplex pivot loop). The previously installed
    /// recorder, if any, is restored when the solve returns.
    pub fn recorder(mut self, recorder: Arc<dyn Recorder>) -> Solver<'a> {
        self.recorder = Some(recorder);
        self
    }

    /// Run the configured three-stage solve.
    pub fn solve(&self) -> Result<ThreeStageSolution, SolveError> {
        let _install = self.recorder.as_ref().map(|r| thermaware_obs::install(Arc::clone(r)));
        match &self.psi {
            PsiPolicy::Single(psi) => three_stage_impl(
                self.dc,
                &ThreeStageOptions {
                    psi_percent: *psi,
                    search: self.search,
                },
            ),
            PsiPolicy::BestOf(psis) => three_stage_best_of_impl(self.dc, psis, self.search),
        }
    }

    /// Run the Eq.-21 baseline (P0-or-off fractions) under the same CRAC
    /// search and recorder configuration. The ψ policy does not apply —
    /// the baseline has no ARR averaging.
    pub fn baseline(&self) -> Result<BaselineSolution, SolveError> {
        let _install = self.recorder.as_ref().map(|r| thermaware_obs::install(Arc::clone(r)));
        baseline_impl(self.dc, self.search)
    }

    /// Re-solve the Stage-3 rate subproblem with the P-states held fixed
    /// (the paper's Section V.B rule for mid-run replans), warm-starting
    /// from `warm` when given. This is the epoch-replan path a
    /// long-running service drives: demand drifted but the floor did
    /// not, so only the rates move, and the previous basis typically
    /// re-verifies in a handful of pivots. Returns the new plan and the
    /// basis to warm the *next* replan with. The configured recorder is
    /// installed for the duration, as in [`solve`](Solver::solve); the ψ
    /// policy and CRAC search do not apply.
    pub fn stage3_replan(
        &self,
        pstates: &[usize],
        warm: Option<&crate::stage3::Stage3Basis>,
    ) -> Result<(crate::stage3::Stage3Solution, Option<crate::stage3::Stage3Basis>), SolveError>
    {
        let _install = self.recorder.as_ref().map(|r| thermaware_obs::install(Arc::clone(r)));
        crate::stage3::solve_stage3_warm(self.dc, pstates, warm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thermaware_datacenter::ScenarioParams;

    #[test]
    fn defaults_match_three_stage_options() {
        let dc = ScenarioParams::small_test().build(5).unwrap();
        let a = Solver::new(&dc).solve().expect("builder");
        let b = crate::solve_three_stage(&dc, &ThreeStageOptions::default()).expect("legacy");
        assert_eq!(a, b);
    }

    #[test]
    fn empty_best_of_is_invalid_input() {
        let dc = ScenarioParams::small_test().build(5).unwrap();
        let err = Solver::new(&dc).psi_best_of(Vec::new()).solve().unwrap_err();
        assert!(matches!(err, SolveError::InvalidInput { .. }));
    }
}
