//! The [`Solver`] builder — the workspace's **single documented solve
//! entry point**.
//!
//! The free functions ([`crate::solve_three_stage`] and friends) grew
//! one configuration parameter at a time (ψ, the CRAC search options,
//! an observability recorder), and every addition rippled through each
//! signature. They are now `#[doc(hidden)]` pass-throughs kept for
//! existing call sites; the builder gathers all configuration in one
//! place with defaults matching [`ThreeStageOptions::default`]:
//!
//! ```
//! use thermaware_core::Solver;
//! use thermaware_datacenter::ScenarioParams;
//!
//! let dc = ScenarioParams::small_test().build(1).unwrap();
//! let plan = Solver::new(&dc).psi(50.0).solve().expect("plan");
//! assert!(plan.reward_rate() > 0.0);
//! ```
//!
//! Both paths call the same `pub(crate)` implementations, so a builder
//! solve is **bit-identical** to the equivalent free-function call (a
//! test in `tests/solver_builder.rs` holds this).
//!
//! # The scenario surface
//!
//! Beyond the paper's static solve, the builder is where the scenario
//! engine is configured:
//!
//! * [`arrival_curve`](Solver::arrival_curve) — a time-varying demand
//!   multiplier; [`solve_at`](Solver::solve_at) samples it and scales
//!   every task type's arrival rate before solving.
//! * [`objective`](Solver::objective) /
//!   [`price_curve`](Solver::price_curve) /
//!   [`carbon_curve`](Solver::carbon_curve) — multi-objective weights
//!   blending electricity price and carbon intensity into the Stage-1
//!   objective, with reward-only as the bit-identical default.
//! * [`chip_model`](Solver::chip_model) — chip-level thermal
//!   interference: after Stage 2, each node's P-states are permuted
//!   onto the die's coolest placement (`crate::chip_place`), then
//!   Stage 3 re-solves warm (same groups, same reward, cooler dies).
//! * [`warm_start`](Solver::warm_start) — basis reuse across the
//!   Stage-1 CRAC outlet sweep (on by default).

use crate::baseline::{baseline_impl, BaselineSolution};
use crate::error::SolveError;
use crate::objective::ObjectiveWeights;
use crate::stage3::solve_stage3_warm;
use crate::three_stage::{three_stage_best_of_impl, three_stage_impl};
use crate::{ThreeStageOptions, ThreeStageSolution};
use std::sync::Arc;
use thermaware_datacenter::{CracSearchOptions, DataCenter};
use thermaware_obs::Recorder;
use thermaware_thermal::ChipModel;
use thermaware_workload::Curve;

/// Which ψ policy a [`Solver`] runs.
#[derive(Debug, Clone)]
enum PsiPolicy {
    /// One solve at a single ψ (percent).
    Single(f64),
    /// Solve per candidate ψ, keep the best by the configured net
    /// objective (Stage-3 reward rate under reward-only weights).
    BestOf(Vec<f64>),
}

/// Builder façade over the three-stage technique, the baseline, and the
/// scenario engine (demand curves, multi-objective cost, chip-level
/// placement).
///
/// Construct with [`Solver::new`], chain configuration, finish with
/// [`solve`](Solver::solve) / [`solve_at`](Solver::solve_at) (or
/// [`baseline`](Solver::baseline)). Every knob has the same default the
/// historical free functions used, so `Solver::new(&dc).solve()` equals
/// `solve_three_stage(&dc, &ThreeStageOptions::default())` bit for bit.
pub struct Solver<'a> {
    dc: &'a DataCenter,
    psi: PsiPolicy,
    search: CracSearchOptions,
    recorder: Option<Arc<dyn Recorder>>,
    warm: bool,
    objective: ObjectiveWeights,
    demand: Option<Curve>,
    price: Option<Curve>,
    carbon: Option<Curve>,
    chip: Option<&'a ChipModel>,
}

impl<'a> Solver<'a> {
    /// A solver over `dc` with default configuration (ψ = 50%, default
    /// coarse-to-fine CRAC search, warm-started, reward-only objective,
    /// no demand curve, no chip model, no recorder).
    pub fn new(dc: &'a DataCenter) -> Solver<'a> {
        Solver {
            dc,
            psi: PsiPolicy::Single(ThreeStageOptions::default().psi_percent),
            search: CracSearchOptions::default(),
            recorder: None,
            warm: true,
            objective: ObjectiveWeights::reward_only(),
            demand: None,
            price: None,
            carbon: None,
            chip: None,
        }
    }

    /// Use a single ψ (percent of task types averaged into the ARR
    /// curves — paper Section V.B.1).
    pub fn psi(mut self, percent: f64) -> Solver<'a> {
        self.psi = PsiPolicy::Single(percent);
        self
    }

    /// Solve once per candidate ψ and keep the best plan by the
    /// configured net objective — the Stage-3 reward rate under default
    /// reward-only weights (the paper's "best of the two" series in
    /// Figure 6). An empty candidate set fails at
    /// [`solve`](Solver::solve) time with [`SolveError::InvalidInput`].
    pub fn psi_best_of(mut self, psis: impl Into<Vec<f64>>) -> Solver<'a> {
        self.psi = PsiPolicy::BestOf(psis.into());
        self
    }

    /// Configure the coarse-to-fine CRAC outlet temperature search.
    pub fn crac_grid(mut self, search: CracSearchOptions) -> Solver<'a> {
        self.search = search;
        self
    }

    /// Warm-start Stage 1's fixed-outlet LPs across the CRAC sweep
    /// (default `true`; `false` restores cold solves per grid point,
    /// mainly for benchmarking the warm-start win itself).
    pub fn warm_start(mut self, warm: bool) -> Solver<'a> {
        self.warm = warm;
        self
    }

    /// Blend electricity price and carbon into the solve objective.
    /// [`ObjectiveWeights::reward_only`] (the default) preserves the
    /// paper's objective bit for bit.
    pub fn objective(mut self, weights: ObjectiveWeights) -> Solver<'a> {
        self.objective = weights;
        self
    }

    /// Attach a time-varying demand multiplier: at
    /// [`solve_at(t)`](Solver::solve_at), every task type's arrival
    /// rate is scaled by `curve.rate_at(t)` (clamped at 0). A constant
    /// curve of 1.0 reproduces the static workload.
    pub fn arrival_curve(mut self, curve: Curve) -> Solver<'a> {
        self.demand = Some(curve);
        self
    }

    /// Attach a time-varying electricity price ($ per kWh):
    /// [`solve_at(t)`](Solver::solve_at) samples it into
    /// [`ObjectiveWeights::price_per_kwh`], overriding the static
    /// value from [`objective`](Solver::objective).
    pub fn price_curve(mut self, curve: Curve) -> Solver<'a> {
        self.price = Some(curve);
        self
    }

    /// Attach a time-varying grid carbon intensity (kg CO₂ per kWh):
    /// [`solve_at(t)`](Solver::solve_at) samples it into
    /// [`ObjectiveWeights::carbon_kg_per_kwh`]. The intensity only
    /// affects the objective when
    /// [`ObjectiveWeights::carbon_weight`] is non-zero.
    pub fn carbon_curve(mut self, curve: Curve) -> Solver<'a> {
        self.carbon = Some(curve);
        self
    }

    /// Attach a chip-level thermal model: after Stage 2, each node's
    /// P-states are permuted onto the die's coolest placement order and
    /// Stage 3 re-solves warm. Node power totals — and therefore every
    /// room-level redline, the power budget, and the achieved reward —
    /// are unchanged; only *which* core runs *which* P-state moves.
    /// Without this call the solve is bit-identical to the chip-unaware
    /// solver.
    pub fn chip_model(mut self, chip: &'a ChipModel) -> Solver<'a> {
        self.chip = Some(chip);
        self
    }

    /// Install `recorder` as the process-global observability sink for
    /// the duration of the solve (spans, counters, histograms from every
    /// layer down to the simplex pivot loop). The previously installed
    /// recorder, if any, is restored when the solve returns.
    pub fn recorder(mut self, recorder: Arc<dyn Recorder>) -> Solver<'a> {
        self.recorder = Some(recorder);
        self
    }

    /// Run the configured solve at scenario time `t = 0` — equivalent
    /// to [`solve_at(0.0)`](Solver::solve_at). With no scenario curves
    /// attached this takes the direct path on the original data center.
    pub fn solve(&self) -> Result<ThreeStageSolution, SolveError> {
        self.solve_at(0.0)
    }

    /// Run the configured solve at scenario time `t_s` seconds: sample
    /// the demand/price/carbon curves at `t_s`, solve the resulting
    /// snapshot, then apply chip-aware placement if a chip model is
    /// attached.
    pub fn solve_at(&self, t_s: f64) -> Result<ThreeStageSolution, SolveError> {
        let _install = self.recorder.as_ref().map(|r| thermaware_obs::install(Arc::clone(r)));

        let mut weights = self.objective;
        if let Some(p) = &self.price {
            weights.price_per_kwh = p.rate_at(t_s);
        }
        if let Some(c) = &self.carbon {
            weights.carbon_kg_per_kwh = c.rate_at(t_s);
        }

        match &self.demand {
            // No demand curve: solve the original data center directly
            // (with all-default scenario knobs this is the historical,
            // bit-identical path).
            None => {
                let sol = self.run(self.dc, weights)?;
                self.finish(self.dc, sol)
            }
            Some(curve) => {
                let m = curve.rate_at(t_s).max(0.0);
                let mut dc = self.dc.clone();
                for t in &mut dc.workload.task_types {
                    t.arrival_rate *= m;
                }
                let sol = self.run(&dc, weights)?;
                self.finish(&dc, sol)
            }
        }
    }

    /// Dispatch the ψ policy against the shared `pub(crate)` impls.
    fn run(&self, dc: &DataCenter, weights: ObjectiveWeights) -> Result<ThreeStageSolution, SolveError> {
        let base = ThreeStageOptions {
            psi_percent: ThreeStageOptions::default().psi_percent,
            search: self.search,
            warm_start: self.warm,
            objective: weights,
        };
        match &self.psi {
            PsiPolicy::Single(psi) => three_stage_impl(
                dc,
                &ThreeStageOptions {
                    psi_percent: *psi,
                    ..base
                },
            ),
            PsiPolicy::BestOf(psis) => three_stage_best_of_impl(dc, psis, &base),
        }
    }

    /// Chip-aware post-pass: permute P-states within nodes onto each
    /// die's coolest placement, then re-solve Stage 3 warm so the
    /// core→group mapping matches. No-op without a chip model.
    fn finish(
        &self,
        dc: &DataCenter,
        mut sol: ThreeStageSolution,
    ) -> Result<ThreeStageSolution, SolveError> {
        let Some(chip) = self.chip else {
            return Ok(sol);
        };
        let moved = crate::chip_place::place_within_nodes(dc, chip, &mut sol.pstates);
        thermaware_obs::counter_add("core.chip_placement_moves", moved as u64);
        if moved > 0 {
            let (stage3, stage3_basis) =
                solve_stage3_warm(dc, &sol.pstates, sol.stage3_basis.as_ref())?;
            sol.stage3 = stage3;
            sol.stage3_basis = stage3_basis;
        }
        Ok(sol)
    }

    /// Run the Eq.-21 baseline (P0-or-off fractions) under the same CRAC
    /// search and recorder configuration. The ψ policy, scenario curves
    /// and chip model do not apply — the baseline has no ARR averaging
    /// and serves as the paper's static comparison point.
    pub fn baseline(&self) -> Result<BaselineSolution, SolveError> {
        let _install = self.recorder.as_ref().map(|r| thermaware_obs::install(Arc::clone(r)));
        baseline_impl(self.dc, self.search)
    }

    /// Re-solve the Stage-3 rate subproblem with the P-states held fixed
    /// (the paper's Section V.B rule for mid-run replans), warm-starting
    /// from `warm` when given. This is the epoch-replan path a
    /// long-running service drives: demand drifted but the floor did
    /// not, so only the rates move, and the previous basis typically
    /// re-verifies in a handful of pivots. Returns the new plan and the
    /// basis to warm the *next* replan with. The configured recorder is
    /// installed for the duration, as in [`solve`](Solver::solve); the ψ
    /// policy and CRAC search do not apply.
    pub fn stage3_replan(
        &self,
        pstates: &[usize],
        warm: Option<&crate::stage3::Stage3Basis>,
    ) -> Result<(crate::stage3::Stage3Solution, Option<crate::stage3::Stage3Basis>), SolveError>
    {
        let _install = self.recorder.as_ref().map(|r| thermaware_obs::install(Arc::clone(r)));
        crate::stage3::solve_stage3_warm(self.dc, pstates, warm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thermaware_datacenter::ScenarioParams;

    #[test]
    fn defaults_match_three_stage_options() {
        let dc = ScenarioParams::small_test().build(5).unwrap();
        let a = Solver::new(&dc).solve().expect("builder");
        let b = crate::solve_three_stage(&dc, &ThreeStageOptions::default()).expect("legacy");
        assert_eq!(a, b);
    }

    #[test]
    fn empty_best_of_is_invalid_input() {
        let dc = ScenarioParams::small_test().build(5).unwrap();
        let err = Solver::new(&dc).psi_best_of(Vec::new()).solve().unwrap_err();
        assert!(matches!(err, SolveError::InvalidInput { .. }));
    }

    #[test]
    fn unit_arrival_curve_matches_static_solve() {
        let dc = ScenarioParams::small_test().build(6).unwrap();
        let plain = Solver::new(&dc).solve().expect("static");
        let unit = Solver::new(&dc)
            .arrival_curve(Curve::constant(1.0))
            .solve()
            .expect("unit curve");
        assert_eq!(plain, unit);
    }

    #[test]
    fn diurnal_demand_changes_the_plan_over_the_day() {
        let dc = ScenarioParams::small_test().build(7).unwrap();
        let solver = Solver::new(&dc).arrival_curve(Curve::Diurnal {
            base: 0.4,
            peak: 1.0,
            period_s: 86_400.0,
        });
        let trough = solver.solve_at(0.0).expect("trough");
        let crest = solver.solve_at(43_200.0).expect("crest");
        assert!(
            crest.reward_rate() > trough.reward_rate(),
            "crest {} should beat trough {}",
            crest.reward_rate(),
            trough.reward_rate()
        );
    }

    #[test]
    fn price_weight_trades_reward_for_power() {
        let dc = ScenarioParams::small_test().build(8).unwrap();
        let plain = Solver::new(&dc).solve().expect("reward-only");
        let costed = Solver::new(&dc)
            .objective(ObjectiveWeights {
                price_per_kwh: 50.0,
                ..ObjectiveWeights::reward_only()
            })
            .solve()
            .expect("costed");
        let p0 = plain.total_power_kw(&dc);
        let p1 = costed.total_power_kw(&dc);
        assert!(
            p1 <= p0 + 1e-9,
            "a positive price must not increase power ({p1} vs {p0})"
        );
        assert!(
            plain.reward_rate() >= costed.reward_rate() - 1e-9,
            "reward-only must stay the reward maximizer"
        );
    }
}
