//! Multi-objective steady-state weights: reward versus electricity cost
//! and carbon.
//!
//! The paper's objective is pure reward rate. Real operators also see a
//! power price and a grid carbon intensity (DataCenterGym,
//! arXiv:2604.15594), so the scenario engine blends them:
//!
//! ```text
//! maximize   reward_weight · Σ reward_rate
//!          − (price + carbon_weight · carbon_intensity)/3600 · P_total
//! ```
//!
//! The cost term enters the **Stage-1** continuous LP (where power is a
//! decision variable — at fixed P-states, Stages 2–3 draw constant
//! power, so rates stay reward-driven) and the best-of-ψ ranking. The
//! reward-only default takes a separate, untouched code path, so
//! default-weight solves stay **bit-identical** to the historical
//! reward-only solver — guaranteed by branching, not by floating-point
//! identities.

use serde::{Deserialize, Serialize};

/// Blend weights for the solve objective. All-default weights mean
/// "reward only" and preserve the paper's behavior exactly.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ObjectiveWeights {
    /// Weight on the reward rate (the paper's objective). Default 1.0.
    pub reward_weight: f64,
    /// Electricity price, $ per kWh drawn. Default 0.0.
    pub price_per_kwh: f64,
    /// Weight converting carbon mass to objective units, $ per kg CO₂.
    /// Default 0.0.
    pub carbon_weight: f64,
    /// Grid carbon intensity, kg CO₂ per kWh. Default 0.0.
    pub carbon_kg_per_kwh: f64,
}

impl ObjectiveWeights {
    /// The paper's objective: reward only, no cost terms.
    pub fn reward_only() -> ObjectiveWeights {
        ObjectiveWeights {
            reward_weight: 1.0,
            price_per_kwh: 0.0,
            carbon_weight: 0.0,
            carbon_kg_per_kwh: 0.0,
        }
    }

    /// True when these weights reproduce the reward-only objective
    /// exactly (bit-level check on the defaults, so the guarded fast
    /// path cannot be entered by near-miss weights).
    pub fn is_reward_only(&self) -> bool {
        self.reward_weight.to_bits() == 1.0f64.to_bits()
            && self.price_per_kwh.to_bits() == 0.0f64.to_bits()
            && self.carbon_weight.to_bits() == 0.0f64.to_bits()
            && self.carbon_kg_per_kwh.to_bits() == 0.0f64.to_bits()
    }

    /// Combined cost rate in objective units per kilowatt-second:
    /// `(price + carbon_weight · intensity) / 3600`. This is the factor
    /// multiplying total power (kW) so the cost term is commensurate
    /// with a per-second reward rate.
    pub fn cost_rate_per_kws(&self) -> f64 {
        (self.price_per_kwh + self.carbon_weight * self.carbon_kg_per_kwh) / 3600.0
    }

    /// The blended objective for an achieved reward rate (1/s) and
    /// total power draw (kW).
    pub fn net_objective(&self, reward_rate: f64, total_power_kw: f64) -> f64 {
        self.reward_weight * reward_rate - self.cost_rate_per_kws() * total_power_kw
    }
}

impl Default for ObjectiveWeights {
    fn default() -> ObjectiveWeights {
        ObjectiveWeights::reward_only()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_reward_only() {
        assert!(ObjectiveWeights::default().is_reward_only());
        assert_eq!(ObjectiveWeights::default().cost_rate_per_kws(), 0.0); // lint: allow(float-eq): 0/3600 is exactly 0.0
    }

    #[test]
    fn near_miss_weights_are_not_reward_only() {
        let mut w = ObjectiveWeights::reward_only();
        w.price_per_kwh = 1e-300;
        assert!(!w.is_reward_only());
        let mut w2 = ObjectiveWeights::reward_only();
        w2.reward_weight = 1.0 + f64::EPSILON;
        assert!(!w2.is_reward_only());
    }

    #[test]
    fn cost_rate_blends_price_and_carbon() {
        let w = ObjectiveWeights {
            reward_weight: 1.0,
            price_per_kwh: 0.10,
            carbon_weight: 0.05,
            carbon_kg_per_kwh: 0.4,
        };
        assert!((w.cost_rate_per_kws() - (0.10 + 0.05 * 0.4) / 3600.0).abs() < 1e-15);
        let net = w.net_objective(10.0, 100.0);
        assert!(net < 10.0 && net > 9.9);
    }

    #[test]
    fn serde_round_trip() {
        use serde::{Deserialize as _, Serialize as _};
        let w = ObjectiveWeights {
            reward_weight: 0.8,
            price_per_kwh: 0.12,
            carbon_weight: 0.02,
            carbon_kg_per_kwh: 0.35,
        };
        let back = ObjectiveWeights::from_value(&w.to_value()).expect("round-trips");
        assert_eq!(back, w);
    }
}
