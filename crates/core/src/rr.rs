//! Per-task-type reward-rate curves `RR_{i,j}` (paper Section V.B.2,
//! Figs. 3–4).
//!
//! `RR_{i,j}(p)` is the reward rate a core of type `j` earns running only
//! tasks of type `i` when it consumes power `p`: a piecewise-linear curve
//! through the points `(π_{j,k}, r_i · ECS(i, j, k))` for every P-state
//! (off included at the origin). Between P-state powers, the core is
//! assumed to time-multiplex the two adjacent P-states — hence linear
//! interpolation.
//!
//! A P-state whose execution time exceeds the task type's deadline slack
//! contributes **zero** reward rate (no task can finish in time even
//! starting immediately — Fig. 4's cliff).

use crate::pwl::PiecewiseLinear;
use thermaware_power::PStateTable;
use thermaware_workload::Workload;

/// Build `RR_{i,j}` for task type `task_type` on a core with P-state
/// ladder `pstates` belonging to node type `node_type`.
///
/// Breakpoints are ordered by ascending power: off state first at
/// `(0, 0)`, then the active P-states from deepest to P-state 0.
pub fn reward_rate_curve(
    workload: &Workload,
    pstates: &PStateTable,
    task_type: usize,
    node_type: usize,
) -> PiecewiseLinear {
    let t = &workload.task_types[task_type];
    let mut points = Vec::with_capacity(pstates.n_total());
    // Off state: zero power, zero reward.
    points.push((0.0, 0.0));
    for k in (0..pstates.n_active()).rev() {
        let ecs = workload.ecs.ecs(task_type, node_type, k);
        // Deadline filter (Constraint 2 of Eq. 7): execution time beyond
        // the slack means no task of this type ever makes its deadline in
        // this P-state.
        let feasible = ecs > 0.0 && 1.0 / ecs <= t.deadline_slack;
        let reward_rate = if feasible { t.reward * ecs } else { 0.0 };
        points.push((pstates.power_kw(k), reward_rate));
    }
    PiecewiseLinear::new(points)
}

/// Mean reward-rate-to-power ratio of a task type on a core type over all
/// *active* P-states — the ranking key for the "best ψ%" selection
/// (Section V.B.2).
pub fn mean_reward_per_watt(
    workload: &Workload,
    pstates: &PStateTable,
    task_type: usize,
    node_type: usize,
) -> f64 {
    let curve = reward_rate_curve(workload, pstates, task_type, node_type);
    // The curve's breakpoints after the origin are exactly the active
    // P-states (deepest first).
    let pts = &curve.points()[1..];
    pts.iter().map(|&(p, r)| r / p).sum::<f64>() / pts.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use thermaware_workload::{EcsMatrix, TaskType, Workload};

    /// The worked example of Section V.B.2: 4 P-states with powers
    /// 0.15/0.10/0.05/0 kW and ECS 1.2/0.9/0.5/0, reward 1.
    fn example(deadline_slack: f64) -> (Workload, PStateTable) {
        let ecs = EcsMatrix::from_blocks(vec![vec![vec![1.2, 0.9, 0.5, 0.0]]]);
        let workload = Workload {
            task_types: vec![TaskType {
                index: 0,
                arrival_rate: 1.0,
                reward: 1.0,
                deadline_slack,
            }],
            ecs,
        };
        let pstates = PStateTable::new(
            vec![0.15, 0.10, 0.05],
            vec![2500.0, 2000.0, 1500.0],
            vec![1.3, 1.2, 1.1],
        );
        (workload, pstates)
    }

    #[test]
    fn figure_3_exact_points() {
        // Generous deadline: every P-state contributes.
        let (w, p) = example(100.0);
        let rr = reward_rate_curve(&w, &p, 0, 0);
        assert_eq!(
            rr.points(),
            &[(0.0, 0.0), (0.05, 0.5), (0.10, 0.9), (0.15, 1.2)]
        );
        assert!(rr.is_concave());
    }

    #[test]
    fn figure_4_deadline_cliff() {
        // m = 1.5: P-state 2 needs 1/0.5 = 2 s > 1.5 s, so it earns 0.
        let (w, p) = example(1.5);
        let rr = reward_rate_curve(&w, &p, 0, 0);
        assert_eq!(
            rr.points(),
            &[(0.0, 0.0), (0.05, 0.0), (0.10, 0.9), (0.15, 1.2)]
        );
        assert!(!rr.is_concave());
    }

    #[test]
    fn tight_deadline_kills_everything() {
        // m below even P-state 0's execution time: the whole curve is 0.
        let (w, p) = example(0.5);
        let rr = reward_rate_curve(&w, &p, 0, 0);
        for &(_, y) in rr.points() {
            assert_eq!(y, 0.0);
        }
    }

    #[test]
    fn reward_scales_linearly() {
        let (mut w, p) = example(100.0);
        w.task_types[0].reward = 3.0;
        let rr = reward_rate_curve(&w, &p, 0, 0);
        assert!((rr.eval(0.15) - 3.6).abs() < 1e-12);
        assert!((rr.eval(0.05) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn mean_reward_per_watt_matches_hand_computation() {
        let (w, p) = example(100.0);
        // Ratios: 0.5/0.05 = 10, 0.9/0.10 = 9, 1.2/0.15 = 8 -> mean 9.
        let m = mean_reward_per_watt(&w, &p, 0, 0);
        assert!((m - 9.0).abs() < 1e-12);
        // With the deadline cliff, P-state 2's ratio drops to 0: mean
        // (0 + 9 + 8)/3.
        let (w2, p2) = example(1.5);
        let m2 = mean_reward_per_watt(&w2, &p2, 0, 0);
        assert!((m2 - 17.0 / 3.0).abs() < 1e-12);
    }
}
