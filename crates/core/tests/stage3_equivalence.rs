//! Equivalence of the grouped Stage-3 LP against a direct per-core
//! formulation of Eq. 7's continuous sub-problem.
//!
//! `thermaware-core` groups cores by `(node type, P-state)` — a claimed
//! lossless reduction. This test solves the *ungrouped* LP (one `TC(i,k)`
//! variable per task type per individual core, per-core capacity rows)
//! and checks the optima coincide, on several scenarios and P-state
//! assignments, including asymmetric ones.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use thermaware_core::stage3::solve_stage3;
use thermaware_datacenter::{DataCenter, ScenarioParams};

/// 6 nodes keep the *ungrouped* LP (thousands of per-core variables)
/// fast enough for the debug-profile test suite.
fn small_dc(seed: u64) -> DataCenter {
    ScenarioParams {
        n_nodes: 6,
        ..ScenarioParams::small_test()
    }
    .build(seed)
    .expect("small_test scenario builds")
}
use thermaware_lp::{Problem, RowOp, Sense, VarId};

/// The per-core Stage-3 LP, straight from Eq. 7 with P-states and CRAC
/// outlets fixed.
fn solve_stage3_per_core(dc: &DataCenter, pstates: &[usize]) -> f64 {
    let t = dc.n_task_types();
    let mut p = Problem::new(Sense::Maximize);
    let mut vars: Vec<Vec<Option<VarId>>> = Vec::with_capacity(dc.n_cores());
    for k in 0..dc.n_cores() {
        let nt = dc.core_type(k);
        let ps = pstates[k];
        let mut row = Vec::with_capacity(t);
        for i in 0..t {
            let ecs = dc.workload.ecs.ecs(i, nt, ps);
            let ok = ecs > 0.0 && dc.workload.deadline_feasible(i, nt, ps);
            row.push(ok.then(|| {
                p.add_var(
                    &format!("tc_{i}_{k}"),
                    0.0,
                    f64::INFINITY,
                    dc.workload.task_types[i].reward,
                )
            }));
        }
        vars.push(row);
    }
    // Constraint 1: per-core capacity.
    for k in 0..dc.n_cores() {
        let nt = dc.core_type(k);
        let ps = pstates[k];
        let terms: Vec<(VarId, f64)> = (0..t)
            .filter_map(|i| vars[k][i].map(|v| (v, 1.0 / dc.workload.ecs.ecs(i, nt, ps))))
            .collect();
        if !terms.is_empty() {
            p.add_row_nodup(&format!("cap_{k}"), &terms, RowOp::Le, 1.0);
        }
    }
    // Constraint 3: arrivals.
    for i in 0..t {
        let terms: Vec<(VarId, f64)> = (0..dc.n_cores())
            .filter_map(|k| vars[k][i].map(|v| (v, 1.0)))
            .collect();
        if !terms.is_empty() {
            p.add_row_nodup(
                &format!("arr_{i}"),
                &terms,
                RowOp::Le,
                dc.workload.task_types[i].arrival_rate,
            );
        }
    }
    p.solve().expect("per-core LP").objective
}

fn check(dc: &DataCenter, pstates: &[usize]) {
    let grouped = solve_stage3(dc, pstates).expect("grouped").reward_rate;
    let per_core = solve_stage3_per_core(dc, pstates);
    let diff = (grouped - per_core).abs();
    assert!(
        diff <= 1e-6 * (1.0 + grouped.abs()),
        "grouped {grouped} vs per-core {per_core}"
    );
}

#[test]
fn uniform_pstate_assignments_match() {
    let dc = small_dc(1);
    for ps in 0..3 {
        let pstates = vec![ps; dc.n_cores()];
        check(&dc, &pstates);
    }
}

#[test]
fn striped_assignment_matches() {
    let dc = small_dc(2);
    let pstates: Vec<usize> = (0..dc.n_cores()).map(|k| k % 5).collect();
    check(&dc, &pstates);
}

#[test]
fn random_assignments_match() {
    let dc = small_dc(3);
    let mut rng = StdRng::seed_from_u64(17);
    for _ in 0..3 {
        let pstates: Vec<usize> = (0..dc.n_cores())
            .map(|k| {
                let n = dc.node_type(dc.node_of_core(k)).core.pstates.n_total();
                rng.gen_range(0..n)
            })
            .collect();
        check(&dc, &pstates);
    }
}

#[test]
fn mostly_off_assignment_matches() {
    let dc = small_dc(4);
    let off = dc.node_type(0).core.pstates.off_index();
    let mut pstates = vec![off; dc.n_cores()];
    // A handful of active cores with different P-states.
    for (idx, ps) in [(0usize, 0usize), (33, 1), (77, 2), (200, 3), (301, 0)] {
        if idx < pstates.len() {
            pstates[idx] = ps;
        }
    }
    check(&dc, &pstates);
}
