//! CRAC-outlet search strategy tests: the cheaper coordinate-descent
//! refinement must land near the exhaustive grid on real Stage-1
//! problems (the paper notes full enumeration grows exponentially with
//! the number of CRAC units, so the fallback has to be trustworthy).

use thermaware_core::{solve_three_stage, ThreeStageOptions};
use thermaware_datacenter::{CracSearchOptions, ScenarioParams};

#[test]
fn coordinate_descent_close_to_exhaustive() {
    let dc = ScenarioParams {
        n_nodes: 12,
        n_crac: 2,
        ..ScenarioParams::paper(0.2, 0.3)
    }
    .build(3)
    .unwrap();
    let exhaustive = solve_three_stage(
        &dc,
        &ThreeStageOptions {
            psi_percent: 50.0,
            search: CracSearchOptions {
                exhaustive_refine: true,
                ..CracSearchOptions::default()
            },
            ..ThreeStageOptions::default()
        },
    )
    .unwrap();
    let descent = solve_three_stage(
        &dc,
        &ThreeStageOptions {
            psi_percent: 50.0,
            search: CracSearchOptions {
                exhaustive_refine: false,
                ..CracSearchOptions::default()
            },
            ..ThreeStageOptions::default()
        },
    )
    .unwrap();
    assert!(
        descent.reward_rate() >= 0.95 * exhaustive.reward_rate(),
        "descent {} vs exhaustive {}",
        descent.reward_rate(),
        exhaustive.reward_rate()
    );
    // Local search can tie but never beat the enumeration beyond noise
    // (the enumeration covers its whole candidate set).
    assert!(descent.reward_rate() <= exhaustive.reward_rate() * 1.02);
}

#[test]
fn wider_refinement_never_hurts() {
    let dc = ScenarioParams::small_test().build(5).unwrap();
    let narrow = solve_three_stage(
        &dc,
        &ThreeStageOptions {
            psi_percent: 50.0,
            search: CracSearchOptions {
                refine_radius: 0,
                ..CracSearchOptions::default()
            },
            ..ThreeStageOptions::default()
        },
    )
    .unwrap();
    let wide = solve_three_stage(
        &dc,
        &ThreeStageOptions {
            psi_percent: 50.0,
            search: CracSearchOptions {
                refine_radius: 4,
                ..CracSearchOptions::default()
            },
            ..ThreeStageOptions::default()
        },
    )
    .unwrap();
    assert!(wide.reward_rate() >= narrow.reward_rate() - 1e-9);
}

#[test]
fn finer_coarse_grid_never_hurts() {
    let dc = ScenarioParams::small_test().build(6).unwrap();
    let coarse = solve_three_stage(
        &dc,
        &ThreeStageOptions {
            psi_percent: 50.0,
            search: CracSearchOptions {
                coarse_step_c: 15.0,
                refine_radius: 0,
                ..CracSearchOptions::default()
            },
            ..ThreeStageOptions::default()
        },
    )
    .unwrap();
    let fine = solve_three_stage(
        &dc,
        &ThreeStageOptions {
            psi_percent: 50.0,
            search: CracSearchOptions {
                coarse_step_c: 2.0,
                refine_radius: 0,
                ..CracSearchOptions::default()
            },
            ..ThreeStageOptions::default()
        },
    )
    .unwrap();
    assert!(fine.reward_rate() >= coarse.reward_rate() - 1e-9);
}
