//! Optimality-gap test: on a tiny instance the exhaustive Eq.-7 solver is
//! tractable, so we can bound how much the three-stage heuristic gives up
//! and confirm the exact optimum dominates every other solver.

use thermaware_core::minlp::{solve_exact, MinlpOptions};
use thermaware_core::{
    solve_baseline, solve_three_stage_best_of, verify_assignment,
};
use thermaware_datacenter::{CracSearchOptions, DataCenter, PowerBudget};
use thermaware_linalg::Matrix;
use thermaware_power::{CoreType, NodeType, PStateTable};
use thermaware_thermal::{CracUnit, CrossInterference, Layout, ThermalModel};
use thermaware_workload::{EcsMatrix, TaskType, Workload};

/// A 2-node / 2-cores-each / 1-CRAC data center with hand-built,
/// exactly-consistent cross-interference: each node exhausts fully to the
/// CRAC, which splits its supply evenly — no recirculation, so the
/// thermal model is easy to reason about and the instance is exactly
/// enumerable.
fn tiny_dc(lambda: [f64; 2]) -> DataCenter {
    let layout = Layout::with_rack_height(1, 2, 1);
    let node_type = NodeType {
        name: "tiny".into(),
        base_power_kw: 0.10,
        cores_per_node: 2,
        core: CoreType {
            name: "tiny-core".into(),
            pstates: PStateTable::new(
                vec![0.05, 0.03],
                vec![2000.0, 1500.0],
                vec![1.2, 1.1],
            ),
        },
        air_flow_m3s: 0.83,
    };
    let flows = vec![1.66, 0.83, 0.83];
    // alpha: rows = source unit, cols = destination unit, [CRAC, n1, n2].
    let alpha = Matrix::from_rows(&[
        &[0.0, 0.5, 0.5],
        &[1.0, 0.0, 0.0],
        &[1.0, 0.0, 0.0],
    ]);
    let ci = CrossInterference::from_matrix(1, alpha);
    let thermal = ThermalModel::new(&layout, &flows, &ci, 25.0, 40.0)
        .expect("hand-built two-node model is valid");
    let cracs = vec![CracUnit {
        flow_m3s: 1.66,
        min_outlet_c: 10.0,
        max_outlet_c: 25.0,
    }];
    let ecs = EcsMatrix::from_blocks(vec![vec![vec![2.0, 1.4, 0.0], vec![1.0, 0.8, 0.0]]]);
    let workload = Workload {
        task_types: vec![
            TaskType {
                index: 0,
                arrival_rate: lambda[0],
                reward: 1.0,
                deadline_slack: 10.0,
            },
            TaskType {
                index: 1,
                arrival_rate: lambda[1],
                reward: 1.8,
                deadline_slack: 10.0,
            },
        ],
        ecs,
    };
    let node_types = vec![node_type.clone()];
    let node_type_of = vec![0, 0];
    let budget = PowerBudget::compute(&thermal, &cracs, &node_types, &node_type_of)
        .expect("budget computes for the hand-built model");
    DataCenter::new(
        layout,
        node_types,
        node_type_of,
        cracs,
        thermal,
        ci,
        workload,
        budget,
    )
}

#[test]
fn exact_dominates_heuristic_and_gap_is_small() {
    let dc = tiny_dc([3.0, 2.0]);
    let exact = solve_exact(&dc, &MinlpOptions::default()).expect("exact");
    let heuristic =
        solve_three_stage_best_of(&dc, &[25.0, 50.0, 100.0], CracSearchOptions::default())
            .expect("heuristic");
    assert!(
        exact.reward_rate >= heuristic.reward_rate() - 1e-6,
        "exact {} below heuristic {}",
        exact.reward_rate,
        heuristic.reward_rate()
    );
    // The heuristic should land close to optimal on an instance this
    // small (the relaxation is tight when cores sit on P-state powers).
    assert!(
        heuristic.reward_rate() >= 0.8 * exact.reward_rate,
        "heuristic {} far below exact {}",
        heuristic.reward_rate(),
        exact.reward_rate
    );
    // The exact solution itself verifies.
    let report = verify_assignment(&dc, &exact.crac_out_c, &exact.pstates, Some(&exact.stage3));
    assert!(report.is_feasible(), "{report:?}");
    assert!(exact.combinations_checked >= 36, "multiset space is 6 x 6");
}

#[test]
fn exact_dominates_baseline_too() {
    let dc = tiny_dc([3.0, 2.0]);
    let exact = solve_exact(&dc, &MinlpOptions::default()).expect("exact");
    let baseline = solve_baseline(&dc, CracSearchOptions::default()).expect("baseline");
    assert!(
        exact.reward_rate >= baseline.reward_rate - 1e-6,
        "exact {} below baseline {}",
        exact.reward_rate,
        baseline.reward_rate
    );
}

#[test]
fn intermediate_pstates_win_when_they_are_more_efficient() {
    // In the tiny instance P-state 1's perf/W for type 0 is
    // 1.4/0.03 = 46.7 vs P0's 2.0/0.05 = 40: under a tight budget the
    // exact optimum should use P-state 1 somewhere — the effect the whole
    // paper is about.
    let dc = tiny_dc([3.0, 2.0]);
    let exact = solve_exact(&dc, &MinlpOptions::default()).expect("exact");
    assert!(
        exact.pstates.contains(&1),
        "expected intermediate P-states in {:?}",
        exact.pstates
    );
}

#[test]
fn undersubscribed_instance_serves_all_arrivals() {
    // With tiny arrival rates, every solver should earn the full reward
    // ceiling: λ · r summed.
    let dc = tiny_dc([0.1, 0.1]);
    let ceiling = dc.workload.max_reward_rate();
    let exact = solve_exact(&dc, &MinlpOptions::default()).expect("exact");
    assert!((exact.reward_rate - ceiling).abs() < 1e-6);
    let heuristic =
        solve_three_stage_best_of(&dc, &[50.0], CracSearchOptions::default()).unwrap();
    assert!((heuristic.reward_rate() - ceiling).abs() < 1e-6);
}
