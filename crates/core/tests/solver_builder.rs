//! The [`Solver`] builder must be *bit-identical* to the legacy free
//! functions: both paths funnel into the same `pub(crate)` implementations,
//! and these tests hold that contract across every configuration knob.

use thermaware_core::{
    solve_baseline, solve_three_stage, solve_three_stage_best_of, Solver, ThreeStageOptions,
};
use thermaware_datacenter::{CracSearchOptions, ScenarioParams};

fn build_dc(seed: u64) -> thermaware_datacenter::DataCenter {
    ScenarioParams {
        n_nodes: 12,
        n_crac: 2,
        ..ScenarioParams::small_test()
    }
    .build(seed)
    .expect("scenario")
}

#[test]
fn builder_single_psi_is_bit_identical() {
    let dc = build_dc(17);
    for psi in [25.0, 50.0, 100.0] {
        let opts = ThreeStageOptions {
            psi_percent: psi,
            ..ThreeStageOptions::default()
        };
        let legacy = solve_three_stage(&dc, &opts).expect("legacy");
        let built = Solver::new(&dc).psi(psi).solve().expect("builder");
        assert_eq!(legacy, built, "psi = {psi}");
    }
}

#[test]
fn builder_best_of_is_bit_identical() {
    let dc = build_dc(23);
    let psis = [30.0, 50.0, 80.0];
    let search = CracSearchOptions::default();
    let legacy = solve_three_stage_best_of(&dc, &psis, search).expect("legacy");
    let built = Solver::new(&dc)
        .psi_best_of(psis.to_vec())
        .crac_grid(search)
        .solve()
        .expect("builder");
    assert_eq!(legacy, built);
}

#[test]
fn builder_baseline_is_bit_identical() {
    let dc = build_dc(31);
    let search = CracSearchOptions::default();
    let legacy = solve_baseline(&dc, search).expect("legacy");
    let built = Solver::new(&dc).crac_grid(search).baseline().expect("builder");
    assert_eq!(legacy.reward_rate, built.reward_rate);
    assert_eq!(legacy.crac_out_c, built.crac_out_c);
    assert_eq!(legacy.frac, built.frac);
    assert_eq!(legacy.cores_on, built.cores_on);
}

#[test]
fn builder_with_custom_search_grid_is_bit_identical() {
    let dc = build_dc(41);
    let search = CracSearchOptions {
        coarse_step_c: 2.0,
        fine_step_c: 0.5,
        ..CracSearchOptions::default()
    };
    let opts = ThreeStageOptions {
        psi_percent: 50.0,
        search,
        ..ThreeStageOptions::default()
    };
    let legacy = solve_three_stage(&dc, &opts).expect("legacy");
    let built = Solver::new(&dc).psi(50.0).crac_grid(search).solve().expect("builder");
    assert_eq!(legacy, built);
}

#[test]
fn builder_memory_recorder_does_not_change_the_answer() {
    let dc = build_dc(53);
    let bare = Solver::new(&dc).solve().expect("bare");
    let rec = std::sync::Arc::new(thermaware_obs::MemoryRecorder::new());
    let observed = Solver::new(&dc).recorder(rec.clone()).solve().expect("observed");
    assert_eq!(bare, observed);
    // And the solve actually produced a trace.
    let spans = rec.spans();
    assert!(
        spans.iter().any(|s| s.name == "three_stage"),
        "expected a three_stage span, got {:?}",
        spans.iter().map(|s| s.name).collect::<Vec<_>>()
    );
}
