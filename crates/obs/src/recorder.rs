//! The [`Recorder`] sink contract and the zero-overhead no-op sink.

use crate::span::SpanRecord;

/// Where instrumentation events go. Implementations must be shareable
/// across threads: the solver fan-out (`parallel_map`) records from many
/// workers into one sink.
///
/// Metric names are `&'static str` by design: every instrumentation
/// point names a fixed, compile-time-known series, which keeps the
/// disabled path allocation-free and makes the set of series a crate
/// exports auditable by grep.
pub trait Recorder: Send + Sync {
    /// A completed span (emitted at scope exit, children before parents).
    fn record_span(&self, span: &SpanRecord);
    /// Add to a monotonically increasing counter.
    fn counter_add(&self, name: &'static str, delta: u64);
    /// Set a point-in-time gauge.
    fn gauge_set(&self, name: &'static str, value: f64);
    /// Record one observation into a log-scale histogram.
    fn observe(&self, name: &'static str, value: f64);
}

/// The disabled sink: every method is a no-op. Installing it is
/// equivalent to (and as cheap as) installing nothing — the global
/// fast path short-circuits before any event is even constructed.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn record_span(&self, _span: &SpanRecord) {}
    fn counter_add(&self, _name: &'static str, _delta: u64) {}
    fn gauge_set(&self, _name: &'static str, _value: f64) {}
    fn observe(&self, _name: &'static str, _value: f64) {}
}
