//! Lock-free log-scale histograms.
//!
//! A [`LogHistogram`] buckets positive values by their binary exponent:
//! bucket `i` (for `1 <= i < N_BUCKETS`) covers `[2^(i-1+MIN_EXP),
//! 2^(i+MIN_EXP))`, so with `MIN_EXP = -20` the finest bucket starts at
//! ~9.5e-7 and the coarsest ends at 2^43 ≈ 8.8e12 — wide enough for both
//! microsecond timings and simplex iteration counts without configuration.
//! Bucket 0 collects non-positive and sub-range values. The bucket count
//! and boundaries are fixed at compile time, which keeps `record` a pure
//! atomic increment and makes merged snapshots from concurrent writers
//! well-defined.
//!
//! All state is atomic (`AtomicU64` counts, f64-as-bits CAS for sum, min
//! and max), matching the workspace's scoped-threads + atomics
//! concurrency pattern: many `parallel_map` workers can record into one
//! shared histogram with no lock.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets (one underflow bucket + 63 binary-exponent buckets).
pub const N_BUCKETS: usize = 64;
/// Binary exponent of the lower edge of bucket 1: bucket 1 covers
/// `[2^MIN_EXP, 2^(MIN_EXP+1))`.
pub const MIN_EXP: i32 = -20;

/// A fixed-bucket, log-scale histogram safe for concurrent recording.
#[derive(Debug)]
pub struct LogHistogram {
    counts: [AtomicU64; N_BUCKETS],
    count: AtomicU64,
    /// Sum of recorded values, stored as f64 bits (CAS loop on update).
    sum_bits: AtomicU64,
    /// Minimum recorded value as f64 bits; `u64::MAX` when empty.
    min_bits: AtomicU64,
    /// Maximum recorded value as f64 bits; `u64::MAX` when empty.
    max_bits: AtomicU64,
}

/// The bucket index a value lands in.
pub fn bucket_index(v: f64) -> usize {
    if !v.is_finite() || v <= 0.0 {
        return 0;
    }
    let e = v.log2().floor() as i64;
    let idx = e - i64::from(MIN_EXP) + 1;
    idx.clamp(0, N_BUCKETS as i64 - 1) as usize
}

/// The exclusive upper edge of a bucket (`f64::INFINITY` for the last).
pub fn bucket_upper_edge(i: usize) -> f64 {
    if i >= N_BUCKETS - 1 {
        f64::INFINITY
    } else {
        // Bucket 0 is the underflow bucket: everything below 2^MIN_EXP.
        (2.0_f64).powi(MIN_EXP + i as i32)
    }
}

impl Default for LogHistogram {
    fn default() -> LogHistogram {
        LogHistogram::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> LogHistogram {
        LogHistogram {
            counts: [(); N_BUCKETS].map(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0.0_f64.to_bits()),
            min_bits: AtomicU64::new(u64::MAX),
            max_bits: AtomicU64::new(u64::MAX),
        }
    }

    /// Record one observation. Non-finite values are counted in the
    /// underflow bucket and excluded from sum/min/max, so a stray
    /// `INFINITY` cannot poison the summary statistics.
    pub fn record(&self, v: f64) {
        self.counts[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        if !v.is_finite() {
            return;
        }
        // f64 CAS loops for sum/min/max. Relaxed is fine: the histogram
        // is a statistic, not a synchronization point, and snapshots are
        // taken after the recording threads have joined.
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self
                .sum_bits
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
        let mut cur = self.min_bits.load(Ordering::Relaxed);
        while cur == u64::MAX || v < f64::from_bits(cur) {
            match self
                .min_bits
                .compare_exchange_weak(cur, v.to_bits(), Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
        let mut cur = self.max_bits.load(Ordering::Relaxed);
        while cur == u64::MAX || v > f64::from_bits(cur) {
            match self
                .max_bits
                .compare_exchange_weak(cur, v.to_bits(), Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// An immutable summary of the current contents.
    pub fn snapshot(&self) -> HistogramSummary {
        let count = self.count.load(Ordering::Relaxed);
        let buckets: Vec<(f64, u64)> = (0..N_BUCKETS)
            .filter_map(|i| {
                let c = self.counts[i].load(Ordering::Relaxed);
                (c > 0).then(|| (bucket_upper_edge(i), c))
            })
            .collect();
        let unwrap_bits = |bits: u64| if bits == u64::MAX { 0.0 } else { f64::from_bits(bits) };
        HistogramSummary {
            count,
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
            min: unwrap_bits(self.min_bits.load(Ordering::Relaxed)),
            max: unwrap_bits(self.max_bits.load(Ordering::Relaxed)),
            p50: quantile(&buckets, count, 0.50),
            p95: quantile(&buckets, count, 0.95),
            p99: quantile(&buckets, count, 0.99),
            buckets,
        }
    }
}

/// Bucket-resolution quantile: the upper edge of the first bucket whose
/// cumulative count reaches `q * count` (an upper bound on the true
/// quantile, tight to within one binary order of magnitude).
fn quantile(buckets: &[(f64, u64)], count: u64, q: f64) -> f64 {
    if count == 0 {
        return 0.0;
    }
    let target = (q * count as f64).ceil().max(1.0) as u64;
    let mut cum = 0u64;
    for &(edge, c) in buckets {
        cum += c;
        if cum >= target {
            return edge;
        }
    }
    buckets.last().map(|&(e, _)| e).unwrap_or(0.0)
}

/// A point-in-time summary of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSummary {
    /// Observations recorded.
    pub count: u64,
    /// Sum of finite observations.
    pub sum: f64,
    /// Smallest finite observation (0 when empty).
    pub min: f64,
    /// Largest finite observation (0 when empty).
    pub max: f64,
    /// Bucket-resolution median (upper bound).
    pub p50: f64,
    /// Bucket-resolution 95th percentile (upper bound).
    pub p95: f64,
    /// Bucket-resolution 99th percentile (upper bound).
    pub p99: f64,
    /// Non-empty buckets as `(exclusive upper edge, count)` pairs in
    /// ascending edge order.
    pub buckets: Vec<(f64, u64)>,
}

impl HistogramSummary {
    /// Mean of finite observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_are_powers_of_two() {
        // 1.0 = 2^0 lands in the bucket whose range starts at 2^0.
        let i = bucket_index(1.0);
        assert_eq!(bucket_upper_edge(i), 2.0);
        // Exactly at a bucket's lower edge -> that bucket, not the one
        // below: 2.0 belongs to [2, 4).
        assert_eq!(bucket_index(2.0), i + 1);
        // Just under the edge stays below.
        assert_eq!(bucket_index(1.9999999), i);
    }

    #[test]
    fn non_positive_and_non_finite_underflow() {
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(-3.0), 0);
        assert_eq!(bucket_index(f64::NAN), 0);
        assert_eq!(bucket_index(f64::INFINITY), 0);
        let h = LogHistogram::new();
        h.record(f64::INFINITY);
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert_eq!(s.sum, 0.0, "non-finite excluded from the sum");
    }

    #[test]
    fn summary_statistics() {
        let h = LogHistogram::new();
        for v in [1.0, 2.0, 4.0, 8.0] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 15.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 8.0);
        assert_eq!(s.mean(), 3.75);
        // Each value sits alone in its bucket; p50 is the upper edge of
        // the second bucket (cumulative 2 of 4).
        assert_eq!(s.p50, 4.0);
        assert_eq!(s.buckets.len(), 4);
    }
}
