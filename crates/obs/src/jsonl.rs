//! The JSONL trace sink: one JSON object per line, written as events
//! complete, suitable for `results/` artifacts and offline analysis.
//!
//! Line schema (`type` discriminates):
//!
//! ```text
//! {"type":"meta","format":"thermaware-obs-trace","version":1,"clock":"us"}
//! {"type":"span","path":"three_stage/stage1","name":"stage1","depth":1,
//!  "thread":0,"start_us":12,"dur_us":3456}
//! {"type":"counter","name":"lp.solves","value":18}
//! {"type":"gauge","name":"core.reward_rate","value":88.25}
//! {"type":"hist","name":"lp.iterations","count":18,"sum":412.0,
//!  "min":4.0,"max":96.0,"mean":22.9,"p50":32.0,"p95":128.0,"p99":128.0,
//!  "buckets":[[8.0,3],[32.0,9],[128.0,6]]}
//! ```
//!
//! Span lines stream out as spans close; counter/gauge/hist summary
//! lines are written once by [`JsonlRecorder::finish`]. Non-finite
//! numbers are encoded as the strings `"inf"`/`"-inf"`/`"NaN"` (the
//! workspace's event-log convention) — in particular the open upper
//! edge of a histogram's last bucket.

use crate::json::{push_f64, push_str_literal};
use crate::registry::{MetricRegistry, MetricsSnapshot};
use crate::span::SpanRecord;
use crate::Recorder;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::{Mutex, PoisonError};

/// Current trace-format version (the `meta` line's `version` field).
pub const TRACE_FORMAT_VERSION: u64 = 1;

fn meta_line() -> String {
    format!(
        "{{\"type\":\"meta\",\"format\":\"thermaware-obs-trace\",\
         \"version\":{TRACE_FORMAT_VERSION},\"clock\":\"us\"}}\n"
    )
}

/// `trace.jsonl` + generation 2 → `trace.2.jsonl` (extension preserved
/// so every generation still looks like a JSONL file to tooling).
fn generation_path(path: &Path, gen: usize) -> PathBuf {
    match (path.file_stem().and_then(|s| s.to_str()), path.extension().and_then(|e| e.to_str())) {
        (Some(stem), Some(ext)) => path.with_file_name(format!("{stem}.{gen}.{ext}")),
        _ => {
            let mut name = path.as_os_str().to_os_string();
            name.push(format!(".{gen}"));
            PathBuf::from(name)
        }
    }
}

/// Where span lines go: a plain writer, or a size-rotated file set.
enum Sink {
    Plain(BufWriter<Box<dyn Write + Send>>),
    Rotating {
        path: PathBuf,
        /// Rotate once the active file would exceed this many bytes.
        max_bytes: u64,
        /// Rotated generations to keep (`trace.1.jsonl` … `trace.K.jsonl`).
        keep: usize,
        writer: BufWriter<File>,
        written: u64,
    },
}

impl Sink {
    fn write_all(&mut self, bytes: &[u8]) -> io::Result<()> {
        match self {
            Sink::Plain(w) => w.write_all(bytes),
            Sink::Rotating { path, max_bytes, keep, writer, written } => {
                if *written > 0 && *written + bytes.len() as u64 > *max_bytes {
                    // Rotate: flush the active file, shift generations
                    // newest-first, start fresh with its own meta header
                    // so every generation parses standalone.
                    writer.flush()?;
                    for gen in (1..*keep).rev() {
                        let from = generation_path(path, gen);
                        if from.exists() {
                            std::fs::rename(&from, generation_path(path, gen + 1))?;
                        }
                    }
                    if *keep > 0 {
                        std::fs::rename(&*path, generation_path(path, 1))?;
                    }
                    *writer = BufWriter::new(File::create(&*path)?);
                    let header = meta_line();
                    writer.write_all(header.as_bytes())?;
                    *written = header.len() as u64;
                    crate::counter_add("obs.trace_rotations", 1);
                }
                *written += bytes.len() as u64;
                writer.write_all(bytes)
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Sink::Plain(w) => w.flush(),
            Sink::Rotating { writer, .. } => writer.flush(),
        }
    }
}

/// A [`Recorder`] that streams spans to a JSONL file and summarizes
/// metrics on [`finish`](JsonlRecorder::finish).
pub struct JsonlRecorder {
    out: Mutex<Sink>,
    metrics: MetricRegistry,
    /// First write error, reported by `finish` (span recording itself
    /// has no error channel — the `Recorder` trait is infallible by
    /// design so instrumented code never branches on sink health).
    failed: Mutex<Option<io::Error>>,
}

impl JsonlRecorder {
    /// Create (truncate) a trace file and write the `meta` header line.
    pub fn create(path: impl AsRef<Path>) -> io::Result<JsonlRecorder> {
        Self::from_writer(Box::new(File::create(path)?))
    }

    /// Like [`create`](Self::create), but rotate the file once it
    /// exceeds `max_bytes`: `trace.jsonl` → `trace.1.jsonl` → … →
    /// `trace.<keep>.jsonl`, oldest deleted. A week-long daemon trace
    /// stays bounded at roughly `(keep + 1) × max_bytes` on disk. Each
    /// generation starts with its own `meta` header line.
    pub fn create_rotating(
        path: impl AsRef<Path>,
        max_bytes: u64,
        keep: usize,
    ) -> io::Result<JsonlRecorder> {
        let path = path.as_ref().to_path_buf();
        let mut writer = BufWriter::new(File::create(&path)?);
        let header = meta_line();
        writer.write_all(header.as_bytes())?;
        Ok(JsonlRecorder {
            out: Mutex::new(Sink::Rotating {
                path,
                // Must hold at least a header + one line or rotation spins.
                max_bytes: max_bytes.max(4 * 1024),
                keep,
                writer,
                written: header.len() as u64,
            }),
            metrics: MetricRegistry::default(),
            failed: Mutex::new(None),
        })
    }

    /// Wrap any writer (used by tests to trace into a buffer).
    pub fn from_writer(w: Box<dyn Write + Send>) -> io::Result<JsonlRecorder> {
        let mut out = BufWriter::new(w);
        out.write_all(meta_line().as_bytes())?;
        Ok(JsonlRecorder {
            out: Mutex::new(Sink::Plain(out)),
            metrics: MetricRegistry::default(),
            failed: Mutex::new(None),
        })
    }

    fn write_line(&self, line: &str) {
        let mut out = self.out.lock().unwrap_or_else(PoisonError::into_inner);
        let mut buf = Vec::with_capacity(line.len() + 1);
        buf.extend_from_slice(line.as_bytes());
        buf.push(b'\n');
        if let Err(e) = out.write_all(&buf) {
            self.failed
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .get_or_insert(e);
        }
    }

    /// Flush buffered span lines to disk without summarizing metrics —
    /// a long-running daemon calls this at epoch boundaries so the trace
    /// tail survives a SIGKILL.
    pub fn flush(&self) -> io::Result<()> {
        self.out
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .flush()
    }

    /// Write the metric summary lines and flush. Returns the first write
    /// error encountered over the recorder's whole life, so a silently
    /// truncated trace cannot pass for a complete one.
    pub fn finish(&self) -> io::Result<()> {
        let snap = self.metrics.snapshot();
        for (name, value) in &snap.counters {
            let mut line = String::from("{\"type\":\"counter\",\"name\":");
            push_str_literal(&mut line, name);
            line.push_str(&format!(",\"value\":{value}}}"));
            self.write_line(&line);
        }
        for (name, value) in &snap.gauges {
            let mut line = String::from("{\"type\":\"gauge\",\"name\":");
            push_str_literal(&mut line, name);
            line.push_str(",\"value\":");
            push_f64(&mut line, *value);
            line.push('}');
            self.write_line(&line);
        }
        for (name, h) in &snap.histograms {
            let mut line = String::from("{\"type\":\"hist\",\"name\":");
            push_str_literal(&mut line, name);
            line.push_str(&format!(",\"count\":{}", h.count));
            for (key, v) in [
                ("sum", h.sum),
                ("min", h.min),
                ("max", h.max),
                ("mean", h.mean()),
                ("p50", h.p50),
                ("p95", h.p95),
                ("p99", h.p99),
            ] {
                line.push_str(&format!(",\"{key}\":"));
                push_f64(&mut line, v);
            }
            line.push_str(",\"buckets\":[");
            for (i, (edge, c)) in h.buckets.iter().enumerate() {
                if i > 0 {
                    line.push(',');
                }
                line.push('[');
                push_f64(&mut line, *edge);
                line.push_str(&format!(",{c}]"));
            }
            line.push_str("]}");
            self.write_line(&line);
        }
        let flush_result = self
            .out
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .flush();
        match self
            .failed
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
        {
            Some(e) => Err(e),
            None => flush_result,
        }
    }

    /// A point-in-time copy of the metric series (spans are on disk).
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }
}

impl Recorder for JsonlRecorder {
    fn record_span(&self, span: &SpanRecord) {
        let mut line = String::from("{\"type\":\"span\",\"path\":");
        push_str_literal(&mut line, &span.path);
        line.push_str(",\"name\":");
        push_str_literal(&mut line, span.name);
        line.push_str(&format!(
            ",\"depth\":{},\"thread\":{},\"start_us\":{},\"dur_us\":{}}}",
            span.depth, span.thread, span.start_us, span.dur_us
        ));
        self.write_line(&line);
    }

    fn counter_add(&self, name: &'static str, delta: u64) {
        self.metrics.counter_add(name, delta);
    }

    fn gauge_set(&self, name: &'static str, value: f64) {
        self.metrics.gauge_set(name, value);
    }

    fn observe(&self, name: &'static str, value: f64) {
        self.metrics.observe(name, value);
    }
}
