//! The JSONL trace sink: one JSON object per line, written as events
//! complete, suitable for `results/` artifacts and offline analysis.
//!
//! Line schema (`type` discriminates):
//!
//! ```text
//! {"type":"meta","format":"thermaware-obs-trace","version":1,"clock":"us"}
//! {"type":"span","path":"three_stage/stage1","name":"stage1","depth":1,
//!  "thread":0,"start_us":12,"dur_us":3456}
//! {"type":"counter","name":"lp.solves","value":18}
//! {"type":"gauge","name":"core.reward_rate","value":88.25}
//! {"type":"hist","name":"lp.iterations","count":18,"sum":412.0,
//!  "min":4.0,"max":96.0,"mean":22.9,"p50":32.0,"p95":128.0,"p99":128.0,
//!  "buckets":[[8.0,3],[32.0,9],[128.0,6]]}
//! ```
//!
//! Span lines stream out as spans close; counter/gauge/hist summary
//! lines are written once by [`JsonlRecorder::finish`]. Non-finite
//! numbers are encoded as the strings `"inf"`/`"-inf"`/`"NaN"` (the
//! workspace's event-log convention) — in particular the open upper
//! edge of a histogram's last bucket.

use crate::json::{push_f64, push_str_literal};
use crate::registry::{MetricRegistry, MetricsSnapshot};
use crate::span::SpanRecord;
use crate::Recorder;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::{Mutex, PoisonError};

/// Current trace-format version (the `meta` line's `version` field).
pub const TRACE_FORMAT_VERSION: u64 = 1;

/// A [`Recorder`] that streams spans to a JSONL file and summarizes
/// metrics on [`finish`](JsonlRecorder::finish).
pub struct JsonlRecorder {
    out: Mutex<BufWriter<Box<dyn Write + Send>>>,
    metrics: MetricRegistry,
    /// First write error, reported by `finish` (span recording itself
    /// has no error channel — the `Recorder` trait is infallible by
    /// design so instrumented code never branches on sink health).
    failed: Mutex<Option<io::Error>>,
}

impl JsonlRecorder {
    /// Create (truncate) a trace file and write the `meta` header line.
    pub fn create(path: impl AsRef<Path>) -> io::Result<JsonlRecorder> {
        Self::from_writer(Box::new(File::create(path)?))
    }

    /// Wrap any writer (used by tests to trace into a buffer).
    pub fn from_writer(w: Box<dyn Write + Send>) -> io::Result<JsonlRecorder> {
        let mut out = BufWriter::new(w);
        writeln!(
            out,
            "{{\"type\":\"meta\",\"format\":\"thermaware-obs-trace\",\
             \"version\":{TRACE_FORMAT_VERSION},\"clock\":\"us\"}}"
        )?;
        Ok(JsonlRecorder {
            out: Mutex::new(out),
            metrics: MetricRegistry::default(),
            failed: Mutex::new(None),
        })
    }

    fn write_line(&self, line: &str) {
        let mut out = self.out.lock().unwrap_or_else(PoisonError::into_inner);
        if let Err(e) = out.write_all(line.as_bytes()).and_then(|()| out.write_all(b"\n")) {
            self.failed
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .get_or_insert(e);
        }
    }

    /// Write the metric summary lines and flush. Returns the first write
    /// error encountered over the recorder's whole life, so a silently
    /// truncated trace cannot pass for a complete one.
    pub fn finish(&self) -> io::Result<()> {
        let snap = self.metrics.snapshot();
        for (name, value) in &snap.counters {
            let mut line = String::from("{\"type\":\"counter\",\"name\":");
            push_str_literal(&mut line, name);
            line.push_str(&format!(",\"value\":{value}}}"));
            self.write_line(&line);
        }
        for (name, value) in &snap.gauges {
            let mut line = String::from("{\"type\":\"gauge\",\"name\":");
            push_str_literal(&mut line, name);
            line.push_str(",\"value\":");
            push_f64(&mut line, *value);
            line.push('}');
            self.write_line(&line);
        }
        for (name, h) in &snap.histograms {
            let mut line = String::from("{\"type\":\"hist\",\"name\":");
            push_str_literal(&mut line, name);
            line.push_str(&format!(",\"count\":{}", h.count));
            for (key, v) in [
                ("sum", h.sum),
                ("min", h.min),
                ("max", h.max),
                ("mean", h.mean()),
                ("p50", h.p50),
                ("p95", h.p95),
                ("p99", h.p99),
            ] {
                line.push_str(&format!(",\"{key}\":"));
                push_f64(&mut line, v);
            }
            line.push_str(",\"buckets\":[");
            for (i, (edge, c)) in h.buckets.iter().enumerate() {
                if i > 0 {
                    line.push(',');
                }
                line.push('[');
                push_f64(&mut line, *edge);
                line.push_str(&format!(",{c}]"));
            }
            line.push_str("]}");
            self.write_line(&line);
        }
        let flush_result = self
            .out
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .flush();
        match self
            .failed
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
        {
            Some(e) => Err(e),
            None => flush_result,
        }
    }

    /// A point-in-time copy of the metric series (spans are on disk).
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }
}

impl Recorder for JsonlRecorder {
    fn record_span(&self, span: &SpanRecord) {
        let mut line = String::from("{\"type\":\"span\",\"path\":");
        push_str_literal(&mut line, &span.path);
        line.push_str(",\"name\":");
        push_str_literal(&mut line, span.name);
        line.push_str(&format!(
            ",\"depth\":{},\"thread\":{},\"start_us\":{},\"dur_us\":{}}}",
            span.depth, span.thread, span.start_us, span.dur_us
        ));
        self.write_line(&line);
    }

    fn counter_add(&self, name: &'static str, delta: u64) {
        self.metrics.counter_add(name, delta);
    }

    fn gauge_set(&self, name: &'static str, value: f64) {
        self.metrics.gauge_set(name, value);
    }

    fn observe(&self, name: &'static str, value: f64) {
        self.metrics.observe(name, value);
    }
}
