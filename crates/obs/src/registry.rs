//! The shared counter/gauge/histogram registry behind the in-memory and
//! JSONL sinks.
//!
//! Series are created lazily on first touch. The registry map is behind
//! an `RwLock` (insertions are rare — the set of series is the fixed set
//! of instrumentation points), while the series themselves are atomics,
//! so steady-state recording takes only a read lock and an atomic op.

use crate::hist::{HistogramSummary, LogHistogram};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, PoisonError, RwLock};

#[derive(Debug, Default)]
pub(crate) struct MetricRegistry {
    counters: RwLock<BTreeMap<&'static str, Arc<AtomicU64>>>,
    /// Gauges store f64 bits.
    gauges: RwLock<BTreeMap<&'static str, Arc<AtomicU64>>>,
    hists: RwLock<BTreeMap<&'static str, Arc<LogHistogram>>>,
}

/// Fetch-or-insert a series from one of the maps. Lock poisoning is
/// survivable here (the maps hold only atomics, never mid-update state),
/// so a panicking recorder thread does not take observability down.
fn series<T>(
    map: &RwLock<BTreeMap<&'static str, Arc<T>>>,
    name: &'static str,
    make: impl FnOnce() -> T,
) -> Arc<T> {
    if let Some(s) = map
        .read()
        .unwrap_or_else(PoisonError::into_inner)
        .get(name)
    {
        return Arc::clone(s);
    }
    let mut w = map.write().unwrap_or_else(PoisonError::into_inner);
    Arc::clone(w.entry(name).or_insert_with(|| Arc::new(make())))
}

impl MetricRegistry {
    pub(crate) fn counter_add(&self, name: &'static str, delta: u64) {
        series(&self.counters, name, || AtomicU64::new(0)).fetch_add(delta, Ordering::Relaxed);
    }

    pub(crate) fn gauge_set(&self, name: &'static str, value: f64) {
        series(&self.gauges, name, || AtomicU64::new(0.0_f64.to_bits()))
            .store(value.to_bits(), Ordering::Relaxed);
    }

    pub(crate) fn observe(&self, name: &'static str, value: f64) {
        series(&self.hists, name, LogHistogram::new).record(value);
    }

    pub(crate) fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .read()
                .unwrap_or_else(PoisonError::into_inner)
                .iter()
                .map(|(&k, v)| (k.to_string(), v.load(Ordering::Relaxed)))
                .collect(),
            gauges: self
                .gauges
                .read()
                .unwrap_or_else(PoisonError::into_inner)
                .iter()
                .map(|(&k, v)| (k.to_string(), f64::from_bits(v.load(Ordering::Relaxed))))
                .collect(),
            histograms: self
                .hists
                .read()
                .unwrap_or_else(PoisonError::into_inner)
                .iter()
                .map(|(&k, v)| (k.to_string(), v.snapshot()))
                .collect(),
        }
    }
}

/// A point-in-time copy of every metric series a sink has accumulated.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Last-written gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistogramSummary>,
}

impl MetricsSnapshot {
    /// A counter's total (0 when the series was never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// A histogram's summary, if the series exists.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.histograms.get(name)
    }
}
