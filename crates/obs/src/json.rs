//! Minimal JSON emission for the JSONL sink and the `BENCH_obs.json`
//! report.
//!
//! The obs crate is dependency-free by contract (it must be installable
//! under every crate in the workspace, including the bottom of the
//! dependency graph), so it cannot use the vendored `serde_json`. What
//! it emits is plain JSON that the vendored parser reads back — the
//! golden-file test in `tests/jsonl_golden.rs` holds that compatibility.

/// Append `s` as a JSON string literal (quoted, escaped) to `out`.
pub(crate) fn push_str_literal(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append an `f64` in JSON-legal form. JSON has no number for non-finite
/// values, so those become the strings `"inf"` / `"-inf"` / `"NaN"` —
/// the same convention the runtime's event log uses.
pub(crate) fn push_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        // `{}` on a finite f64 yields a JSON-legal number (digits,
        // optional '.', optional 'e' exponent).
        out.push_str(&format!("{x}"));
    } else {
        push_str_literal(out, &format!("{x}"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(s: &str) -> String {
        let mut out = String::new();
        push_str_literal(&mut out, s);
        out
    }

    #[test]
    fn escapes() {
        assert_eq!(lit("plain/path"), "\"plain/path\"");
        assert_eq!(lit("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(lit("line\nbreak"), "\"line\\nbreak\"");
        assert_eq!(lit("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn numbers() {
        let mut out = String::new();
        push_f64(&mut out, 1.5);
        assert_eq!(out, "1.5");
        let mut out = String::new();
        push_f64(&mut out, f64::INFINITY);
        assert_eq!(out, "\"inf\"");
        let mut out = String::new();
        push_f64(&mut out, f64::NAN);
        assert_eq!(out, "\"NaN\"");
    }
}
