//! # thermaware-obs — zero-dependency observability for the solver stack
//!
//! Structured tracing and metrics for every layer of the workspace:
//! hierarchical RAII span timers, monotonic counters, gauges, and
//! log-scale histograms, delivered to a pluggable [`Recorder`] sink.
//!
//! ## Design constraints
//!
//! - **Zero dependencies.** This crate sits below everything else in the
//!   workspace graph (even `thermaware-lp` instruments through it), so it
//!   uses only `std`. JSON emission is hand-rolled in `json.rs`; the
//!   vendored `serde_json` appears only as a dev-dependency to prove the
//!   emitted trace parses.
//! - **Zero overhead when off.** Instrumentation points call the free
//!   functions below. With no recorder installed, each call is a single
//!   relaxed atomic load — no clock read, no allocation, no thread-local
//!   traffic. The `obs_bench` harness in `thermaware-bench` holds this to
//!   within 2% of un-instrumented wall time.
//! - **Infallible recording.** [`Recorder`] methods return `()`. Sink
//!   failures (e.g. a full disk under [`JsonlRecorder`]) are latched and
//!   reported once at [`JsonlRecorder::finish`]; solver code never
//!   branches on observability health.
//!
//! ## Sinks
//!
//! | Sink | Use |
//! |------|-----|
//! | disabled (default) | production hot paths; near-zero cost |
//! | [`MemoryRecorder`] | tests and benches; everything inspectable |
//! | [`JsonlRecorder`] | trace files for `results/`; one JSON object per line |
//!
//! ## Usage
//!
//! ```
//! use std::sync::Arc;
//!
//! let rec = Arc::new(thermaware_obs::MemoryRecorder::new());
//! {
//!     let _install = thermaware_obs::install(rec.clone());
//!     let _outer = thermaware_obs::span("solve");
//!     {
//!         let _inner = thermaware_obs::span("stage1");
//!         thermaware_obs::counter_add("lp.solves", 1);
//!         thermaware_obs::observe("lp.iterations", 17.0);
//!     }
//! } // recorder uninstalled here; `solve` closed before that
//!
//! let spans = rec.spans();
//! assert_eq!(spans[0].path, "solve/stage1"); // children close first
//! assert_eq!(spans[1].path, "solve");
//! assert_eq!(rec.snapshot().counter("lp.solves"), 1);
//! ```
//!
//! Installation is process-global (instrumented code as deep as the
//! simplex pivot loop has no recorder parameter to thread through) and
//! scoped: [`install`] returns an [`InstallGuard`] that restores the
//! previously installed recorder on drop, so nested scopes and tests
//! compose. Tests that install recorders must not run concurrently with
//! each other's instrumented sections — the integration tests serialize
//! through a mutex for this.

mod hist;
mod json;
mod jsonl;
mod memory;
mod recorder;
mod registry;
mod span;

pub use hist::{bucket_index, bucket_upper_edge, HistogramSummary, LogHistogram, N_BUCKETS};
pub use jsonl::{JsonlRecorder, TRACE_FORMAT_VERSION};
pub use memory::MemoryRecorder;
pub use recorder::{NoopRecorder, Recorder};
pub use registry::MetricsSnapshot;
pub use span::{SpanGuard, SpanRecord};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, PoisonError, RwLock};

/// Fast-path flag: true iff a recorder is installed. Checked with a
/// relaxed load before anything else happens at an instrumentation point.
static ENABLED: AtomicBool = AtomicBool::new(false);

static RECORDER: RwLock<Option<Arc<dyn Recorder>>> = RwLock::new(None);

/// Whether a recorder is currently installed. Instrumentation sites can
/// use this to skip *computing* an expensive observation (the recording
/// calls themselves already self-gate).
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Install `rec` as the process-global recorder, returning a guard that
/// restores the previous state (including "none") on drop.
///
/// Spans that are open across an install/uninstall still record to
/// whatever recorder is installed when they *close*.
pub fn install(rec: Arc<dyn Recorder>) -> InstallGuard {
    let mut slot = RECORDER.write().unwrap_or_else(PoisonError::into_inner);
    let previous = slot.replace(rec);
    ENABLED.store(true, Ordering::Relaxed);
    InstallGuard { previous }
}

/// Restores the recorder that was installed before [`install`] when
/// dropped. Guards nest LIFO; dropping them out of order restores states
/// out of order (harmless but confusing — bind them to scopes).
#[must_use = "dropping the guard immediately uninstalls the recorder"]
pub struct InstallGuard {
    previous: Option<Arc<dyn Recorder>>,
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        let mut slot = RECORDER.write().unwrap_or_else(PoisonError::into_inner);
        *slot = self.previous.take();
        ENABLED.store(slot.is_some(), Ordering::Relaxed);
    }
}

/// Run `f` against the installed recorder, if any.
///
/// Hot paths that emit several metrics per event should batch them into
/// one `with_recorder` call: the free functions ([`counter_add`],
/// [`observe`], …) each take the recorder lock, while a single closure
/// pays for it once.
pub fn with_recorder(f: impl FnOnce(&dyn Recorder)) {
    if !enabled() {
        return;
    }
    // Clone the Arc out rather than holding the read lock across `f`:
    // a JSONL sink's write under the lock must not serialize against an
    // install/uninstall elsewhere.
    let rec = RECORDER
        .read()
        .unwrap_or_else(PoisonError::into_inner)
        .clone();
    if let Some(rec) = rec {
        f(rec.as_ref());
    }
}

/// Open a hierarchical wall-time span; it records when the guard drops.
/// Inert (no clock read) when no recorder is installed.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if enabled() {
        SpanGuard::enter(name)
    } else {
        SpanGuard::inert()
    }
}

/// Add `delta` to the monotonic counter `name`.
#[inline]
pub fn counter_add(name: &'static str, delta: u64) {
    if enabled() {
        with_recorder(|r| r.counter_add(name, delta));
    }
}

/// Set the gauge `name` to `value` (last write wins).
#[inline]
pub fn gauge_set(name: &'static str, value: f64) {
    if enabled() {
        with_recorder(|r| r.gauge_set(name, value));
    }
}

/// Record `value` into the log-scale histogram `name`.
#[inline]
pub fn observe(name: &'static str, value: f64) {
    if enabled() {
        with_recorder(|r| r.observe(name, value));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    // Unit tests here mutate the global recorder; serialize them.
    static GLOBAL: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_by_default_and_restored_in_layers() {
        let _g = GLOBAL.lock().unwrap_or_else(PoisonError::into_inner);
        assert!(!enabled());
        let outer = Arc::new(MemoryRecorder::new());
        let inner = Arc::new(MemoryRecorder::new());
        {
            let _a = install(outer.clone());
            assert!(enabled());
            counter_add("c", 1);
            {
                let _b = install(inner.clone());
                counter_add("c", 10);
            }
            // Inner uninstalled; outer restored.
            counter_add("c", 2);
        }
        assert!(!enabled());
        counter_add("c", 100); // dropped on the floor
        assert_eq!(outer.snapshot().counter("c"), 3);
        assert_eq!(inner.snapshot().counter("c"), 10);
    }

    #[test]
    fn span_is_inert_when_disabled() {
        let _g = GLOBAL.lock().unwrap_or_else(PoisonError::into_inner);
        let rec = Arc::new(MemoryRecorder::new());
        {
            let _s = span("ignored");
        }
        {
            let _install = install(rec.clone());
            let _s = span("kept");
        }
        let spans = rec.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "kept");
        assert_eq!(spans[0].depth, 0);
    }

    #[test]
    fn gauge_and_histogram_roundtrip() {
        let _g = GLOBAL.lock().unwrap_or_else(PoisonError::into_inner);
        let rec = Arc::new(MemoryRecorder::new());
        {
            let _install = install(rec.clone());
            gauge_set("reward", 88.25);
            for v in [1.0, 2.0, 4.0] {
                observe("lat", v);
            }
        }
        let snap = rec.snapshot();
        assert_eq!(snap.gauges.get("reward"), Some(&88.25));
        let h = snap.histogram("lat").expect("series exists");
        assert_eq!(h.count, 3);
        assert_eq!(h.min, 1.0);
        assert_eq!(h.max, 4.0);
    }
}
