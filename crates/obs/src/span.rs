//! Hierarchical RAII span timers.
//!
//! A span measures the wall time of a lexical scope on a monotonic clock
//! ([`std::time::Instant`]). Spans nest per thread: each thread keeps its
//! own stack of open span names, so a span opened inside a
//! `parallel_map` worker becomes a root on that worker rather than a
//! child of whatever the spawning thread had open — thread-local
//! nesting is the only coherent interpretation when the recorder is
//! shared (tested in `tests/concurrent.rs`).
//!
//! Spans are emitted to the installed [`crate::Recorder`] at scope exit,
//! children before parents. When no recorder is enabled, creating a
//! guard is one relaxed atomic load and no clock read.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A completed span as delivered to a [`crate::Recorder`].
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Leaf name (the string passed to [`crate::span`]).
    pub name: &'static str,
    /// `/`-joined path from the thread's root span to this one.
    pub path: String,
    /// Nesting depth (0 for a root span).
    pub depth: usize,
    /// Start offset from the process-wide observation epoch, µs.
    pub start_us: u64,
    /// Wall-clock duration, µs.
    pub dur_us: u64,
    /// Small dense id of the recording thread (first-use order).
    pub thread: u64,
}

// Thread ids: `std::thread::ThreadId` has no stable integer accessor, so
// threads take a small dense id on first observation use instead — which
// also reads better in traces than the runtime's arbitrary ids.
static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static THREAD_ID: u64 = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
    /// Names of the spans currently open on this thread, root first.
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// This thread's dense observation id.
pub(crate) fn thread_id() -> u64 {
    THREAD_ID.with(|id| *id)
}

/// The process-wide observation epoch (first use of the obs layer).
pub(crate) fn epoch() -> Instant {
    static EPOCH: std::sync::OnceLock<Instant> = std::sync::OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// An open span; records itself to the installed recorder on drop.
/// Created by [`crate::span`]. Inert (no clock read, no thread-local
/// traffic) when no recorder was enabled at creation.
#[must_use = "a span guard measures the scope it is bound to; dropping it immediately records a ~0 µs span"]
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

struct ActiveSpan {
    name: &'static str,
    depth: usize,
    start: Instant,
    start_us: u64,
}

impl SpanGuard {
    /// An inert guard (disabled recorder path).
    pub(crate) fn inert() -> SpanGuard {
        SpanGuard { active: None }
    }

    /// Open a span named `name` on this thread.
    pub(crate) fn enter(name: &'static str) -> SpanGuard {
        let depth = SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            s.push(name);
            s.len() - 1
        });
        // `span()` returns an inert guard unless a recorder is installed,
        // and replay runs install none, so this clock read only ever
        // measures — it cannot feed a replayed computation.
        // lint: allow(determinism-taint): recorder-gated timing, never on replay
        let start = Instant::now();
        SpanGuard {
            active: Some(ActiveSpan {
                name,
                depth,
                start,
                start_us: start.duration_since(epoch()).as_micros() as u64,
            }),
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(span) = self.active.take() else {
            return;
        };
        let dur_us = span.start.elapsed().as_micros() as u64;
        // Pop self; the remaining stack is this span's ancestry. The
        // guard owns its stack slot, so pop/push stay balanced even if
        // the recorder was swapped while the span was open.
        let path = SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            s.pop();
            let mut path = String::with_capacity(
                s.iter().map(|n| n.len() + 1).sum::<usize>() + span.name.len(),
            );
            for ancestor in s.iter() {
                path.push_str(ancestor);
                path.push('/');
            }
            path.push_str(span.name);
            path
        });
        crate::with_recorder(move |r| {
            r.record_span(&SpanRecord {
                name: span.name,
                path,
                depth: span.depth,
                start_us: span.start_us,
                dur_us,
                thread: thread_id(),
            });
        });
    }
}
