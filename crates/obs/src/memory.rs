//! The in-memory sink: everything retained, inspectable afterward.
//! The sink tests, benches, and the overhead harness use it; it is also
//! what `BENCH_obs.json` is rendered from.

use crate::registry::{MetricRegistry, MetricsSnapshot};
use crate::span::SpanRecord;
use crate::Recorder;
use std::sync::{Mutex, PoisonError};

/// A [`Recorder`] that keeps every span and metric in memory.
#[derive(Debug, Default)]
pub struct MemoryRecorder {
    spans: Mutex<Vec<SpanRecord>>,
    metrics: MetricRegistry,
}

impl MemoryRecorder {
    /// An empty recorder.
    pub fn new() -> MemoryRecorder {
        MemoryRecorder::default()
    }

    /// Every span recorded so far, in completion order.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.spans
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Spans whose `/`-joined path equals `path`.
    pub fn spans_at(&self, path: &str) -> Vec<SpanRecord> {
        self.spans
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .filter(|s| s.path == path)
            .cloned()
            .collect()
    }

    /// A point-in-time copy of every counter/gauge/histogram.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }
}

impl Recorder for MemoryRecorder {
    fn record_span(&self, span: &SpanRecord) {
        self.spans
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(span.clone());
    }

    fn counter_add(&self, name: &'static str, delta: u64) {
        self.metrics.counter_add(name, delta);
    }

    fn gauge_set(&self, name: &'static str, value: f64) {
        self.metrics.gauge_set(name, value);
    }

    fn observe(&self, name: &'static str, value: f64) {
        self.metrics.observe(name, value);
    }
}
