//! Concurrency contract of the span layer: nesting is tracked per
//! thread, paths never leak across threads, and the in-memory sink sees
//! every record exactly once no matter how the workers interleave.
//!
//! Tests here install process-global recorders, so they serialize on a
//! static mutex (cargo runs test functions on parallel threads).

use proptest::prelude::*;
use std::sync::{Arc, Mutex};
use thermaware_obs::MemoryRecorder;

static GLOBAL: Mutex<()> = Mutex::new(());

#[test]
fn spans_nest_per_thread_not_across_threads() {
    let _g = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
    let rec = Arc::new(MemoryRecorder::new());
    let _install = thermaware_obs::install(rec.clone());

    const WORKERS: usize = 4;
    const INNER: usize = 8;
    std::thread::scope(|s| {
        for _ in 0..WORKERS {
            s.spawn(|| {
                let _outer = thermaware_obs::span("worker");
                for _ in 0..INNER {
                    let _inner = thermaware_obs::span("inner");
                }
            });
        }
    });

    let spans = rec.spans();
    assert_eq!(spans.len(), WORKERS * (1 + INNER));

    let outers: Vec<_> = spans.iter().filter(|s| s.name == "worker").collect();
    let inners: Vec<_> = spans.iter().filter(|s| s.name == "inner").collect();
    assert_eq!(outers.len(), WORKERS);
    assert_eq!(inners.len(), WORKERS * INNER);

    // A worker's span stack starts at its own thread, not at whatever the
    // spawning thread had open: every outer is a root.
    for o in &outers {
        assert_eq!(o.depth, 0, "worker spans must be roots");
        assert_eq!(o.path, "worker");
    }
    // And inner spans nest under *their* thread's outer only.
    for i in &inners {
        assert_eq!(i.depth, 1);
        assert_eq!(i.path, "worker/inner");
        assert!(
            outers.iter().any(|o| o.thread == i.thread),
            "inner span on thread {} has no outer there",
            i.thread
        );
    }
    // Each worker thread carries exactly its own share of the records.
    for o in &outers {
        let mine = inners.iter().filter(|i| i.thread == o.thread).count();
        assert_eq!(mine, INNER, "thread {} saw {mine} inner spans", o.thread);
    }
}

#[test]
fn children_record_before_parents_and_within_them() {
    let _g = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
    let rec = Arc::new(MemoryRecorder::new());
    let _install = thermaware_obs::install(rec.clone());

    {
        let _a = thermaware_obs::span("a");
        let _b = thermaware_obs::span("b");
        let _c = thermaware_obs::span("c");
    }

    let spans = rec.spans();
    let order: Vec<&str> = spans.iter().map(|s| s.name).collect();
    assert_eq!(order, ["c", "b", "a"], "guards drop innermost-first");
    let find = |n: &str| spans.iter().find(|s| s.name == n).expect("span");
    let (a, c) = (find("a"), find("c"));
    assert_eq!(c.path, "a/b/c");
    // The child's interval lies inside the parent's.
    assert!(c.start_us >= a.start_us);
    assert!(c.start_us + c.dur_us <= a.start_us + a.dur_us);
}

/// A random tree of nested/sequential spans, driven as a sequence of
/// "push" and "pop" moves; the recorded paths and depths must match the
/// stack discipline exactly, whichever shape the tree takes.
fn span_moves() -> impl Strategy<Value = Vec<bool>> {
    prop::collection::vec(any::<bool>(), 1..40)
}

// The span layer only accepts 'static names; the property needs names
// keyed by depth, so use a fixed palette (depth is capped by its size).
const NAMES: [&str; 8] = ["d0", "d1", "d2", "d3", "d4", "d5", "d6", "d7"];

proptest! {
    #[test]
    fn random_span_trees_respect_the_stack_discipline(moves in span_moves()) {
        let _g = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
        let rec = Arc::new(MemoryRecorder::new());
        let _install = thermaware_obs::install(rec.clone());

        // Replay the moves: true pushes a span (unless at max depth),
        // false pops one (unless empty). Track the expected paths.
        let mut stack: Vec<thermaware_obs::SpanGuard> = Vec::new();
        let mut expected: Vec<(String, usize)> = Vec::new();
        for push in moves {
            if push && stack.len() < NAMES.len() {
                let depth = stack.len();
                stack.push(thermaware_obs::span(NAMES[depth]));
            } else if let Some(guard) = stack.pop() {
                let depth = stack.len();
                let path = NAMES[..=depth].join("/");
                expected.push((path, depth));
                drop(guard);
            }
        }
        while let Some(guard) = stack.pop() {
            let depth = stack.len();
            expected.push((NAMES[..=depth].join("/"), depth));
            drop(guard);
        }

        let got: Vec<(String, usize)> = rec
            .spans()
            .iter()
            .map(|s| (s.path.clone(), s.depth))
            .collect();
        prop_assert_eq!(got, expected);
    }
}
