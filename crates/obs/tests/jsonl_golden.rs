//! Golden-schema test for the JSONL trace format: a recorded session is
//! replayed through [`JsonlRecorder::from_writer`] into a buffer, then
//! every emitted line is re-parsed with the vendored `serde_json` and
//! checked field by field. Consumers (the bench harness, CI validation,
//! ad-hoc `jq`) key on this schema; changing it must fail here first and
//! bump [`TRACE_FORMAT_VERSION`].

use serde_json::Value;
use std::io::Write;
use std::sync::{Arc, Mutex};
use thermaware_obs::{JsonlRecorder, TRACE_FORMAT_VERSION};

static GLOBAL: Mutex<()> = Mutex::new(());

/// A `Write` that tees into a shared buffer the test can inspect after
/// the recorder is done with it.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn contents(&self) -> String {
        String::from_utf8(self.0.lock().unwrap_or_else(|e| e.into_inner()).clone())
            .expect("trace is UTF-8")
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap_or_else(|e| e.into_inner()).extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Record a deterministic session and return the raw trace text.
fn record_session() -> String {
    let _g = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
    let buf = SharedBuf::default();
    let rec = Arc::new(JsonlRecorder::from_writer(Box::new(buf.clone())).expect("recorder"));
    {
        let _install = thermaware_obs::install(rec.clone());
        {
            let _outer = thermaware_obs::span("solve");
            let _inner = thermaware_obs::span("stage1");
            thermaware_obs::counter_add("lp.solves", 3);
            thermaware_obs::observe("lp.solve_us", 125.0);
            thermaware_obs::observe("lp.solve_us", 2000.0);
        }
        thermaware_obs::gauge_set("core.reward_rate", 42.5);
        thermaware_obs::gauge_set("core.worst_margin", f64::NEG_INFINITY);
    }
    rec.finish().expect("finish");
    buf.contents()
}

fn str_field<'a>(v: &'a Value, k: &str) -> &'a str {
    v.get(k)
        .and_then(|x| x.as_str())
        .unwrap_or_else(|| panic!("missing string field '{k}' in {v:?}"))
}

fn num_field(v: &Value, k: &str) -> f64 {
    v.get(k)
        .and_then(|x| x.as_f64())
        .unwrap_or_else(|| panic!("missing numeric field '{k}' in {v:?}"))
}

#[test]
fn trace_matches_the_published_schema() {
    let text = record_session();
    let lines: Vec<Value> = text
        .lines()
        .map(|l| serde_json::from_str(l).unwrap_or_else(|e| panic!("unparseable line {l:?}: {e}")))
        .collect();

    // Line 1 — the meta header, byte-for-byte (the golden line).
    assert_eq!(
        text.lines().next().expect("meta line"),
        format!(
            "{{\"type\":\"meta\",\"format\":\"thermaware-obs-trace\",\
             \"version\":{TRACE_FORMAT_VERSION},\"clock\":\"us\"}}"
        )
    );

    // Spans stream in drop order: stage1 closes before solve.
    let spans: Vec<&Value> = lines.iter().filter(|v| str_field(v, "type") == "span").collect();
    assert_eq!(spans.len(), 2);
    assert_eq!(str_field(spans[0], "name"), "stage1");
    assert_eq!(str_field(spans[0], "path"), "solve/stage1");
    assert_eq!(num_field(spans[0], "depth"), 1.0);
    assert_eq!(str_field(spans[1], "name"), "solve");
    assert_eq!(str_field(spans[1], "path"), "solve");
    assert_eq!(num_field(spans[1], "depth"), 0.0);
    for s in &spans {
        assert!(num_field(s, "dur_us") >= 0.0);
        assert!(num_field(s, "start_us") >= 0.0);
        assert!(num_field(s, "thread") >= 0.0);
    }
    // The child's window nests inside the parent's.
    assert!(num_field(spans[0], "start_us") >= num_field(spans[1], "start_us"));

    // finish() appends the metric summaries after all spans.
    let summaries: Vec<&Value> =
        lines.iter().filter(|v| matches!(str_field(v, "type"), "counter" | "gauge" | "hist")).collect();
    let last_span_idx = lines
        .iter()
        .rposition(|v| str_field(v, "type") == "span")
        .expect("spans present");
    let first_summary_idx = lines
        .iter()
        .position(|v| matches!(str_field(v, "type"), "counter" | "gauge" | "hist"))
        .expect("summaries present");
    assert!(first_summary_idx > last_span_idx, "summaries must follow the spans");

    let counter = summaries
        .iter()
        .find(|v| str_field(v, "type") == "counter" && str_field(v, "name") == "lp.solves")
        .expect("lp.solves counter");
    assert_eq!(num_field(counter, "value"), 3.0);

    let gauge = summaries
        .iter()
        .find(|v| str_field(v, "type") == "gauge" && str_field(v, "name") == "core.reward_rate")
        .expect("reward gauge");
    assert_eq!(num_field(gauge, "value"), 42.5);

    // Non-finite values follow the workspace JSON convention: strings.
    let neg_inf = summaries
        .iter()
        .find(|v| str_field(v, "type") == "gauge" && str_field(v, "name") == "core.worst_margin")
        .expect("-inf gauge");
    assert_eq!(str_field(neg_inf, "value"), "-inf");

    let hist = summaries
        .iter()
        .find(|v| str_field(v, "type") == "hist" && str_field(v, "name") == "lp.solve_us")
        .expect("lp.solve_us histogram");
    assert_eq!(num_field(hist, "count"), 2.0);
    assert_eq!(num_field(hist, "sum"), 2125.0);
    assert_eq!(num_field(hist, "min"), 125.0);
    assert_eq!(num_field(hist, "max"), 2000.0);
    assert_eq!(num_field(hist, "mean"), 1062.5);
    for q in ["p50", "p95", "p99"] {
        assert!(num_field(hist, q) > 0.0, "{q} must be positive");
    }
    let buckets = hist.get("buckets").and_then(|b| b.as_array()).expect("buckets array");
    assert_eq!(buckets.len(), 2, "125 and 2000 land in different buckets");
    for b in buckets {
        let pair = b.as_array().expect("bucket is [edge, count]");
        assert_eq!(pair.len(), 2);
    }
}

#[test]
fn every_line_type_is_known() {
    let text = record_session();
    for line in text.lines() {
        let v: Value = serde_json::from_str(line).expect("parseable");
        let t = str_field(&v, "type");
        assert!(
            matches!(t, "meta" | "span" | "counter" | "gauge" | "hist"),
            "unknown line type {t}"
        );
    }
}
