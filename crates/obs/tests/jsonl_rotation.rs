//! Size-based rotation of the JSONL sink: the active trace rolls over
//! to numbered generations (`trace.jsonl` → `trace.1.jsonl` → …), the
//! oldest generation is deleted beyond `keep`, every generation starts
//! with its own `meta` header, and no span line is ever split across
//! files.

use std::fs;
use std::path::Path;
use std::sync::Arc;
use thermaware_obs::JsonlRecorder;

fn line_count(path: &Path) -> usize {
    fs::read_to_string(path)
        .expect("readable generation")
        .lines()
        .count()
}

fn assert_parses_standalone(path: &Path) {
    let text = fs::read_to_string(path).expect("readable generation");
    let mut lines = text.lines();
    let head = lines.next().expect("non-empty generation");
    assert!(
        head.contains("\"type\":\"meta\""),
        "{}: first line must be the meta header, got: {head}",
        path.display()
    );
    for line in lines {
        let v: serde_json::Value = serde_json::from_str(line)
            .unwrap_or_else(|e| panic!("{}: unparseable line {line}: {e}", path.display()));
        assert!(v.get("type").is_some());
    }
}

#[test]
fn rotation_shifts_generations_and_bounds_disk() {
    let dir = std::env::temp_dir().join("thermaware-obs-rotation");
    fs::create_dir_all(&dir).expect("mkdir");
    let trace = dir.join("trace.jsonl");
    for gen in 1..=5 {
        let _ = fs::remove_file(dir.join(format!("trace.{gen}.jsonl")));
    }

    // max_bytes clamps to 4 KiB; ~90-byte span lines → rotation roughly
    // every ~45 lines. 500 spans forces several rotations through the
    // keep=2 window.
    let rec = Arc::new(JsonlRecorder::create_rotating(&trace, 1, 2).expect("recorder"));
    {
        let _install = thermaware_obs::install(rec.clone());
        for _ in 0..500 {
            let _span = thermaware_obs::span("rotation_probe_span");
        }
    }
    rec.finish().expect("finish");

    let gen1 = dir.join("trace.1.jsonl");
    let gen2 = dir.join("trace.2.jsonl");
    let gen3 = dir.join("trace.3.jsonl");
    assert!(trace.exists(), "active trace present");
    assert!(gen1.exists(), "generation 1 present");
    assert!(gen2.exists(), "generation 2 present");
    assert!(!gen3.exists(), "keep=2 must delete generation 3");

    for path in [&trace, &gen1, &gen2] {
        assert_parses_standalone(path);
        let bytes = fs::metadata(path).expect("metadata").len();
        // Each file stays near the (clamped) limit: the active file can
        // exceed it only by the final metric-summary lines.
        assert!(bytes < 16 * 1024, "{}: {bytes} bytes", path.display());
    }

    // Rotated generations hold full rotation windows; together with the
    // active file they must account for the most recent span lines but
    // NOT all 500 (older ones were deleted with generation 3+).
    let total = line_count(&trace) + line_count(&gen1) + line_count(&gen2);
    assert!(total < 500, "old generations must have been dropped ({total} lines kept)");
    assert!(total > 80, "the recent window must survive ({total} lines kept)");
}
