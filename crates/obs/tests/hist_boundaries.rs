//! The log-scale histogram's bucket function is pure, so its contract is
//! checked exhaustively by property: every finite positive value lands in
//! exactly one bucket, edges are a partition (half-open intervals), and
//! the recorded summaries bound the true quantiles from above.

use proptest::prelude::*;
use thermaware_obs::{bucket_index, bucket_upper_edge, LogHistogram, N_BUCKETS};

#[test]
fn edges_are_strictly_increasing_powers_of_two() {
    let mut prev = f64::NEG_INFINITY;
    for i in 0..N_BUCKETS {
        let e = bucket_upper_edge(i);
        assert!(e > prev, "edge {i} not increasing: {e} after {prev}");
        if i + 1 < N_BUCKETS {
            assert!(e.is_finite() && e > 0.0);
            assert_eq!(e.log2().fract(), 0.0, "edge {i} = {e} is not a power of two");
        } else {
            assert_eq!(e, f64::INFINITY, "last bucket is open-ended");
        }
        prev = e;
    }
}

#[test]
fn degenerate_values_land_in_the_underflow_bucket() {
    // Non-finite values (either sign) and non-positive values all count
    // in the underflow bucket — recorded, excluded from sum/min/max.
    for v in [0.0, -0.0, -1.5, f64::NEG_INFINITY, f64::INFINITY, f64::NAN] {
        assert_eq!(bucket_index(v), 0, "bucket of {v}");
    }
}

#[test]
fn upper_edges_are_exclusive() {
    // Buckets are half-open [lower, upper): a value exactly equal to an
    // upper edge belongs to the *next* bucket; a value clearly inside
    // the bucket belongs to this one. (Values within ~1 ulp of an edge
    // may round across it — `log2` cannot resolve finer, and bucket
    // resolution is a binary order of magnitude anyway.)
    for i in 1..N_BUCKETS - 1 {
        let edge = bucket_upper_edge(i);
        assert_eq!(bucket_index(edge), (i + 1).min(N_BUCKETS - 1), "edge {edge} is exclusive");
        assert_eq!(bucket_index(edge * 0.75), i, "inside the bucket below {edge}");
    }
}

fn positive_values() -> impl Strategy<Value = f64> {
    // Spread across the full dynamic range, not just around 1.0:
    // mantissa in [1, 2), exponent across the clamp range and beyond.
    // Reaches past both clamp points: below 2^MIN_EXP (underflow bucket)
    // and above the top bucket's lower edge.
    (1.0f64..2.0, -30i32..50).prop_map(|(m, e)| m * (e as f64).exp2())
}

proptest! {
    #[test]
    fn every_positive_value_lands_inside_its_bucket(v in positive_values()) {
        let i = bucket_index(v);
        prop_assert!(i < N_BUCKETS);
        // Up to 1 ulp of edge fuzz from `log2` rounding — see
        // `upper_edges_are_exclusive`.
        let tol = 1.0 + 4.0 * f64::EPSILON;
        prop_assert!(v < bucket_upper_edge(i) * tol, "{} not below its exclusive edge", v);
        if i > 0 {
            prop_assert!(v * tol >= bucket_upper_edge(i - 1), "{} below its bucket's lower edge", v);
        }
    }

    #[test]
    fn summary_quantiles_bound_the_true_quantiles(
        values in prop::collection::vec(positive_values(), 1..200)
    ) {
        let h = LogHistogram::new();
        for &v in &values {
            h.record(v);
        }
        let s = h.snapshot();
        prop_assert_eq!(s.count, values.len() as u64);

        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let true_p50 = sorted[(sorted.len() - 1) / 2];
        // The reported quantile is a bucket upper edge, so it is an upper
        // bound on the true quantile and within one bucket (2x) of it.
        prop_assert!(s.p50 >= true_p50 * 0.999_999, "p50 {} < true {}", s.p50, true_p50);
        prop_assert!(s.p95 >= s.p50);
        prop_assert!(s.p99 >= s.p95);

        // min/max/sum track the exact values, not bucket resolution.
        prop_assert_eq!(s.min, sorted[0]);
        prop_assert_eq!(s.max, sorted[sorted.len() - 1]);
        let sum: f64 = values.iter().sum();
        prop_assert!((s.sum - sum).abs() <= 1e-9 * sum.abs().max(1.0));

        // Bucket counts in the summary add back up to the observations.
        let bucketed: u64 = s.buckets.iter().map(|&(_, c)| c).sum();
        prop_assert_eq!(bucketed, values.len() as u64);
    }
}
