//! Unit tests for the simplex solver on small LPs with known optima.

use thermaware_lp::{LpError, Problem, RowOp, Sense, Status};

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() < 1e-7 * (1.0 + a.abs().max(b.abs()))
}

#[test]
fn textbook_maximization() {
    // max 3x + 5y  s.t.  x <= 4, 2y <= 12, 3x + 2y <= 18  -> (2, 6), obj 36.
    let mut p = Problem::new(Sense::Maximize);
    let x = p.add_var("x", 0.0, f64::INFINITY, 3.0);
    let y = p.add_var("y", 0.0, f64::INFINITY, 5.0);
    p.add_row("r1", &[(x, 1.0)], RowOp::Le, 4.0);
    p.add_row("r2", &[(y, 2.0)], RowOp::Le, 12.0);
    p.add_row("r3", &[(x, 3.0), (y, 2.0)], RowOp::Le, 18.0);
    let sol = p.solve().unwrap();
    assert_eq!(sol.status, Status::Optimal);
    assert!(close(sol.objective, 36.0), "obj = {}", sol.objective);
    assert!(close(sol.value(x), 2.0));
    assert!(close(sol.value(y), 6.0));
    assert!(close(p.max_violation(&sol.values), 0.0));
}

#[test]
fn minimization_with_ge_rows() {
    // min 2x + 3y  s.t.  x + y >= 4, x + 2y >= 6  ->  (2, 2), obj 10.
    let mut p = Problem::new(Sense::Minimize);
    let x = p.add_var("x", 0.0, f64::INFINITY, 2.0);
    let y = p.add_var("y", 0.0, f64::INFINITY, 3.0);
    p.add_row("r1", &[(x, 1.0), (y, 1.0)], RowOp::Ge, 4.0);
    p.add_row("r2", &[(x, 1.0), (y, 2.0)], RowOp::Ge, 6.0);
    let sol = p.solve().unwrap();
    assert!(close(sol.objective, 10.0), "obj = {}", sol.objective);
    assert!(close(sol.value(x), 2.0));
    assert!(close(sol.value(y), 2.0));
}

#[test]
fn equality_constraints() {
    // max x + 2y  s.t.  x + y == 3, x - y == 1  ->  x=2, y=1, obj 4.
    let mut p = Problem::new(Sense::Maximize);
    let x = p.add_var("x", 0.0, f64::INFINITY, 1.0);
    let y = p.add_var("y", 0.0, f64::INFINITY, 2.0);
    p.add_row("sum", &[(x, 1.0), (y, 1.0)], RowOp::Eq, 3.0);
    p.add_row("diff", &[(x, 1.0), (y, -1.0)], RowOp::Eq, 1.0);
    let sol = p.solve().unwrap();
    assert!(close(sol.objective, 4.0));
    assert!(close(sol.value(x), 2.0));
    assert!(close(sol.value(y), 1.0));
}

#[test]
fn upper_bounds_without_rows() {
    // max x + y with x <= 2, y <= 3 as *variable bounds* and one row.
    let mut p = Problem::new(Sense::Maximize);
    let x = p.add_var("x", 0.0, 2.0, 1.0);
    let y = p.add_var("y", 0.0, 3.0, 1.0);
    p.add_row("cap", &[(x, 1.0), (y, 1.0)], RowOp::Le, 4.0);
    let sol = p.solve().unwrap();
    assert!(close(sol.objective, 4.0));
    // The row binds; each variable stays within its box.
    assert!(sol.value(x) <= 2.0 + 1e-9 && sol.value(y) <= 3.0 + 1e-9);
}

#[test]
fn bound_flip_only_problem() {
    // No constraints at all: optimum sits at the boxes' corners.
    let mut p = Problem::new(Sense::Maximize);
    let x = p.add_var("x", 0.0, 5.0, 2.0);
    let y = p.add_var("y", 1.0, 4.0, -1.0);
    let sol = p.solve().unwrap();
    assert!(close(sol.value(x), 5.0));
    assert!(close(sol.value(y), 1.0));
    assert!(close(sol.objective, 9.0));
}

#[test]
fn shifted_lower_bounds() {
    // min x + y  s.t.  x + y >= 10, x >= 3, y >= 2 (as variable bounds).
    let mut p = Problem::new(Sense::Minimize);
    let x = p.add_var("x", 3.0, f64::INFINITY, 1.0);
    let y = p.add_var("y", 2.0, f64::INFINITY, 1.0);
    p.add_row("r", &[(x, 1.0), (y, 1.0)], RowOp::Ge, 10.0);
    let sol = p.solve().unwrap();
    assert!(close(sol.objective, 10.0));
    assert!(sol.value(x) >= 3.0 - 1e-9 && sol.value(y) >= 2.0 - 1e-9);
}

#[test]
fn negative_lower_bounds() {
    // max x  s.t.  x <= -1 with x in [-5, 10]: optimum -1.
    let mut p = Problem::new(Sense::Maximize);
    let x = p.add_var("x", -5.0, 10.0, 1.0);
    p.add_row("r", &[(x, 1.0)], RowOp::Le, -1.0);
    let sol = p.solve().unwrap();
    assert!(close(sol.value(x), -1.0));
}

#[test]
fn free_variable_split() {
    // min |ish|: min x + 2y s.t. x + y == 1, x free, y >= 0.
    // Optimal: y = 0, x = 1 -> obj 1? No: x free and coefficient +1, so
    // pushing x down helps but x + y == 1 forces x = 1 - y; obj = 1 + y,
    // minimized at y = 0 -> obj 1.
    let mut p = Problem::new(Sense::Minimize);
    let x = p.add_var("x", f64::NEG_INFINITY, f64::INFINITY, 1.0);
    let y = p.add_var("y", 0.0, f64::INFINITY, 2.0);
    p.add_row("r", &[(x, 1.0), (y, 1.0)], RowOp::Eq, 1.0);
    let sol = p.solve().unwrap();
    assert!(close(sol.objective, 1.0));
    assert!(close(sol.value(x), 1.0));
}

#[test]
fn free_variable_goes_negative() {
    // min x s.t. x >= -7 (row), x free: optimum -7.
    let mut p = Problem::new(Sense::Minimize);
    let x = p.add_var("x", f64::NEG_INFINITY, f64::INFINITY, 1.0);
    p.add_row("r", &[(x, 1.0)], RowOp::Ge, -7.0);
    let sol = p.solve().unwrap();
    assert!(close(sol.value(x), -7.0));
}

#[test]
fn mirror_variable_neg_inf_lower() {
    // max x with x in (-inf, 3]: optimum 3.
    let mut p = Problem::new(Sense::Maximize);
    let x = p.add_var("x", f64::NEG_INFINITY, 3.0, 1.0);
    p.add_row("r", &[(x, 1.0)], RowOp::Ge, -100.0);
    let sol = p.solve().unwrap();
    assert!(close(sol.value(x), 3.0));
}

#[test]
fn infeasible_is_detected() {
    let mut p = Problem::new(Sense::Maximize);
    let x = p.add_var("x", 0.0, f64::INFINITY, 1.0);
    p.add_row("lo", &[(x, 1.0)], RowOp::Ge, 5.0);
    p.add_row("hi", &[(x, 1.0)], RowOp::Le, 3.0);
    match p.solve() {
        Err(LpError::Infeasible { residual }) => assert!(residual >= 1.9),
        other => panic!("expected infeasible, got {other:?}"),
    }
}

#[test]
fn unbounded_is_detected() {
    let mut p = Problem::new(Sense::Maximize);
    let x = p.add_var("x", 0.0, f64::INFINITY, 1.0);
    let y = p.add_var("y", 0.0, f64::INFINITY, 0.0);
    p.add_row("r", &[(x, 1.0), (y, -1.0)], RowOp::Le, 1.0);
    match p.solve() {
        Err(LpError::Unbounded { .. }) => {}
        other => panic!("expected unbounded, got {other:?}"),
    }
}

#[test]
fn degenerate_lp_terminates() {
    // A classic degenerate vertex: multiple rows intersect at the origin.
    let mut p = Problem::new(Sense::Maximize);
    let x = p.add_var("x", 0.0, f64::INFINITY, 0.75);
    let y = p.add_var("y", 0.0, f64::INFINITY, -150.0);
    let z = p.add_var("z", 0.0, f64::INFINITY, 0.02);
    let w = p.add_var("w", 0.0, f64::INFINITY, -6.0);
    // Beale's cycling example.
    p.add_row("r1", &[(x, 0.25), (y, -60.0), (z, -0.04), (w, 9.0)], RowOp::Le, 0.0);
    p.add_row("r2", &[(x, 0.5), (y, -90.0), (z, -0.02), (w, 3.0)], RowOp::Le, 0.0);
    p.add_row("r3", &[(z, 1.0)], RowOp::Le, 1.0);
    let sol = p.solve().unwrap();
    assert!(close(sol.objective, 0.05), "obj = {}", sol.objective);
}

#[test]
fn feasibility_mode_finds_a_point() {
    let mut p = Problem::new(Sense::Minimize);
    let x = p.add_var("x", 0.0, 10.0, 0.0);
    let y = p.add_var("y", 0.0, 10.0, 0.0);
    p.add_row("r1", &[(x, 1.0), (y, 1.0)], RowOp::Eq, 7.0);
    p.add_row("r2", &[(x, 1.0), (y, -1.0)], RowOp::Ge, 1.0);
    let sol = p.solve_feasibility().unwrap();
    assert_eq!(sol.status, Status::Feasible);
    assert!(p.max_violation(&sol.values) < 1e-7);
}

#[test]
fn duals_of_binding_le_row_maximize() {
    // max 3x + 2y  s.t.  x + y <= 4, x <= 2 (bound). At optimum y fills
    // the row: d obj / d rhs = 2.
    let mut p = Problem::new(Sense::Maximize);
    let x = p.add_var("x", 0.0, 2.0, 3.0);
    let y = p.add_var("y", 0.0, f64::INFINITY, 2.0);
    let cap = p.add_row("cap", &[(x, 1.0), (y, 1.0)], RowOp::Le, 4.0);
    let sol = p.solve().unwrap();
    assert!(close(sol.objective, 10.0));
    assert!(close(sol.dual(cap), 2.0), "dual = {}", sol.dual(cap));
}

#[test]
fn duals_of_binding_ge_row_minimize() {
    // min 2x + 3y  s.t.  x + y >= 4, x + 2y >= 6. Duals (1, 1):
    // obj = 1*4 + 1*6 = 10 = primal. Strong duality as a sanity check.
    let mut p = Problem::new(Sense::Minimize);
    let x = p.add_var("x", 0.0, f64::INFINITY, 2.0);
    let y = p.add_var("y", 0.0, f64::INFINITY, 3.0);
    let r1 = p.add_row("r1", &[(x, 1.0), (y, 1.0)], RowOp::Ge, 4.0);
    let r2 = p.add_row("r2", &[(x, 1.0), (y, 2.0)], RowOp::Ge, 6.0);
    let sol = p.solve().unwrap();
    let dual_obj = sol.dual(r1) * 4.0 + sol.dual(r2) * 6.0;
    assert!(close(dual_obj, sol.objective), "dual obj {dual_obj} vs {}", sol.objective);
    assert!(sol.dual(r1) >= -1e-9 && sol.dual(r2) >= -1e-9);
}

#[test]
fn resolve_after_objective_change() {
    let mut p = Problem::new(Sense::Maximize);
    let x = p.add_var("x", 0.0, 1.0, 1.0);
    let y = p.add_var("y", 0.0, 1.0, 2.0);
    p.add_row("r", &[(x, 1.0), (y, 1.0)], RowOp::Le, 1.0);
    let s1 = p.solve().unwrap();
    assert!(close(s1.objective, 2.0)); // all weight on y
    p.set_var_objective(y, 0.5);
    let s2 = p.solve().unwrap();
    assert!(close(s2.objective, 1.0)); // all weight on x
}

#[test]
fn fixed_variable_lb_equals_ub() {
    let mut p = Problem::new(Sense::Maximize);
    let x = p.add_var("x", 2.0, 2.0, 5.0);
    let y = p.add_var("y", 0.0, f64::INFINITY, 1.0);
    p.add_row("r", &[(x, 1.0), (y, 1.0)], RowOp::Le, 6.0);
    let sol = p.solve().unwrap();
    assert!(close(sol.value(x), 2.0));
    assert!(close(sol.value(y), 4.0));
    assert!(close(sol.objective, 14.0));
}

#[test]
fn zero_rows_zero_vars() {
    let p = Problem::new(Sense::Maximize);
    let sol = p.solve().unwrap();
    assert_eq!(sol.values.len(), 0);
    assert!(close(sol.objective, 0.0));
}

#[test]
fn redundant_equality_rows() {
    // x + y == 2 listed twice: redundant but consistent; the basic
    // artificial left in the duplicate row must not break phase 2.
    let mut p = Problem::new(Sense::Maximize);
    let x = p.add_var("x", 0.0, f64::INFINITY, 1.0);
    let y = p.add_var("y", 0.0, f64::INFINITY, 1.0);
    p.add_row("r1", &[(x, 1.0), (y, 1.0)], RowOp::Eq, 2.0);
    p.add_row("r2", &[(x, 1.0), (y, 1.0)], RowOp::Eq, 2.0);
    let sol = p.solve().unwrap();
    assert!(close(sol.objective, 2.0));
}

#[test]
fn transportation_problem() {
    // 2 supplies (10, 20), 3 demands (5, 15, 10); costs.
    let mut p = Problem::new(Sense::Minimize);
    let costs = [[4.0, 6.0, 9.0], [5.0, 3.0, 8.0]];
    let mut x = [[None; 3]; 2];
    for (i, row) in costs.iter().enumerate() {
        for (j, &c) in row.iter().enumerate() {
            x[i][j] = Some(p.add_var(&format!("x{i}{j}"), 0.0, f64::INFINITY, c));
        }
    }
    let supplies = [10.0, 20.0];
    let demands = [5.0, 15.0, 10.0];
    for (i, &s) in supplies.iter().enumerate() {
        let terms: Vec<_> = (0..3).map(|j| (x[i][j].unwrap(), 1.0)).collect();
        p.add_row(&format!("supply{i}"), &terms, RowOp::Le, s);
    }
    for (j, &d) in demands.iter().enumerate() {
        let terms: Vec<_> = (0..2).map(|i| (x[i][j].unwrap(), 1.0)).collect();
        p.add_row(&format!("demand{j}"), &terms, RowOp::Ge, d);
    }
    let sol = p.solve().unwrap();
    // Optimal: x00=5, x02=5, x11=15, x12=5 -> 20+45+45+40 = 150.
    assert!(close(sol.objective, 150.0), "obj = {}", sol.objective);
    assert!(p.max_violation(&sol.values) < 1e-7);
}
