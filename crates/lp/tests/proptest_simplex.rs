//! Property tests: every solve must return a feasible point, and on
//! random box-bounded `max c·x s.t. A x <= b` instances the returned row
//! duals must certify optimality through strong duality.
//!
//! For `max c·x, A x <= b, 0 <= x <= u` the dual is
//! `min b·y + u·w, y >= 0, w >= 0, A^T y + w >= c`. Given the solver's row
//! duals `y`, the cheapest feasible `w` is `w_j = max(0, c_j - (A^T y)_j)`;
//! if the resulting dual objective matches the primal objective, the primal
//! solution is provably optimal — a certificate no amount of example-based
//! testing provides.

use proptest::prelude::*;
use thermaware_lp::{Problem, RowOp, Sense, Status};

#[derive(Debug, Clone)]
struct RandomLp {
    m: usize,
    n: usize,
    a: Vec<f64>,
    b: Vec<f64>,
    c: Vec<f64>,
    u: Vec<f64>,
}

fn random_lp() -> impl Strategy<Value = RandomLp> {
    (1usize..6, 1usize..8).prop_flat_map(|(m, n)| {
        (
            Just(m),
            Just(n),
            prop::collection::vec(-2.0_f64..4.0, m * n),
            // b >= 0 keeps x = 0 feasible, so the instance is never
            // infeasible; u finite keeps it bounded.
            prop::collection::vec(0.5_f64..20.0, m),
            prop::collection::vec(-5.0_f64..5.0, n),
            prop::collection::vec(0.1_f64..10.0, n),
        )
            .prop_map(|(m, n, a, b, c, u)| RandomLp { m, n, a, b, c, u })
    })
}

fn build(lp: &RandomLp) -> (Problem, Vec<thermaware_lp::VarId>) {
    let mut p = Problem::new(Sense::Maximize);
    let vars: Vec<_> = (0..lp.n)
        .map(|j| p.add_var(&format!("x{j}"), 0.0, lp.u[j], lp.c[j]))
        .collect();
    for i in 0..lp.m {
        let terms: Vec<_> = (0..lp.n).map(|j| (vars[j], lp.a[i * lp.n + j])).collect();
        p.add_row(&format!("r{i}"), &terms, RowOp::Le, lp.b[i]);
    }
    (p, vars)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn solution_is_feasible_and_duality_certified(lp in random_lp()) {
        let (p, _) = build(&lp);
        let sol = p.solve().expect("feasible bounded LP must solve");
        prop_assert_eq!(sol.status, Status::Optimal);

        // Primal feasibility.
        let viol = p.max_violation(&sol.values);
        prop_assert!(viol < 1e-7, "violation {viol}");

        // Dual feasibility of y (maximize / Le rows => y >= 0).
        for (i, &y) in sol.duals.iter().enumerate() {
            prop_assert!(y >= -1e-7, "dual {i} = {y} negative");
        }

        // Strong duality with the implied bound duals.
        let mut dual_obj = 0.0;
        for i in 0..lp.m {
            dual_obj += sol.duals[i] * lp.b[i];
        }
        for j in 0..lp.n {
            let at_y: f64 = (0..lp.m).map(|i| sol.duals[i] * lp.a[i * lp.n + j]).sum();
            let w = (lp.c[j] - at_y).max(0.0);
            dual_obj += w * lp.u[j];
        }
        let gap = (dual_obj - sol.objective).abs();
        prop_assert!(
            gap <= 1e-6 * (1.0 + sol.objective.abs() + dual_obj.abs()),
            "duality gap {gap}: primal {} dual {dual_obj}",
            sol.objective
        );
    }

    #[test]
    fn objective_beats_random_feasible_points(lp in random_lp(), scale in 0.0_f64..1.0) {
        let (p, _) = build(&lp);
        let sol = p.solve().expect("solve");
        // A scaled-down box corner is feasible when scaled toward 0 far
        // enough; walk the scale down until feasible, then compare.
        let mut x: Vec<f64> = lp.u.iter().map(|&u| u * scale).collect();
        let mut tries = 0;
        while p.max_violation(&x) > 0.0 && tries < 60 {
            for v in &mut x {
                *v *= 0.5;
            }
            tries += 1;
        }
        if p.max_violation(&x) <= 0.0 {
            let candidate = p.objective_value(&x);
            prop_assert!(
                sol.objective >= candidate - 1e-7 * (1.0 + candidate.abs()),
                "candidate {candidate} beats optimum {}",
                sol.objective
            );
        }
    }

    #[test]
    fn min_and_max_are_consistent(lp in random_lp()) {
        // max c·x  ==  -min (-c)·x on the same feasible set.
        let (pmax, _) = build(&lp);
        let mut pmin = Problem::new(Sense::Minimize);
        let vars: Vec<_> = (0..lp.n)
            .map(|j| pmin.add_var(&format!("x{j}"), 0.0, lp.u[j], -lp.c[j]))
            .collect();
        for i in 0..lp.m {
            let terms: Vec<_> = (0..lp.n).map(|j| (vars[j], lp.a[i * lp.n + j])).collect();
            pmin.add_row(&format!("r{i}"), &terms, RowOp::Le, lp.b[i]);
        }
        let smax = pmax.solve().unwrap();
        let smin = pmin.solve().unwrap();
        let diff = (smax.objective + smin.objective).abs();
        prop_assert!(diff <= 1e-6 * (1.0 + smax.objective.abs()), "diff {diff}");
    }
}
