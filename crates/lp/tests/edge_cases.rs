//! Edge-case and failure-path tests for the LP solver: the simplex must
//! fail loudly and precisely, never return garbage.

use thermaware_lp::{LpError, Problem, RowOp, Sense, Status};

#[test]
fn feasibility_mode_reports_infeasible() {
    let mut p = Problem::new(Sense::Minimize);
    let x = p.add_var("x", 0.0, 1.0, 0.0);
    p.add_row("hi", &[(x, 1.0)], RowOp::Ge, 2.0);
    match p.solve_feasibility() {
        Err(LpError::Infeasible { residual }) => assert!(residual > 0.9),
        other => panic!("expected infeasible, got {other:?}"),
    }
}

#[test]
fn contradictory_equalities() {
    let mut p = Problem::new(Sense::Maximize);
    let x = p.add_var("x", 0.0, 10.0, 1.0);
    let y = p.add_var("y", 0.0, 10.0, 1.0);
    p.add_row("a", &[(x, 1.0), (y, 1.0)], RowOp::Eq, 5.0);
    p.add_row("b", &[(x, 1.0), (y, 1.0)], RowOp::Eq, 7.0);
    assert!(matches!(p.solve(), Err(LpError::Infeasible { .. })));
}

#[test]
fn bounds_alone_can_be_infeasible_via_rows() {
    // x in [0, 1] but a row forces x = 3.
    let mut p = Problem::new(Sense::Minimize);
    let x = p.add_var("x", 0.0, 1.0, 1.0);
    p.add_row("force", &[(x, 1.0)], RowOp::Eq, 3.0);
    assert!(matches!(p.solve(), Err(LpError::Infeasible { .. })));
}

#[test]
fn negative_rhs_equality_normalization() {
    // Internally the row is negated; the answer must be unaffected.
    let mut p = Problem::new(Sense::Maximize);
    let x = p.add_var("x", f64::NEG_INFINITY, f64::INFINITY, 1.0);
    p.add_row("neg", &[(x, 2.0)], RowOp::Eq, -6.0);
    let sol = p.solve().unwrap();
    assert!((sol.value(x) + 3.0).abs() < 1e-9);
}

#[test]
fn objective_only_in_removed_direction() {
    // Maximize a variable that no row touches, bounded above: pure bound
    // flip path through phase 2.
    let mut p = Problem::new(Sense::Maximize);
    let x = p.add_var("x", -2.0, 9.0, 4.0);
    let y = p.add_var("y", 0.0, 5.0, 0.0);
    p.add_row("r", &[(y, 1.0)], RowOp::Le, 3.0);
    let sol = p.solve().unwrap();
    assert!((sol.value(x) - 9.0).abs() < 1e-9);
    assert!((sol.objective - 36.0).abs() < 1e-9);
}

#[test]
fn huge_coefficient_spread_is_survivable() {
    // Mixed magnitudes: 1e-6 to 1e6. The scaled tolerances must cope.
    let mut p = Problem::new(Sense::Maximize);
    let x = p.add_var("x", 0.0, f64::INFINITY, 1e-6);
    let y = p.add_var("y", 0.0, f64::INFINITY, 1e6);
    p.add_row("r1", &[(x, 1e6), (y, 1.0)], RowOp::Le, 2e6);
    p.add_row("r2", &[(x, 1.0), (y, 1e-6)], RowOp::Le, 2.0);
    let sol = p.solve().unwrap();
    assert_eq!(sol.status, Status::Optimal);
    assert!(p.max_violation(&sol.values) < 1e-4);
}

#[test]
fn many_redundant_rows() {
    // The same constraint 40 times: degenerate but must terminate fast.
    let mut p = Problem::new(Sense::Maximize);
    let x = p.add_var("x", 0.0, f64::INFINITY, 1.0);
    let y = p.add_var("y", 0.0, f64::INFINITY, 1.0);
    for i in 0..40 {
        p.add_row(&format!("r{i}"), &[(x, 1.0), (y, 1.0)], RowOp::Le, 10.0);
    }
    let sol = p.solve().unwrap();
    assert!((sol.objective - 10.0).abs() < 1e-7);
}

#[test]
fn equality_chain_forces_unique_point() {
    // x1 = 1, x_{k+1} = x_k + 1 via equalities: unique solution, no
    // optimization freedom at all.
    let mut p = Problem::new(Sense::Maximize);
    let n = 12;
    let vars: Vec<_> = (0..n)
        .map(|j| p.add_var(&format!("x{j}"), 0.0, 100.0, 1.0))
        .collect();
    p.add_row("x0", &[(vars[0], 1.0)], RowOp::Eq, 1.0);
    for k in 1..n {
        p.add_row(
            &format!("chain{k}"),
            &[(vars[k], 1.0), (vars[k - 1], -1.0)],
            RowOp::Eq,
            1.0,
        );
    }
    let sol = p.solve().unwrap();
    for (k, &v) in vars.iter().enumerate() {
        assert!((sol.value(v) - (k as f64 + 1.0)).abs() < 1e-7, "x{k}");
    }
}

#[test]
fn zero_objective_feasibility_equivalence() {
    // With an all-zero objective, solve() must agree with
    // solve_feasibility() on feasibility (values may differ).
    let mut p = Problem::new(Sense::Minimize);
    let x = p.add_var("x", 0.0, 4.0, 0.0);
    let y = p.add_var("y", 0.0, 4.0, 0.0);
    p.add_row("r", &[(x, 1.0), (y, 2.0)], RowOp::Ge, 3.0);
    let a = p.solve().unwrap();
    let b = p.solve_feasibility().unwrap();
    assert!(p.max_violation(&a.values) < 1e-7);
    assert!(p.max_violation(&b.values) < 1e-7);
}

#[test]
fn unbounded_reports_a_variable_name() {
    let mut p = Problem::new(Sense::Maximize);
    let _x = p.add_var("growth", 0.0, f64::INFINITY, 1.0);
    match p.solve() {
        Err(LpError::Unbounded { var }) => assert_eq!(var, "growth"),
        other => panic!("expected unbounded, got {other:?}"),
    }
}
