//! Cross-validation of the simplex against brute-force **vertex
//! enumeration** on small random LPs.
//!
//! For an LP `max c·x, A x <= b, 0 <= x <= u` in 2–3 variables, the
//! optimum (when finite) is attained at a vertex of the polytope — an
//! intersection of `n` constraint hyperplanes (rows or bound faces).
//! Enumerating all such intersections and keeping the feasible ones gives
//! an independent, dumb-but-sound optimum to compare the simplex against.

use proptest::prelude::*;
use thermaware_lp::{Problem, RowOp, Sense};

#[derive(Debug, Clone)]
struct SmallLp {
    n: usize,
    m: usize,
    a: Vec<f64>,
    b: Vec<f64>,
    c: Vec<f64>,
    u: Vec<f64>,
}

fn small_lp() -> impl Strategy<Value = SmallLp> {
    (2usize..4, 1usize..4).prop_flat_map(|(n, m)| {
        (
            Just(n),
            Just(m),
            prop::collection::vec(-3.0f64..3.0, m * n),
            prop::collection::vec(0.5f64..8.0, m),
            prop::collection::vec(-4.0f64..4.0, n),
            prop::collection::vec(0.5f64..6.0, n),
        )
            .prop_map(|(n, m, a, b, c, u)| SmallLp { n, m, a, b, c, u })
    })
}

/// All candidate vertices: solve every n-subset of the hyperplane set
/// {rows as equalities} ∪ {x_j = 0} ∪ {x_j = u_j} by Gaussian
/// elimination, keep feasible points, return the best objective.
fn brute_force(lp: &SmallLp) -> Option<f64> {
    let n = lp.n;
    // Hyperplanes as (coeffs, rhs).
    let mut planes: Vec<(Vec<f64>, f64)> = Vec::new();
    for i in 0..lp.m {
        planes.push((lp.a[i * n..(i + 1) * n].to_vec(), lp.b[i]));
    }
    for j in 0..n {
        let mut e = vec![0.0; n];
        e[j] = 1.0;
        planes.push((e.clone(), 0.0));
        planes.push((e, lp.u[j]));
    }
    let feasible = |x: &[f64]| -> bool {
        for j in 0..n {
            if x[j] < -1e-7 || x[j] > lp.u[j] + 1e-7 {
                return false;
            }
        }
        for i in 0..lp.m {
            let lhs: f64 = (0..n).map(|j| lp.a[i * n + j] * x[j]).sum();
            if lhs > lp.b[i] + 1e-7 {
                return false;
            }
        }
        true
    };
    let mut best: Option<f64> = None;
    // Choose n planes out of the set (n <= 3, so simple index loops).
    let p = planes.len();
    let mut idx = vec![0usize; n];
    fn combos(p: usize, n: usize, idx: &mut Vec<usize>, k: usize, start: usize, f: &mut impl FnMut(&[usize])) {
        if k == n {
            f(idx);
            return;
        }
        for i in start..p {
            idx[k] = i;
            combos(p, n, idx, k + 1, i + 1, f);
        }
    }
    combos(p, n, &mut idx, 0, 0, &mut |chosen| {
        // Solve the n x n system by Gaussian elimination.
        let mut mat = vec![0.0; n * (n + 1)];
        for (r, &pi) in chosen.iter().enumerate() {
            for j in 0..n {
                mat[r * (n + 1) + j] = planes[pi].0[j];
            }
            mat[r * (n + 1) + n] = planes[pi].1;
        }
        // Elimination with partial pivoting.
        for col in 0..n {
            let mut piv = col;
            for r in col + 1..n {
                if mat[r * (n + 1) + col].abs() > mat[piv * (n + 1) + col].abs() {
                    piv = r;
                }
            }
            if mat[piv * (n + 1) + col].abs() < 1e-9 {
                return; // singular subset: no unique vertex
            }
            if piv != col {
                for j in 0..=n {
                    mat.swap(col * (n + 1) + j, piv * (n + 1) + j);
                }
            }
            let d = mat[col * (n + 1) + col];
            for r in 0..n {
                if r == col {
                    continue;
                }
                let f = mat[r * (n + 1) + col] / d;
                if f != 0.0 {
                    for j in 0..=n {
                        mat[r * (n + 1) + j] -= f * mat[col * (n + 1) + j];
                    }
                }
            }
        }
        let x: Vec<f64> = (0..n)
            .map(|r| mat[r * (n + 1) + n] / mat[r * (n + 1) + r])
            .collect();
        if feasible(&x) {
            let obj: f64 = (0..n).map(|j| lp.c[j] * x[j]).sum();
            if best.is_none_or(|b| obj > b) {
                best = Some(obj);
            }
        }
    });
    // x = 0 is always feasible here (b >= 0), so best is Some unless the
    // polytope is degenerate in a way the enumeration missed.
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    #[test]
    fn simplex_matches_vertex_enumeration(lp in small_lp()) {
        let mut p = Problem::new(Sense::Maximize);
        let vars: Vec<_> = (0..lp.n)
            .map(|j| p.add_var(&format!("x{j}"), 0.0, lp.u[j], lp.c[j]))
            .collect();
        for i in 0..lp.m {
            let terms: Vec<_> = (0..lp.n).map(|j| (vars[j], lp.a[i * lp.n + j])).collect();
            p.add_row(&format!("r{i}"), &terms, RowOp::Le, lp.b[i]);
        }
        let sol = p.solve().expect("bounded feasible LP");
        if let Some(brute) = brute_force(&lp) {
            let diff = (sol.objective - brute).abs();
            prop_assert!(
                diff <= 1e-6 * (1.0 + brute.abs()),
                "simplex {} vs brute force {brute}",
                sol.objective
            );
        }
    }
}
