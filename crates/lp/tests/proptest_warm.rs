//! Property tests for basis warm-starting: a warm solve on a perturbed
//! problem must agree with a cold dense solve on objective and
//! feasibility — warm-starting is an accelerator, never an answer-changer.
//!
//! Three perturbation regimes are exercised, matching this workspace's
//! real call sites:
//!
//! * **Cost perturbation** (Stage-1 CRAC grid sweep: neighbouring outlet
//!   temperatures reprice the same segments) — the warm basis stays
//!   primal-feasible and resumes in phase 2.
//! * **RHS perturbation, slack direction** — still primal-feasible.
//! * **RHS tightening** (post-fault replans: capacities shrink) — the
//!   warm basis can go primal-infeasible and must re-enter through the
//!   dual simplex.

use proptest::prelude::*;
use thermaware_lp::{Problem, RowOp, Sense, Status, VarId};

#[derive(Debug, Clone)]
struct RandomLp {
    m: usize,
    n: usize,
    a: Vec<f64>,
    b: Vec<f64>,
    c: Vec<f64>,
    u: Vec<f64>,
}

fn random_lp() -> impl Strategy<Value = RandomLp> {
    (2usize..6, 2usize..8).prop_flat_map(|(m, n)| {
        (
            Just(m),
            Just(n),
            prop::collection::vec(-2.0_f64..4.0, m * n),
            // b >= 0 keeps x = 0 feasible; u finite keeps it bounded.
            prop::collection::vec(0.5_f64..20.0, m),
            prop::collection::vec(-5.0_f64..5.0, n),
            prop::collection::vec(0.1_f64..10.0, n),
        )
            .prop_map(|(m, n, a, b, c, u)| RandomLp { m, n, a, b, c, u })
    })
}

fn build(lp: &RandomLp) -> (Problem, Vec<VarId>) {
    let mut p = Problem::new(Sense::Maximize);
    let vars: Vec<_> = (0..lp.n)
        .map(|j| p.add_var(&format!("x{j}"), 0.0, lp.u[j], lp.c[j]))
        .collect();
    for i in 0..lp.m {
        let terms: Vec<_> = (0..lp.n).map(|j| (vars[j], lp.a[i * lp.n + j])).collect();
        p.add_row(&format!("r{i}"), &terms, RowOp::Le, lp.b[i]);
    }
    (p, vars)
}

/// Warm-solve `perturbed` from `base`'s optimal basis and check it agrees
/// with the cold dense oracle. Both must succeed: every perturbation here
/// keeps `x = 0` feasible and the box bounded.
fn assert_warm_agrees(base: &Problem, perturbed: &Problem) -> Result<(), TestCaseError> {
    let mut first = base.solve().expect("base LP is feasible and bounded");
    prop_assert_eq!(first.status, Status::Optimal);
    let basis = first.take_basis();
    prop_assert!(basis.is_some(), "optimal revised solve must return a basis");

    let warm = perturbed
        .solve_warm(basis.as_ref())
        .expect("perturbed LP is feasible and bounded");
    let cold = perturbed.solve_dense().expect("dense oracle");

    let gap = (warm.objective - cold.objective).abs();
    prop_assert!(
        gap <= 1e-6 * (1.0 + cold.objective.abs()),
        "warm {} vs cold {}",
        warm.objective,
        cold.objective
    );
    let viol = perturbed.max_violation(&warm.values);
    prop_assert!(viol < 1e-6, "warm solution violates by {viol}");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn warm_agrees_after_cost_perturbation(
        lp in random_lp(),
        dc in prop::collection::vec(-0.5_f64..0.5, 8),
    ) {
        let (base, _) = build(&lp);
        let mut lp2 = lp.clone();
        for (j, cost) in lp2.c.iter_mut().enumerate() {
            *cost += dc[j % dc.len()];
        }
        let (perturbed, _) = build(&lp2);
        assert_warm_agrees(&base, &perturbed)?;
    }

    #[test]
    fn warm_agrees_after_rhs_slackening(
        lp in random_lp(),
        db in prop::collection::vec(0.0_f64..5.0, 6),
    ) {
        let (base, _) = build(&lp);
        let mut lp2 = lp.clone();
        for (i, rhs) in lp2.b.iter_mut().enumerate() {
            *rhs += db[i % db.len()];
        }
        let (perturbed, _) = build(&lp2);
        assert_warm_agrees(&base, &perturbed)?;
    }

    #[test]
    fn warm_agrees_after_fault_style_rhs_tightening(
        lp in random_lp(),
        shrink in prop::collection::vec(0.1_f64..1.0, 6),
    ) {
        // Capacities shrink multiplicatively (a failed unit removes
        // capacity) but stay positive, so x = 0 stays feasible while the
        // old optimal basis generally does not — this is the dual
        // re-entry path.
        let (base, _) = build(&lp);
        let mut lp2 = lp.clone();
        for (i, rhs) in lp2.b.iter_mut().enumerate() {
            *rhs *= shrink[i % shrink.len()];
        }
        let (perturbed, _) = build(&lp2);
        assert_warm_agrees(&base, &perturbed)?;
    }

    #[test]
    fn warm_agrees_after_combined_perturbation(
        lp in random_lp(),
        dc in prop::collection::vec(-1.0_f64..1.0, 8),
        shrink in prop::collection::vec(0.2_f64..1.2, 6),
    ) {
        let (base, _) = build(&lp);
        let mut lp2 = lp.clone();
        for (j, cost) in lp2.c.iter_mut().enumerate() {
            *cost += dc[j % dc.len()];
        }
        for (i, rhs) in lp2.b.iter_mut().enumerate() {
            *rhs *= shrink[i % shrink.len()];
        }
        let (perturbed, _) = build(&lp2);
        assert_warm_agrees(&base, &perturbed)?;
    }

    #[test]
    fn basis_roundtrips_through_serde(lp in random_lp()) {
        // The runtime persists the basis inside its checkpointed world;
        // a serialize/deserialize round trip must restore to the same
        // handle and still warm-start cleanly.
        let (p, _) = build(&lp);
        let mut sol = p.solve().expect("solve");
        let basis = sol.take_basis().expect("basis");
        let json = serde_json::to_string(&basis).expect("serialize");
        let back: thermaware_lp::Basis =
            serde_json::from_str(&json).expect("deserialize");
        prop_assert_eq!(&back, &basis);
        let warm = p.solve_warm(Some(&back)).expect("warm re-solve");
        prop_assert!(warm.iterations == 0, "re-solve of the same LP took {} pivots", warm.iterations);
        let gap = (warm.objective - sol.objective).abs();
        prop_assert!(gap <= 1e-9 * (1.0 + sol.objective.abs()));
    }
}
