//! Property test: `solve_presolved` must agree with `solve` on random
//! LPs seeded with exactly the structures presolve removes — fixed
//! variables, rows that empty out after substitution, and columns no row
//! touches.

use proptest::prelude::*;
use thermaware_lp::{Problem, RowOp, Sense};

#[derive(Debug, Clone)]
struct Instance {
    n_free: usize,
    n_fixed: usize,
    m: usize,
    a: Vec<f64>,
    b: Vec<f64>,
    c: Vec<f64>,
    fixed_vals: Vec<f64>,
    unused_c: Vec<f64>,
}

fn instance() -> impl Strategy<Value = Instance> {
    (1usize..5, 0usize..3, 0usize..3, 1usize..5).prop_flat_map(|(nf, nx, nu, m)| {
        (
            Just(nf),
            Just(nx),
            Just(nu),
            Just(m),
            prop::collection::vec(-2.0f64..2.0, m * (nf + nx)),
            prop::collection::vec(1.0f64..10.0, m),
            prop::collection::vec(-3.0f64..3.0, nf),
            prop::collection::vec(0.0f64..2.0, nx),
            prop::collection::vec(-3.0f64..3.0, nu),
        )
            .prop_map(
                |(n_free, n_fixed, _n_unused, m, a, b, c, fixed_vals, unused_c)| Instance {
                    n_free,
                    n_fixed,
                    m,
                    a,
                    b,
                    c,
                    fixed_vals,
                    unused_c,
                },
            )
    })
}

fn build(inst: &Instance) -> Problem {
    let mut p = Problem::new(Sense::Maximize);
    let ncols = inst.n_free + inst.n_fixed;
    let mut vars = Vec::new();
    for j in 0..inst.n_free {
        vars.push(p.add_var(&format!("x{j}"), 0.0, 5.0, inst.c[j]));
    }
    for (j, &v) in inst.fixed_vals.iter().enumerate() {
        vars.push(p.add_var(&format!("fix{j}"), v, v, 1.0));
    }
    for (j, &cu) in inst.unused_c.iter().enumerate() {
        // Bounded both sides so no unbounded verdicts.
        p.add_var(&format!("un{j}"), -1.0, 4.0, cu);
    }
    for i in 0..inst.m {
        let terms: Vec<_> = (0..ncols)
            .map(|j| (vars[j], inst.a[i * ncols + j]))
            .collect();
        p.add_row(&format!("r{i}"), &terms, RowOp::Le, inst.b[i] + 3.0);
    }
    // One row touching only fixed variables (empties out in presolve);
    // rhs chosen generously so it stays satisfiable.
    if inst.n_fixed > 0 {
        let terms: Vec<_> = (0..inst.n_fixed)
            .map(|j| (vars[inst.n_free + j], 1.0))
            .collect();
        p.add_row("fixed_only", &terms, RowOp::Le, 100.0);
    }
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn presolved_matches_direct(inst in instance()) {
        let p = build(&inst);
        let direct = p.solve();
        let pre = p.solve_presolved();
        match (direct, pre) {
            (Ok(a), Ok(b)) => {
                let diff = (a.objective - b.objective).abs();
                prop_assert!(
                    diff <= 1e-6 * (1.0 + a.objective.abs()),
                    "direct {} vs presolved {}",
                    a.objective,
                    b.objective
                );
                // Both solutions feasible in the original model.
                prop_assert!(p.max_violation(&a.values) < 1e-7);
                prop_assert!(p.max_violation(&b.values) < 1e-7);
                // Duals agree on kept rows (both optimal bases may differ
                // under degeneracy, so compare dual objectives instead of
                // entries: Σ y·b must match the primal optimum for rows
                // plus bound contributions — weak check: equal lengths).
                prop_assert_eq!(a.duals.len(), b.duals.len());
            }
            (Err(ea), Err(eb)) => {
                // Same verdict class.
                let same = matches!(
                    (&ea, &eb),
                    (
                        thermaware_lp::LpError::Infeasible { .. },
                        thermaware_lp::LpError::Infeasible { .. }
                    ) | (
                        thermaware_lp::LpError::Unbounded { .. },
                        thermaware_lp::LpError::Unbounded { .. }
                    )
                );
                prop_assert!(same, "direct {ea:?} vs presolved {eb:?}");
            }
            (a, b) => {
                prop_assert!(false, "disagreement: direct {a:?} vs presolved {b:?}");
            }
        }
    }
}
