//! MPS export: dump a [`Problem`] in the (free-form) MPS interchange
//! format, so any model this workspace builds can be inspected with — or
//! cross-checked against — an external solver (GLPK, HiGHS, CPLEX…).
//!
//! Free-form MPS is emitted (whitespace-separated fields, names beyond 8
//! characters allowed); all mainstream solvers accept it. Conventions:
//!
//! * the objective row is named `COST` and tagged `N`;
//! * maximization is encoded by negating the objective coefficients and
//!   noting the flip in a comment (classic MPS has no sense marker);
//! * variable bounds map to `LO`/`UP`/`FX`/`MI`/`FR` entries; the default
//!   MPS bound (`[0, +inf)`) is emitted explicitly anyway for clarity.

use crate::model::{Problem, RowOp, Sense};
use std::fmt::Write as _;

/// Render the problem as a free-form MPS document.
pub fn to_mps(problem: &Problem, name: &str) -> String {
    let mut out = String::new();
    let flip = match problem.sense {
        Sense::Maximize => -1.0,
        Sense::Minimize => 1.0,
    };
    if problem.sense == Sense::Maximize {
        out.push_str("* Maximization problem: objective negated for MPS (minimize COST).\n");
    }
    let _ = writeln!(out, "NAME {}", sanitize(name));

    // ROWS.
    out.push_str("ROWS\n N COST\n");
    for (i, c) in problem.cons.iter().enumerate() {
        let tag = match c.op {
            RowOp::Le => 'L',
            RowOp::Ge => 'G',
            RowOp::Eq => 'E',
        };
        let _ = writeln!(out, " {tag} {}", row_name(problem, i));
    }

    // COLUMNS: objective entry plus every row coefficient, grouped per
    // variable (column-major, as MPS expects).
    out.push_str("COLUMNS\n");
    // Build per-variable row lists once (the Problem stores rows sparsely
    // by row, MPS wants them by column).
    let nvars = problem.vars.len();
    let mut per_var: Vec<Vec<(usize, f64)>> = vec![Vec::new(); nvars];
    for (i, c) in problem.cons.iter().enumerate() {
        for &(j, a) in &c.terms {
            if a != 0.0 { // lint: allow(float-eq): MPS writer omits exactly-zero stored coefficients
                per_var[j].push((i, a));
            }
        }
    }
    for (j, v) in problem.vars.iter().enumerate() {
        let vn = var_name(problem, j);
        if v.objective != 0.0 { // lint: allow(float-eq): MPS writer omits exactly-zero stored objectives
            let _ = writeln!(out, " {vn} COST {}", fmt_num(flip * v.objective));
        }
        for &(i, a) in &per_var[j] {
            let _ = writeln!(out, " {vn} {} {}", row_name(problem, i), fmt_num(a));
        }
        if v.objective == 0.0 && per_var[j].is_empty() { // lint: allow(float-eq): MPS writer omits exactly-zero stored objectives
            // MPS requires every column to appear; emit a zero objective
            // entry for columns no row touches.
            let _ = writeln!(out, " {vn} COST 0");
        }
    }

    // RHS.
    out.push_str("RHS\n");
    for (i, c) in problem.cons.iter().enumerate() {
        if c.rhs != 0.0 { // lint: allow(float-eq): MPS writer omits exactly-zero stored RHS values
            let _ = writeln!(out, " RHS {} {}", row_name(problem, i), fmt_num(c.rhs));
        }
    }

    // BOUNDS.
    out.push_str("BOUNDS\n");
    for (j, v) in problem.vars.iter().enumerate() {
        let vn = var_name(problem, j);
        match (v.lower.is_finite(), v.upper.is_finite()) {
            (true, true) if v.lower == v.upper => {
                let _ = writeln!(out, " FX BND {vn} {}", fmt_num(v.lower));
            }
            (true, true) => {
                let _ = writeln!(out, " LO BND {vn} {}", fmt_num(v.lower));
                let _ = writeln!(out, " UP BND {vn} {}", fmt_num(v.upper));
            }
            (true, false) => {
                let _ = writeln!(out, " LO BND {vn} {}", fmt_num(v.lower));
            }
            (false, true) => {
                out.push_str(&format!(" MI BND {vn}\n"));
                let _ = writeln!(out, " UP BND {vn} {}", fmt_num(v.upper));
            }
            (false, false) => {
                let _ = writeln!(out, " FR BND {vn}");
            }
        }
    }
    out.push_str("ENDATA\n");
    out
}

fn sanitize(s: &str) -> String {
    let cleaned: String = s
        .chars()
        .map(|c| if c.is_whitespace() { '_' } else { c })
        .collect();
    if cleaned.is_empty() {
        "UNNAMED".to_owned()
    } else {
        cleaned
    }
}

fn var_name(problem: &Problem, j: usize) -> String {
    format!("{}_{j}", sanitize(&problem.vars[j].name))
}

fn row_name(problem: &Problem, i: usize) -> String {
    format!("{}_{i}", sanitize(&problem.cons[i].name))
}

fn fmt_num(x: f64) -> String {
    // Full round-trip precision; MPS readers accept scientific notation.
    format!("{x:.17e}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Problem, RowOp, Sense};

    fn example() -> Problem {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", 0.0, 2.0, 3.0);
        let y = p.add_var("y", 0.0, f64::INFINITY, 2.0);
        let z = p.add_var("free z", f64::NEG_INFINITY, f64::INFINITY, 0.0);
        p.add_row("cap one", &[(x, 1.0), (y, 1.0)], RowOp::Le, 4.0);
        p.add_row("floor", &[(y, 1.0), (z, -1.0)], RowOp::Ge, 1.0);
        p.add_row("link", &[(x, 2.0), (z, 1.0)], RowOp::Eq, 0.0);
        p
    }

    #[test]
    fn sections_present_and_ordered() {
        let mps = to_mps(&example(), "test model");
        let idx = |s: &str| mps.find(s).unwrap_or_else(|| panic!("missing {s}"));
        assert!(idx("NAME") < idx("ROWS"));
        assert!(idx("ROWS") < idx("COLUMNS"));
        assert!(idx("COLUMNS") < idx("RHS"));
        assert!(idx("RHS") < idx("BOUNDS"));
        assert!(idx("BOUNDS") < idx("ENDATA"));
        assert!(mps.contains("NAME test_model"));
    }

    #[test]
    fn row_tags_match_operators() {
        let mps = to_mps(&example(), "m");
        assert!(mps.contains(" L cap_one_0"));
        assert!(mps.contains(" G floor_1"));
        assert!(mps.contains(" E link_2"));
        assert!(mps.contains(" N COST"));
    }

    #[test]
    fn maximization_negates_objective() {
        let mps = to_mps(&example(), "m");
        // x's objective 3 becomes -3 (leading fields: name, COST, value).
        let line = mps
            .lines()
            .find(|l| l.contains("x_0 COST"))
            .expect("x objective line");
        assert!(line.contains("-3"), "line: {line}");
        assert!(mps.starts_with("* Maximization"));
    }

    #[test]
    fn bounds_cover_all_variable_shapes() {
        let mps = to_mps(&example(), "m");
        assert!(mps.contains(" LO BND x_0"));
        assert!(mps.contains(" UP BND x_0"));
        assert!(mps.contains(" LO BND y_1")); // [0, inf): LO only
        assert!(!mps.contains(" UP BND y_1"));
        assert!(mps.contains(" FR BND free_z_2"));
    }

    #[test]
    fn whitespace_in_names_sanitized() {
        let mps = to_mps(&example(), "m");
        assert!(mps.contains("cap_one_0"));
        assert!(!mps.contains("cap one"));
    }

    #[test]
    fn fixed_variable_uses_fx() {
        let mut p = Problem::new(Sense::Minimize);
        p.add_var("pin", 3.5, 3.5, 1.0);
        let mps = to_mps(&p, "m");
        assert!(mps.contains(" FX BND pin_0"));
        // Minimization: no negation comment.
        assert!(!mps.starts_with("* Maximization"));
    }
}
