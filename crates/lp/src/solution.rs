use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// Termination status of a solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// An optimal solution was found.
    Optimal,
    /// A feasible (not necessarily optimal) point was found — returned by
    /// [`crate::Problem::solve_feasibility`].
    Feasible,
}

/// A solved LP.
#[derive(Debug, Clone)]
pub struct Solution {
    /// Termination status.
    pub status: Status,
    /// Objective value in the *user's* sense (maximization problems report
    /// the maximum).
    pub objective: f64,
    /// Value of each variable, indexed like [`crate::VarId`].
    pub values: Vec<f64>,
    /// Dual value of each constraint row, indexed like
    /// [`crate::ConstraintId`].
    ///
    /// Sign convention: duals are reported for the problem *as the user
    /// stated it*. For a maximization problem, the dual of a binding `<=`
    /// row is `>= 0` and measures the objective gain per unit of extra
    /// right-hand side; for minimization the dual of a binding `>=` row is
    /// `>= 0`.
    pub duals: Vec<f64>,
    /// Number of simplex pivots performed (both phases).
    pub iterations: usize,
    /// Warm-start handle captured at termination (engine-dependent; the
    /// feasibility-only and presolved paths return `None`).
    pub(crate) basis: Option<crate::Basis>,
}

impl Solution {
    /// Value of a variable by handle.
    pub fn value(&self, v: crate::VarId) -> f64 {
        self.values[v.0]
    }

    /// Dual of a row by handle.
    pub fn dual(&self, c: crate::ConstraintId) -> f64 {
        self.duals[c.0]
    }

    /// The warm-start handle of this solve, if one was captured. Pass it
    /// to [`crate::Problem::solve_warm`] on a structurally identical
    /// problem to resume from this optimum.
    pub fn basis(&self) -> Option<&crate::Basis> {
        self.basis.as_ref()
    }

    /// Take ownership of the warm-start handle (leaves `None` behind).
    pub fn take_basis(&mut self) -> Option<crate::Basis> {
        self.basis.take()
    }
}

/// Errors from the simplex solver.
#[derive(Debug, Clone, PartialEq)]
pub enum LpError {
    /// The constraint set admits no feasible point. The payload is the
    /// residual infeasibility left after phase 1 (useful for diagnosing
    /// near-feasible models).
    Infeasible {
        /// Sum of artificial variables at the end of phase 1.
        residual: f64,
    },
    /// The objective is unbounded in the optimization direction. The
    /// payload names the variable along which it diverges.
    Unbounded {
        /// Name of a variable with an improving, unblocked direction.
        var: String,
    },
    /// The iteration cap was hit — numerically cycling or a genuinely
    /// enormous problem. The cap scales with problem size, so in practice
    /// this indicates a numerical pathology.
    IterationLimit {
        /// The cap that was exceeded.
        limit: usize,
    },
    /// A tableau invariant the solver relies on was violated — a solver
    /// bug, not a property of the model. Formerly an `unreachable!`;
    /// the solver paths are panic-free (DESIGN.md §6), so internal
    /// inconsistency surfaces as a typed error the supervisor can
    /// degrade on instead of a crash.
    Internal {
        /// Which invariant broke.
        what: String,
    },
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::Infeasible { residual } => {
                write!(f, "LP infeasible (phase-1 residual {residual:.3e})")
            }
            LpError::Unbounded { var } => write!(f, "LP unbounded along variable '{var}'"),
            LpError::IterationLimit { limit } => {
                write!(f, "simplex iteration limit {limit} exceeded")
            }
            LpError::Internal { what } => {
                write!(f, "simplex internal invariant violated: {what}")
            }
        }
    }
}

impl std::error::Error for LpError {}

// The vendored serde derive handles only fieldless enums, so the
// payload-carrying `LpError` implements the trait contract by hand:
// a tagged object `{"kind": ..., <payload>}`.
impl Serialize for LpError {
    fn to_value(&self) -> Value {
        let (kind, key, payload) = match self {
            LpError::Infeasible { residual } => ("infeasible", "residual", residual.to_value()),
            LpError::Unbounded { var } => ("unbounded", "var", var.to_value()),
            LpError::IterationLimit { limit } => ("iteration_limit", "limit", limit.to_value()),
            LpError::Internal { what } => ("internal", "what", what.to_value()),
        };
        Value::Object(vec![
            ("kind".to_string(), Value::String(kind.to_string())),
            (key.to_string(), payload),
        ])
    }
}

impl Deserialize for LpError {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        let entries = v
            .as_object()
            .ok_or_else(|| serde::Error::custom("LpError: expected object"))?;
        let kind: String = serde::field(entries, "kind")?;
        match kind.as_str() {
            "infeasible" => Ok(LpError::Infeasible {
                residual: serde::field(entries, "residual")?,
            }),
            "unbounded" => Ok(LpError::Unbounded {
                var: serde::field(entries, "var")?,
            }),
            "iteration_limit" => Ok(LpError::IterationLimit {
                limit: serde::field(entries, "limit")?,
            }),
            "internal" => Ok(LpError::Internal {
                what: serde::field(entries, "what")?,
            }),
            other => Err(serde::Error::custom(format!(
                "LpError: unknown kind '{other}'"
            ))),
        }
    }
}
