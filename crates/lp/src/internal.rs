//! Shared internal form of an LP: the rewriting both simplex engines
//! (dense tableau and sparse revised) run on.
//!
//! Internal form: `min c·x  s.t.  A x = b,  0 <= x_j <= u_j` (each `u_j`
//! possibly infinite). User problems are rewritten into this form: finite
//! lower bounds are shifted to zero, `(-inf, ub]` variables are mirrored,
//! free variables are split, inequality rows gain slack/surplus columns,
//! rows with negative right-hand sides are negated, and `Ge`/`Eq` rows get
//! artificial columns for the phase-1 cold start.
//!
//! The constraint matrix is stored **column-major and sparse** — the
//! revised simplex only ever touches whole columns (FTRAN of the entering
//! column, pricing dot products), and the dense tableau assembles its
//! `m × n` matrix from the same columns. Keeping one builder guarantees the
//! two engines agree on column indexing, which is what makes a [`Basis`]
//! handle produced by either engine consumable by the other.
//!
//! [`Basis`]: crate::Basis

use crate::model::{Problem, RowOp, Sense};

/// Where an internal column currently sits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum VarState {
    Basic,
    /// Nonbasic at its lower bound (0 in internal coordinates).
    Lower,
    /// Nonbasic at its upper bound `u_j`.
    Upper,
}

/// How a user variable maps onto internal columns.
#[derive(Debug, Clone, Copy)]
pub(crate) enum VarMap {
    /// `x_user = x_col + lb`
    Shift { col: usize, lb: f64 },
    /// `x_user = ub - x_col`
    Mirror { col: usize, ub: f64 },
    /// `x_user = x_pos - x_neg`
    Split { pos: usize, neg: usize },
}

/// One sparse internal column: `(row, coefficient)` pairs, row-sorted.
pub(crate) type SparseCol = Vec<(usize, f64)>;

/// The rewritten problem both engines solve.
pub(crate) struct InternalForm {
    /// `-1` for maximization (internally always minimize), `+1` otherwise.
    pub sense_sign: f64,
    /// Per user variable: how it lands in internal columns.
    pub maps: Vec<VarMap>,
    /// Upper bound of every internal column (>= 0, possibly infinite).
    pub upper: Vec<f64>,
    /// Phase-2 (real) internal cost of every column.
    pub cost: Vec<f64>,
    /// Constant folded out of shifts/mirrors (internal objective offset).
    pub obj_const: f64,
    /// Normalized right-hand sides, all >= 0.
    pub rhs: Vec<f64>,
    /// Normalized row operators (after any negative-rhs flip).
    pub ops: Vec<RowOp>,
    /// Whether row `i` was negated during normalization.
    pub flipped: Vec<bool>,
    /// Sparse columns, including slack and artificial columns.
    pub cols: Vec<SparseCol>,
    /// Slack column of each row (`Le`/`Ge` rows only).
    pub slack_col: Vec<Option<usize>>,
    /// Artificial column of each row (`Ge`/`Eq` rows only).
    pub art_col: Vec<Option<usize>>,
    /// First artificial column (artificials occupy `art_start..n_total`).
    pub art_start: usize,
    /// Total internal columns (structural + slack + artificial).
    pub n_total: usize,
    /// Structural signature for warm-start validation (48-bit).
    pub signature: u64,
}

impl InternalForm {
    pub(crate) fn m(&self) -> usize {
        self.rhs.len()
    }

    /// Build the internal form of `problem`.
    pub(crate) fn build(problem: &Problem) -> InternalForm {
        let nrows = problem.cons.len();

        // ---- Column layout of user variables ----------------------------
        let mut maps: Vec<VarMap> = Vec::with_capacity(problem.vars.len());
        let mut upper: Vec<f64> = Vec::new();
        let mut cost: Vec<f64> = Vec::new();
        let mut obj_const = 0.0;
        let sense_sign = match problem.sense {
            Sense::Maximize => -1.0,
            Sense::Minimize => 1.0,
        };
        for v in &problem.vars {
            if v.lower.is_finite() {
                maps.push(VarMap::Shift {
                    col: upper.len(),
                    lb: v.lower,
                });
                upper.push(v.upper - v.lower);
                cost.push(sense_sign * v.objective);
                obj_const += sense_sign * v.objective * v.lower;
            } else if v.upper.is_finite() {
                maps.push(VarMap::Mirror {
                    col: upper.len(),
                    ub: v.upper,
                });
                upper.push(f64::INFINITY);
                cost.push(-sense_sign * v.objective);
                obj_const += sense_sign * v.objective * v.upper;
            } else {
                maps.push(VarMap::Split {
                    pos: upper.len(),
                    neg: upper.len() + 1,
                });
                upper.push(f64::INFINITY);
                upper.push(f64::INFINITY);
                cost.push(sense_sign * v.objective);
                cost.push(-sense_sign * v.objective);
            }
        }
        let n_struct = upper.len();

        // ---- Rows in internal coordinates --------------------------------
        // Structural coefficients land in a scratch row first (terms are
        // already deduplicated by the model), then scatter into columns.
        let mut rhs = Vec::with_capacity(nrows);
        let mut ops = Vec::with_capacity(nrows);
        let mut flipped = Vec::with_capacity(nrows);
        let mut row_coeffs: Vec<Vec<(usize, f64)>> = Vec::with_capacity(nrows);
        for c in &problem.cons {
            let mut b = c.rhs;
            let mut coeffs: Vec<(usize, f64)> = Vec::with_capacity(c.terms.len() + 2);
            for &(uj, a) in &c.terms {
                match maps[uj] {
                    VarMap::Shift { col, lb } => {
                        b -= a * lb;
                        coeffs.push((col, a));
                    }
                    VarMap::Mirror { col, ub } => {
                        b -= a * ub;
                        coeffs.push((col, -a));
                    }
                    VarMap::Split { pos, neg } => {
                        coeffs.push((pos, a));
                        coeffs.push((neg, -a));
                    }
                }
            }
            let mut op = c.op;
            let flip = b < 0.0;
            if flip {
                b = -b;
                for (_, a) in &mut coeffs {
                    *a = -*a;
                }
                op = match op {
                    RowOp::Le => RowOp::Ge,
                    RowOp::Ge => RowOp::Le,
                    RowOp::Eq => RowOp::Eq,
                };
            }
            rhs.push(b);
            ops.push(op);
            flipped.push(flip);
            row_coeffs.push(coeffs);
        }

        // ---- Slack then artificial columns -------------------------------
        let mut slack_col: Vec<Option<usize>> = vec![None; nrows];
        let mut next = n_struct;
        for (i, op) in ops.iter().enumerate() {
            if matches!(op, RowOp::Le | RowOp::Ge) {
                slack_col[i] = Some(next);
                next += 1;
            }
        }
        let art_start = next;
        let mut art_col: Vec<Option<usize>> = vec![None; nrows];
        for (i, op) in ops.iter().enumerate() {
            if matches!(op, RowOp::Ge | RowOp::Eq) {
                art_col[i] = Some(next);
                next += 1;
            }
        }
        let n_total = next;
        upper.resize(n_total, f64::INFINITY);
        cost.resize(n_total, 0.0);

        // ---- Scatter into sparse columns ---------------------------------
        let mut cols: Vec<SparseCol> = vec![Vec::new(); n_total];
        for (i, coeffs) in row_coeffs.iter().enumerate() {
            for &(j, a) in coeffs {
                cols[j].push((i, a));
            }
        }
        // Rows are scanned in order and maps are injective, so each column
        // ends up row-sorted with unique row indices.
        for (i, (&s, &a)) in slack_col.iter().zip(&art_col).enumerate() {
            if let Some(sc) = s {
                let coef = if matches!(ops[i], RowOp::Le) { 1.0 } else { -1.0 };
                cols[sc].push((i, coef));
            }
            if let Some(ac) = a {
                cols[ac].push((i, 1.0));
            }
        }

        let signature = signature(sense_sign, &maps, problem, &ops, &flipped);

        InternalForm {
            sense_sign,
            maps,
            upper,
            cost,
            obj_const,
            rhs,
            ops,
            flipped,
            cols,
            slack_col,
            art_col,
            art_start,
            n_total,
            signature,
        }
    }

    /// Map an unbounded internal column back to a user variable name.
    pub(crate) fn unbounded_var_name(&self, problem: &Problem, q: usize) -> String {
        self.maps
            .iter()
            .enumerate()
            .find_map(|(ui, vm)| match *vm {
                VarMap::Shift { col, .. } | VarMap::Mirror { col, .. } if col == q => {
                    Some(problem.vars[ui].name.clone())
                }
                VarMap::Split { pos, neg } if pos == q || neg == q => {
                    Some(problem.vars[ui].name.clone())
                }
                _ => None,
            })
            .unwrap_or_else(|| format!("slack#{q}"))
    }
}

/// Structural signature of the internal form, for warm-start validation.
///
/// A warm [`crate::Basis`] is only meaningful when the perturbed problem
/// maps to the *same column layout*: same sense, same per-variable
/// bound-finiteness pattern (Shift/Mirror/Split), same row count, same
/// normalized ops and rhs-flip pattern (slack signs and artificial
/// allocation depend on them). Coefficient *values* are deliberately
/// excluded — perturbing costs/RHS/coefficients is exactly the warm-start
/// use case. FNV-1a, masked to 48 bits so the value survives an f64-backed
/// JSON round trip exactly.
fn signature(
    sense_sign: f64,
    maps: &[VarMap],
    problem: &Problem,
    ops: &[RowOp],
    flipped: &[bool],
) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |byte: u8| {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    eat(if sense_sign < 0.0 { 1 } else { 0 });
    eat_usize(&mut eat, problem.vars.len());
    for m in maps {
        eat(match m {
            VarMap::Shift { .. } => 0,
            VarMap::Mirror { .. } => 1,
            VarMap::Split { .. } => 2,
        });
    }
    eat_usize(&mut eat, ops.len());
    for (op, &f) in ops.iter().zip(flipped) {
        let opb = match op {
            RowOp::Le => 0u8,
            RowOp::Ge => 1,
            RowOp::Eq => 2,
        };
        eat(opb << 1 | u8::from(f));
    }
    h & 0x0000_ffff_ffff_ffff
}

fn eat_usize(eat: &mut impl FnMut(u8), x: usize) {
    for b in (x as u64).to_le_bytes() {
        eat(b);
    }
}
