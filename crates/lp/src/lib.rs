//! A dense linear-programming solver for the `thermaware` workspace.
//!
//! The paper's optimization problems — Stage 1 with fixed CRAC outlet
//! temperatures, Stage 3, the Eq.-21 baseline, the Eq.-17 power-bounds
//! problem, and the Appendix-B cross-interference feasibility problem — are
//! all linear programs once the (few, 1 °C-granular) CRAC outlet
//! temperatures are fixed, exactly as the paper observes in Section V.B.2.
//! This crate provides the LP solver those problems run on.
//!
//! The solver is a **two-phase primal simplex on a dense tableau with
//! implicit variable bounds**: variables may be nonbasic at either their
//! lower or upper bound, so box constraints (e.g. the piecewise-linear
//! segment lengths of the Stage-1 aggregate-reward-rate curves, or the
//! `FRAC(i,j) ∈ [0,1]` fractions of the baseline) never become tableau
//! rows. Anti-cycling falls back to Bland's rule after a run of degenerate
//! steps.
//!
//! Problem sizes in this workspace top out around ~300 rows × ~2000 columns
//! (the Eq.-21 baseline on a 150-node data center), where a dense tableau
//! is both fast and simple to reason about.
//!
//! # Example
//!
//! ```
//! use thermaware_lp::{Problem, Sense, RowOp, Status};
//!
//! // maximize 3x + 2y  s.t.  x + y <= 4,  x <= 2,  x, y >= 0
//! let mut p = Problem::new(Sense::Maximize);
//! let x = p.add_var("x", 0.0, 2.0, 3.0);
//! let y = p.add_var("y", 0.0, f64::INFINITY, 2.0);
//! p.add_row("cap", &[(x, 1.0), (y, 1.0)], RowOp::Le, 4.0);
//! let sol = p.solve().unwrap();
//! assert_eq!(sol.status, Status::Optimal);
//! assert!((sol.objective - 10.0).abs() < 1e-9); // x = 2, y = 2
//! ```

mod model;
pub mod mps;
mod presolve;
mod simplex;
mod solution;

pub use model::{ConstraintId, Problem, RowOp, Sense, VarId};
pub use mps::to_mps;
pub use solution::{LpError, Solution, Status};
