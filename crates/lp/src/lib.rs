//! The linear-programming solver of the `thermaware` workspace.
//!
//! The paper's optimization problems — Stage 1 with fixed CRAC outlet
//! temperatures, Stage 3, the Eq.-21 baseline, the Eq.-17 power-bounds
//! problem, and the Appendix-B cross-interference feasibility problem — are
//! all linear programs once the (few, 1 °C-granular) CRAC outlet
//! temperatures are fixed, exactly as the paper observes in Section V.B.2.
//! This crate provides the LP solver those problems run on.
//!
//! Two engines share one internal problem form ([`internal`]):
//!
//! * The default is a **sparse revised simplex** ([`revised`]): the basis
//!   matrix is LU-factorized (`thermaware-linalg`), pivots append
//!   product-form eta updates with periodic refactorization, and bounded
//!   variables are handled implicitly (nonbasic columns rest at either
//!   bound, so box constraints never become rows). Its defining feature
//!   is **warm-starting**: [`Solution::basis`] hands back an opaque
//!   [`Basis`]; passing it into [`Problem::solve_warm`] on a structurally
//!   identical, perturbed problem resumes from the previous optimum —
//!   via the primal when still feasible, via a dual-simplex re-entry when
//!   an RHS change broke feasibility. The CRAC outlet grid sweep and the
//!   runtime supervisor's post-fault replans live on this path.
//! * The original **dense two-phase tableau** ([`simplex`]) remains as
//!   the fallback oracle: [`Problem::solve`] retries on it after revised
//!   pathologies, and tests cross-check the engines against each other
//!   through [`Problem::solve_dense`].
//!
//! Anti-cycling falls back to Bland's rule after a run of degenerate
//! steps in both engines. Problem sizes in this workspace top out around
//! ~300 rows × ~2000 columns (the Eq.-21 baseline on a 150-node data
//! center).
//!
//! # Example
//!
//! ```
//! use thermaware_lp::{Problem, Sense, RowOp, Status};
//!
//! // maximize 3x + 2y  s.t.  x + y <= 4,  x <= 2,  x, y >= 0
//! let mut p = Problem::new(Sense::Maximize);
//! let x = p.add_var("x", 0.0, 2.0, 3.0);
//! let y = p.add_var("y", 0.0, f64::INFINITY, 2.0);
//! p.add_row("cap", &[(x, 1.0), (y, 1.0)], RowOp::Le, 4.0);
//! let mut sol = p.solve().unwrap();
//! assert_eq!(sol.status, Status::Optimal);
//! assert!((sol.objective - 10.0).abs() < 1e-9); // x = 2, y = 2
//!
//! // Perturb the budget and re-solve warm from the previous basis.
//! let basis = sol.take_basis();
//! let mut p2 = p.clone();
//! p2.set_var_bounds(x, 0.0, 3.0);
//! let warm = p2.solve_warm(basis.as_ref()).unwrap();
//! assert!((warm.objective - 11.0).abs() < 1e-9); // x = 3, y = 1
//! ```

mod basis;
mod internal;
mod model;
pub mod mps;
mod presolve;
mod revised;
mod simplex;
mod solution;

pub use basis::Basis;
pub use model::{ConstraintId, Problem, RowOp, Sense, VarId};
pub use mps::to_mps;
pub use solution::{LpError, Solution, Status};
