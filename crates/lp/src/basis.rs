//! The warm-start handle: an opaque snapshot of a simplex basis.
//!
//! A [`Basis`] captures which internal columns were basic and at which
//! bound every nonbasic column sat when a solve finished. Passing it back
//! into [`crate::Problem::solve_warm`] on a *structurally identical*
//! problem (same variables and bound-finiteness pattern, same rows and
//! operators — only costs, right-hand sides, and coefficient values may
//! differ) lets the revised simplex start from the previous optimum
//! instead of from scratch. A structural mismatch is detected via the
//! embedded signature and silently degrades to a cold solve — a stale
//! basis can cost nothing worse than the solve you would have done anyway.
//!
//! The handle is deliberately opaque (no public field access): its
//! contents are meaningless outside the internal column layout of the
//! problem that produced it. It is serializable so long-lived callers
//! (the runtime supervisor's persisted world state) can carry it across
//! checkpoint/restore without replanning cold after a resume.

use crate::internal::{InternalForm, VarState};
use serde::{Deserialize, Serialize};

const ST_LOWER: u8 = 0;
const ST_UPPER: u8 = 1;
const ST_BASIC: u8 = 2;

/// Opaque warm-start snapshot of a simplex basis. See the module docs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Basis {
    /// Structural signature of the internal form that produced this basis
    /// (48-bit, survives JSON round trips exactly).
    sig: u64,
    /// Basic column of each row.
    basic: Vec<usize>,
    /// Bound state of every internal column (`ST_*` codes).
    state: Vec<u8>,
}

impl Basis {
    /// Snapshot a finished solve's basis.
    pub(crate) fn capture(sig: u64, basic: &[usize], states: &[VarState]) -> Basis {
        Basis {
            sig,
            basic: basic.to_vec(),
            state: states
                .iter()
                .map(|s| match s {
                    VarState::Lower => ST_LOWER,
                    VarState::Upper => ST_UPPER,
                    VarState::Basic => ST_BASIC,
                })
                .collect(),
        }
    }

    /// Validate against an internal form and expand into engine state.
    ///
    /// Returns `None` when the basis does not belong to this structure:
    /// signature mismatch, dimension mismatch, or inconsistent
    /// basic/nonbasic bookkeeping. Callers treat `None` as "solve cold".
    pub(crate) fn restore(&self, f: &InternalForm) -> Option<(Vec<usize>, Vec<VarState>)> {
        if self.sig != f.signature
            || self.basic.len() != f.m()
            || self.state.len() != f.n_total
        {
            return None;
        }
        let mut states = Vec::with_capacity(f.n_total);
        for &code in &self.state {
            states.push(match code {
                ST_LOWER => VarState::Lower,
                ST_UPPER => VarState::Upper,
                ST_BASIC => VarState::Basic,
                _ => return None,
            });
        }
        let mut seen = vec![false; f.n_total];
        for &j in &self.basic {
            if j >= f.n_total || seen[j] || states[j] != VarState::Basic {
                return None;
            }
            seen[j] = true;
        }
        // Every column marked basic must actually be in the basis.
        if states.iter().filter(|&&s| s == VarState::Basic).count() != self.basic.len() {
            return None;
        }
        // A column can only rest at a finite bound.
        for (j, s) in states.iter().enumerate() {
            if *s == VarState::Upper && !f.upper[j].is_finite() {
                return None;
            }
        }
        Some((self.basic.clone(), states))
    }
}
