use crate::basis::Basis;
use crate::solution::{LpError, Solution};
use crate::{revised, simplex};

/// Optimization direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sense {
    /// Maximize the objective.
    Maximize,
    /// Minimize the objective.
    Minimize,
}

/// Relational operator of a constraint row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowOp {
    /// `a · x <= rhs`
    Le,
    /// `a · x >= rhs`
    Ge,
    /// `a · x == rhs`
    Eq,
}

/// Handle to a decision variable of a [`Problem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VarId(pub(crate) usize);

/// Handle to a constraint row of a [`Problem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConstraintId(pub(crate) usize);

#[derive(Debug, Clone)]
pub(crate) struct Variable {
    pub name: String,
    pub lower: f64,
    pub upper: f64,
    pub objective: f64,
}

#[derive(Debug, Clone)]
pub(crate) struct Constraint {
    pub name: String,
    /// Sparse row: `(column, coefficient)` pairs, deduplicated on build.
    pub terms: Vec<(usize, f64)>,
    pub op: RowOp,
    pub rhs: f64,
}

/// An LP model under construction.
///
/// Variables carry box bounds `[lower, upper]` (either side may be
/// infinite) and an objective coefficient; constraints are sparse rows.
/// Call [`Problem::solve`] for an optimum or [`Problem::solve_feasibility`]
/// for any feasible point (used by the Appendix-B coefficient generator).
#[derive(Debug, Clone)]
pub struct Problem {
    pub(crate) sense: Sense,
    pub(crate) vars: Vec<Variable>,
    pub(crate) cons: Vec<Constraint>,
}

impl Problem {
    /// Create an empty problem with the given optimization direction.
    pub fn new(sense: Sense) -> Self {
        Problem {
            sense,
            vars: Vec::new(),
            cons: Vec::new(),
        }
    }

    /// Add a decision variable.
    ///
    /// `lower`/`upper` are the box bounds (use `f64::NEG_INFINITY` /
    /// `f64::INFINITY` for free sides); `objective` is the coefficient in
    /// the objective function.
    ///
    /// # Panics
    /// Panics if `lower > upper` or any argument is NaN — these are
    /// modeling bugs, not runtime conditions.
    pub fn add_var(&mut self, name: &str, lower: f64, upper: f64, objective: f64) -> VarId {
        assert!(!lower.is_nan() && !upper.is_nan() && !objective.is_nan(),
            "NaN in variable '{name}'");
        assert!(lower <= upper, "variable '{name}': lower {lower} > upper {upper}");
        self.vars.push(Variable {
            name: name.to_owned(),
            lower,
            upper,
            objective,
        });
        VarId(self.vars.len() - 1)
    }

    /// Add a constraint row `Σ coeff·var (op) rhs`.
    ///
    /// Repeated `VarId`s in `terms` are summed. Zero coefficients are kept
    /// (they are harmless and preserve the caller's row structure).
    ///
    /// # Panics
    /// Panics on NaN coefficients/rhs or out-of-range variable ids.
    pub fn add_row(&mut self, name: &str, terms: &[(VarId, f64)], op: RowOp, rhs: f64) -> ConstraintId {
        assert!(!rhs.is_nan(), "NaN rhs in row '{name}'");
        let mut dense: Vec<(usize, f64)> = Vec::with_capacity(terms.len());
        for &(VarId(j), c) in terms {
            assert!(j < self.vars.len(), "row '{name}' references unknown variable");
            assert!(!c.is_nan(), "NaN coefficient in row '{name}'");
            dense.push((j, c));
        }
        // Merge duplicate columns. Small rows keep the original linear
        // scan (first-occurrence order, no sort overhead); larger rows
        // switch to sort-then-merge so a row with hundreds of terms costs
        // O(k log k) instead of the old quadratic scan. The sort is
        // stable, so repeated columns still sum in caller order.
        const SCAN_LIMIT: usize = 32;
        if dense.len() <= SCAN_LIMIT {
            let mut merged: Vec<(usize, f64)> = Vec::with_capacity(dense.len());
            for (j, c) in dense {
                match merged.iter_mut().find(|(jj, _)| *jj == j) {
                    Some((_, acc)) => *acc += c,
                    None => merged.push((j, c)),
                }
            }
            dense = merged;
        } else {
            // Remember first-occurrence rank so the merged row preserves
            // the caller's column order, like the small-row path.
            let mut first_rank: Vec<(usize, usize, f64)> = Vec::with_capacity(dense.len());
            for (rank, &(j, c)) in dense.iter().enumerate() {
                first_rank.push((j, rank, c));
            }
            first_rank.sort_by_key(|&(j, rank, _)| (j, rank));
            let mut merged: Vec<(usize, usize, f64)> = Vec::with_capacity(first_rank.len());
            for (j, rank, c) in first_rank {
                match merged.last_mut() {
                    Some((jj, _, acc)) if *jj == j => *acc += c,
                    _ => merged.push((j, rank, c)),
                }
            }
            merged.sort_by_key(|&(_, rank, _)| rank);
            dense = merged.into_iter().map(|(j, _, c)| (j, c)).collect();
        }
        self.cons.push(Constraint {
            name: name.to_owned(),
            terms: dense,
            op,
            rhs,
        });
        ConstraintId(self.cons.len() - 1)
    }

    /// Like [`Problem::add_row`] but without duplicate-term merging — the
    /// caller guarantees each `VarId` appears at most once. Use for large
    /// machine-generated rows (e.g. the thermal constraint rows, whose
    /// hundreds of terms would make the quadratic dedup scan the
    /// bottleneck).
    pub fn add_row_nodup(
        &mut self,
        name: &str,
        terms: &[(VarId, f64)],
        op: RowOp,
        rhs: f64,
    ) -> ConstraintId {
        assert!(!rhs.is_nan(), "NaN rhs in row '{name}'");
        let dense: Vec<(usize, f64)> = terms
            .iter()
            .map(|&(VarId(j), c)| {
                debug_assert!(j < self.vars.len(), "row '{name}' references unknown variable");
                debug_assert!(!c.is_nan(), "NaN coefficient in row '{name}'");
                (j, c)
            })
            .collect();
        debug_assert!(
            {
                let mut seen: Vec<usize> = dense.iter().map(|&(j, _)| j).collect();
                seen.sort_unstable();
                seen.windows(2).all(|w| w[0] != w[1])
            },
            "duplicate variable in add_row_nodup row '{name}'"
        );
        self.cons.push(Constraint {
            name: name.to_owned(),
            terms: dense,
            op,
            rhs,
        });
        ConstraintId(self.cons.len() - 1)
    }

    /// Number of variables added so far.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraint rows added so far.
    pub fn num_rows(&self) -> usize {
        self.cons.len()
    }

    /// Name of a variable (for diagnostics).
    pub fn var_name(&self, v: VarId) -> &str {
        &self.vars[v.0].name
    }

    /// Name of a constraint row (for diagnostics).
    pub fn row_name(&self, c: ConstraintId) -> &str {
        &self.cons[c.0].name
    }

    /// Objective coefficient of a variable.
    pub fn var_objective(&self, v: VarId) -> f64 {
        self.vars[v.0].objective
    }

    /// Change a variable's objective coefficient in place (used when the
    /// same constraint structure is re-solved with a different objective).
    pub fn set_var_objective(&mut self, v: VarId, objective: f64) {
        assert!(!objective.is_nan());
        self.vars[v.0].objective = objective;
    }

    /// Change a variable's bounds in place.
    ///
    /// # Panics
    /// Panics if `lower > upper` or either is NaN.
    pub fn set_var_bounds(&mut self, v: VarId, lower: f64, upper: f64) {
        assert!(!lower.is_nan() && !upper.is_nan());
        assert!(lower <= upper, "set_var_bounds: lower {lower} > upper {upper}");
        self.vars[v.0].lower = lower;
        self.vars[v.0].upper = upper;
    }

    /// Solve the LP to optimality.
    ///
    /// Returns a [`Solution`] whose `status` is [`crate::Status::Optimal`],
    /// or an [`LpError`] describing infeasibility / unboundedness /
    /// numerical failure.
    ///
    /// Runs the sparse revised simplex ([`crate::revised`]); numerical
    /// pathologies (iteration cap, near-singular pivots) retry on the
    /// dense tableau engine, which uses different arithmetic and often
    /// survives what broke the factorized path. Verdicts about the
    /// *problem* (infeasible, unbounded) are returned directly.
    pub fn solve(&self) -> Result<Solution, LpError> {
        self.solve_warm(None)
    }

    /// Solve with an optional warm-start [`Basis`] from a previous solve
    /// of a structurally identical problem (same variables, bound
    /// finiteness, rows, and operators — costs, bounds, right-hand sides,
    /// and coefficient values may differ).
    ///
    /// A stale or mismatched basis silently degrades to a cold solve;
    /// warm-starting can never change the answer, only the pivot count.
    /// The returned [`Solution`] carries a fresh basis — chain it through
    /// repeated re-solves via [`Solution::take_basis`].
    pub fn solve_warm(&self, warm: Option<&Basis>) -> Result<Solution, LpError> {
        match revised::solve(self, warm) {
            Err(LpError::IterationLimit { .. }) | Err(LpError::Internal { .. }) => {
                thermaware_obs::counter_add("lp.dense_fallbacks", 1);
                simplex::solve(self, false)
            }
            other => other,
        }
    }

    /// Solve on the dense two-phase tableau engine — the fallback oracle.
    ///
    /// Exists so tests can cross-check the revised simplex against an
    /// independent implementation; production callers use
    /// [`Problem::solve`].
    pub fn solve_dense(&self) -> Result<Solution, LpError> {
        simplex::solve(self, false)
    }

    /// Solve after a presolve pass (fixed-variable substitution, empty-row
    /// elimination, unconstrained-column pinning); the postsolve maps
    /// primal values and row duals back exactly. Opt-in — see the
    /// `presolve` module docs for when it pays.
    pub fn solve_presolved(&self) -> Result<Solution, LpError> {
        crate::presolve::solve_presolved(self)
    }

    /// Find *any* feasible point (phase 1 only); the objective is ignored.
    ///
    /// Used by the Appendix-B cross-interference LP, which is a pure
    /// feasibility problem ("Find α subject to …").
    pub fn solve_feasibility(&self) -> Result<Solution, LpError> {
        simplex::solve(self, true)
    }

    /// Evaluate the objective at a given point (no feasibility check).
    pub fn objective_value(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.vars.len());
        self.vars
            .iter()
            .zip(x)
            .map(|(v, xi)| v.objective * xi)
            .sum()
    }

    /// Maximum constraint violation of a point (0 when feasible).
    ///
    /// Checks rows and variable bounds; useful for verifying solutions in
    /// tests and for the assignment-solution verifier in `thermaware-core`.
    pub fn max_violation(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.vars.len());
        let mut worst = 0.0_f64;
        for v in self.vars.iter().zip(x.iter()) {
            let (var, &xi) = v;
            if var.lower.is_finite() {
                worst = worst.max(var.lower - xi);
            }
            if var.upper.is_finite() {
                worst = worst.max(xi - var.upper);
            }
        }
        for c in &self.cons {
            let lhs: f64 = c.terms.iter().map(|&(j, a)| a * x[j]).sum();
            let viol = match c.op {
                RowOp::Le => lhs - c.rhs,
                RowOp::Ge => c.rhs - lhs,
                RowOp::Eq => (lhs - c.rhs).abs(),
            };
            worst = worst.max(viol);
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_terms_are_summed() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", 0.0, 10.0, 1.0);
        p.add_row("r", &[(x, 1.0), (x, 2.0)], RowOp::Le, 6.0);
        // 3x <= 6 -> x = 2 at optimum.
        let sol = p.solve().unwrap();
        assert!((sol.values[0] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn large_row_dedup_is_linearithmic() {
        // Regression for the old quadratic dedup scan: a 1k-term row with
        // every column duplicated (2000 terms) must build instantly. The
        // wall-clock bound is generous — the quadratic scan at this size
        // costs millions of comparisons and repeated builds made the
        // Stage-1 row assembly measurable; the merge path is ~10^4 ops.
        let mut p = Problem::new(Sense::Maximize);
        let vars: Vec<VarId> = (0..1000).map(|j| p.add_var(&format!("x{j}"), 0.0, 1.0, 0.0)).collect();
        let mut terms = Vec::with_capacity(2000);
        for (i, &v) in vars.iter().enumerate() {
            terms.push((v, i as f64));
        }
        for (i, &v) in vars.iter().enumerate().rev() {
            terms.push((v, 2.0 * i as f64));
        }
        let start = std::time::Instant::now();
        for r in 0..100 {
            p.add_row(&format!("r{r}"), &terms, RowOp::Le, 1.0);
        }
        assert!(
            start.elapsed() < std::time::Duration::from_secs(2),
            "dedup blew up: {:?}",
            start.elapsed()
        );
        // Merged correctly: each column once, coefficients summed, in
        // first-occurrence order.
        let row = &p.cons[0].terms;
        assert_eq!(row.len(), 1000);
        for (i, &(j, c)) in row.iter().enumerate() {
            assert_eq!(j, i);
            assert!((c - 3.0 * i as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn small_and_large_dedup_paths_agree() {
        // The same duplicated terms through both paths (below and above
        // the scan limit) must produce identical rows.
        let mut p = Problem::new(Sense::Minimize);
        let vars: Vec<VarId> = (0..20).map(|j| p.add_var(&format!("x{j}"), 0.0, 1.0, 0.0)).collect();
        // 30 terms (small path): columns 0..10 twice, 10..20 once.
        let mut small: Vec<(VarId, f64)> = Vec::new();
        for (i, &v) in vars.iter().enumerate() {
            small.push((v, i as f64 + 1.0));
        }
        for (i, &v) in vars.iter().take(10).enumerate() {
            small.push((v, 10.0 * (i as f64 + 1.0)));
        }
        p.add_row("small", &small, RowOp::Le, 1.0);
        // Pad with repeats of the last column to cross the limit without
        // changing the merge result except in the last coefficient.
        let mut large = small.clone();
        for _ in 0..20 {
            large.push((vars[19], 0.0));
        }
        p.add_row("large", &large, RowOp::Le, 1.0);
        assert_eq!(p.cons[0].terms, p.cons[1].terms);
    }

    #[test]
    #[should_panic(expected = "lower")]
    fn inverted_bounds_panic() {
        let mut p = Problem::new(Sense::Minimize);
        p.add_var("x", 1.0, 0.0, 0.0);
    }

    #[test]
    fn max_violation_reports_worst() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", 0.0, 1.0, 1.0);
        let y = p.add_var("y", 0.0, 1.0, 1.0);
        p.add_row("r", &[(x, 1.0), (y, 1.0)], RowOp::Le, 1.0);
        assert_eq!(p.max_violation(&[0.5, 0.5]), 0.0);
        assert!((p.max_violation(&[1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((p.max_violation(&[-0.5, 0.0]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn objective_value_is_linear() {
        let mut p = Problem::new(Sense::Minimize);
        let _x = p.add_var("x", 0.0, 1.0, 2.0);
        let _y = p.add_var("y", 0.0, 1.0, -3.0);
        assert_eq!(p.objective_value(&[1.0, 1.0]), -1.0);
        assert_eq!(p.objective_value(&[0.0, 2.0]), -6.0);
    }
}
