use crate::simplex;
use crate::solution::{LpError, Solution};

/// Optimization direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sense {
    /// Maximize the objective.
    Maximize,
    /// Minimize the objective.
    Minimize,
}

/// Relational operator of a constraint row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowOp {
    /// `a · x <= rhs`
    Le,
    /// `a · x >= rhs`
    Ge,
    /// `a · x == rhs`
    Eq,
}

/// Handle to a decision variable of a [`Problem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VarId(pub(crate) usize);

/// Handle to a constraint row of a [`Problem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConstraintId(pub(crate) usize);

#[derive(Debug, Clone)]
pub(crate) struct Variable {
    pub name: String,
    pub lower: f64,
    pub upper: f64,
    pub objective: f64,
}

#[derive(Debug, Clone)]
pub(crate) struct Constraint {
    pub name: String,
    /// Sparse row: `(column, coefficient)` pairs, deduplicated on build.
    pub terms: Vec<(usize, f64)>,
    pub op: RowOp,
    pub rhs: f64,
}

/// An LP model under construction.
///
/// Variables carry box bounds `[lower, upper]` (either side may be
/// infinite) and an objective coefficient; constraints are sparse rows.
/// Call [`Problem::solve`] for an optimum or [`Problem::solve_feasibility`]
/// for any feasible point (used by the Appendix-B coefficient generator).
#[derive(Debug, Clone)]
pub struct Problem {
    pub(crate) sense: Sense,
    pub(crate) vars: Vec<Variable>,
    pub(crate) cons: Vec<Constraint>,
}

impl Problem {
    /// Create an empty problem with the given optimization direction.
    pub fn new(sense: Sense) -> Self {
        Problem {
            sense,
            vars: Vec::new(),
            cons: Vec::new(),
        }
    }

    /// Add a decision variable.
    ///
    /// `lower`/`upper` are the box bounds (use `f64::NEG_INFINITY` /
    /// `f64::INFINITY` for free sides); `objective` is the coefficient in
    /// the objective function.
    ///
    /// # Panics
    /// Panics if `lower > upper` or any argument is NaN — these are
    /// modeling bugs, not runtime conditions.
    pub fn add_var(&mut self, name: &str, lower: f64, upper: f64, objective: f64) -> VarId {
        assert!(!lower.is_nan() && !upper.is_nan() && !objective.is_nan(),
            "NaN in variable '{name}'");
        assert!(lower <= upper, "variable '{name}': lower {lower} > upper {upper}");
        self.vars.push(Variable {
            name: name.to_owned(),
            lower,
            upper,
            objective,
        });
        VarId(self.vars.len() - 1)
    }

    /// Add a constraint row `Σ coeff·var (op) rhs`.
    ///
    /// Repeated `VarId`s in `terms` are summed. Zero coefficients are kept
    /// (they are harmless and preserve the caller's row structure).
    ///
    /// # Panics
    /// Panics on NaN coefficients/rhs or out-of-range variable ids.
    pub fn add_row(&mut self, name: &str, terms: &[(VarId, f64)], op: RowOp, rhs: f64) -> ConstraintId {
        assert!(!rhs.is_nan(), "NaN rhs in row '{name}'");
        let mut dense: Vec<(usize, f64)> = Vec::with_capacity(terms.len());
        for &(VarId(j), c) in terms {
            assert!(j < self.vars.len(), "row '{name}' references unknown variable");
            assert!(!c.is_nan(), "NaN coefficient in row '{name}'");
            match dense.iter_mut().find(|(jj, _)| *jj == j) {
                Some((_, acc)) => *acc += c,
                None => dense.push((j, c)),
            }
        }
        self.cons.push(Constraint {
            name: name.to_owned(),
            terms: dense,
            op,
            rhs,
        });
        ConstraintId(self.cons.len() - 1)
    }

    /// Like [`Problem::add_row`] but without duplicate-term merging — the
    /// caller guarantees each `VarId` appears at most once. Use for large
    /// machine-generated rows (e.g. the thermal constraint rows, whose
    /// hundreds of terms would make the quadratic dedup scan the
    /// bottleneck).
    pub fn add_row_nodup(
        &mut self,
        name: &str,
        terms: &[(VarId, f64)],
        op: RowOp,
        rhs: f64,
    ) -> ConstraintId {
        assert!(!rhs.is_nan(), "NaN rhs in row '{name}'");
        let dense: Vec<(usize, f64)> = terms
            .iter()
            .map(|&(VarId(j), c)| {
                debug_assert!(j < self.vars.len(), "row '{name}' references unknown variable");
                debug_assert!(!c.is_nan(), "NaN coefficient in row '{name}'");
                (j, c)
            })
            .collect();
        debug_assert!(
            {
                let mut seen: Vec<usize> = dense.iter().map(|&(j, _)| j).collect();
                seen.sort_unstable();
                seen.windows(2).all(|w| w[0] != w[1])
            },
            "duplicate variable in add_row_nodup row '{name}'"
        );
        self.cons.push(Constraint {
            name: name.to_owned(),
            terms: dense,
            op,
            rhs,
        });
        ConstraintId(self.cons.len() - 1)
    }

    /// Number of variables added so far.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraint rows added so far.
    pub fn num_rows(&self) -> usize {
        self.cons.len()
    }

    /// Name of a variable (for diagnostics).
    pub fn var_name(&self, v: VarId) -> &str {
        &self.vars[v.0].name
    }

    /// Name of a constraint row (for diagnostics).
    pub fn row_name(&self, c: ConstraintId) -> &str {
        &self.cons[c.0].name
    }

    /// Objective coefficient of a variable.
    pub fn var_objective(&self, v: VarId) -> f64 {
        self.vars[v.0].objective
    }

    /// Change a variable's objective coefficient in place (used when the
    /// same constraint structure is re-solved with a different objective).
    pub fn set_var_objective(&mut self, v: VarId, objective: f64) {
        assert!(!objective.is_nan());
        self.vars[v.0].objective = objective;
    }

    /// Change a variable's bounds in place.
    ///
    /// # Panics
    /// Panics if `lower > upper` or either is NaN.
    pub fn set_var_bounds(&mut self, v: VarId, lower: f64, upper: f64) {
        assert!(!lower.is_nan() && !upper.is_nan());
        assert!(lower <= upper, "set_var_bounds: lower {lower} > upper {upper}");
        self.vars[v.0].lower = lower;
        self.vars[v.0].upper = upper;
    }

    /// Solve the LP to optimality.
    ///
    /// Returns a [`Solution`] whose `status` is [`crate::Status::Optimal`],
    /// or an [`LpError`] describing infeasibility / unboundedness /
    /// numerical failure.
    pub fn solve(&self) -> Result<Solution, LpError> {
        simplex::solve(self, false)
    }

    /// Solve after a presolve pass (fixed-variable substitution, empty-row
    /// elimination, unconstrained-column pinning); the postsolve maps
    /// primal values and row duals back exactly. Opt-in — see the
    /// `presolve` module docs for when it pays.
    pub fn solve_presolved(&self) -> Result<Solution, LpError> {
        crate::presolve::solve_presolved(self)
    }

    /// Find *any* feasible point (phase 1 only); the objective is ignored.
    ///
    /// Used by the Appendix-B cross-interference LP, which is a pure
    /// feasibility problem ("Find α subject to …").
    pub fn solve_feasibility(&self) -> Result<Solution, LpError> {
        simplex::solve(self, true)
    }

    /// Evaluate the objective at a given point (no feasibility check).
    pub fn objective_value(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.vars.len());
        self.vars
            .iter()
            .zip(x)
            .map(|(v, xi)| v.objective * xi)
            .sum()
    }

    /// Maximum constraint violation of a point (0 when feasible).
    ///
    /// Checks rows and variable bounds; useful for verifying solutions in
    /// tests and for the assignment-solution verifier in `thermaware-core`.
    pub fn max_violation(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.vars.len());
        let mut worst = 0.0_f64;
        for v in self.vars.iter().zip(x.iter()) {
            let (var, &xi) = v;
            if var.lower.is_finite() {
                worst = worst.max(var.lower - xi);
            }
            if var.upper.is_finite() {
                worst = worst.max(xi - var.upper);
            }
        }
        for c in &self.cons {
            let lhs: f64 = c.terms.iter().map(|&(j, a)| a * x[j]).sum();
            let viol = match c.op {
                RowOp::Le => lhs - c.rhs,
                RowOp::Ge => c.rhs - lhs,
                RowOp::Eq => (lhs - c.rhs).abs(),
            };
            worst = worst.max(viol);
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_terms_are_summed() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", 0.0, 10.0, 1.0);
        p.add_row("r", &[(x, 1.0), (x, 2.0)], RowOp::Le, 6.0);
        // 3x <= 6 -> x = 2 at optimum.
        let sol = p.solve().unwrap();
        assert!((sol.values[0] - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "lower")]
    fn inverted_bounds_panic() {
        let mut p = Problem::new(Sense::Minimize);
        p.add_var("x", 1.0, 0.0, 0.0);
    }

    #[test]
    fn max_violation_reports_worst() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", 0.0, 1.0, 1.0);
        let y = p.add_var("y", 0.0, 1.0, 1.0);
        p.add_row("r", &[(x, 1.0), (y, 1.0)], RowOp::Le, 1.0);
        assert_eq!(p.max_violation(&[0.5, 0.5]), 0.0);
        assert!((p.max_violation(&[1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((p.max_violation(&[-0.5, 0.0]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn objective_value_is_linear() {
        let mut p = Problem::new(Sense::Minimize);
        let _x = p.add_var("x", 0.0, 1.0, 2.0);
        let _y = p.add_var("y", 0.0, 1.0, -3.0);
        assert_eq!(p.objective_value(&[1.0, 1.0]), -1.0);
        assert_eq!(p.objective_value(&[0.0, 2.0]), -6.0);
    }
}
