//! Presolve: shrink an LP before the simplex sees it, then map the
//! solution back exactly.
//!
//! The transformations are the safe subset whose postsolve is exact for
//! **both** primal values and row duals:
//!
//! 1. **Fixed variables** (`lb == ub`): substituted into every row's
//!    right-hand side and removed.
//! 2. **Empty rows** (no terms after substitution): checked directly —
//!    a violated empty row proves infeasibility without a single pivot;
//!    a satisfied one is removed with dual 0 (it cannot be binding in
//!    any meaningful sense).
//! 3. **Unconstrained columns** (appearing in no row): set at the bound
//!    the objective favours; an improving unbounded direction is an
//!    immediate [`LpError::Unbounded`] verdict.
//!
//! Bound-tightening reductions (singleton rows) are deliberately *not*
//! performed: their removed-row duals are not recoverable from the
//! reduced solution alone, and this workspace's callers (the Stage-3
//! reclamation loop) consume duals.
//!
//! The problems this workspace generates are mostly dense-and-clean, so
//! presolve is opt-in via [`Problem::solve_presolved`]; its value shows
//! on models with many deadline-pinned (fixed-at-zero) variables.

use crate::model::{Problem, RowOp, Sense};
use crate::solution::{LpError, Solution, Status};

/// How an original variable maps into the reduced problem.
#[derive(Debug, Clone, Copy)]
enum VarDisp {
    /// Kept; payload is the reduced-problem index.
    Kept(usize),
    /// Removed at a fixed value.
    Fixed(f64),
}

/// Solve with presolve; see the module docs for the reductions applied.
pub(crate) fn solve_presolved(problem: &Problem) -> Result<Solution, LpError> {
    let n = problem.vars.len();
    let m = problem.cons.len();

    // ---- Pass 1: variable dispositions -----------------------------------
    let mut used_in_rows = vec![false; n];
    for c in &problem.cons {
        for &(j, coef) in &c.terms {
            if coef != 0.0 { // lint: allow(float-eq): sparsity skip on a stored coefficient; exact zeros only
                used_in_rows[j] = true;
            }
        }
    }
    let mut disp: Vec<VarDisp> = Vec::with_capacity(n);
    let mut kept_vars: Vec<usize> = Vec::new();
    for (j, v) in problem.vars.iter().enumerate() {
        if v.lower == v.upper {
            disp.push(VarDisp::Fixed(v.lower));
        } else if !used_in_rows[j] {
            // Unconstrained column: push to the objective-favoured bound.
            let wants_up = match problem.sense {
                Sense::Maximize => v.objective > 0.0,
                Sense::Minimize => v.objective < 0.0,
            };
            let value = if v.objective == 0.0 { // lint: allow(float-eq): objective coefficient is stored, not computed; exact-zero test intended
                // Indifferent: any feasible value; prefer a finite bound.
                if v.lower.is_finite() {
                    v.lower
                } else if v.upper.is_finite() {
                    v.upper
                } else {
                    0.0
                }
            } else if wants_up {
                if v.upper.is_finite() {
                    v.upper
                } else {
                    return Err(LpError::Unbounded {
                        var: v.name.clone(),
                    });
                }
            } else if v.lower.is_finite() {
                v.lower
            } else {
                return Err(LpError::Unbounded {
                    var: v.name.clone(),
                });
            };
            disp.push(VarDisp::Fixed(value));
        } else {
            disp.push(VarDisp::Kept(kept_vars.len()));
            kept_vars.push(j);
        }
    }

    // ---- Pass 2: build the reduced problem --------------------------------
    let mut reduced = Problem::new(problem.sense);
    for &j in &kept_vars {
        let v = &problem.vars[j];
        reduced.add_var(&v.name, v.lower, v.upper, v.objective);
    }
    // kept_rows[i] = Some(reduced row idx) or None (removed, dual 0).
    let mut kept_rows: Vec<Option<usize>> = Vec::with_capacity(m);
    let mut n_kept_rows = 0;
    for c in &problem.cons {
        let mut rhs = c.rhs;
        let mut terms: Vec<(crate::model::VarId, f64)> = Vec::new();
        for &(j, coef) in &c.terms {
            match disp[j] {
                VarDisp::Fixed(value) => rhs -= coef * value,
                VarDisp::Kept(rj) => terms.push((crate::model::VarId(rj), coef)),
            }
        }
        if terms.is_empty() {
            // Empty row: decide feasibility outright.
            let violated = match c.op {
                RowOp::Le => 0.0 > rhs + 1e-9,
                RowOp::Ge => 0.0 < rhs - 1e-9,
                RowOp::Eq => rhs.abs() > 1e-9,
            };
            if violated {
                return Err(LpError::Infeasible {
                    residual: rhs.abs().max(1e-9),
                });
            }
            kept_rows.push(None);
        } else {
            reduced.add_row_nodup(&c.name, &terms, c.op, rhs);
            kept_rows.push(Some(n_kept_rows));
            n_kept_rows += 1;
        }
    }

    // ---- Solve and postsolve ----------------------------------------------
    let inner = reduced.solve()?;
    let values: Vec<f64> = disp
        .iter()
        .map(|d| match *d {
            VarDisp::Fixed(v) => v,
            VarDisp::Kept(rj) => inner.values[rj],
        })
        .collect();
    let duals: Vec<f64> = kept_rows
        .iter()
        .map(|k| k.map_or(0.0, |rj| inner.duals[rj]))
        .collect();
    let objective = problem.objective_value(&values);
    Ok(Solution {
        status: Status::Optimal,
        objective,
        values,
        duals,
        iterations: inner.iterations,
        // The inner basis indexes the *reduced* problem's columns; it is
        // meaningless for the original structure, so no handle is
        // returned from the presolved path.
        basis: None,
    })
}

#[cfg(test)]
mod tests {
    use crate::{LpError, Problem, RowOp, Sense};

    #[test]
    fn fixed_vars_are_substituted() {
        // max x + 10f  s.t.  x + f <= 5, f fixed at 2 -> x = 3, obj 23.
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", 0.0, f64::INFINITY, 1.0);
        let f = p.add_var("f", 2.0, 2.0, 10.0);
        p.add_row("r", &[(x, 1.0), (f, 1.0)], RowOp::Le, 5.0);
        let sol = p.solve_presolved().unwrap();
        assert!((sol.value(x) - 3.0).abs() < 1e-9);
        assert!((sol.value(f) - 2.0).abs() < 1e-9);
        assert!((sol.objective - 23.0).abs() < 1e-9);
    }

    #[test]
    fn empty_row_infeasibility_detected_without_pivoting() {
        let mut p = Problem::new(Sense::Maximize);
        let f = p.add_var("f", 1.0, 1.0, 0.0);
        // 1·f <= 0.5 with f fixed at 1: empty after substitution, violated.
        p.add_row("r", &[(f, 1.0)], RowOp::Le, 0.5);
        assert!(matches!(
            p.solve_presolved(),
            Err(LpError::Infeasible { .. })
        ));
    }

    #[test]
    fn satisfied_empty_rows_get_zero_duals() {
        let mut p = Problem::new(Sense::Maximize);
        let f = p.add_var("f", 1.0, 1.0, 0.0);
        let x = p.add_var("x", 0.0, 4.0, 1.0);
        let r1 = p.add_row("trivial", &[(f, 1.0)], RowOp::Le, 2.0);
        let r2 = p.add_row("real", &[(x, 1.0)], RowOp::Le, 3.0);
        let sol = p.solve_presolved().unwrap();
        assert_eq!(sol.dual(r1), 0.0);
        assert!((sol.dual(r2) - 1.0).abs() < 1e-9); // binding, unit price
        assert!((sol.value(x) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn unused_columns_go_to_their_best_bound() {
        let mut p = Problem::new(Sense::Maximize);
        let a = p.add_var("a", -1.0, 7.0, 2.0); // wants up -> 7
        let b = p.add_var("b", -3.0, 5.0, -1.0); // wants down -> -3
        let c = p.add_var("c", 1.0, 9.0, 0.0); // indifferent -> lb
        let x = p.add_var("x", 0.0, 1.0, 1.0);
        p.add_row("r", &[(x, 1.0)], RowOp::Le, 1.0);
        let sol = p.solve_presolved().unwrap();
        assert_eq!(sol.value(a), 7.0);
        assert_eq!(sol.value(b), -3.0);
        assert_eq!(sol.value(c), 1.0);
        assert!((sol.objective - (14.0 + 3.0 + 0.0 + 1.0)).abs() < 1e-9);
    }

    #[test]
    fn unbounded_unused_column_detected() {
        let mut p = Problem::new(Sense::Maximize);
        let _free = p.add_var("free", 0.0, f64::INFINITY, 1.0);
        let x = p.add_var("x", 0.0, 1.0, 1.0);
        p.add_row("r", &[(x, 1.0)], RowOp::Le, 1.0);
        assert!(matches!(
            p.solve_presolved(),
            Err(LpError::Unbounded { var }) if var == "free"
        ));
    }

    #[test]
    fn everything_fixed_or_unused() {
        // No rows survive at all: pure evaluation.
        let mut p = Problem::new(Sense::Minimize);
        let f = p.add_var("f", 3.0, 3.0, 2.0);
        let u = p.add_var("u", 0.0, 10.0, 5.0); // wants down -> 0
        let sol = p.solve_presolved().unwrap();
        assert_eq!(sol.value(f), 3.0);
        assert_eq!(sol.value(u), 0.0);
        assert!((sol.objective - 6.0).abs() < 1e-12);
    }
}
