//! Sparse revised simplex with a factorized basis and warm starts.
//!
//! Where the dense engine ([`crate::simplex`]) carries the full
//! `B^{-1} A` tableau and updates all `m × n` entries per pivot, this
//! engine keeps only a factorization of the `m × m` basis matrix `B`
//! (the LU in `thermaware-linalg`) plus a short chain of product-form
//! **eta** updates, and reconstructs whatever it needs per iteration:
//!
//! * **FTRAN** `B^{-1} v`: one LU solve, then the eta chain forward.
//! * **BTRAN** `B^{-T} v`: the eta chain backward, then one transposed
//!   LU solve ([`thermaware_linalg::Lu::solve_transposed`]).
//!
//! Each pivot appends one eta vector (O(m) storage, O(m) application);
//! after [`ETA_LIMIT`] etas — or on a dangerously small pivot — the basis
//! is refactorized from scratch, which both bounds the per-iteration cost
//! and resets accumulated floating-point drift. Per-pivot work is
//! O(m² + nnz) instead of the dense engine's O(m·n), and — the actual
//! point — the factorized basis is *restartable*:
//!
//! * [`solve`] with a [`Basis`] from a structurally identical problem
//!   starts from that basis. If it is still primal-feasible (costs
//!   changed, the optimum moved a little), phase 2 resumes directly —
//!   typically a handful of pivots instead of a full two-phase solve.
//! * If the perturbation broke primal feasibility (an RHS change: a
//!   fault, a tightened budget) but the old basis is still *dual*
//!   feasible — it was optimal, so its reduced costs pointed the right
//!   way — a **dual simplex** loop drives the infeasibilities out bound
//!   by bound and hands back to the primal for confirmation.
//! * Anything else (structure changed, basis singular, dual infeasible,
//!   numerical trouble) falls back to a cold two-phase solve. A warm
//!   start can therefore never produce a different answer than a cold
//!   solve — only fewer pivots.
//!
//! Bounded variables stay implicit exactly as in the dense engine:
//! nonbasic columns rest at either bound and bound flips cost no pivot.

use crate::basis::Basis;
use crate::internal::{InternalForm, VarState};
use crate::model::Problem;
use crate::solution::{LpError, Solution, Status};
use thermaware_linalg::{Lu, Matrix};

/// Entries smaller than this are unusable as ratio-test pivots.
const PIVOT_EPS: f64 = 1e-9;
/// A chosen pivot below this triggers refactorization (then a hard error
/// if a fresh factorization still produces it).
const PIVOT_TINY: f64 = 1e-7;
/// Reduced-cost optimality tolerance (scaled by the objective magnitude).
const COST_TOL: f64 = 1e-9;
/// Phase-1 residual above which the problem is declared infeasible; also
/// the primal-feasibility tolerance for warm-start re-entry.
const FEAS_TOL: f64 = 1e-7;
/// Consecutive degenerate pivots before switching to Bland's rule.
const DEGEN_LIMIT: usize = 60;
/// Eta-chain length that forces a refactorization.
const ETA_LIMIT: usize = 48;

/// One product-form update: basis column `r` was replaced, `w = B^{-1} a_q`.
struct Eta {
    r: usize,
    w: Vec<f64>,
}

enum Step {
    Optimal,
    Progress,
    /// Refactorized instead of pivoting (tiny pivot); retry the step.
    Retry,
    Unbounded(usize),
}

/// How a solve used its warm-start handle (observability).
#[derive(Default)]
struct WarmStats {
    warm_start: bool,
    dual_reentry: bool,
    /// Iterations spent inside the dual repair (the rest of a warm
    /// solve's iterations are primal cleanup).
    dual_iters: usize,
}

struct Rev<'a> {
    f: &'a InternalForm,
    /// Working upper bounds (artificials frozen to 0 outside phase 1).
    upper: Vec<f64>,
    /// Basic column of each row.
    basic: Vec<usize>,
    state: Vec<VarState>,
    lu: Option<Lu>,
    etas: Vec<Eta>,
    /// Values of the basic variables, one per row.
    xb: Vec<f64>,
    iterations: usize,
    degen_run: usize,
    degen_total: usize,
    bland: bool,
    factorizations: usize,
}

impl<'a> Rev<'a> {
    fn m(&self) -> usize {
        self.f.m()
    }

    /// Factor the current basis matrix from the sparse columns.
    fn factorize(&mut self) -> Result<(), LpError> {
        let m = self.m();
        let mut b = Matrix::zeros(m, m);
        for (r, &j) in self.basic.iter().enumerate() {
            for &(i, a) in &self.f.cols[j] {
                b[(i, r)] = a;
            }
        }
        let lu = Lu::factor(&b).map_err(|_| LpError::Internal {
            what: "singular basis matrix".to_string(),
        })?;
        self.lu = Some(lu);
        self.etas.clear();
        self.factorizations += 1;
        Ok(())
    }

    /// `v := B^{-1} v` through the factorization and the eta chain.
    fn ftran(&self, v: &mut Vec<f64>) -> Result<(), LpError> {
        let lu = self.lu.as_ref().ok_or_else(|| LpError::Internal {
            what: "ftran before factorization".to_string(),
        })?;
        *v = lu.solve(v).map_err(|e| LpError::Internal {
            what: format!("ftran: {e}"),
        })?;
        for e in &self.etas {
            let xr = v[e.r] / e.w[e.r];
            for (i, (vi, &wi)) in v.iter_mut().zip(&e.w).enumerate() {
                if i != e.r {
                    *vi -= wi * xr;
                }
            }
            v[e.r] = xr;
        }
        Ok(())
    }

    /// `v := B^{-T} v`: eta chain backward, then the transposed LU solve.
    fn btran(&self, v: &mut Vec<f64>) -> Result<(), LpError> {
        for e in self.etas.iter().rev() {
            let mut s = v[e.r];
            for (i, (&vi, &wi)) in v.iter().zip(&e.w).enumerate() {
                if i != e.r {
                    s -= wi * vi;
                }
            }
            v[e.r] = s / e.w[e.r];
        }
        let lu = self.lu.as_ref().ok_or_else(|| LpError::Internal {
            what: "btran before factorization".to_string(),
        })?;
        *v = lu.solve_transposed(v).map_err(|e| LpError::Internal {
            what: format!("btran: {e}"),
        })?;
        Ok(())
    }

    /// Simplex multipliers `y = B^{-T} c_B` for the given costs.
    fn multipliers(&self, costs: &[f64]) -> Result<Vec<f64>, LpError> {
        let mut y: Vec<f64> = self.basic.iter().map(|&j| costs[j]).collect();
        self.btran(&mut y)?;
        Ok(y)
    }

    /// Reduced cost of column `j` given the multipliers.
    fn reduced_cost(&self, costs: &[f64], y: &[f64], j: usize) -> f64 {
        let mut d = costs[j];
        for &(i, a) in &self.f.cols[j] {
            d -= y[i] * a;
        }
        d
    }

    /// Recompute `xb = B^{-1} (b - Σ_{j at upper} u_j a_j)` from scratch.
    fn compute_xb(&mut self) -> Result<(), LpError> {
        let mut rhs = self.f.rhs.clone();
        for (j, col) in self.f.cols.iter().enumerate() {
            if self.state[j] == VarState::Upper {
                let u = self.upper[j];
                if u != 0.0 { // lint: allow(float-eq): skip columns pinned at a zero bound; exact zeros only
                    for &(i, a) in col {
                        rhs[i] -= a * u;
                    }
                }
            }
        }
        self.ftran(&mut rhs)?;
        self.xb = rhs;
        Ok(())
    }

    /// Pick an entering column for the primal, or `None` at optimality.
    fn choose_entering(&self, costs: &[f64], y: &[f64], tol: f64) -> Option<(usize, f64)> {
        let mut best: Option<(usize, f64)> = None;
        let mut best_gain = tol;
        for j in 0..self.f.n_total {
            let dir = match self.state[j] {
                VarState::Basic => continue,
                VarState::Lower => 1.0,
                VarState::Upper => -1.0,
            };
            // Fixed columns (u == 0) cannot move; artificials are fixed
            // this way outside phase 1.
            if self.upper[j] <= 0.0 {
                continue;
            }
            let d = self.reduced_cost(costs, y, j);
            let gain = -dir * d;
            if gain > best_gain {
                if self.bland {
                    return Some((j, dir));
                }
                best = Some((j, dir));
                best_gain = gain;
            }
        }
        best
    }

    /// One primal simplex step with the active costs.
    fn primal_step(&mut self, costs: &[f64], tol: f64) -> Result<Step, LpError> {
        let y = self.multipliers(costs)?;
        let Some((q, dir)) = self.choose_entering(costs, &y, tol) else {
            return Ok(Step::Optimal);
        };

        // w = B^{-1} a_q: how the basics move when x_q moves by +1·dir.
        let mut w = vec![0.0; self.m()];
        for &(i, a) in &self.f.cols[q] {
            w[i] = a;
        }
        self.ftran(&mut w)?;

        // Ratio test: distance t >= 0 until a basic hits a bound or x_q
        // flips to its own opposite bound.
        let mut t_best = self.upper[q];
        let mut leave: Option<(usize, VarState)> = None;
        for i in 0..self.m() {
            let alpha = dir * w[i];
            let k = self.basic[i];
            if alpha > PIVOT_EPS {
                let t_i = (self.xb[i].max(0.0)) / alpha;
                if t_i < t_best - 1e-12
                    || (t_i < t_best + 1e-12
                        && leave.is_some_and(|(r, _)| w[r].abs() < w[i].abs()))
                {
                    t_best = t_i;
                    leave = Some((i, VarState::Lower));
                }
            } else if alpha < -PIVOT_EPS {
                let uk = self.upper[k];
                if uk.is_finite() {
                    let t_i = ((uk - self.xb[i]).max(0.0)) / (-alpha);
                    if t_i < t_best - 1e-12
                        || (t_i < t_best + 1e-12
                            && leave.is_some_and(|(r, _)| w[r].abs() < w[i].abs()))
                    {
                        t_best = t_i;
                        leave = Some((i, VarState::Upper));
                    }
                }
            }
        }

        if t_best.is_infinite() {
            return Ok(Step::Unbounded(q));
        }

        // A pivot too small to divide by: refactorize and retry — the eta
        // chain may have drifted. If a fresh factorization still offers
        // it, the basis is numerically unusable: fail typed, not silently.
        if let Some((r, _)) = leave {
            if w[r].abs() < PIVOT_TINY {
                if !self.etas.is_empty() {
                    self.factorize()?;
                    self.compute_xb()?;
                    return Ok(Step::Retry);
                }
                return Err(LpError::Internal {
                    what: format!("tiny pivot {:.3e} after refactorization", w[r]),
                });
            }
        }

        self.iterations += 1;
        if t_best <= 1e-12 {
            self.degen_run += 1;
            self.degen_total += 1;
            if self.degen_run > DEGEN_LIMIT && !self.bland {
                self.bland = true;
                thermaware_obs::counter_add("lp.bland_switches", 1);
            }
        } else {
            self.degen_run = 0;
        }

        if t_best != 0.0 { // lint: allow(float-eq): degenerate step detection wants exact zero, not a tolerance
            for (xbi, &wi) in self.xb.iter_mut().zip(&w) {
                *xbi -= dir * t_best * wi;
            }
        }

        match leave {
            None => {
                self.state[q] = match self.state[q] {
                    VarState::Lower => VarState::Upper,
                    VarState::Upper => VarState::Lower,
                    VarState::Basic => {
                        return Err(LpError::Internal {
                            what: "entering column was basic".to_string(),
                        })
                    }
                };
            }
            Some((r, hit)) => {
                let k = self.basic[r];
                let x_q_new = if dir > 0.0 {
                    t_best
                } else {
                    self.upper[q] - t_best
                };
                self.xb[r] = x_q_new;
                self.basic[r] = q;
                self.state[q] = VarState::Basic;
                self.state[k] = if self.upper[k] <= 0.0 { VarState::Lower } else { hit };
                self.etas.push(Eta { r, w });
                if self.etas.len() >= ETA_LIMIT {
                    self.factorize()?;
                    self.compute_xb()?;
                }
            }
        }
        Ok(Step::Progress)
    }

    /// Run primal steps to optimality. `Ok(Some(q))` reports an unbounded
    /// direction along internal column `q`.
    fn run_primal(&mut self, costs: &[f64], tol: f64, cap: usize) -> Result<Option<usize>, LpError> {
        loop {
            if self.iterations > cap {
                return Err(LpError::IterationLimit { limit: cap });
            }
            match self.primal_step(costs, tol)? {
                Step::Optimal => return Ok(None),
                Step::Progress | Step::Retry => {}
                Step::Unbounded(q) => return Ok(Some(q)),
            }
        }
    }

    /// Dual simplex: restore primal feasibility while keeping dual
    /// feasibility — the warm-start re-entry path after an RHS change.
    ///
    /// Errors (dual unboundedness, numerical breakdown, iteration cap)
    /// mean "this warm start is not salvageable"; the caller falls back
    /// to a cold solve rather than trusting a partial state.
    fn run_dual(&mut self, costs: &[f64], cap: usize) -> Result<(), LpError> {
        // Approximate dual steepest-edge weights (Forrest–Goldfarb with
        // unit initialization): beta_i estimates ||B^{-T} e_i||^2, so
        // picking the row maximizing violation^2 / beta_i measures the
        // violation in the geometry of the dual step it produces instead
        // of raw coordinates. This is what keeps the repair from
        // zigzagging — most-violated-row selection chases large but
        // cheap-to-create violations and re-creates them elsewhere.
        // beta_r is corrected to its exact value each time a row is
        // selected (rho is computed anyway), so the approximation cannot
        // drift unboundedly.
        let mut beta = vec![1.0_f64; self.m()];
        loop {
            if self.iterations > cap {
                return Err(LpError::IterationLimit { limit: cap });
            }

            // Leaving row: steepest-edge-weighted violation.
            let mut leave: Option<(usize, bool)> = None; // (row, leaves to upper)
            let mut best_score = 0.0_f64;
            for i in 0..self.m() {
                let k = self.basic[i];
                let mut viol = -self.xb[i];
                let mut up = false;
                if self.upper[k].is_finite() {
                    let above = self.xb[i] - self.upper[k];
                    if above > viol {
                        viol = above;
                        up = true;
                    }
                }
                if viol > FEAS_TOL {
                    let score = viol * viol / beta[i];
                    if score > best_score {
                        best_score = score;
                        leave = Some((i, up));
                    }
                }
            }
            let Some((r, to_upper)) = leave else {
                return Ok(()); // primal feasible again
            };

            // Row r of B^{-1} A: alpha_j = rho · a_j with rho = B^{-T} e_r.
            let mut rho = vec![0.0; self.m()];
            rho[r] = 1.0;
            self.btran(&mut rho)?;
            beta[r] = rho.iter().map(|v| v * v).sum();
            let y = self.multipliers(costs)?;

            // Entering column: bound-flipping dual ratio test (BFRT).
            // Each eligible candidate offers a dual step of
            // |d_j| / |alpha_j|; the classic test takes the minimum to
            // keep every reduced cost on the right side of zero. The
            // long-step variant walks candidates in ratio order and
            // *flips* each passed boxed column to its opposite bound — a
            // flip absorbs u_j * |alpha_j| of row r's infeasibility
            // without a basis change — stopping at the first candidate
            // whose flip would over-repair the row (or that has no
            // finite bound to flip to): that one enters. This matters
            // here because a budget/capacity shift re-rests whole runs
            // of boxed segment variables, which the classic test pays
            // one pivot each for and this test pays zero.
            let mut cands: Vec<(f64, f64, usize)> = Vec::new(); // (ratio, |alpha|, col)
            for j in 0..self.f.n_total {
                let st = self.state[j];
                if st == VarState::Basic || self.upper[j] <= 0.0 {
                    continue;
                }
                let mut alpha = 0.0;
                for &(i, a) in &self.f.cols[j] {
                    alpha += rho[i] * a;
                }
                // Eligibility: entering from Lower needs delta >= 0,
                // from Upper delta <= 0, with delta = (xb_r - target)/alpha.
                let eligible = if to_upper {
                    (st == VarState::Lower && alpha > PIVOT_EPS)
                        || (st == VarState::Upper && alpha < -PIVOT_EPS)
                } else {
                    (st == VarState::Lower && alpha < -PIVOT_EPS)
                        || (st == VarState::Upper && alpha > PIVOT_EPS)
                };
                if !eligible {
                    continue;
                }
                let d = self.reduced_cost(costs, &y, j);
                // Dual feasibility holds within tol, so clamp tiny
                // wrong-signed reduced costs to zero for the ratio.
                let num = match st {
                    VarState::Lower => d.max(0.0),
                    VarState::Upper => (-d).max(0.0),
                    VarState::Basic => continue,
                };
                cands.push((num / alpha.abs(), alpha.abs(), j));
            }
            // Ratio order; ties prefer the larger |alpha| for stability.
            cands.sort_by(|a, b| a.0.total_cmp(&b.0).then(b.1.total_cmp(&a.1)));
            let k = self.basic[r];
            let target = if to_upper { self.upper[k] } else { 0.0 };
            let mut slope = (self.xb[r] - target).abs();
            let mut entering = None;
            let mut flipped = false;
            for &(_, abs_alpha, j) in &cands {
                let absorb = self.upper[j] * abs_alpha; // inf when unboxed
                if absorb.is_finite() && slope - absorb > FEAS_TOL {
                    // Candidates are nonbasic by construction, so the
                    // flip is a two-way toggle.
                    self.state[j] = if self.state[j] == VarState::Lower {
                        VarState::Upper
                    } else {
                        VarState::Lower
                    };
                    slope -= absorb;
                    flipped = true;
                } else {
                    entering = Some(j);
                    break;
                }
            }
            let Some(q) = entering else {
                // No column can absorb the (remaining) infeasibility: the
                // perturbed problem is primal-infeasible *or* the warm
                // basis is useless. Let the cold path produce the
                // certificate. (Any flips applied above die with the
                // discarded warm attempt.)
                return Err(LpError::Internal {
                    what: "dual step found no entering column".to_string(),
                });
            };
            if flipped {
                // Flipped columns rest at new bounds; rebuild the basic
                // values before measuring the pivot step on row r.
                self.compute_xb()?;
            }

            let mut w = vec![0.0; self.m()];
            for &(i, a) in &self.f.cols[q] {
                w[i] = a;
            }
            self.ftran(&mut w)?;
            if w[r].abs() < PIVOT_TINY {
                if !self.etas.is_empty() {
                    self.factorize()?;
                    self.compute_xb()?;
                    continue;
                }
                return Err(LpError::Internal {
                    what: format!("tiny dual pivot {:.3e} after refactorization", w[r]),
                });
            }

            // Forrest–Goldfarb weight update for the pivot B' = B E:
            // beta_r' = beta_r / w_r^2, and for i != r
            // beta_i' = beta_i - 2 (w_i/w_r) tau_i + (w_i/w_r)^2 beta_r
            // with tau = B^{-1} rho. Floored to keep the estimates
            // positive under floating-point cancellation.
            let mut tau = rho;
            self.ftran(&mut tau)?;
            let beta_r = beta[r];
            for i in 0..self.m() {
                if i != r {
                    let t = w[i] / w[r];
                    beta[i] = (beta[i] - 2.0 * t * tau[i] + t * t * beta_r).max(1e-10);
                }
            }
            beta[r] = (beta_r / (w[r] * w[r])).max(1e-10);

            let delta = (self.xb[r] - target) / w[r];
            for i in 0..self.m() {
                if i != r {
                    self.xb[i] -= delta * w[i];
                }
            }
            let x_q_old = match self.state[q] {
                VarState::Lower => 0.0,
                VarState::Upper => self.upper[q],
                VarState::Basic => {
                    return Err(LpError::Internal {
                        what: "dual entering column was basic".to_string(),
                    })
                }
            };
            self.xb[r] = x_q_old + delta;
            self.basic[r] = q;
            self.state[q] = VarState::Basic;
            self.state[k] = if to_upper && self.upper[k] > 0.0 {
                VarState::Upper
            } else {
                VarState::Lower
            };
            self.iterations += 1;
            self.etas.push(Eta { r, w });
            if self.etas.len() >= ETA_LIMIT {
                self.factorize()?;
                self.compute_xb()?;
            }
        }
    }

    /// Value of internal column `j` (needs `pos[j]` = row of basic cols).
    fn value_of(&self, pos: &[usize], j: usize) -> f64 {
        match self.state[j] {
            VarState::Lower => 0.0,
            VarState::Upper => self.upper[j],
            VarState::Basic => self.xb[pos[j]],
        }
    }

    /// Recover user-space values, duals, and the basis handle.
    fn extract(&self, problem: &Problem) -> Result<Solution, LpError> {
        let f = self.f;
        let mut pos = vec![usize::MAX; f.n_total];
        for (i, &j) in self.basic.iter().enumerate() {
            if j >= f.n_total || self.state[j] != VarState::Basic {
                return Err(LpError::Internal {
                    what: "basis bookkeeping corrupt at extraction".to_string(),
                });
            }
            pos[j] = i;
        }
        let values: Vec<f64> = f
            .maps
            .iter()
            .map(|m| match *m {
                crate::internal::VarMap::Shift { col, lb } => lb + self.value_of(&pos, col),
                crate::internal::VarMap::Mirror { col, ub } => ub - self.value_of(&pos, col),
                crate::internal::VarMap::Split { pos: p, neg } => {
                    self.value_of(&pos, p) - self.value_of(&pos, neg)
                }
            })
            .collect();

        // Row duals: y solves B^T y = c_B, and the user-space dual undoes
        // the sense and any rhs-normalization flip.
        let y = self.multipliers(&f.cost)?;
        let duals: Vec<f64> = (0..f.m())
            .map(|i| {
                let flip = if f.flipped[i] { -1.0 } else { 1.0 };
                f.sense_sign * flip * y[i]
            })
            .collect();

        let objective = problem.objective_value(&values);
        Ok(Solution {
            status: Status::Optimal,
            objective,
            values,
            duals,
            iterations: self.iterations,
            basis: Some(Basis::capture(f.signature, &self.basic, &self.state)),
        })
    }
}

/// Outcome labels for the obs wrapper.
struct SolveStats {
    warm: WarmStats,
    degen: usize,
    refactorizations: usize,
}

/// Solve `problem` with the revised simplex, optionally warm-starting
/// from `warm`. Observability mirrors the dense engine's wrapper: one
/// batched recorder visit per solve.
pub(crate) fn solve(problem: &Problem, warm: Option<&Basis>) -> Result<Solution, LpError> {
    let mut stats = SolveStats {
        warm: WarmStats::default(),
        degen: 0,
        refactorizations: 0,
    };
    if !thermaware_obs::enabled() {
        return solve_impl(problem, warm, &mut stats);
    }
    let start = std::time::Instant::now();
    let result = solve_impl(problem, warm, &mut stats);
    let elapsed_us = start.elapsed().as_micros() as f64;
    thermaware_obs::with_recorder(|r| {
        r.counter_add("lp.solves", 1);
        r.observe("lp.solve_us", elapsed_us);
        r.observe("lp.degenerate_steps", stats.degen as f64);
        r.counter_add("lp.refactorizations", stats.refactorizations as u64);
        if stats.warm.warm_start {
            r.counter_add("lp.warm_starts", 1);
        }
        if stats.warm.dual_reentry {
            r.counter_add("lp.dual_reentries", 1);
            r.observe("lp.warm_dual_iters", stats.warm.dual_iters as f64);
        }
        match &result {
            Ok(sol) => {
                r.counter_add("lp.pivots", sol.iterations as u64);
                r.observe("lp.iterations", sol.iterations as f64);
            }
            Err(LpError::Infeasible { .. }) => r.counter_add("lp.infeasible", 1),
            Err(LpError::Unbounded { .. }) => r.counter_add("lp.unbounded", 1),
            Err(LpError::IterationLimit { .. }) => r.counter_add("lp.iteration_limit", 1),
            Err(LpError::Internal { .. }) => r.counter_add("lp.internal_error", 1),
        }
    });
    result
}

fn solve_impl(
    problem: &Problem,
    warm: Option<&Basis>,
    stats: &mut SolveStats,
) -> Result<Solution, LpError> {
    let f = InternalForm::build(problem);
    let cap = 200 * (f.m() + f.n_total + 10);
    let cost_scale = 1.0 + f.cost.iter().fold(0.0_f64, |m, c| m.max(c.abs()));
    let tol2 = COST_TOL * cost_scale;

    // ---- Warm path --------------------------------------------------------
    if let Some(basis) = warm {
        if let Some(sol) = try_warm(problem, &f, basis, tol2, cap, stats)? {
            return Ok(sol);
        }
    }

    // ---- Cold two-phase ----------------------------------------------------
    let mut rev = cold_start(&f)?;
    let needs_phase1 = f.art_col.iter().any(Option::is_some);
    if needs_phase1 {
        let phase1_cost: Vec<f64> = (0..f.n_total)
            .map(|j| if j >= f.art_start { 1.0 } else { 0.0 })
            .collect();
        if rev.run_primal(&phase1_cost, FEAS_TOL * 1e-2, cap)?.is_some() {
            // Phase 1 is bounded below by 0; "unbounded" is numerical
            // breakdown.
            return Err(LpError::IterationLimit { limit: cap });
        }
        let residual: f64 = (0..f.m())
            .filter(|&i| rev.basic[i] >= f.art_start)
            .map(|i| rev.xb[i].max(0.0))
            .sum();
        if residual > FEAS_TOL {
            return Err(LpError::Infeasible { residual });
        }
        // Freeze artificials at zero for phase 2.
        for j in f.art_start..f.n_total {
            rev.upper[j] = 0.0;
            if rev.state[j] == VarState::Upper {
                rev.state[j] = VarState::Lower;
            }
        }
    }

    if let Some(q) = rev.run_primal(&f.cost, tol2, cap)? {
        return Err(LpError::Unbounded {
            var: f.unbounded_var_name(problem, q),
        });
    }
    stats.degen = rev.degen_total;
    stats.refactorizations = rev.factorizations.saturating_sub(1);
    rev.extract(problem)
}

/// Build the phase-1 starting point: slacks basic on `Le` rows,
/// artificials basic on `Ge`/`Eq` rows — an identity basis.
fn cold_start(f: &InternalForm) -> Result<Rev<'_>, LpError> {
    let m = f.m();
    let mut basic = vec![usize::MAX; m];
    let mut state = vec![VarState::Lower; f.n_total];
    for i in 0..m {
        let b = match (f.ops[i], f.slack_col[i], f.art_col[i]) {
            (crate::model::RowOp::Le, Some(s), _) => s,
            (_, _, Some(a)) => a,
            _ => {
                return Err(LpError::Internal {
                    what: "row without slack or artificial".to_string(),
                })
            }
        };
        basic[i] = b;
        state[b] = VarState::Basic;
    }
    let mut rev = Rev {
        f,
        upper: f.upper.clone(),
        basic,
        state,
        lu: None,
        etas: Vec::new(),
        xb: vec![0.0; m],
        iterations: 0,
        degen_run: 0,
        degen_total: 0,
        bland: false,
        factorizations: 0,
    };
    rev.factorize()?;
    rev.compute_xb()?;
    Ok(rev)
}

/// Attempt the warm path. `Ok(Some(..))` is a finished solve; `Ok(None)`
/// means "fall back to cold" (structure mismatch, singular basis, dual
/// infeasible, or the dual loop gave up). Genuine verdicts about the
/// *problem* (unbounded phase 2 from a feasible warm basis) are returned
/// as errors, not swallowed.
fn try_warm(
    problem: &Problem,
    f: &InternalForm,
    basis: &Basis,
    tol2: f64,
    cap: usize,
    stats: &mut SolveStats,
) -> Result<Option<Solution>, LpError> {
    let Some((basic, mut state)) = basis.restore(f) else {
        return Ok(None);
    };
    // Artificials are frozen outside phase 1; a restored basis may carry
    // them basic (degenerate rows) but never resting at a bound above 0.
    let mut upper = f.upper.clone();
    for j in f.art_start..f.n_total {
        upper[j] = 0.0;
        if state[j] == VarState::Upper {
            state[j] = VarState::Lower;
        }
    }
    let mut rev = Rev {
        f,
        upper,
        basic,
        state,
        lu: None,
        etas: Vec::new(),
        xb: vec![0.0; f.m()],
        iterations: 0,
        degen_run: 0,
        degen_total: 0,
        bland: false,
        factorizations: 0,
    };
    if rev.factorize().is_err() {
        // The perturbed coefficients made the old basis singular.
        return Ok(None);
    }
    if rev.compute_xb().is_err() {
        return Ok(None);
    }

    // Primal-feasible at the old basis? Then phase 2 continues directly.
    let mut infeas = 0.0_f64;
    for i in 0..f.m() {
        let k = rev.basic[i];
        infeas = infeas.max(-rev.xb[i]);
        if rev.upper[k].is_finite() {
            infeas = infeas.max(rev.xb[i] - rev.upper[k]);
        }
    }
    if infeas > FEAS_TOL {
        // Primal-infeasible: re-enter through the dual simplex. The dual
        // phase is a repair heuristic, not the correctness path — the
        // exact primal run below converges from any feasible basis — so
        // dual feasibility only needs to hold well enough for the dual
        // ratio test to make progress. Columns whose reduced cost is
        // *decisively* on the wrong side of zero hop to their opposite
        // bound first (the bounded-variable bound flip); epsilon-level
        // violations — reduced costs whose sign the coefficient
        // perturbation barely flipped — are left in place, because
        // flipping them moves the iterate a full bound-length for no
        // gain and the clamped dual ratio test absorbs them at zero cost.
        let Ok(y) = rev.multipliers(&f.cost) else {
            return Ok(None);
        };
        let flip_tol = 1e6 * tol2;
        let mut flipped = false;
        for j in 0..f.n_total {
            let d = rev.reduced_cost(&f.cost, &y, j);
            match rev.state[j] {
                VarState::Basic => {}
                // Fixed columns (u == 0) cannot leave their bound, so any
                // reduced-cost sign is dual-feasible for them.
                _ if rev.upper[j] <= 0.0 => {}
                // (Unboxed Lower columns stay put: the dual ratio test
                // pulls them into the basis at a clamped zero ratio.)
                VarState::Lower if d < -flip_tol && rev.upper[j].is_finite() => {
                    rev.state[j] = VarState::Upper;
                    flipped = true;
                }
                VarState::Upper if d > flip_tol => {
                    // The internal form's lower bound is 0: always finite.
                    rev.state[j] = VarState::Lower;
                    flipped = true;
                }
                _ => {}
            }
        }
        if flipped && rev.compute_xb().is_err() {
            return Ok(None);
        }
        match rev.run_dual(&f.cost, cap) {
            Ok(()) => {
                stats.warm.dual_reentry = true;
                stats.warm.dual_iters = rev.iterations;
            }
            Err(_) => return Ok(None),
        }
    }

    stats.warm.warm_start = true;
    match rev.run_primal(&f.cost, tol2, cap) {
        Ok(None) => {
            stats.degen = rev.degen_total;
            stats.refactorizations = rev.factorizations.saturating_sub(1);
            rev.extract(problem).map(Some)
        }
        Ok(Some(q)) => Err(LpError::Unbounded {
            var: f.unbounded_var_name(problem, q),
        }),
        // Numerical trouble on the warm path: retry cold before giving a
        // verdict the cold path might not reproduce.
        Err(LpError::IterationLimit { .. }) | Err(LpError::Internal { .. }) => {
            stats.warm.warm_start = false;
            stats.warm.dual_reentry = false;
            Ok(None)
        }
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Problem, RowOp, Sense};

    fn sample() -> Problem {
        // max 3x + 2y  s.t.  x + y <= 4,  x <= 2 (bound),  x,y >= 0
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", 0.0, 2.0, 3.0);
        let y = p.add_var("y", 0.0, f64::INFINITY, 2.0);
        p.add_row("cap", &[(x, 1.0), (y, 1.0)], RowOp::Le, 4.0);
        p
    }

    #[test]
    fn matches_dense_on_basic_problem() {
        let p = sample();
        let s = solve(&p, None).unwrap();
        assert!((s.objective - 10.0).abs() < 1e-9);
        assert!((s.values[0] - 2.0).abs() < 1e-9);
        assert!((s.values[1] - 2.0).abs() < 1e-9);
        assert!(s.basis.is_some());
    }

    #[test]
    fn warm_restart_costs_no_pivots_when_unperturbed() {
        let p = sample();
        let cold = solve(&p, None).unwrap();
        let warm = solve(&p, cold.basis.as_ref()).unwrap();
        assert_eq!(warm.iterations, 0, "unchanged problem should re-verify, not re-pivot");
        assert!((warm.objective - cold.objective).abs() < 1e-9);
    }

    #[test]
    fn warm_restart_after_cost_change_stays_correct() {
        let mut p = sample();
        let cold = solve(&p, None).unwrap();
        // Flip the preference toward y.
        p.set_var_objective(crate::model::VarId(0), 1.0);
        p.set_var_objective(crate::model::VarId(1), 5.0);
        let warm = solve(&p, cold.basis.as_ref()).unwrap();
        let fresh = solve(&p, None).unwrap();
        assert!((warm.objective - fresh.objective).abs() < 1e-9);
        assert!(p.max_violation(&warm.values) < 1e-9);
    }

    #[test]
    fn dual_reentry_after_rhs_tightening() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", 0.0, 10.0, 3.0);
        let y = p.add_var("y", 0.0, 10.0, 2.0);
        let r = p.add_row("cap", &[(x, 1.0), (y, 1.0)], RowOp::Le, 8.0);
        let cold = solve(&p, None).unwrap();
        // Fault-style tightening: the binding row loses half its budget.
        p.cons[r.0].rhs = 4.0;
        let warm = solve(&p, cold.basis.as_ref()).unwrap();
        let fresh = solve(&p, None).unwrap();
        assert!((warm.objective - fresh.objective).abs() < 1e-9);
        assert!(p.max_violation(&warm.values) < 1e-9);
    }

    #[test]
    fn mismatched_basis_falls_back_to_cold() {
        let p = sample();
        let cold = solve(&p, None).unwrap();
        // A structurally different problem: extra row.
        let mut p2 = sample();
        let x = crate::model::VarId(0);
        p2.add_row("extra", &[(x, 1.0)], RowOp::Le, 1.5);
        let s = solve(&p2, cold.basis.as_ref()).unwrap();
        let fresh = solve(&p2, None).unwrap();
        assert!((s.objective - fresh.objective).abs() < 1e-9);
    }

    #[test]
    fn infeasible_and_unbounded_verdicts_survive() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", 0.0, 1.0, 1.0);
        p.add_row("force", &[(x, 1.0)], RowOp::Ge, 3.0);
        assert!(matches!(solve(&p, None), Err(LpError::Infeasible { .. })));

        let mut q = Problem::new(Sense::Maximize);
        let _g = q.add_var("growth", 0.0, f64::INFINITY, 1.0);
        assert!(matches!(
            solve(&q, None),
            Err(LpError::Unbounded { var }) if var == "growth"
        ));
    }

    #[test]
    fn near_singular_pivot_is_a_typed_error_not_garbage() {
        // The ratio test admits entries down to PIVOT_EPS (1e-9); a pivot
        // of 1e-8 passes eligibility but sits below PIVOT_TINY (1e-7).
        // With a fresh factorization (no etas to blame), the revised
        // engine must refuse it with a typed error — in release builds
        // the old dense-path debug_assert! would have silently divided.
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", 0.0, f64::INFINITY, 1.0);
        p.add_row("thin", &[(x, 1e-8)], RowOp::Le, 1.0);
        match solve(&p, None) {
            Err(LpError::Internal { what }) => assert!(what.contains("tiny pivot"), "{what}"),
            other => panic!("expected tiny-pivot error, got {other:?}"),
        }
    }

    #[test]
    fn tiny_pivot_falls_back_to_dense_at_the_api() {
        // Same model through Problem::solve: the revised engine's typed
        // error triggers the dense-oracle fallback, which pivots on the
        // (well-scaled relative to its row) entry and solves it.
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", 0.0, f64::INFINITY, 1.0);
        p.add_row("thin", &[(x, 1e-8)], RowOp::Le, 1.0);
        let sol = p.solve().unwrap();
        assert!((sol.value(x) - 1e8).abs() / 1e8 < 1e-9);
    }

    #[test]
    fn equality_chain_matches_dense() {
        let mut p = Problem::new(Sense::Maximize);
        let n = 9;
        let vars: Vec<_> = (0..n)
            .map(|j| p.add_var(&format!("x{j}"), 0.0, 100.0, 1.0))
            .collect();
        p.add_row("x0", &[(vars[0], 1.0)], RowOp::Eq, 1.0);
        for k in 1..n {
            p.add_row(
                &format!("chain{k}"),
                &[(vars[k], 1.0), (vars[k - 1], -1.0)],
                RowOp::Eq,
                1.0,
            );
        }
        let s = solve(&p, None).unwrap();
        for (k, &v) in vars.iter().enumerate() {
            assert!((s.value(v) - (k as f64 + 1.0)).abs() < 1e-7, "x{k}");
        }
    }
}
