//! Two-phase primal simplex on a dense tableau with implicit variable
//! bounds — the workspace's original engine, kept as the **fallback
//! oracle** for the sparse revised simplex in [`crate::revised`].
//!
//! Both engines share one problem rewriting ([`crate::internal`]): finite
//! lower bounds shifted to zero, `(-inf, ub]` variables mirrored, free
//! variables split, slack/surplus and artificial columns appended, and
//! negative right-hand sides negated. Phase 1 minimizes the sum of
//! artificial variables; phase 2 the real objective.
//!
//! Nonbasic variables sit at either bound (`Lower`/`Upper`), so box
//! constraints never become rows — essential for the Stage-1 LPs whose
//! piecewise-linear segment variables are all box-bounded.
//!
//! Because the engines share the internal column layout, the dense path
//! also emits a [`crate::Basis`] handle, and warm/cold cross-checks in
//! tests can hand bases across engines.

use crate::basis::Basis;
use crate::internal::{InternalForm, VarState};
use crate::model::{Problem, RowOp};
use crate::solution::{LpError, Solution, Status};
use thermaware_linalg::Matrix;

/// Entries smaller than this are unusable as pivots.
const PIVOT_EPS: f64 = 1e-9;
/// Reduced-cost optimality tolerance (scaled by the objective magnitude).
const COST_TOL: f64 = 1e-9;
/// Phase-1 residual above which the problem is declared infeasible.
const FEAS_TOL: f64 = 1e-7;
/// Consecutive degenerate pivots before switching to Bland's rule.
const DEGEN_LIMIT: usize = 60;

/// Internal-invariant breach (corrupted tableau bookkeeping) surfaced as
/// the iteration-pathology error instead of a panic. Callers already
/// treat [`LpError::IterationLimit`] as "numerical breakdown, do not
/// trust this solve", which is the right response — and the solver must
/// be panic-free under the runtime supervisor's replan path.
fn internal_pathology(iterations: usize) -> LpError {
    LpError::IterationLimit { limit: iterations }
}

/// Which cost vector is active. Carrying the selector instead of cloned
/// cost vectors keeps repeated solves allocation-light: phase-1 costs are
/// an indicator function of the artificial range and phase-2 costs live
/// in the tableau already, so neither phase materializes a `Vec`.
#[derive(Clone, Copy)]
enum Phase {
    One,
    Two,
}

struct Tableau {
    /// `B^{-1} A`, dense, m x n.
    t: Matrix,
    /// Current values of basic variables, one per row.
    xb: Vec<f64>,
    /// Reduced costs, one per column (relative to the active phase costs).
    d: Vec<f64>,
    /// Column index of the basic variable of each row.
    basis: Vec<usize>,
    /// State of every column.
    state: Vec<VarState>,
    /// Upper bound of every column (internal coordinates, >= 0).
    upper: Vec<f64>,
    /// Phase-2 (real) cost of every column.
    cost: Vec<f64>,
    /// First artificial column (artificials occupy `art_start..n`).
    art_start: usize,
    iterations: usize,
    degen_run: usize,
    /// Degenerate pivots over the whole solve (observability statistic;
    /// `degen_run` is the consecutive-run trigger for Bland's rule).
    degen_total: usize,
    bland: bool,
}

enum StepResult {
    Optimal,
    Progress,
    Unbounded(usize),
    /// A tableau invariant broke mid-step — solver bug, surfaced as
    /// [`LpError::Internal`] rather than a panic (DESIGN.md §6).
    Broken(&'static str),
}

impl Tableau {
    fn m(&self) -> usize {
        self.t.rows()
    }

    fn n(&self) -> usize {
        self.t.cols()
    }

    /// Current value of column `j`. Errors when a column marked basic is
    /// missing from the basis — a bookkeeping corruption that must fail
    /// the solve, not the process.
    fn value_of(&self, j: usize) -> Result<f64, LpError> {
        Ok(match self.state[j] {
            VarState::Lower => 0.0,
            VarState::Upper => self.upper[j],
            VarState::Basic => {
                let row = self
                    .basis
                    .iter()
                    .position(|&b| b == j)
                    .ok_or_else(|| internal_pathology(self.iterations))?;
                self.xb[row]
            }
        })
    }

    /// Recompute reduced costs `d = c - c_B^T (B^{-1}A)` for the active
    /// phase. O(mn), done once per phase — with no cost-vector clone.
    fn reset_reduced_costs(&mut self, phase: Phase) {
        let Tableau {
            t,
            d,
            basis,
            cost,
            art_start,
            ..
        } = self;
        let cost_of = |j: usize| match phase {
            Phase::One => {
                if j >= *art_start {
                    1.0
                } else {
                    0.0
                }
            }
            Phase::Two => cost[j],
        };
        for (j, dj) in d.iter_mut().enumerate() {
            *dj = cost_of(j);
        }
        for i in 0..t.rows() {
            let cb = cost_of(basis[i]);
            if cb != 0.0 { // lint: allow(float-eq): sparsity skip on a stored basis cost; exact zeros only
                let row = t.row(i);
                for (dj, tij) in d.iter_mut().zip(row) {
                    *dj -= cb * tij;
                }
            }
        }
    }

    /// Pick an entering column, or `None` at optimality.
    ///
    /// A column improves the (minimization) objective when it can move and
    /// its reduced cost points downhill: `d < 0` for a variable at its
    /// lower bound (it wants to increase), `d > 0` at its upper bound (it
    /// wants to decrease).
    fn choose_entering(&self, tol: f64) -> Option<(usize, f64)> {
        let mut best: Option<(usize, f64)> = None;
        let mut best_gain = tol;
        for j in 0..self.n() {
            let (gain, dir) = match self.state[j] {
                VarState::Basic => continue,
                VarState::Lower => (-self.d[j], 1.0),
                VarState::Upper => (self.d[j], -1.0),
            };
            // Fixed columns (u == 0) cannot move; artificials are fixed
            // this way after phase 1.
            if self.upper[j] <= 0.0 {
                continue;
            }
            if gain > best_gain {
                if self.bland {
                    // Bland's rule: first eligible index. Guarantees
                    // termination under degeneracy.
                    return Some((j, dir));
                }
                best = Some((j, dir));
                best_gain = gain;
            }
        }
        best
    }

    /// One simplex step with the active costs. `tol` is the entering
    /// eligibility threshold.
    fn step(&mut self, tol: f64) -> StepResult {
        let Some((q, dir)) = self.choose_entering(tol) else {
            return StepResult::Optimal;
        };

        // Ratio test: how far can x_q move (by t >= 0 in direction `dir`)
        // before a basic variable hits one of its bounds, or x_q hits its
        // own opposite bound?
        let mut t_best = self.upper[q]; // own bound flip distance
        let mut leave: Option<(usize, VarState)> = None; // (row, bound hit)
        for i in 0..self.m() {
            let alpha = dir * self.t[(i, q)];
            let k = self.basis[i];
            if alpha > PIVOT_EPS {
                // Basic variable decreases toward its lower bound 0.
                let t_i = (self.xb[i].max(0.0)) / alpha;
                if t_i < t_best - 1e-12
                    || (t_i < t_best + 1e-12
                        && leave.is_some_and(|(r, _)| {
                            self.t[(r, q)].abs() < self.t[(i, q)].abs()
                        }))
                {
                    t_best = t_i;
                    leave = Some((i, VarState::Lower));
                }
            } else if alpha < -PIVOT_EPS {
                let uk = self.upper[k];
                if uk.is_finite() {
                    // Basic variable increases toward its upper bound.
                    let t_i = ((uk - self.xb[i]).max(0.0)) / (-alpha);
                    if t_i < t_best - 1e-12
                        || (t_i < t_best + 1e-12
                            && leave.is_some_and(|(r, _)| {
                                self.t[(r, q)].abs() < self.t[(i, q)].abs()
                            }))
                    {
                        t_best = t_i;
                        leave = Some((i, VarState::Upper));
                    }
                }
            }
        }

        if t_best.is_infinite() {
            return StepResult::Unbounded(q);
        }
        self.iterations += 1;
        if t_best <= 1e-12 {
            self.degen_run += 1;
            self.degen_total += 1;
            if self.degen_run > DEGEN_LIMIT && !self.bland {
                self.bland = true;
                thermaware_obs::counter_add("lp.bland_switches", 1);
            }
        } else {
            self.degen_run = 0;
        }

        // Update basic values along the direction.
        if t_best != 0.0 { // lint: allow(float-eq): degenerate step detection wants exact zero, not a tolerance
            for i in 0..self.m() {
                let delta = dir * t_best * self.t[(i, q)];
                self.xb[i] -= delta;
            }
        }

        match leave {
            None => {
                // Bound flip: x_q traverses its whole box and becomes
                // nonbasic at the other bound. No pivot.
                self.state[q] = match self.state[q] {
                    VarState::Lower => VarState::Upper,
                    VarState::Upper => VarState::Lower,
                    // `choose_entering` only returns nonbasic columns, so
                    // a basic entering column means the tableau state is
                    // corrupt — report it instead of panicking.
                    VarState::Basic => return StepResult::Broken("entering column was basic"),
                };
            }
            Some((r, hit)) => {
                let k = self.basis[r];
                let x_q_new = if dir > 0.0 {
                    t_best
                } else {
                    self.upper[q] - t_best
                };
                // Pivot on (r, q). The ratio test only admits entries
                // above PIVOT_EPS, so a smaller pivot here means the
                // tableau itself has decayed (or was corrupted): surface
                // the typed error instead of silently dividing by it —
                // in release builds the old debug_assert! vanished and a
                // garbage pivot would poison every later iteration.
                let piv = self.t[(r, q)];
                if piv.abs() <= PIVOT_EPS * 1e-3 {
                    return StepResult::Broken("tiny pivot");
                }
                let inv = 1.0 / piv;
                {
                    let row_r = self.t.row_mut(r);
                    for v in row_r.iter_mut() {
                        *v *= inv;
                    }
                }
                for i in 0..self.m() {
                    if i == r {
                        continue;
                    }
                    let f = self.t[(i, q)];
                    if f == 0.0 { // lint: allow(float-eq): sparsity skip on a stored column entry; exact zeros only
                        continue;
                    }
                    let (row_r, row_i) = self.t.two_rows_mut(r, i);
                    for (vi, vr) in row_i.iter_mut().zip(row_r.iter()) {
                        *vi -= f * *vr;
                    }
                    // Re-zero explicitly to stop error accumulation in the
                    // pivot column.
                    row_i[q] = 0.0;
                }
                let f = self.d[q];
                if f != 0.0 { // lint: allow(float-eq): sparsity skip on a stored column entry; exact zeros only
                    let row_r = self.t.row(r);
                    for (dj, vr) in self.d.iter_mut().zip(row_r) {
                        *dj -= f * vr;
                    }
                    self.d[q] = 0.0;
                }
                self.basis[r] = q;
                self.state[q] = VarState::Basic;
                self.state[k] = hit;
                self.xb[r] = x_q_new;
            }
        }
        StepResult::Progress
    }

    /// Run simplex steps until optimality / unboundedness / the cap.
    fn run(&mut self, tol: f64, cap: usize) -> Result<Option<usize>, LpError> {
        loop {
            if self.iterations > cap {
                return Err(LpError::IterationLimit { limit: cap });
            }
            match self.step(tol) {
                StepResult::Optimal => return Ok(None),
                StepResult::Progress => {}
                StepResult::Unbounded(q) => return Ok(Some(q)),
                StepResult::Broken(what) => {
                    return Err(LpError::Internal { what: what.to_string() })
                }
            }
        }
    }
}

/// Solve `problem` with the dense engine; when `feasibility_only`, stop
/// after phase 1 and report any feasible point.
///
/// Observability wrapper around [`solve_impl`]: per-solve wall time,
/// iteration/pivot/degeneracy statistics, and outcome counters. The LP
/// solver is the innermost hot loop of the whole stack (the CRAC search
/// calls it per candidate), so all metrics of a solve are batched into a
/// single recorder visit, and no span is opened here — `lp.solve_us` is
/// the per-solve timing. With no recorder installed this adds one
/// relaxed atomic load to the solve.
pub(crate) fn solve(problem: &Problem, feasibility_only: bool) -> Result<Solution, LpError> {
    let mut degen = 0usize;
    if !thermaware_obs::enabled() {
        return solve_impl(problem, feasibility_only, &mut degen);
    }
    let start = std::time::Instant::now();
    let result = solve_impl(problem, feasibility_only, &mut degen);
    let elapsed_us = start.elapsed().as_micros() as f64;
    thermaware_obs::with_recorder(|r| {
        r.counter_add("lp.solves", 1);
        r.observe("lp.solve_us", elapsed_us);
        r.observe("lp.degenerate_steps", degen as f64);
        match &result {
            Ok(sol) => {
                r.counter_add("lp.pivots", sol.iterations as u64);
                r.observe("lp.iterations", sol.iterations as f64);
            }
            Err(LpError::Infeasible { .. }) => r.counter_add("lp.infeasible", 1),
            Err(LpError::Unbounded { .. }) => r.counter_add("lp.unbounded", 1),
            Err(LpError::IterationLimit { .. }) => r.counter_add("lp.iteration_limit", 1),
            Err(LpError::Internal { .. }) => r.counter_add("lp.internal_error", 1),
        }
    });
    result
}

fn solve_impl(
    problem: &Problem,
    feasibility_only: bool,
    degen_out: &mut usize,
) -> Result<Solution, LpError> {
    let f = InternalForm::build(problem);
    let nrows = f.m();
    let n_total = f.n_total;

    // ---- Assemble the dense tableau from the sparse columns --------------
    let mut t = Matrix::zeros(nrows, n_total);
    for (j, col) in f.cols.iter().enumerate() {
        for &(i, a) in col {
            t[(i, j)] = a;
        }
    }
    let mut basis = vec![usize::MAX; nrows];
    let mut state = vec![VarState::Lower; n_total];
    for i in 0..nrows {
        // Each row's starting basic column: its slack for `Le`, its
        // artificial for `Ge`/`Eq`. A mismatch is bookkeeping corruption;
        // fail the solve, not the process.
        let basic = match (f.ops[i], f.slack_col[i], f.art_col[i]) {
            (RowOp::Le, Some(s), _) => s,
            (RowOp::Ge, Some(_), Some(a)) | (RowOp::Eq, None, Some(a)) => a,
            _ => return Err(internal_pathology(0)),
        };
        basis[i] = basic;
        state[basic] = VarState::Basic;
    }

    let mut tab = Tableau {
        t,
        xb: f.rhs.clone(),
        d: vec![0.0; n_total],
        basis,
        state,
        upper: f.upper.clone(),
        cost: f.cost.clone(),
        art_start: f.art_start,
        iterations: 0,
        degen_run: 0,
        degen_total: 0,
        bland: false,
    };
    let cap = 200 * (nrows + n_total + 10);

    // ---- Phase 1 ----------------------------------------------------------
    let needs_phase1 = f.art_col.iter().any(Option::is_some);
    if needs_phase1 {
        tab.reset_reduced_costs(Phase::One);
        if let Some(_q) = tab.run(FEAS_TOL * 1e-2, cap)? {
            // Phase 1 is bounded below by 0, so "unbounded" here means a
            // numerical breakdown; report as an iteration pathology.
            return Err(LpError::IterationLimit { limit: cap });
        }
        let residual: f64 = (0..nrows)
            .filter(|&i| tab.basis[i] >= tab.art_start)
            .map(|i| tab.xb[i].max(0.0))
            .sum::<f64>()
            + (tab.art_start..n_total)
                .filter(|&j| tab.state[j] == VarState::Upper)
                .map(|j| tab.upper[j])
                .sum::<f64>();
        if residual > FEAS_TOL {
            return Err(LpError::Infeasible { residual });
        }
        // Freeze artificials at zero so phase 2 cannot revive them. Basic
        // artificials (at value ~0 in degenerate rows) are left in place;
        // the ratio test will evict them on the first pivot that touches
        // their row.
        for j in tab.art_start..n_total {
            tab.upper[j] = 0.0;
            if tab.state[j] == VarState::Upper {
                tab.state[j] = VarState::Lower;
            }
        }
    }

    if feasibility_only {
        let (values, duals) = extract(problem, &tab, &f)?;
        let objective = problem.objective_value(&values);
        *degen_out = tab.degen_total;
        return Ok(Solution {
            status: Status::Feasible,
            objective,
            values,
            duals,
            iterations: tab.iterations,
            basis: None,
        });
    }

    // ---- Phase 2 ----------------------------------------------------------
    tab.reset_reduced_costs(Phase::Two);
    let cost_scale = 1.0 + tab.cost.iter().fold(0.0_f64, |m, c| m.max(c.abs()));
    if let Some(q) = tab.run(COST_TOL * cost_scale, cap)? {
        return Err(LpError::Unbounded {
            var: f.unbounded_var_name(problem, q),
        });
    }

    let (values, duals) = extract(problem, &tab, &f)?;
    let objective = problem.objective_value(&values);
    debug_assert!(
        {
            // Internal objective plus the constant folded out of
            // shifts/mirrors must agree with the recomputed user-space
            // objective.
            let internal: f64 = (0..tab.n())
                .map(|j| tab.cost[j] * tab.value_of(j).unwrap_or(0.0))
                .sum();
            (f.sense_sign * objective - (internal + f.obj_const)).abs()
                <= 1e-6 * (1.0 + objective.abs() + f.obj_const.abs())
        },
        "objective bookkeeping mismatch"
    );
    *degen_out = tab.degen_total;
    Ok(Solution {
        status: Status::Optimal,
        objective,
        values,
        duals,
        iterations: tab.iterations,
        basis: Some(Basis::capture(f.signature, &tab.basis, &tab.state)),
    })
}

/// Recover user-space variable values and row duals from the tableau.
fn extract(
    problem: &Problem,
    tab: &Tableau,
    f: &InternalForm,
) -> Result<(Vec<f64>, Vec<f64>), LpError> {
    use crate::internal::VarMap;
    let values: Vec<f64> = f
        .maps
        .iter()
        .map(|m| {
            Ok(match *m {
                VarMap::Shift { col, lb } => lb + tab.value_of(col)?,
                VarMap::Mirror { col, ub } => ub - tab.value_of(col)?,
                VarMap::Split { pos, neg } => tab.value_of(pos)? - tab.value_of(neg)?,
            })
        })
        .collect::<Result<_, LpError>>()?;

    // Row duals: the reference column of row i (its slack, else its
    // artificial) has A_j = ±e_i and zero phase-2 cost, so its reduced
    // cost pins down y_i.
    let duals: Vec<f64> = (0..problem.cons.len())
        .map(|i| {
            let (col, coef) = match (f.slack_col[i], f.art_col[i]) {
                (Some(s), _) => {
                    // Slack coefficient is +1 for Le rows, -1 for Ge rows
                    // (post-normalization op).
                    let c = match f.ops[i] {
                        RowOp::Le => 1.0,
                        _ => -1.0,
                    };
                    (s, c)
                }
                (None, Some(a)) => (a, 1.0),
                (None, None) => return 0.0,
            };
            // d_col = 0 - y_i * coef  =>  y_i = -d_col / coef.
            let y_int = -tab.d[col] / coef;
            let flip = if f.flipped[i] { -1.0 } else { 1.0 };
            f.sense_sign * flip * y_int
        })
        .collect();
    Ok((values, duals))
}
