//! Chaos: seeded random worker faults (panics, stalls, typed errors) at
//! random epochs must never panic the master, never yield a plan that
//! violates redlines or oversubscribes the feed, and — once the faults
//! clear — the solver must converge back to the all-healthy answer
//! within the backoff bound.

use std::sync::Arc;

use proptest::prelude::*;
use thermaware_shard::chaos::ChaosScript;
use thermaware_shard::fleet::{Fleet, FleetParams};
use thermaware_shard::pool::PoolConfig;
use thermaware_shard::solver::{FleetConfig, FleetSolver};

fn cfg(threads: usize) -> FleetConfig {
    FleetConfig {
        pool: PoolConfig {
            threads,
            // No deadline: chaos stalls become slow failed attempts, so
            // the retry/fallback path is exercised with zero timing
            // flake in debug builds. Genuine timeouts are covered by the
            // pool unit tests and the release-mode drill.
            deadline: None,
            retries: 1,
            backoff: std::time::Duration::from_millis(1),
            hedge_after: None,
        },
        ..FleetConfig::default()
    }
}

proptest! {
    // Every case is several epochs of full fleet solves; keep the case
    // count small and the fleet smaller.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The core robustness property of the shard crate.
    #[test]
    fn chaotic_epochs_never_break_invariants_and_recovery_converges(
        seed in 0u64..10_000,
        chaos_seed in 0u64..10_000,
        p_fault in 0.1f64..0.6,
        threads in 1usize..4,
    ) {
        let chaos_epochs = 3u64;
        let fleet = Arc::new(
            Fleet::build(&FleetParams::small(3, 4, seed), 50.0).expect("fleet builds"),
        );

        // The all-healthy reference answer.
        let mut reference = FleetSolver::new(Arc::clone(&fleet), cfg(1));
        let healthy = reference.replan(None);
        prop_assert_eq!(healthy.degraded, 0);

        // Faults at random (epoch, zone, attempt) coordinates for the
        // first `chaos_epochs` epochs; stall times are tiny because with
        // no deadline they only add latency, not semantics.
        let script = ChaosScript::seeded(
            chaos_seed, chaos_epochs, fleet.n_zones(), 2, p_fault, 5,
        );

        let mut solver = FleetSolver::new(Arc::clone(&fleet), cfg(threads));
        for _ in 0..chaos_epochs {
            // Any injected panic is caught by the pool: this call must
            // return a full, invariant-respecting plan regardless.
            let plan = solver.replan(Some(&script));
            plan.verify(&fleet).expect("invariants hold under chaos");
            prop_assert_eq!(plan.zones.len(), fleet.n_zones());
        }

        // Faults cleared: within the backoff bound (skip lengths are
        // capped at 8 epochs) every zone must return to fresh solves and
        // the fleet must match the healthy reference.
        let mut recovered = None;
        for _ in 0..12 {
            let plan = solver.replan(None);
            plan.verify(&fleet).expect("invariants hold during recovery");
            if plan.degraded == 0 {
                recovered = Some(plan);
                break;
            }
        }
        let plan = recovered.expect("solver must reconverge once faults clear");
        let tol = 1e-6 * (1.0 + healthy.reward.abs());
        prop_assert!(
            (plan.reward - healthy.reward).abs() <= tol,
            "recovered {} vs healthy {}", plan.reward, healthy.reward
        );
    }
}
