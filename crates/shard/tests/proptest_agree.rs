//! Decomposition agreement: the pooled, warm-started, fault-tolerant
//! fleet solve must match the sequential monolithic oracle — the zone
//! decomposition and the worker pool are accelerators and fault
//! domains, never answer-changers.
//!
//! Mirrors `crates/lp/tests/proptest_warm.rs`: small random instances,
//! tight relative tolerance, and an extra single-zone check that pins
//! the master to the undecomposed three-stage solver.

use std::sync::Arc;

use proptest::prelude::*;
use thermaware_core::{solve_three_stage, ObjectiveWeights, ThreeStageOptions};
use thermaware_shard::fleet::{Fleet, FleetParams};
use thermaware_shard::pool::PoolConfig;
use thermaware_shard::solver::{solve_monolithic, FleetConfig, FleetSolver};

fn cfg(threads: usize) -> FleetConfig {
    FleetConfig {
        pool: PoolConfig { threads, ..PoolConfig::default() },
        ..FleetConfig::default()
    }
}

proptest! {
    // Each case runs 2–3 full zone solves; keep the count low enough for
    // debug-mode CI while still sweeping seeds and shapes.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// All zones healthy: pooled replan == sequential monolithic solve,
    /// zone for zone, to solver tolerance.
    #[test]
    fn sharded_solve_matches_monolithic(
        n_zones in 2usize..4,
        nodes_per_zone in 4usize..8,
        seed in 0u64..1_000,
        threads in 1usize..4,
    ) {
        let fleet = Arc::new(
            Fleet::build(&FleetParams::small(n_zones, nodes_per_zone, seed), 50.0)
                .expect("fleet builds"),
        );
        let mono = solve_monolithic(&fleet, 50.0, &ObjectiveWeights::reward_only())
            .expect("monolithic solve");
        let mut solver = FleetSolver::new(Arc::clone(&fleet), cfg(threads));
        let plan = solver.replan(None);

        prop_assert_eq!(plan.degraded, 0, "healthy fleet must not degrade");
        plan.verify(&fleet).expect("fleet invariants");

        let tol = 1e-6 * (1.0 + mono.reward.abs());
        prop_assert!(
            (plan.reward - mono.reward).abs() <= tol,
            "pooled {} vs monolithic {}", plan.reward, mono.reward
        );
        for (p, m) in plan.zones.iter().zip(&mono.zones) {
            let ztol = 1e-6 * (1.0 + m.reward.abs());
            prop_assert!(
                (p.reward - m.reward).abs() <= ztol,
                "zone {}: pooled {} vs monolithic {}", p.zone, p.reward, m.reward
            );
            prop_assert!((p.budget_kw - m.budget_kw).abs() <= 1e-9 * (1.0 + m.budget_kw));
        }
    }

    /// A warm replan (epoch 1, basis carried from epoch 0) must still
    /// match the cold monolithic answer — warm bases accelerate, never
    /// change, the optimum.
    #[test]
    fn warm_replan_matches_cold(
        nodes_per_zone in 4usize..8,
        seed in 0u64..1_000,
    ) {
        let fleet = Arc::new(
            Fleet::build(&FleetParams::small(2, nodes_per_zone, seed), 50.0)
                .expect("fleet builds"),
        );
        let mono = solve_monolithic(&fleet, 50.0, &ObjectiveWeights::reward_only())
            .expect("monolithic solve");
        let mut solver = FleetSolver::new(Arc::clone(&fleet), cfg(2));
        solver.replan(None);
        let warm = solver.replan(None); // second epoch: warm bases in play
        prop_assert_eq!(warm.degraded, 0);
        let tol = 1e-6 * (1.0 + mono.reward.abs());
        prop_assert!(
            (warm.reward - mono.reward).abs() <= tol,
            "warm {} vs cold monolithic {}", warm.reward, mono.reward
        );
    }

    /// The multi-objective options thread through the decomposition the
    /// same way: pooled replan under a priced objective == sequential
    /// monolithic solve under the same weights.
    #[test]
    fn priced_objective_still_agrees(
        nodes_per_zone in 4usize..8,
        seed in 0u64..1_000,
        price_per_kwh in 0.0f64..30.0,
    ) {
        let weights = ObjectiveWeights {
            price_per_kwh,
            ..ObjectiveWeights::reward_only()
        };
        let fleet = Arc::new(
            Fleet::build(&FleetParams::small(2, nodes_per_zone, seed), 50.0)
                .expect("fleet builds"),
        );
        let mono = solve_monolithic(&fleet, 50.0, &weights).expect("monolithic solve");
        let mut solver = FleetSolver::new(
            Arc::clone(&fleet),
            FleetConfig { objective: weights, ..cfg(2) },
        );
        let plan = solver.replan(None);
        prop_assert_eq!(plan.degraded, 0, "healthy fleet must not degrade");
        plan.verify(&fleet).expect("fleet invariants");
        let tol = 1e-6 * (1.0 + mono.reward.abs());
        prop_assert!(
            (plan.reward - mono.reward).abs() <= tol,
            "pooled {} vs monolithic {} at price {}", plan.reward, mono.reward, price_per_kwh
        );
    }
}

/// A single-zone fleet collapses the decomposition entirely: the master
/// hands the zone the whole budget, so the sharded answer must equal the
/// plain `solve_three_stage` on that zone's data center.
#[test]
fn single_zone_fleet_matches_global_three_stage() {
    let fleet = Arc::new(
        Fleet::build(&FleetParams::small(1, 8, 42), 50.0).expect("fleet builds"),
    );
    let global = solve_three_stage(&fleet.zones[0], &ThreeStageOptions::default())
        .expect("global solve");
    let mut solver = FleetSolver::new(Arc::clone(&fleet), cfg(2));
    let plan = solver.replan(None);
    assert_eq!(plan.degraded, 0);
    let tol = 1e-9 * (1.0 + global.reward_rate().abs());
    assert!(
        (plan.reward - global.reward_rate()).abs() <= tol,
        "sharded {} vs global {}",
        plan.reward,
        global.reward_rate()
    );
}
