//! The supervised worker pool: panic-isolating, deadline-enforcing,
//! work-stealing job execution for zone solves.
//!
//! This is the promotion of `crates/bench`'s `parallel_map` into a real
//! fault domain. Workers pull jobs from a shared injector queue (idle
//! workers steal the next undispatched job — uneven zone solve times
//! balance naturally), every job body runs under
//! [`std::panic::catch_unwind`], and a supervisor loop on the calling
//! thread tracks a per-attempt deadline for each item. The failure
//! policy, per item:
//!
//! - **panic / typed error** — the attempt failed; retry up to
//!   [`PoolConfig::retries`] times with exponential backoff
//!   (`backoff · 2^attempt`), then report the last failure.
//! - **deadline blown** — the attempt is abandoned (its late result is
//!   discarded on arrival) and the item is retried on a fresh worker.
//!   If the pool looks wedged (every worker busy past the deadline) a
//!   replacement worker is spawned, bounded by `2·threads + 2`.
//! - **straggler hedging** — when an attempt has run past
//!   [`PoolConfig::hedge_after`] and an idle worker is available, the
//!   item is re-dispatched speculatively; the first result to arrive
//!   wins and the loser is discarded. Hedges are free wins when a
//!   worker is merely descheduled rather than broken.
//!
//! The caller's thread never executes jobs and never blocks on a hung
//! worker: the supervisor waits on a channel with a timeout, so a
//! worker that sleeps forever merely costs the pool one thread (which
//! the wedge check replaces) while the map returns on schedule.
//!
//! This file is live wall-clock code (deadlines, backoff, hedging) and
//! is deliberately outside the determinism lint's replay scope; the
//! *values* it returns are deterministic because job bodies are, and
//! late/hedged duplicates of a deterministic job carry equal values.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, RecvTimeoutError, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use thermaware_obs as obs;

/// Pool sizing and per-attempt failure policy.
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Worker threads (clamped to at least 1).
    pub threads: usize,
    /// Per-attempt deadline; `None` disables timeouts.
    pub deadline: Option<Duration>,
    /// Extra attempts after the first failure/timeout.
    pub retries: u32,
    /// Base backoff before a retry; doubles each attempt.
    pub backoff: Duration,
    /// Speculatively re-dispatch an attempt running longer than this
    /// when an idle worker is available; `None` disables hedging.
    pub hedge_after: Option<Duration>,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            threads: default_threads(usize::MAX),
            deadline: None,
            retries: 2,
            backoff: Duration::from_millis(10),
            hedge_after: None,
        }
    }
}

/// Default worker count: available parallelism, capped to the work size.
pub fn default_threads(n: usize) -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n.max(1))
}

/// Why an item has no value: the terminal failure after all retries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// The job body panicked; the payload message, when downcastable.
    Panicked(String),
    /// Every attempt blew its deadline.
    TimedOut,
    /// The job body returned a typed error.
    Failed(String),
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Panicked(msg) => write!(f, "worker panicked: {msg}"),
            JobError::TimedOut => write!(f, "deadline exceeded on every attempt"),
            JobError::Failed(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for JobError {}

/// Counters for one supervised map, mirrored into `shard.*` obs metrics
/// by the caller-facing entry points.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Items that resolved with a value.
    pub solved: usize,
    /// Attempts that panicked.
    pub panics: usize,
    /// Attempts abandoned at their deadline.
    pub timeouts: usize,
    /// Re-dispatches after a failure (not counting hedges).
    pub retries: usize,
    /// Speculative duplicate dispatches.
    pub hedges: usize,
}

type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolShared {
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    shutdown: AtomicBool,
    busy: AtomicUsize,
    workers: AtomicUsize,
}

/// A detached worker pool. Workers live until the pool is dropped;
/// jobs are `'static` closures, so a hung job can never block the
/// supervisor — it only occupies (and eventually leaks) one thread.
pub struct Pool {
    shared: Arc<PoolShared>,
    threads: usize,
    max_threads: usize,
}

impl Pool {
    /// Spawn a pool with `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Pool {
        let threads = threads.max(1);
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
            busy: AtomicUsize::new(0),
            workers: AtomicUsize::new(0),
        });
        let pool = Pool { shared, threads, max_threads: threads * 2 + 2 };
        for _ in 0..threads {
            pool.spawn_worker();
        }
        pool
    }

    /// Configured worker count (not counting wedge replacements).
    pub fn threads(&self) -> usize {
        self.threads
    }

    fn spawn_worker(&self) {
        let shared = Arc::clone(&self.shared);
        shared.workers.fetch_add(1, Ordering::Relaxed);
        std::thread::spawn(move || loop {
            let job = {
                let mut queue = match shared.queue.lock() {
                    Ok(q) => q,
                    Err(poisoned) => poisoned.into_inner(),
                };
                loop {
                    if shared.shutdown.load(Ordering::Relaxed) {
                        shared.workers.fetch_sub(1, Ordering::Relaxed);
                        return;
                    }
                    if let Some(job) = queue.pop_front() {
                        break job;
                    }
                    queue = match shared.available.wait(queue) {
                        Ok(q) => q,
                        Err(poisoned) => poisoned.into_inner(),
                    };
                }
            };
            shared.busy.fetch_add(1, Ordering::Relaxed);
            job();
            shared.busy.fetch_sub(1, Ordering::Relaxed);
        });
    }

    /// Every worker is mid-job — a dispatch now would only queue.
    fn saturated(&self) -> bool {
        self.shared.busy.load(Ordering::Relaxed) >= self.shared.workers.load(Ordering::Relaxed)
    }

    /// Spawn a replacement worker when the pool looks wedged (all
    /// workers busy past a deadline), bounded by `max_threads`.
    fn grow_if_wedged(&self) -> bool {
        if self.saturated() && self.shared.workers.load(Ordering::Relaxed) < self.max_threads {
            self.spawn_worker();
            true
        } else {
            false
        }
    }

    fn submit(&self, job: Job) {
        let mut queue = match self.shared.queue.lock() {
            Ok(q) => q,
            Err(poisoned) => poisoned.into_inner(),
        };
        queue.push_back(job);
        drop(queue);
        self.shared.available.notify_one();
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        self.shared.available.notify_all();
    }
}

/// A worker's verdict on one attempt, sent back to the supervisor.
struct AttemptResult<T> {
    item: usize,
    attempt: u32,
    value: Result<T, JobError>,
    elapsed: Duration,
}

/// Per-item supervisor bookkeeping.
enum ItemState {
    /// Dispatched; awaiting a result.
    Running { attempt: u32, dispatched: Instant, hedged: bool },
    /// Failed; retry once the backoff expires.
    Backoff { attempt: u32, due: Instant },
    /// Terminal.
    Done,
}

/// Run `make_job(item, attempt)`-produced closures for items `0..n` on
/// the pool under the config's failure policy. Returns one
/// `Result` per item, in item order. `make_job` is called on the
/// supervisor thread once per (re)dispatch, so closures can snapshot
/// per-attempt context (e.g. chaos decisions) without sharing state.
pub fn run_supervised<T, M>(
    pool: &Pool,
    n: usize,
    cfg: &PoolConfig,
    mut make_job: M,
) -> (Vec<Result<T, JobError>>, RunStats)
where
    T: Send + 'static,
    M: FnMut(usize, u32) -> Box<dyn FnOnce() -> Result<T, String> + Send + 'static>,
{
    let mut out: Vec<Result<T, JobError>> = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(Err(JobError::TimedOut));
    }
    let mut stats = RunStats::default();
    if n == 0 {
        return (out, stats);
    }

    let (tx, rx) = channel::<AttemptResult<T>>();
    let mut states: Vec<ItemState> = Vec::with_capacity(n);
    let mut pending = n;

    #[allow(clippy::type_complexity)]
    let dispatch = |pool: &Pool,
                    tx: &Sender<AttemptResult<T>>,
                    job: Box<dyn FnOnce() -> Result<T, String> + Send + 'static>,
                    item: usize,
                    attempt: u32| {
        let tx = tx.clone();
        pool.submit(Box::new(move || {
            // lint: allow(determinism-taint): measures attempt latency for supervision only
            let start = Instant::now();
            let value = match catch_unwind(AssertUnwindSafe(job)) {
                Ok(Ok(v)) => Ok(v),
                Ok(Err(msg)) => Err(JobError::Failed(msg)),
                Err(payload) => Err(JobError::Panicked(panic_message(&*payload))),
            };
            // The receiver may be long gone (late straggler); drop quietly.
            let _ = tx.send(AttemptResult { item, attempt, value, elapsed: start.elapsed() });
        }));
    };

    for item in 0..n {
        dispatch(pool, &tx, make_job(item, 0), item, 0);
        // lint: allow(determinism-taint): dispatch timestamps drive deadlines/hedging, not plan bytes
        states.push(ItemState::Running { attempt: 0, dispatched: Instant::now(), hedged: false });
    }

    while pending > 0 {
        // The next instant at which some item's deadline, hedge point, or
        // backoff expiry needs attention. The pool is wall-clock by design:
        // timing decides *when* work runs and retries, never *what* a zone
        // plan contains — plans are pure functions of their inputs, which is
        // what keeps replan deterministic (the shard drill pins this).
        // lint: allow(determinism-taint): supervision clock — scheduling only, plans stay input-pure
        let now = Instant::now();
        let mut wake: Option<Instant> = None;
        let mut consider = |t: Instant| match wake {
            Some(w) if w <= t => {}
            _ => wake = Some(t),
        };
        for state in &states {
            match state {
                ItemState::Running { dispatched, hedged, .. } => {
                    if let Some(d) = cfg.deadline {
                        consider(*dispatched + d);
                    }
                    if let (Some(h), false) = (cfg.hedge_after, *hedged) {
                        consider(*dispatched + h);
                    }
                }
                ItemState::Backoff { due, .. } => consider(*due),
                ItemState::Done => {}
            }
        }
        let timeout = wake
            .map(|w| w.saturating_duration_since(now))
            .unwrap_or(Duration::from_millis(50));

        match rx.recv_timeout(timeout.max(Duration::from_millis(1))) {
            Ok(result) => {
                let item = result.item;
                if obs::enabled() {
                    obs::observe("shard.zone_latency_ms", result.elapsed.as_secs_f64() * 1e3);
                }
                match &states[item] {
                    ItemState::Done => {} // hedge loser or late straggler
                    _ => match result.value {
                        // Job bodies are deterministic, so a value from
                        // any attempt — including a late straggler whose
                        // deadline already fired — is the right value.
                        Ok(v) => {
                            out[item] = Ok(v);
                            states[item] = ItemState::Done;
                            stats.solved += 1;
                            pending -= 1;
                        }
                        Err(err) => {
                            if matches!(err, JobError::Panicked(_)) {
                                stats.panics += 1;
                                obs::counter_add("shard.zone_panics", 1);
                            }
                            // Failures only count against the attempt
                            // currently in flight; a stale attempt's
                            // error must not consume a fresh attempt's
                            // retry budget (or worse, mark the item dead
                            // while its retry is about to succeed).
                            let current = matches!(
                                &states[item],
                                ItemState::Running { attempt, .. } if *attempt == result.attempt
                            );
                            let twin_alive = matches!(
                                &states[item],
                                ItemState::Running { hedged: true, .. }
                            );
                            if !current {
                                // stale; ignore
                            } else if twin_alive {
                                // One of two hedged twins failed: keep
                                // waiting for the other.
                                if let ItemState::Running { hedged, .. } = &mut states[item] {
                                    *hedged = false;
                                }
                            } else {
                                fail_attempt(&mut states[item], err, cfg, &mut pending, &mut out[item]);
                            }
                        }
                    },
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }

        // Sweep deadlines, hedges, and due backoffs: decide per item,
        // then act (the actions re-borrow the state table).
        enum Sweep {
            Timeout,
            Hedge(u32),
            Retry(u32),
            Wait,
        }
        // lint: allow(determinism-taint): supervision clock — scheduling only, plans stay input-pure
        let now = Instant::now();
        for item in 0..n {
            let action = match &mut states[item] {
                ItemState::Running { attempt, dispatched, hedged, .. } => {
                    let elapsed = now.saturating_duration_since(*dispatched);
                    if cfg.deadline.is_some_and(|d| elapsed >= d) {
                        Sweep::Timeout
                    } else if cfg.hedge_after.is_some_and(|h| elapsed >= h)
                        && !*hedged
                        && !pool.saturated()
                    {
                        *hedged = true;
                        Sweep::Hedge(*attempt)
                    } else {
                        Sweep::Wait
                    }
                }
                ItemState::Backoff { attempt, due, .. } if now >= *due => Sweep::Retry(*attempt + 1),
                _ => Sweep::Wait,
            };
            match action {
                Sweep::Timeout => {
                    stats.timeouts += 1;
                    obs::counter_add("shard.zone_timeouts", 1);
                    pool.grow_if_wedged();
                    fail_attempt(&mut states[item], JobError::TimedOut, cfg, &mut pending, &mut out[item]);
                }
                Sweep::Hedge(attempt) => {
                    stats.hedges += 1;
                    obs::counter_add("shard.hedges", 1);
                    dispatch(pool, &tx, make_job(item, attempt), item, attempt);
                }
                Sweep::Retry(attempt) => {
                    stats.retries += 1;
                    obs::counter_add("shard.zone_retries", 1);
                    dispatch(pool, &tx, make_job(item, attempt), item, attempt);
                    states[item] = ItemState::Running { attempt, dispatched: now, hedged: false };
                }
                Sweep::Wait => {}
            }
        }
    }

    obs::counter_add("shard.zone_solves", stats.solved as u64);
    (out, stats)
}

/// Resolve a failed attempt: schedule a backoff retry while attempts
/// remain, otherwise record the terminal error.
fn fail_attempt<T>(
    state: &mut ItemState,
    err: JobError,
    cfg: &PoolConfig,
    pending: &mut usize,
    slot: &mut Result<T, JobError>,
) {
    let attempt = match state {
        ItemState::Running { attempt, .. } => *attempt,
        ItemState::Backoff { attempt, .. } => *attempt,
        ItemState::Done => return,
    };
    if attempt < cfg.retries {
        let delay = cfg.backoff * 2u32.saturating_pow(attempt);
        let _ = &err;
        // lint: allow(determinism-taint): backoff expiry is a scheduling deadline, not plan input
        *state = ItemState::Backoff { attempt, due: Instant::now() + delay };
    } else {
        *slot = Err(err);
        *state = ItemState::Done;
        *pending -= 1;
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Map `f` over `0..n` on up to `threads` scoped workers, isolating
/// panics per item. The borrowed-closure counterpart to
/// [`run_supervised`] for embarrassingly parallel fan-out (experiment
/// harnesses); no deadlines or retries — a panicking item yields
/// `Err(JobError::Panicked)` while every other item still completes.
///
/// With `threads <= 1` (or `n <= 1`) runs inline, which keeps call
/// sites debuggable and deterministic profiles honest (panics are
/// still isolated).
pub fn scoped_map<T, F>(n: usize, threads: usize, f: F) -> Vec<Result<T, JobError>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let run_one = |i: usize| -> Result<T, JobError> {
        catch_unwind(AssertUnwindSafe(|| f(i)))
            .map_err(|payload| JobError::Panicked(panic_message(&*payload)))
    };
    if threads <= 1 || n <= 1 {
        return (0..n).map(run_one).collect();
    }
    let workers = threads.min(n);
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<T, JobError>>>> = (0..n).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let value = run_one(i);
                let mut slot = match slots[i].lock() {
                    Ok(s) => s,
                    Err(poisoned) => poisoned.into_inner(),
                };
                *slot = Some(value);
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            let inner = match slot.into_inner() {
                Ok(s) => s,
                Err(poisoned) => poisoned.into_inner(),
            };
            inner.unwrap_or(Err(JobError::Panicked("work item skipped".to_string())))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> PoolConfig {
        PoolConfig {
            threads: 4,
            deadline: None,
            retries: 2,
            backoff: Duration::from_millis(2),
            hedge_after: None,
        }
    }

    #[test]
    fn values_in_item_order() {
        let pool = Pool::new(4);
        let (out, stats) = run_supervised(&pool, 16, &quick_cfg(), |i, _| {
            Box::new(move || Ok(i * i))
        });
        for (i, r) in out.iter().enumerate() {
            assert_eq!(r.as_ref().copied(), Ok(i * i), "item {i}");
        }
        assert_eq!(stats.solved, 16);
        assert_eq!(stats.panics + stats.timeouts + stats.retries + stats.hedges, 0);
    }

    #[test]
    fn panics_are_isolated_and_terminal_after_retries() {
        let pool = Pool::new(2);
        let (out, stats) = run_supervised(&pool, 6, &quick_cfg(), |i, _| {
            Box::new(move || {
                if i == 3 {
                    panic!("chaos item");
                }
                Ok(i)
            })
        });
        for (i, r) in out.iter().enumerate() {
            if i == 3 {
                assert!(matches!(r, Err(JobError::Panicked(msg)) if msg.contains("chaos")));
            } else {
                assert_eq!(r.as_ref().copied(), Ok(i));
            }
        }
        // First attempt + 2 retries all panicked.
        assert_eq!(stats.panics, 3);
        assert_eq!(stats.retries, 2);
        assert_eq!(stats.solved, 5);
    }

    #[test]
    fn transient_panic_recovers_on_retry() {
        let pool = Pool::new(2);
        let (out, stats) = run_supervised(&pool, 3, &quick_cfg(), |i, attempt| {
            Box::new(move || {
                if i == 1 && attempt == 0 {
                    panic!("transient");
                }
                Ok(i + 100)
            })
        });
        for (i, r) in out.iter().enumerate() {
            assert_eq!(r.as_ref().copied(), Ok(i + 100));
        }
        assert_eq!(stats.panics, 1);
        assert_eq!(stats.retries, 1);
        assert_eq!(stats.solved, 3);
    }

    #[test]
    fn hung_worker_times_out_without_blocking_the_supervisor() {
        let pool = Pool::new(2);
        let cfg = PoolConfig {
            threads: 2,
            deadline: Some(Duration::from_millis(40)),
            retries: 1,
            backoff: Duration::from_millis(2),
            hedge_after: None,
        };
        let started = Instant::now();
        let (out, stats) = run_supervised(&pool, 3, &cfg, |i, _| {
            Box::new(move || {
                if i == 0 {
                    // Far beyond the deadline on every attempt.
                    std::thread::sleep(Duration::from_millis(800));
                    return Err("stalled".to_string());
                }
                Ok(i)
            })
        });
        assert!(matches!(out[0], Err(JobError::TimedOut)));
        assert_eq!(out[1].as_ref().copied(), Ok(1));
        assert_eq!(out[2].as_ref().copied(), Ok(2));
        assert!(stats.timeouts >= 2, "both attempts should time out, saw {stats:?}");
        // Supervisor returned long before the 800 ms sleeper finished.
        assert!(started.elapsed() < Duration::from_millis(700), "took {:?}", started.elapsed());
    }

    #[test]
    fn typed_errors_retry_then_surface() {
        let pool = Pool::new(2);
        let (out, stats) = run_supervised(&pool, 2, &quick_cfg(), |i, _| {
            Box::new(move || {
                if i == 0 {
                    Err("no feasible plan".to_string())
                } else {
                    Ok(7usize)
                }
            })
        });
        assert!(matches!(&out[0], Err(JobError::Failed(m)) if m == "no feasible plan"));
        assert_eq!(out[1].as_ref().copied(), Ok(7));
        assert_eq!(stats.retries, 2);
    }

    #[test]
    fn hedge_first_result_wins() {
        use std::sync::atomic::AtomicU32;
        let pool = Pool::new(4);
        let cfg = PoolConfig {
            threads: 4,
            deadline: Some(Duration::from_secs(5)),
            retries: 0,
            backoff: Duration::from_millis(1),
            hedge_after: Some(Duration::from_millis(20)),
        };
        let dispatches = Arc::new(AtomicU32::new(0));
        let d2 = Arc::clone(&dispatches);
        let (out, stats) = run_supervised(&pool, 1, &cfg, move |_, _| {
            let d = Arc::clone(&d2);
            Box::new(move || {
                // First dispatch stalls well past the hedge point; the
                // speculative duplicate answers immediately.
                if d.fetch_add(1, Ordering::SeqCst) == 0 {
                    std::thread::sleep(Duration::from_millis(400));
                }
                Ok(42u32)
            })
        });
        assert_eq!(out[0].as_ref().copied(), Ok(42));
        assert_eq!(stats.hedges, 1, "{stats:?}");
        assert_eq!(stats.timeouts, 0);
    }

    #[test]
    fn scoped_map_matches_serial_and_isolates_panics() {
        let seq = scoped_map(17, 1, |i| i as f64 * 1.5);
        let par = scoped_map(17, 4, |i| i as f64 * 1.5);
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.as_ref().ok().copied().map(f64::to_bits), b.as_ref().ok().copied().map(f64::to_bits));
        }
        let out = scoped_map(8, 3, |i| {
            if i == 5 {
                panic!("boom {i}");
            }
            i
        });
        for (i, r) in out.iter().enumerate() {
            if i == 5 {
                assert!(matches!(r, Err(JobError::Panicked(m)) if m.contains("boom")));
            } else {
                assert_eq!(r.as_ref().copied(), Ok(i));
            }
        }
        assert!(scoped_map(0, 4, |i| i).is_empty());
    }
}
