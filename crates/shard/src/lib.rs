//! **thermaware-shard** — zone-decomposed fleet solving on a supervised
//! worker pool.
//!
//! The paper's three-stage technique plans one power-constrained room.
//! Real fleets are many rooms behind one feed: a single monolithic solve
//! over 10k nodes is both slow and fragile — one bad zone model or one
//! hung worker should not take the whole plan down. This crate
//! decomposes the fleet:
//!
//! - [`fleet::Fleet`] — the fleet itself: independent zone
//!   [`DataCenter`](thermaware_datacenter::DataCenter)s plus one shared
//!   power budget;
//! - [`profile::ZoneProfile`] — a concave reward-vs-power curve per zone
//!   (piecewise-linear, from the ARR hulls), the master's coordination
//!   currency;
//! - [`master`] — splits the fleet budget across zones by price
//!   bisection over the profiles: a water-filling dual of the Stage-1
//!   power LP, so equal marginal reward per kW across zones;
//! - [`pool`] — a supervised work-stealing worker pool: every job runs
//!   under `catch_unwind` with a per-attempt deadline, bounded
//!   retry/backoff, and straggler hedging (first result wins);
//! - [`solver::FleetSolver`] — the epoch replan loop: dispatch all zone
//!   solves, then walk any failed zone down the fallback ladder
//!   (last-good plan → greedy throttle → all-off), with warm-started
//!   Stage-3 bases carried across replans and crash-resume
//!   ([`state::FleetState`]);
//! - [`chaos`] — deterministic `(epoch, zone, attempt)` fault scripts so
//!   chaotic runs reproduce fault for fault.
//!
//! The decomposition is *answer-preserving* on a healthy fleet: the
//! pooled solve and the sequential monolithic oracle
//! ([`solver::solve_monolithic`]) run the same split and the same
//! per-zone three-stage solves, so they agree to solver tolerance — the
//! agreement proptest enforces this.
//!
//! ```
//! use std::sync::Arc;
//! use thermaware_shard::fleet::{Fleet, FleetParams};
//! use thermaware_shard::solver::{FleetConfig, FleetSolver};
//!
//! let fleet = Arc::new(
//!     Fleet::build(&FleetParams::small(2, 5, 42), 50.0).expect("fleet builds"),
//! );
//! let mut solver = FleetSolver::new(Arc::clone(&fleet), FleetConfig::default());
//! let plan = solver.replan(None);
//! assert_eq!(plan.degraded, 0);
//! plan.verify(&fleet).expect("redlines and budget hold fleet-wide");
//! ```

pub mod chaos;
pub mod fleet;
pub mod master;
pub mod pool;
pub mod profile;
pub mod solver;
pub mod state;

pub use chaos::{ChaosScript, Fault};
pub use fleet::{Fleet, FleetBuildError, FleetParams};
pub use master::{split_budget, BudgetSplit};
pub use pool::{default_threads, run_supervised, scoped_map, JobError, Pool, PoolConfig, RunStats};
pub use profile::ZoneProfile;
pub use solver::{
    solve_monolithic, solve_zone, FleetConfig, FleetPlan, FleetSolver,
};
pub use state::{FallbackKind, FleetState, ZonePlan, ZoneSlot, STATE_VERSION};
