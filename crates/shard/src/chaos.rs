//! Deterministic fault injection for zone workers.
//!
//! A [`ChaosScript`] is a map from `(epoch, zone, attempt)` to the fault
//! the worker should suffer on that exact dispatch. Scripts are plain
//! data: the proptests generate them from a seed, the CI drill writes
//! them literally, and the zone closure consults the script at its own
//! coordinates — so a chaotic run is exactly reproducible, fault for
//! fault.

use std::collections::BTreeMap;

/// What happens to one zone-solve attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// The worker panics before solving.
    Panic,
    /// The worker sleeps this many milliseconds, then reports failure —
    /// a hung/deadlocked worker as seen from the supervisor. With a
    /// per-attempt deadline shorter than the stall this is a timeout;
    /// without one it is a slow failed attempt.
    Stall(u64),
    /// The worker returns a typed solve error.
    Error,
}

/// A reproducible fault schedule keyed by `(epoch, zone, attempt)`.
#[derive(Debug, Clone, Default)]
pub struct ChaosScript {
    faults: BTreeMap<(u64, usize, u32), Fault>,
}

impl ChaosScript {
    /// An empty script (no faults).
    pub fn new() -> ChaosScript {
        ChaosScript::default()
    }

    /// Schedule `fault` for one exact dispatch.
    pub fn inject(&mut self, epoch: u64, zone: usize, attempt: u32, fault: Fault) {
        self.faults.insert((epoch, zone, attempt), fault);
    }

    /// Schedule `fault` for every attempt `0..attempts` of a zone in an
    /// epoch — a persistent fault the retry ladder cannot outlast.
    pub fn inject_persistent(&mut self, epoch: u64, zone: usize, attempts: u32, fault: Fault) {
        for a in 0..attempts {
            self.inject(epoch, zone, a, fault.clone());
        }
    }

    /// The fault scheduled for this dispatch, if any.
    pub fn fault(&self, epoch: u64, zone: usize, attempt: u32) -> Option<&Fault> {
        self.faults.get(&(epoch, zone, attempt))
    }

    /// True when no faults are scheduled at all.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// A seeded random script: each `(epoch, zone)` suffers a fault with
    /// probability `p_fault`; faulted pairs fail either transiently
    /// (attempt 0 only) or persistently (all `attempts`), split evenly.
    /// Stalls sleep `stall_ms`. Uses a local splitmix64 stream, so equal
    /// seeds give equal scripts on every platform.
    pub fn seeded(
        seed: u64,
        epochs: u64,
        n_zones: usize,
        attempts: u32,
        p_fault: f64,
        stall_ms: u64,
    ) -> ChaosScript {
        let mut state = seed ^ 0xD1B5_4A32_D192_ED03;
        let mut next = move || -> u64 {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut script = ChaosScript::new();
        for epoch in 0..epochs {
            for zone in 0..n_zones {
                let roll = next() as f64 / u64::MAX as f64;
                if roll >= p_fault {
                    continue;
                }
                let fault = match next() % 3 {
                    0 => Fault::Panic,
                    1 => Fault::Stall(stall_ms),
                    _ => Fault::Error,
                };
                if next() % 2 == 0 {
                    script.inject(epoch, zone, 0, fault);
                } else {
                    script.inject_persistent(epoch, zone, attempts, fault);
                }
            }
        }
        script
    }

    /// Apply this script's decision for a dispatch: panic, stall+fail,
    /// or fail — or return `Ok(())` to let the real work proceed.
    pub fn apply(&self, epoch: u64, zone: usize, attempt: u32) -> Result<(), String> {
        match self.fault(epoch, zone, attempt) {
            None => Ok(()),
            Some(Fault::Panic) => {
                // This panic IS the injected fault: the pool's worker wraps
                // every job in `catch_unwind` (pool.rs) and harvests it as a
                // `JobError::Panicked` retry — it never unwinds out of `replan`.
                // lint: allow(transitive-panic): injected chaos fault, harvested by the pool's catch_unwind
                panic!("chaos: injected panic (epoch {epoch}, zone {zone}, attempt {attempt})")
            }
            Some(Fault::Stall(ms)) => {
                std::thread::sleep(std::time::Duration::from_millis(*ms));
                Err(format!("chaos: stalled worker (epoch {epoch}, zone {zone}, attempt {attempt})"))
            }
            Some(Fault::Error) => {
                Err(format!("chaos: injected error (epoch {epoch}, zone {zone}, attempt {attempt})"))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_scripts_are_reproducible() {
        let a = ChaosScript::seeded(7, 4, 5, 3, 0.5, 10);
        let b = ChaosScript::seeded(7, 4, 5, 3, 0.5, 10);
        assert_eq!(a.faults, b.faults);
        let c = ChaosScript::seeded(8, 4, 5, 3, 0.5, 10);
        assert_ne!(a.faults, c.faults, "different seeds should differ");
    }

    #[test]
    fn persistent_faults_cover_every_attempt() {
        let mut s = ChaosScript::new();
        s.inject_persistent(2, 1, 3, Fault::Error);
        for a in 0..3 {
            assert_eq!(s.fault(2, 1, a), Some(&Fault::Error));
        }
        assert_eq!(s.fault(2, 1, 3), None);
        assert_eq!(s.fault(1, 1, 0), None);
    }

    #[test]
    fn apply_reports_errors_without_panicking_for_error_faults() {
        let mut s = ChaosScript::new();
        s.inject(0, 0, 0, Fault::Error);
        assert!(s.apply(0, 0, 0).is_err());
        assert!(s.apply(0, 1, 0).is_ok());
    }
}
