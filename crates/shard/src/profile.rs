//! Per-zone concave reward-vs-power profiles — the master's view of a
//! zone.
//!
//! Stage 1 inside a zone maximizes reward over the per-node aggregate
//! ARR hulls subject to the zone's power budget (`crates/core/stage1`).
//! The master does not need the zone's thermal detail to split the
//! fleet budget well; it needs the zone's *marginal reward per kW*,
//! which is exactly the multiset of hull segment slopes of the zone's
//! nodes (the same construction `crates/datacenter/src/budget.rs` seeds
//! with its Pmin/Pmax extremes). Core power is converted to estimated
//! total (IT + cooling) power through the zone's own budget extremes:
//! `est_total(c) = p_min + gain·c` with
//! `gain = (p_max − p_min) / core_max` — the zone's average marginal
//! cooling overhead, the linearization the master prices zones with.
//! The estimate only steers the split; every zone solve re-checks the
//! real thermal model against its allocation, so an estimation error
//! costs reward, never feasibility.

use thermaware_core::ArrCurve;
use thermaware_datacenter::DataCenter;

/// A zone's concave reward-vs-power curve in master coordinates.
#[derive(Debug, Clone)]
pub struct ZoneProfile {
    /// Zone total power floor (every core off), kW — Eq. 17's Pmin.
    pub p_min_kw: f64,
    /// Zone total power ceiling (every core at P0), kW — Eq. 17's Pmax.
    pub p_max_kw: f64,
    /// Estimated d(total power)/d(core power) ≥ 1 (cooling overhead).
    pub gain: f64,
    /// `(reward per core kW, core-kW capacity)` hull segments across all
    /// nodes of the zone, sorted by decreasing slope; zero-slope tails
    /// are dropped (spending into them buys no reward).
    pub segments: Vec<(f64, f64)>,
}

impl ZoneProfile {
    /// Build the profile for one zone at the given ψ.
    pub fn build(dc: &DataCenter, psi_percent: f64) -> ZoneProfile {
        // Node-type ARR hulls, then per-node aggregates (g(x) = n·f(x/n)),
        // mirroring Stage 1's curve construction exactly.
        let type_curves: Vec<ArrCurve> = (0..dc.node_types.len())
            .map(|t| {
                ArrCurve::build(&dc.workload, &dc.node_types[t].core.pstates, t, psi_percent)
            })
            .collect();

        let mut segments: Vec<(f64, f64)> = Vec::new();
        let mut core_max = 0.0f64;
        for j in 0..dc.n_nodes() {
            let t = dc.node_type_of[j];
            let cores = dc.node_types[t].cores_per_node;
            let agg = type_curves[t].curve.aggregate_copies(cores);
            let pts = agg.points();
            for w in pts.windows(2) {
                let dx = w[1].0 - w[0].0;
                let dy = w[1].1 - w[0].1;
                if dx > 1e-12 && dy > 1e-12 {
                    segments.push((dy / dx, dx));
                }
            }
            core_max += pts.last().map(|p| p.0).unwrap_or(0.0);
        }
        segments.sort_by(|a, b| b.0.total_cmp(&a.0));

        let p_min_kw = dc.budget.p_min_kw;
        let p_max_kw = dc.budget.p_max_kw;
        let gain = if core_max > 1e-12 {
            ((p_max_kw - p_min_kw) / core_max).max(1.0)
        } else {
            1.0
        };
        ZoneProfile { p_min_kw, p_max_kw, gain, segments }
    }

    /// Core power bought at marginal price `lambda` (reward per *total*
    /// kW): the capacity of every segment whose effective slope beats it.
    pub fn core_at_price(&self, lambda: f64) -> f64 {
        self.segments
            .iter()
            .filter(|(slope, _)| slope / self.gain > lambda)
            .map(|(_, len)| len)
            .sum()
    }

    /// Estimated zone total power when buying at price `lambda`, clamped
    /// to the zone's physical range.
    pub fn est_total_at(&self, lambda: f64) -> f64 {
        (self.p_min_kw + self.gain * self.core_at_price(lambda)).min(self.p_max_kw)
    }

    /// The steepest effective slope (reward per total kW) on offer.
    pub fn max_price(&self) -> f64 {
        self.segments.first().map(|(s, _)| s / self.gain).unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thermaware_datacenter::ScenarioParams;

    fn zone() -> DataCenter {
        ScenarioParams::small_test().build(5).expect("scenario builds")
    }

    #[test]
    fn profile_is_concave_and_bounded() {
        let dc = zone();
        let p = ZoneProfile::build(&dc, 50.0);
        assert!(p.p_min_kw > 0.0 && p.p_min_kw < p.p_max_kw);
        assert!(p.gain >= 1.0);
        // Slopes sorted decreasing = concavity of the merged curve.
        for w in p.segments.windows(2) {
            assert!(w[0].0 >= w[1].0 - 1e-12);
        }
    }

    #[test]
    fn spend_is_monotone_in_price() {
        let dc = zone();
        let p = ZoneProfile::build(&dc, 50.0);
        let hi = p.max_price();
        let mut last = f64::INFINITY;
        for k in 0..10 {
            let lambda = hi * k as f64 / 10.0;
            let spend = p.est_total_at(lambda);
            assert!(spend <= last + 1e-12, "spend must fall as price rises");
            assert!(spend >= p.p_min_kw - 1e-12 && spend <= p.p_max_kw + 1e-12);
            last = spend;
        }
        // Above the steepest slope nothing is bought.
        assert!((p.est_total_at(hi + 1.0) - p.p_min_kw).abs() < 1e-9);
    }
}
