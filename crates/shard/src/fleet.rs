//! A fleet: many thermally independent CRAC zones under one power feed.
//!
//! The paper's instances top out at 150 nodes because Stage 1 couples
//! every node through the room's heat-recirculation matrix. Fleet scale
//! comes from the standard machine-room decomposition (Van Damme et al.,
//! arXiv:1611.00522): the floor is built from containment pods — each
//! with its own CRAC(s) and hot/cold aisles — whose airflow loops are
//! isolated, so cross-pod thermal interference is zero by construction
//! and each pod carries an exact zone-local copy of the paper's model.
//! What still couples the zones is the building's power feed: the fleet
//! budget (Eq. 18 summed over zones) is split across zones by the
//! budget-bisection master in [`crate::master`].

use crate::pool;
use crate::profile::ZoneProfile;
use thermaware_datacenter::{DataCenter, ScenarioParams};

/// Fleet shape: `n_zones` pods, each generated from the same
/// [`ScenarioParams`] template at an independent per-zone seed.
#[derive(Debug, Clone)]
pub struct FleetParams {
    /// Number of zones (pods).
    pub n_zones: usize,
    /// Nodes in each zone (overrides the template's `n_nodes`).
    pub nodes_per_zone: usize,
    /// Per-zone scenario template (CRAC count, workload, redlines...).
    pub zone: ScenarioParams,
    /// Fleet seed; zone `z` builds at a golden-ratio-mixed sub-seed.
    pub seed: u64,
}

impl FleetParams {
    /// A small-pod fleet built from the paper's third simulation set,
    /// scaled down to fast zone solves.
    pub fn small(n_zones: usize, nodes_per_zone: usize, seed: u64) -> FleetParams {
        FleetParams {
            n_zones,
            nodes_per_zone,
            zone: ScenarioParams {
                n_nodes: nodes_per_zone,
                n_crac: 1,
                ..ScenarioParams::small_test()
            },
            seed,
        }
    }
}

/// Fleet build failure: the zone that failed and why.
#[derive(Debug, Clone)]
pub struct FleetBuildError {
    /// The zone that could not be built.
    pub zone: usize,
    /// The underlying scenario error (or worker panic message).
    pub message: String,
}

impl std::fmt::Display for FleetBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "zone {} failed to build: {}", self.zone, self.message)
    }
}

impl std::error::Error for FleetBuildError {}

/// The assembled fleet: per-zone data centers, their reward-vs-power
/// profiles, and the fleet-wide power budget.
#[derive(Debug)]
pub struct Fleet {
    /// One data center per zone, in zone order.
    pub zones: Vec<DataCenter>,
    /// Concave reward-vs-power profile of each zone (the master's view).
    pub profiles: Vec<ZoneProfile>,
    /// Fleet power budget: Eq. 18 summed over zones, `Σ_z Pconst_z`.
    pub budget_kw: f64,
}

impl Fleet {
    /// Build every zone (in parallel, panic-isolated) and derive the
    /// per-zone profiles at `psi_percent`.
    pub fn build(params: &FleetParams, psi_percent: f64) -> Result<Fleet, FleetBuildError> {
        let _span = thermaware_obs::span("shard.fleet_build");
        let n = params.n_zones;
        let threads = pool::default_threads(n);
        let built = pool::scoped_map(n, threads, |z| {
            let zone_params = ScenarioParams {
                n_nodes: params.nodes_per_zone,
                ..params.zone.clone()
            };
            zone_params
                .build(zone_seed(params.seed, z))
                .map(|dc| {
                    let profile = ZoneProfile::build(&dc, psi_percent);
                    (dc, profile)
                })
                .map_err(|e| e.to_string())
        });
        let mut zones = Vec::with_capacity(n);
        let mut profiles = Vec::with_capacity(n);
        for (z, item) in built.into_iter().enumerate() {
            match item {
                Ok(Ok((dc, profile))) => {
                    zones.push(dc);
                    profiles.push(profile);
                }
                Ok(Err(msg)) => return Err(FleetBuildError { zone: z, message: msg }),
                Err(job) => return Err(FleetBuildError { zone: z, message: job.to_string() }),
            }
        }
        let budget_kw = zones.iter().map(|dc| dc.budget.p_const_kw).sum();
        Ok(Fleet { zones, profiles, budget_kw })
    }

    /// Number of zones.
    pub fn n_zones(&self) -> usize {
        self.zones.len()
    }

    /// Total node count across the fleet.
    pub fn n_nodes(&self) -> usize {
        self.zones.iter().map(DataCenter::n_nodes).sum()
    }
}

/// The sub-seed zone `z` builds at: golden-ratio mixing keeps zone
/// streams decorrelated while staying reproducible from the fleet seed.
pub fn zone_seed(fleet_seed: u64, zone: usize) -> u64 {
    fleet_seed.wrapping_add((zone as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_a_small_fleet_with_consistent_budget() {
        let fleet = Fleet::build(&FleetParams::small(3, 6, 11), 50.0).expect("fleet builds");
        assert_eq!(fleet.n_zones(), 3);
        assert_eq!(fleet.n_nodes(), 18);
        let sum: f64 = fleet.zones.iter().map(|z| z.budget.p_const_kw).sum();
        assert!((fleet.budget_kw - sum).abs() < 1e-12);
        for profile in &fleet.profiles {
            assert!(profile.p_min_kw < profile.p_max_kw);
            assert!(!profile.segments.is_empty());
        }
    }

    #[test]
    fn zone_seeds_differ() {
        let a = zone_seed(42, 0);
        let b = zone_seed(42, 1);
        assert_ne!(a, b);
    }
}
