//! The power-budget master: bisect `Pconst` across zones.
//!
//! Dantzig-Wolfe-style price coordination over the concave per-zone
//! reward-vs-power profiles: at marginal price `λ` (reward per total
//! kW), each zone independently buys every hull segment whose effective
//! slope beats `λ`; total spend is nonincreasing in `λ`, so the
//! market-clearing price is found by bisection. Leftover budget (the
//! marginal segment straddling the clearing price) is distributed
//! greedily in zone order up to each zone's physical ceiling — extra
//! headroom can only help a zone's Stage-1 LP, which treats its
//! allocation as a `≤` bound.
//!
//! Whenever `total ≥ Σ_z p_min_z` the split satisfies both
//! `Σ_z B_z ≤ total` (the fleet never oversubscribes its feed) and
//! `B_z ≥ p_min_z` (every zone can at least idle). Below the idle
//! floor, no allocation is physically executable — base power cannot be
//! shed — so the master hands every zone its floor and lets the zone
//! solves' fallback ladder surface the infeasibility.

use crate::profile::ZoneProfile;

/// Bisection iterations: enough for ~1e-15 relative price resolution.
const MAX_ITERS: u32 = 60;

/// Convergence tolerance on spend, relative to the total budget.
const SPEND_TOL: f64 = 1e-9;

/// The master's allocation.
#[derive(Debug, Clone)]
pub struct BudgetSplit {
    /// Per-zone budget, kW; `Σ ≤ total`.
    pub budgets: Vec<f64>,
    /// The clearing price (reward per total kW).
    pub lambda: f64,
    /// Bisection iterations performed.
    pub iterations: u32,
    /// `Σ budgets`, kW.
    pub spent_kw: f64,
}

/// Split `total_kw` across zones by price bisection over their profiles.
pub fn split_budget(total_kw: f64, profiles: &[ZoneProfile]) -> BudgetSplit {
    let n = profiles.len();
    if n == 0 {
        return BudgetSplit { budgets: Vec::new(), lambda: 0.0, iterations: 0, spent_kw: 0.0 };
    }
    let floor: f64 = profiles.iter().map(|p| p.p_min_kw).sum();
    let spend_at = |lambda: f64| -> f64 { profiles.iter().map(|p| p.est_total_at(lambda)).sum() };

    let mut iterations = 0u32;
    let lambda = if floor >= total_kw {
        // Budget below the idle floor: every zone gets its floor (the
        // physical minimum) and the infeasibility surfaces in the zone
        // solves' fallback ladder, not here.
        f64::INFINITY
    } else if spend_at(0.0) <= total_kw {
        // The whole fleet's reward-bearing capacity fits: buy it all.
        0.0
    } else {
        // Invariant: spend(hi) ≤ total < spend(lo).
        let mut lo = 0.0f64;
        let mut hi = profiles.iter().map(ZoneProfile::max_price).fold(0.0f64, f64::max) + 1.0;
        for _ in 0..MAX_ITERS {
            iterations += 1;
            let mid = 0.5 * (lo + hi);
            let spend = spend_at(mid);
            if spend <= total_kw {
                hi = mid;
            } else {
                lo = mid;
            }
            if (spend - total_kw).abs() <= SPEND_TOL * total_kw.max(1.0) {
                break;
            }
        }
        hi
    };

    let mut budgets: Vec<f64> = if lambda.is_infinite() {
        profiles.iter().map(|p| p.p_min_kw).collect()
    } else {
        profiles.iter().map(|p| p.est_total_at(lambda)).collect()
    };

    // Distribute leftover headroom (the marginal straddling segment plus
    // bisection slack) greedily in zone order, capped at each ceiling.
    let mut leftover = total_kw - budgets.iter().sum::<f64>();
    if leftover > 0.0 {
        for (b, p) in budgets.iter_mut().zip(profiles) {
            let give = (p.p_max_kw - *b).min(leftover).max(0.0);
            *b += give;
            leftover -= give;
            if leftover <= 0.0 {
                break;
            }
        }
    }

    let spent_kw = budgets.iter().sum();
    thermaware_obs::counter_add("shard.bisection_iters", u64::from(iterations));
    BudgetSplit { budgets, lambda, iterations, spent_kw }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(p_min: f64, p_max: f64, gain: f64, segments: Vec<(f64, f64)>) -> ZoneProfile {
        ZoneProfile { p_min_kw: p_min, p_max_kw: p_max, gain, segments }
    }

    #[test]
    fn single_zone_gets_the_whole_budget_up_to_ceiling() {
        let p = profile(10.0, 100.0, 1.2, vec![(5.0, 20.0), (2.0, 30.0)]);
        let split = split_budget(55.0, std::slice::from_ref(&p));
        assert!((split.budgets[0] - 55.0).abs() < 1e-9, "got {}", split.budgets[0]);
        // And never beyond the physical ceiling.
        let split = split_budget(500.0, &[p]);
        assert!((split.budgets[0] - 100.0).abs() < 1e-9);
    }

    #[test]
    fn never_oversubscribes_and_respects_floors() {
        let a = profile(10.0, 60.0, 1.1, vec![(4.0, 10.0), (1.0, 20.0)]);
        let b = profile(20.0, 90.0, 1.5, vec![(6.0, 15.0), (0.5, 25.0)]);
        let floor = a.p_min_kw + b.p_min_kw;
        for total in [25.0, 35.0, 60.0, 90.0, 150.0, 400.0] {
            let split = split_budget(total, &[a.clone(), b.clone()]);
            let sum: f64 = split.budgets.iter().sum();
            // Never beyond the feed — except below the idle floor, where
            // the floor itself is the physical minimum.
            assert!(sum <= total.max(floor) + 1e-6, "total {total}: Σ={sum}");
            assert!(split.budgets[0] >= a.p_min_kw - 1e-9);
            assert!(split.budgets[1] >= b.p_min_kw - 1e-9);
        }
    }

    #[test]
    fn steeper_zone_is_funded_first() {
        // Zone B's segments pay 6 reward/kW vs zone A's 1: with budget
        // for only one, B gets the marginal capacity.
        let a = profile(10.0, 60.0, 1.0, vec![(1.0, 30.0)]);
        let b = profile(10.0, 60.0, 1.0, vec![(6.0, 30.0)]);
        let split = split_budget(50.0, &[a, b]);
        // Floors take 20; the remaining 30 should go to B.
        assert!(split.budgets[1] > split.budgets[0], "split {:?}", split.budgets);
        assert!((split.budgets[1] - 40.0).abs() < 1e-6, "split {:?}", split.budgets);
    }

    #[test]
    fn sub_floor_budget_degrades_to_floors() {
        let a = profile(10.0, 60.0, 1.0, vec![(1.0, 30.0)]);
        let b = profile(10.0, 60.0, 1.0, vec![(6.0, 30.0)]);
        let split = split_budget(5.0, &[a, b]);
        assert!((split.budgets[0] - 10.0).abs() < 1e-9);
        assert!((split.budgets[1] - 10.0).abs() < 1e-9);
        assert_eq!(split.iterations, 0);
    }
}
