//! The fleet solver: zone solves on the supervised pool, coordinated by
//! the budget-bisection master, with a degraded-zone fallback ladder.
//!
//! [`FleetSolver::replan`] is the fleet-scale analogue of the runtime
//! supervisor's replan rung. Each epoch it (1) splits the fleet budget
//! across zones by price bisection over the concave zone profiles,
//! (2) dispatches every zone's Stage-1→3 solve to the worker pool —
//! each under `catch_unwind`, a per-attempt deadline, bounded
//! retry/backoff, and straggler hedging — and (3) for every zone that
//! still failed, walks the fallback ladder:
//!
//! 1. **last-good** — reuse the zone's newest fresh plan when it fits
//!    the new allocation (a plan that was feasible stays feasible: the
//!    zone's thermal model did not change);
//! 2. **throttle** — walk the last-good plan under the shrunken
//!    allocation with `thermaware_runtime::degrade` (deepening only
//!    sheds heat, so redline feasibility is preserved);
//! 3. **all-off** — the unconditional floor: every core off at the
//!    zone's all-off optimal outlets.
//!
//! A zone that failed `k` consecutive epochs is not re-dispatched for
//! `min(2^(k−1), 8)` epochs (it rides its fallback plan meanwhile) —
//! the supervisor's bounded-retry/backoff policy at fleet scale.
//! Warm-started Stage-3 bases persist across replans and, through
//! [`FleetSolver::to_state`]/[`FleetSolver::from_state`], across
//! crash-resume.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use crate::chaos::ChaosScript;
use crate::fleet::Fleet;
use crate::master::{self, BudgetSplit};
use crate::pool::{self, Pool, PoolConfig, RunStats};
use crate::state::{FallbackKind, FleetState, ZonePlan, ZoneSlot, STATE_VERSION};
use thermaware_core::stage1::{solve_stage1, Stage1Options};
use thermaware_core::stage2::assign_pstates;
use thermaware_core::stage3::{solve_stage3, solve_stage3_warm};
use thermaware_core::stage3::Stage3Basis;
use thermaware_core::{ObjectiveWeights, SolveError};
use thermaware_datacenter::DataCenter;
use thermaware_obs as obs;

/// Fleet solver policy.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// The ψ parameter for every zone's Stage 1.
    pub psi_percent: f64,
    /// Worker pool sizing and per-attempt failure policy.
    pub pool: PoolConfig,
    /// Epoch-level backoff cap: a repeatedly failing zone is skipped for
    /// at most this many epochs per failure.
    pub max_backoff_epochs: u32,
    /// Step bound for the throttle fallback rung.
    pub throttle_max_steps: usize,
    /// Objective blend every zone's Stage 1 optimizes (reward vs
    /// electricity/carbon cost). The reward-only default reproduces the
    /// historical fleet solver bit for bit.
    pub objective: ObjectiveWeights,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            psi_percent: 50.0,
            pool: PoolConfig::default(),
            max_backoff_epochs: 8,
            throttle_max_steps: 100_000,
            objective: ObjectiveWeights::reward_only(),
        }
    }
}

/// One epoch's fleet-wide plan.
#[derive(Debug, Clone)]
pub struct FleetPlan {
    /// The epoch this plan was produced at.
    pub epoch: u64,
    /// Total reward rate across zones.
    pub reward: f64,
    /// Total actual power (IT + cooling) across zones, kW.
    pub power_kw: f64,
    /// The fleet budget the master split, kW.
    pub budget_kw: f64,
    /// `Σ` of zone allocations, kW (≤ `budget_kw`).
    pub spent_kw: f64,
    /// Bisection iterations the master performed.
    pub bisection_iters: u32,
    /// Zones running a fallback plan this epoch.
    pub degraded: usize,
    /// Per-zone plans, in zone order.
    pub zones: Vec<ZonePlan>,
    /// Pool-level fault statistics for this replan.
    pub stats: RunStats,
}

impl FleetPlan {
    /// Check every invariant the fleet guarantees: per-zone redlines,
    /// per-zone power within allocation (or at the physical floor), and
    /// the fleet feed never oversubscribed. Returns the first violation.
    pub fn verify(&self, fleet: &Fleet) -> Result<(), String> {
        let mut total = 0.0f64;
        let mut floor_sum = 0.0f64;
        for plan in &self.zones {
            let dc = &fleet.zones[plan.zone];
            let powers = dc.node_powers_from_pstates(&plan.pstates);
            let (it, cooling, state) = dc.total_power_kw(&plan.outlets, &powers);
            if !dc.redlines_ok(&state) {
                return Err(format!("zone {}: redline violation", plan.zone));
            }
            let actual = it + cooling;
            if (actual - plan.power_kw).abs() > 1e-6 * actual.max(1.0) {
                return Err(format!(
                    "zone {}: reported power {} vs actual {}",
                    plan.zone, plan.power_kw, actual
                ));
            }
            let floor = dc.budget.p_min_kw;
            if actual > plan.budget_kw.max(floor) + 1e-6 {
                return Err(format!(
                    "zone {}: power {} exceeds allocation {} (floor {})",
                    plan.zone, actual, plan.budget_kw, floor
                ));
            }
            total += actual;
            floor_sum += floor;
        }
        if total > self.budget_kw.max(floor_sum) + 1e-6 {
            return Err(format!(
                "fleet power {} exceeds budget {} (floor {})",
                total, self.budget_kw, floor_sum
            ));
        }
        Ok(())
    }
}

/// Solve one zone under an explicit budget: Stage 1 (CRAC sweep + power
/// LP) → Stage 2 (P-state rounding) → Stage 3 (rate LP, warm-started
/// from `warm` when compatible). This is the job body both the pooled
/// and the monolithic paths run, so decomposition overhead can never
/// change an answer.
pub fn solve_zone(
    dc: &DataCenter,
    zone: usize,
    budget_kw: f64,
    psi_percent: f64,
    objective: &ObjectiveWeights,
    warm: Option<&Stage3Basis>,
) -> Result<(ZonePlan, Option<Stage3Basis>), SolveError> {
    let mut zone_dc = dc.clone();
    zone_dc.budget.p_const_kw = budget_kw;
    let stage1 = match solve_stage1(
        &zone_dc,
        &Stage1Options {
            psi_percent,
            objective: *objective,
            ..Stage1Options::default()
        },
    ) {
        Ok(s) => s,
        Err(err) => {
            // A (near-)floor allocation can be Stage-1 infeasible purely
            // through outlet-grid discretization (`p_min_kw` is itself a
            // discretized bound). When all-off fits the allocation,
            // all-off *is* the optimum under this budget — a legitimate
            // fresh plan, not a degraded one. Genuinely unbuildable
            // budgets (below even all-off) still propagate the error.
            let plan = all_off_plan(&zone_dc, zone, budget_kw);
            if plan.power_kw <= budget_kw + 1e-6 * budget_kw.max(1.0) {
                let mut plan = plan;
                plan.degraded = None;
                return Ok((plan, None));
            }
            return Err(err);
        }
    };
    let pstates = assign_pstates(&zone_dc, &stage1);
    let (stage3, basis) = solve_stage3_warm(&zone_dc, &pstates, warm)?;
    let powers = zone_dc.node_powers_from_pstates(&pstates);
    let (it, cooling, state) = zone_dc.total_power_kw(&stage1.crac_out_c, &powers);
    if !zone_dc.redlines_ok(&state) {
        return Err(SolveError::invalid_input(format!(
            "zone {zone}: rounded plan violates redlines"
        )));
    }
    let plan = ZonePlan {
        zone,
        budget_kw,
        power_kw: it + cooling,
        reward: stage3.reward_rate,
        outlets: stage1.crac_out_c.clone(),
        pstates,
        degraded: None,
    };
    Ok((plan, basis))
}

/// The fleet-scale solver. Owns the worker pool and per-zone carry
/// state; see the module docs for the replan protocol.
pub struct FleetSolver {
    fleet: Arc<Fleet>,
    cfg: FleetConfig,
    pool: Pool,
    epoch: u64,
    zones: Vec<ZoneSlot>,
}

impl FleetSolver {
    /// Build a solver over `fleet`.
    pub fn new(fleet: Arc<Fleet>, cfg: FleetConfig) -> FleetSolver {
        let pool = Pool::new(cfg.pool.threads);
        let zones = (0..fleet.n_zones()).map(|_| ZoneSlot::default()).collect();
        FleetSolver { fleet, cfg, pool, epoch: 0, zones }
    }

    /// The fleet this solver plans for.
    pub fn fleet(&self) -> &Fleet {
        &self.fleet
    }

    /// Snapshot the solver's carry state (PR 2-style crash-resume).
    pub fn to_state(&self) -> FleetState {
        FleetState { version: STATE_VERSION, epoch: self.epoch, zones: self.zones.clone() }
    }

    /// Restore a solver from a snapshot over the same fleet.
    pub fn from_state(
        fleet: Arc<Fleet>,
        cfg: FleetConfig,
        state: &FleetState,
    ) -> Result<FleetSolver, String> {
        if state.version != STATE_VERSION {
            return Err(format!(
                "unsupported fleet state version {} (expected {STATE_VERSION})",
                state.version
            ));
        }
        if state.zones.len() != fleet.n_zones() {
            return Err(format!(
                "snapshot has {} zones, fleet has {}",
                state.zones.len(),
                fleet.n_zones()
            ));
        }
        for (z, slot) in state.zones.iter().enumerate() {
            if let Some(plan) = &slot.last_good {
                let dc = &fleet.zones[z];
                if plan.outlets.len() != dc.n_crac() || plan.pstates.len() != dc.n_cores() {
                    return Err(format!("snapshot zone {z} does not match the fleet topology"));
                }
            }
        }
        let mut solver = FleetSolver::new(fleet, cfg);
        solver.epoch = state.epoch;
        solver.zones = state.zones.clone();
        Ok(solver)
    }

    /// Replan the whole fleet for the next epoch. `chaos` injects
    /// scripted worker faults (tests and drills); pass `None` in
    /// production. Never panics and never returns an infeasible plan —
    /// zones that fail every attempt ride the fallback ladder.
    pub fn replan(&mut self, chaos: Option<&ChaosScript>) -> FleetPlan {
        let _span = obs::span("shard.replan");
        obs::counter_add("shard.replans", 1);
        let epoch = self.epoch;
        self.epoch += 1;

        let split: BudgetSplit = master::split_budget(self.fleet.budget_kw, &self.fleet.profiles);
        let n = self.fleet.n_zones();

        // Epoch-level backoff: a zone mid-skip rides its fallback.
        let mut active: Vec<usize> = Vec::with_capacity(n);
        for z in 0..n {
            if self.zones[z].backoff_skip > 0 {
                self.zones[z].backoff_skip -= 1;
            } else {
                active.push(z);
            }
        }

        // Dispatch the active zones to the supervised pool.
        let fleet = Arc::clone(&self.fleet);
        let chaos: Option<Arc<ChaosScript>> = chaos.map(|c| Arc::new(c.clone()));
        let psi = self.cfg.psi_percent;
        let objective = self.cfg.objective;
        let budgets = split.budgets.clone();
        let bases: Vec<Option<Stage3Basis>> =
            active.iter().map(|&z| self.zones[z].basis.clone()).collect();
        let zone_of_item = active.clone();
        let (results, stats) =
            pool::run_supervised(&self.pool, active.len(), &self.cfg.pool, move |i, attempt| {
                let fleet = Arc::clone(&fleet);
                let chaos = chaos.clone();
                let z = zone_of_item[i];
                let budget = budgets[z];
                let warm = bases[i].clone();
                Box::new(move || {
                    if let Some(script) = &chaos {
                        script.apply(epoch, z, attempt)?;
                    }
                    solve_zone(&fleet.zones[z], z, budget, psi, &objective, warm.as_ref())
                        .map_err(|e| e.to_string())
                })
            });

        // Collect fresh plans; ladder the rest.
        let mut plans: Vec<Option<ZonePlan>> = vec![None; n];
        for (i, result) in results.into_iter().enumerate() {
            let z = active[i];
            match result {
                Ok((plan, basis)) => {
                    if basis.is_some() {
                        self.zones[z].basis = basis;
                    }
                    self.zones[z].last_good = Some(plan.clone());
                    self.zones[z].backoff_skip = 0;
                    self.zones[z].backoff_next = 1;
                    plans[z] = Some(plan);
                }
                Err(_err) => {
                    let next = self.zones[z].backoff_next.max(1);
                    self.zones[z].backoff_skip = next;
                    self.zones[z].backoff_next = (next * 2).min(self.cfg.max_backoff_epochs);
                }
            }
        }
        let mut degraded = 0usize;
        for z in 0..n {
            if plans[z].is_none() {
                degraded += 1;
                plans[z] = Some(self.fallback_plan(z, split.budgets[z]));
            }
        }
        obs::counter_add("shard.degraded_zones", degraded as u64);

        let zones: Vec<ZonePlan> = plans
            .into_iter()
            .map(|p| p.expect("every zone resolved to a plan"))
            .collect();
        let reward: f64 = zones.iter().map(|p| p.reward).sum();
        let power_kw: f64 = zones.iter().map(|p| p.power_kw).sum();
        obs::gauge_set("shard.reward_rate", reward);
        obs::gauge_set("shard.power_kw", power_kw);

        FleetPlan {
            epoch,
            reward,
            power_kw,
            budget_kw: self.fleet.budget_kw,
            spent_kw: split.spent_kw,
            bisection_iters: split.iterations,
            degraded,
            zones,
            stats,
        }
    }

    /// The degraded-zone ladder (module docs rungs 1–3). Always returns
    /// an executable, redline-feasible plan.
    fn fallback_plan(&self, z: usize, budget_kw: f64) -> ZonePlan {
        let dc = &self.fleet.zones[z];
        if let Some(lg) = &self.zones[z].last_good {
            // Rung 1: the last-good plan still fits the new allocation.
            if lg.power_kw <= budget_kw + 1e-9 {
                obs::counter_add("shard.fallback_last_good", 1);
                let mut plan = lg.clone();
                plan.budget_kw = budget_kw;
                plan.degraded = Some(FallbackKind::LastGood);
                return plan;
            }
            // Rung 2: throttle the last-good plan under the allocation.
            let throttled = thermaware_runtime::degrade::throttle_to_budget(
                dc,
                &lg.outlets,
                &lg.pstates,
                budget_kw,
                self.cfg.throttle_max_steps,
            );
            if throttled.fits {
                // Rates for the deepened P-states; the solve is cheap
                // (Stage 3 only) but runs on the master thread, so keep
                // the panic isolation the pool would have given it.
                let rates = catch_unwind(AssertUnwindSafe(|| solve_stage3(dc, &throttled.pstates)));
                if let Ok(Ok(stage3)) = rates {
                    obs::counter_add("shard.fallback_throttle", 1);
                    return ZonePlan {
                        zone: z,
                        budget_kw,
                        power_kw: throttled.it_kw + throttled.cooling_kw,
                        reward: stage3.reward_rate,
                        outlets: lg.outlets.clone(),
                        pstates: throttled.pstates,
                        degraded: Some(FallbackKind::Throttled),
                    };
                }
            }
        }
        // Rung 3: the unconditional floor.
        obs::counter_add("shard.fallback_all_off", 1);
        all_off_plan(dc, z, budget_kw)
    }
}

/// Every core off at the zone's all-off optimal outlets — always
/// feasible (the budget computation proved these outlets cool the
/// all-off load within redlines).
pub fn all_off_plan(dc: &DataCenter, zone: usize, budget_kw: f64) -> ZonePlan {
    let mut pstates = vec![0usize; dc.n_cores()];
    for j in 0..dc.n_nodes() {
        let off = dc.node_type(j).core.pstates.off_index();
        for k in dc.cores_of_node(j) {
            pstates[k] = off;
        }
    }
    let outlets = dc.budget.min_outlets_c.clone();
    let powers = dc.node_powers_from_pstates(&pstates);
    let (it, cooling, _state) = dc.total_power_kw(&outlets, &powers);
    ZonePlan {
        zone,
        budget_kw,
        power_kw: it + cooling,
        reward: 0.0,
        outlets,
        pstates,
        degraded: Some(FallbackKind::AllOff),
    }
}

/// The monolithic oracle: the same split and the same zone solves, run
/// sequentially on the calling thread with no pool, no chaos, and no
/// fallback — errors propagate. The decomposition agreement proptest
/// holds [`FleetSolver::replan`] to this answer.
pub fn solve_monolithic(
    fleet: &Fleet,
    psi_percent: f64,
    objective: &ObjectiveWeights,
) -> Result<FleetPlan, SolveError> {
    let split = master::split_budget(fleet.budget_kw, &fleet.profiles);
    let mut zones = Vec::with_capacity(fleet.n_zones());
    for (z, dc) in fleet.zones.iter().enumerate() {
        let (plan, _basis) = solve_zone(dc, z, split.budgets[z], psi_percent, objective, None)?;
        zones.push(plan);
    }
    let reward: f64 = zones.iter().map(|p| p.reward).sum();
    let power_kw: f64 = zones.iter().map(|p| p.power_kw).sum();
    Ok(FleetPlan {
        epoch: 0,
        reward,
        power_kw,
        budget_kw: fleet.budget_kw,
        spent_kw: split.spent_kw,
        bisection_iters: split.iterations,
        degraded: 0,
        zones,
        stats: RunStats::default(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::Fault;
    use crate::fleet::FleetParams;

    fn small_fleet() -> Arc<Fleet> {
        Arc::new(Fleet::build(&FleetParams::small(2, 5, 17), 50.0).expect("fleet builds"))
    }

    fn cfg() -> FleetConfig {
        FleetConfig {
            pool: PoolConfig { threads: 2, retries: 1, ..PoolConfig::default() },
            ..FleetConfig::default()
        }
    }

    #[test]
    fn healthy_replan_is_feasible_and_rewarding() {
        let fleet = small_fleet();
        let mut solver = FleetSolver::new(Arc::clone(&fleet), cfg());
        let plan = solver.replan(None);
        assert_eq!(plan.degraded, 0);
        assert!(plan.reward > 0.0);
        plan.verify(&fleet).expect("invariants hold");
    }

    #[test]
    fn persistent_zone_fault_degrades_only_that_zone() {
        let fleet = small_fleet();
        let mut solver = FleetSolver::new(Arc::clone(&fleet), cfg());
        // Epoch 0 healthy: seeds last-good plans.
        let healthy = solver.replan(None);
        plan_ok(&healthy, &fleet);
        // Epoch 1: zone 0 panics on every attempt.
        let mut script = ChaosScript::new();
        script.inject_persistent(1, 0, 8, Fault::Panic);
        let faulted = solver.replan(Some(&script));
        assert_eq!(faulted.degraded, 1);
        assert!(faulted.zones[0].degraded.is_some(), "zone 0 must be degraded");
        assert!(faulted.zones[1].degraded.is_none(), "zone 1 must be untouched");
        // Last-good fallback keeps the zone's reward.
        assert!(faulted.reward > 0.9 * healthy.reward);
        plan_ok(&faulted, &fleet);
    }

    #[test]
    fn recovery_converges_to_the_healthy_answer() {
        let fleet = small_fleet();
        let mut solver = FleetSolver::new(Arc::clone(&fleet), cfg());
        let reference = solver.replan(None);
        let mut script = ChaosScript::new();
        script.inject_persistent(1, 1, 8, Fault::Error);
        let faulted = solver.replan(Some(&script));
        assert_eq!(faulted.degraded, 1);
        // Faults cleared: within the backoff bound the solver reconverges.
        let mut last = faulted;
        for _ in 0..10 {
            last = solver.replan(None);
            if last.degraded == 0 {
                break;
            }
        }
        assert_eq!(last.degraded, 0, "backoff must expire and the zone recover");
        let tol = 1e-6 * (1.0 + reference.reward.abs());
        assert!((last.reward - reference.reward).abs() <= tol);
        plan_ok(&last, &fleet);
    }

    #[test]
    fn state_round_trip_resumes_identically() {
        let fleet = small_fleet();
        let mut solver = FleetSolver::new(Arc::clone(&fleet), cfg());
        solver.replan(None);
        let mut script = ChaosScript::new();
        script.inject(1, 0, 0, Fault::Panic);
        solver.replan(Some(&script));

        let state = solver.to_state();
        let json = serde_json::to_string(&state).expect("state serializes");
        let restored_state: crate::state::FleetState =
            serde_json::from_str(&json).expect("state deserializes");
        assert_eq!(state, restored_state);

        let mut restored = FleetSolver::from_state(Arc::clone(&fleet), cfg(), &restored_state)
            .expect("solver restores");
        let a = solver.replan(None);
        let b = restored.replan(None);
        assert_eq!(a.epoch, b.epoch);
        assert_eq!(a.degraded, b.degraded);
        let tol = 1e-9 * (1.0 + a.reward.abs());
        assert!((a.reward - b.reward).abs() <= tol, "resumed replan must match");
    }

    fn plan_ok(plan: &FleetPlan, fleet: &Fleet) {
        plan.verify(fleet).expect("fleet invariants");
    }
}
