//! Serializable fleet-solver state for crash-resume.
//!
//! Mirrors PR 2's supervisor snapshots: everything the solver carries
//! across replans — per-zone last-good plans, warm-start bases, and
//! retry backoff counters — serializes through the vendored serde's
//! `Value` tree, so a solver restored from a snapshot replans exactly
//! like the uninterrupted one (warm bases included).

use serde::{Deserialize, Serialize};
use thermaware_core::stage3::Stage3Basis;

/// How a degraded zone's plan was produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FallbackKind {
    /// The zone's last-good plan, reused unchanged (it fit the budget).
    LastGood,
    /// The last-good plan walked under the budget by the greedy
    /// throttle ladder (`thermaware_runtime::degrade`).
    Throttled,
    /// Every core off at the zone's all-off optimal outlets — the
    /// unconditional floor.
    AllOff,
}

/// One zone's executable plan for this epoch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ZonePlan {
    /// Zone index in the fleet.
    pub zone: usize,
    /// The budget the master allocated this zone, kW.
    pub budget_kw: f64,
    /// Actual total power (IT + cooling) of the plan, kW.
    pub power_kw: f64,
    /// The plan's reward rate (Stage-3 objective; 0 for all-off).
    pub reward: f64,
    /// CRAC outlet set-points, °C.
    pub outlets: Vec<f64>,
    /// Per-core P-states (zone-local global core order).
    pub pstates: Vec<usize>,
    /// `None` for a fresh solve; otherwise which fallback rung produced
    /// this plan.
    pub degraded: Option<FallbackKind>,
}

/// Per-zone solver carry-state.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ZoneSlot {
    /// The newest non-degraded plan this zone produced.
    pub last_good: Option<ZonePlan>,
    /// Stage-3 warm-start basis from the newest fresh solve.
    pub basis: Option<Stage3Basis>,
    /// Epochs left to skip before re-attempting a fresh solve.
    pub backoff_skip: u32,
    /// Skip length of the *next* failure (doubles, capped).
    pub backoff_next: u32,
}

/// A complete, versioned solver snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetState {
    /// Snapshot format version.
    pub version: u32,
    /// The next epoch the solver will replan.
    pub epoch: u64,
    /// Per-zone carry-state, in zone order.
    pub zones: Vec<ZoneSlot>,
}

/// The current snapshot format version.
pub const STATE_VERSION: u32 = 1;
