//! Small slice-based vector helpers used throughout the workspace.
//!
//! These are free functions on `&[f64]` rather than a wrapper type: the
//! callers (simplex tableau rows, thermal state vectors) already own their
//! storage and only need the arithmetic.

/// Dot product of two equal-length slices.
///
/// Panics (in debug builds) if the lengths differ; in release the shorter
/// length wins, which is never what a caller wants, so keep lengths equal.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dot length mismatch");
    // Chunked accumulation: four independent partial sums let the compiler
    // vectorize without `-ffast-math`-style reassociation concerns.
    let mut acc = [0.0_f64; 4];
    let chunks = a.len() / 4;
    for c in 0..chunks {
        let i = c * 4;
        acc[0] += a[i] * b[i];
        acc[1] += a[i + 1] * b[i + 1];
        acc[2] += a[i + 2] * b[i + 2];
        acc[3] += a[i + 3] * b[i + 3];
    }
    let mut tail = 0.0;
    for i in chunks * 4..a.len() {
        tail += a[i] * b[i];
    }
    acc[0] + acc[1] + acc[2] + acc[3] + tail
}

/// `y += alpha * x`, element-wise.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len(), "axpy length mismatch");
    if alpha == 0.0 { // lint: allow(float-eq): exact-zero fast path; any nonzero alpha takes the full path
        return;
    }
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Scale a slice in place: `x *= alpha`.
#[inline]
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x {
        *xi *= alpha;
    }
}

/// Euclidean norm.
#[inline]
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// Infinity norm (maximum absolute entry), 0 for an empty slice.
#[inline]
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
}

/// Maximum absolute difference between two equal-length slices.
#[inline]
pub fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .fold(0.0_f64, |m, (x, y)| m.max((x - y).abs()))
}

/// Sum of a slice.
#[inline]
pub fn sum(x: &[f64]) -> f64 {
    x.iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_handles_all_tail_lengths() {
        // Exercise every remainder class of the 4-wide unrolled loop.
        for n in 0..10 {
            let a: Vec<f64> = (0..n).map(|i| i as f64).collect();
            let b: Vec<f64> = (0..n).map(|i| (i * 2) as f64).collect();
            let expected: f64 = (0..n).map(|i| (i * i * 2) as f64).sum();
            assert_eq!(dot(&a, &b), expected, "n = {n}");
        }
    }

    #[test]
    fn axpy_accumulates() {
        let x = [1.0, 2.0, 3.0];
        let mut y = [10.0, 20.0, 30.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0, 36.0]);
        // alpha = 0 must leave y untouched (and skip the loop).
        axpy(0.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0, 36.0]);
    }

    #[test]
    fn norms_and_sums() {
        let x = [3.0, -4.0];
        assert_eq!(norm2(&x), 5.0);
        assert_eq!(norm_inf(&x), 4.0);
        assert_eq!(sum(&x), -1.0);
        assert_eq!(norm_inf(&[]), 0.0);
    }

    #[test]
    fn max_abs_diff_finds_worst_entry() {
        let a = [1.0, 2.0, 3.0];
        let b = [1.0, 2.5, 2.0];
        assert_eq!(max_abs_diff(&a, &b), 1.0);
    }

    #[test]
    fn scale_in_place() {
        let mut x = [1.0, -2.0];
        scale(-3.0, &mut x);
        assert_eq!(x, [-3.0, 6.0]);
    }
}
