use std::fmt;

/// Errors produced by linear-algebra operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Operand shapes are incompatible for the requested operation.
    ShapeMismatch {
        /// Human-readable description of the operation that failed.
        op: &'static str,
        /// Shape of the left operand as `(rows, cols)`.
        left: (usize, usize),
        /// Shape of the right operand as `(rows, cols)`.
        right: (usize, usize),
    },
    /// The matrix is singular (or numerically so) at the given pivot column.
    Singular {
        /// Column index at which no acceptable pivot was found.
        column: usize,
    },
    /// The matrix is not square where a square matrix is required.
    NotSquare {
        /// Actual shape of the offending matrix.
        shape: (usize, usize),
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::ShapeMismatch { op, left, right } => write!(
                f,
                "shape mismatch in {op}: left is {}x{}, right is {}x{}",
                left.0, left.1, right.0, right.1
            ),
            LinalgError::Singular { column } => {
                write!(f, "matrix is singular: no pivot in column {column}")
            }
            LinalgError::NotSquare { shape } => {
                write!(f, "matrix is {}x{}, expected square", shape.0, shape.1)
            }
        }
    }
}

impl std::error::Error for LinalgError {}
