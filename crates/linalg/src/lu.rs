use crate::{LinalgError, Matrix};

/// LU factorization with partial (row) pivoting: `P A = L U`.
///
/// The factors are stored packed in a single matrix (`U` on and above the
/// diagonal, the unit-lower `L` strictly below it) together with the row
/// permutation. This is the classic LAPACK `getrf` layout.
///
/// The thermal steady-state solver factors `(I - A_nn)` once per scenario
/// and then back-substitutes for every candidate power vector, so the
/// factor/solve split matters.
#[derive(Debug, Clone)]
pub struct Lu {
    /// Packed L (strictly lower, unit diagonal implied) and U (upper).
    lu: Matrix,
    /// `perm[i]` is the row of the original matrix that ended up at row `i`.
    perm: Vec<usize>,
    /// Sign of the permutation, for determinants.
    perm_sign: f64,
}

/// Pivots smaller than this (relative to the matrix scale) are treated as
/// zero, i.e. the matrix is reported singular.
const PIVOT_EPS: f64 = 1e-12;

impl Lu {
    /// Factor a square matrix. Returns [`LinalgError::Singular`] when a
    /// pivot column has no usable entry and [`LinalgError::NotSquare`] for
    /// non-square input.
    pub fn factor(a: &Matrix) -> Result<Self, LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare { shape: a.shape() });
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut perm_sign = 1.0;
        // Scale-aware singularity threshold: a pivot is "zero" relative to
        // the largest entry of the original matrix.
        let scale = a.max_abs().max(1.0);
        let tol = PIVOT_EPS * scale;

        for k in 0..n {
            // Partial pivoting: pick the largest entry in column k at or
            // below the diagonal.
            let mut piv_row = k;
            let mut piv_val = lu[(k, k)].abs();
            for i in k + 1..n {
                let v = lu[(i, k)].abs();
                if v > piv_val {
                    piv_val = v;
                    piv_row = i;
                }
            }
            if piv_val <= tol {
                return Err(LinalgError::Singular { column: k });
            }
            if piv_row != k {
                lu.swap_rows(piv_row, k);
                perm.swap(piv_row, k);
                perm_sign = -perm_sign;
            }
            let pivot = lu[(k, k)];
            for i in k + 1..n {
                let m = lu[(i, k)] / pivot;
                lu[(i, k)] = m;
                if m == 0.0 { // lint: allow(float-eq): exact-zero multiplier skips a no-op elimination row
                    continue;
                }
                // Row update on the contiguous tail of row i.
                let (rk, ri) = lu.two_rows_mut(k, i);
                for j in k + 1..n {
                    ri[j] -= m * rk[j];
                }
            }
        }
        Ok(Lu { lu, perm, perm_sign })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solve `A x = b` for a single right-hand side.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "lu_solve",
                left: (n, n),
                right: (b.len(), 1),
            });
        }
        // Apply the permutation, then forward- and back-substitute.
        let mut x: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        // L y = P b (unit lower triangular).
        for i in 1..n {
            let row = self.lu.row(i);
            let mut s = x[i];
            for j in 0..i {
                s -= row[j] * x[j];
            }
            x[i] = s;
        }
        // U x = y.
        for i in (0..n).rev() {
            let row = self.lu.row(i);
            let mut s = x[i];
            for j in i + 1..n {
                s -= row[j] * x[j];
            }
            x[i] = s / row[i];
        }
        Ok(x)
    }

    /// Solve `A^T x = b` for a single right-hand side.
    ///
    /// With `P A = L U` the transpose factors as `A^T = U^T L^T P`, so the
    /// solve runs `U^T z = b` (forward), `L^T w = z` (backward), then
    /// un-permutes `x[perm[i]] = w[i]`. The revised simplex uses this for
    /// BTRAN (pricing) against the same factorization FTRAN uses, so both
    /// directions share one `factor` call per basis.
    pub fn solve_transposed(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "lu_solve_transposed",
                left: (n, n),
                right: (b.len(), 1),
            });
        }
        let mut w: Vec<f64> = b.to_vec();
        // U^T z = b: U^T is lower triangular with U's diagonal.
        for i in 0..n {
            let mut s = w[i];
            for j in 0..i {
                s -= self.lu[(j, i)] * w[j];
            }
            w[i] = s / self.lu[(i, i)];
        }
        // L^T w = z: L^T is unit upper triangular.
        for i in (0..n).rev() {
            let mut s = w[i];
            for j in i + 1..n {
                s -= self.lu[(j, i)] * w[j];
            }
            w[i] = s;
        }
        // P x = w.
        let mut x = vec![0.0; n];
        for i in 0..n {
            x[self.perm[i]] = w[i];
        }
        Ok(x)
    }

    /// Solve `A X = B` column by column.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix, LinalgError> {
        let n = self.dim();
        if b.rows() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "lu_solve_matrix",
                left: (n, n),
                right: b.shape(),
            });
        }
        let mut x = Matrix::zeros(n, b.cols());
        let mut col = vec![0.0; n];
        for j in 0..b.cols() {
            for i in 0..n {
                col[i] = b[(i, j)];
            }
            let sol = self.solve(&col)?;
            for i in 0..n {
                x[(i, j)] = sol[i];
            }
        }
        Ok(x)
    }

    /// Compute the explicit inverse. Prefer [`Lu::solve`] when only products
    /// with the inverse are needed; the explicit inverse is used where the
    /// same small matrix multiplies many vectors (the thermal constraint
    /// coefficient extraction).
    pub fn inverse(&self) -> Result<Matrix, LinalgError> {
        self.solve_matrix(&Matrix::identity(self.dim()))
    }

    /// Determinant of the original matrix.
    pub fn determinant(&self) -> f64 {
        let mut d = self.perm_sign;
        for i in 0..self.dim() {
            d *= self.lu[(i, i)];
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() <= tol, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn solves_known_system() {
        let a = Matrix::from_rows(&[&[2.0, 1.0, -1.0], &[-3.0, -1.0, 2.0], &[-2.0, 1.0, 2.0]]);
        let lu = Lu::factor(&a).unwrap();
        // Known solution of this textbook system: x = (2, 3, -1).
        let x = lu.solve(&[8.0, -11.0, -3.0]).unwrap();
        assert_close(&x, &[2.0, 3.0, -1.0], 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let lu = Lu::factor(&a).unwrap();
        let x = lu.solve(&[3.0, 7.0]).unwrap();
        assert_close(&x, &[7.0, 3.0], 1e-14);
    }

    #[test]
    fn singular_matrix_is_detected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(matches!(Lu::factor(&a), Err(LinalgError::Singular { .. })));
    }

    #[test]
    fn not_square_is_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(Lu::factor(&a), Err(LinalgError::NotSquare { .. })));
    }

    #[test]
    fn determinant_matches_known_values() {
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]);
        assert!((Lu::factor(&a).unwrap().determinant() - 12.0).abs() < 1e-12);
        // A permutation flips the sign.
        let p = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        assert!((Lu::factor(&p).unwrap().determinant() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let a = Matrix::from_rows(&[&[4.0, 2.0, 0.5], &[2.0, 5.0, 1.0], &[0.5, 1.0, 3.0]]);
        let inv = Lu::factor(&a).unwrap().inverse().unwrap();
        let prod = a.mat_mul(&inv).unwrap();
        let err = prod.sub(&Matrix::identity(3)).unwrap().max_abs();
        assert!(err < 1e-12, "err = {err}");
    }

    #[test]
    fn solve_matrix_matches_columnwise_solve() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let b = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let lu = Lu::factor(&a).unwrap();
        let x = lu.solve_matrix(&b).unwrap();
        let c0 = lu.solve(&[1.0, 0.0]).unwrap();
        let c1 = lu.solve(&[0.0, 1.0]).unwrap();
        assert_close(&x.col(0), &c0, 0.0);
        assert_close(&x.col(1), &c1, 0.0);
    }

    #[test]
    fn rhs_length_mismatch_errors() {
        let a = Matrix::identity(3);
        let lu = Lu::factor(&a).unwrap();
        assert!(lu.solve(&[1.0, 2.0]).is_err());
        assert!(lu.solve_transposed(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn transposed_solve_matches_explicit_transpose() {
        let a = Matrix::from_rows(&[
            &[2.0, 1.0, -1.0, 0.5],
            &[-3.0, -1.0, 2.0, 1.0],
            &[-2.0, 1.0, 2.0, -0.5],
            &[1.0, 4.0, 0.0, 3.0],
        ]);
        let lu = Lu::factor(&a).unwrap();
        let b = [1.0, -2.0, 0.5, 3.0];
        let x = lu.solve_transposed(&b).unwrap();
        let via_t = Lu::factor(&a.transpose()).unwrap().solve(&b).unwrap();
        assert_close(&x, &via_t, 1e-12);
        // Residual check against A^T x = b directly.
        for j in 0..4 {
            let s: f64 = (0..4).map(|i| a[(i, j)] * x[i]).sum();
            assert!((s - b[j]).abs() < 1e-12);
        }
    }

    #[test]
    fn transposed_solve_handles_permutations() {
        // A matrix that forces row swaps in the factorization.
        let a = Matrix::from_rows(&[&[0.0, 2.0, 1.0], &[1.0, 0.0, 3.0], &[4.0, 1.0, 0.0]]);
        let lu = Lu::factor(&a).unwrap();
        let b = [5.0, -1.0, 2.0];
        let x = lu.solve_transposed(&b).unwrap();
        for j in 0..3 {
            let s: f64 = (0..3).map(|i| a[(i, j)] * x[i]).sum();
            assert!((s - b[j]).abs() < 1e-12);
        }
    }
}
