use crate::LinalgError;
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major matrix of `f64`.
///
/// Row-major storage keeps the inner loops of matrix-vector products and
/// Gaussian elimination walking contiguous memory, which is what the
/// simplex tableau and the thermal solver spend their time doing.
#[derive(Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Create a `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Create the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build a matrix from explicit rows. Panics if rows are ragged.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows in Matrix::from_rows");
            data.extend_from_slice(row);
        }
        Matrix { rows: r, cols: c, data }
    }

    /// Build a matrix from a flat row-major buffer. Panics if the buffer
    /// length is not `rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length mismatch");
        Matrix { rows, cols, data }
    }

    /// Build an `n x n` matrix from a function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// True when the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow row `i` as a contiguous slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        debug_assert!(i < self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i` as a contiguous slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        debug_assert!(i < self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow two distinct rows at once (used by pivoting row swaps
    /// and eliminations without cloning).
    pub fn two_rows_mut(&mut self, a: usize, b: usize) -> (&mut [f64], &mut [f64]) {
        assert!(a != b && a < self.rows && b < self.rows);
        let c = self.cols;
        if a < b {
            let (lo, hi) = self.data.split_at_mut(b * c);
            (&mut lo[a * c..(a + 1) * c], &mut hi[..c])
        } else {
            let (lo, hi) = self.data.split_at_mut(a * c);
            let (rb, ra) = (&mut lo[b * c..(b + 1) * c], &mut hi[..c]);
            (ra, rb)
        }
    }

    /// Swap rows `a` and `b`.
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        let (ra, rb) = self.two_rows_mut(a, b);
        ra.swap_with_slice(rb);
    }

    /// Copy column `j` into a fresh vector.
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(j < self.cols);
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Matrix-vector product `y = A x`.
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn mat_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "mat_vec dimension mismatch");
        let mut y = vec![0.0; self.rows];
        for (i, yi) in y.iter_mut().enumerate() {
            *yi = crate::vec_ops::dot(self.row(i), x);
        }
        y
    }

    /// Transposed matrix-vector product `y = A^T x`.
    pub fn mat_vec_t(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows, "mat_vec_t dimension mismatch");
        let mut y = vec![0.0; self.cols];
        for i in 0..self.rows {
            let xi = x[i];
            if xi == 0.0 { // lint: allow(float-eq): sparsity skip on a stored coefficient; exact zeros only
                continue;
            }
            for (yj, aij) in y.iter_mut().zip(self.row(i)) {
                *yj += aij * xi;
            }
        }
        y
    }

    /// Dense matrix-matrix product `C = A B`.
    pub fn mat_mul(&self, other: &Matrix) -> Result<Matrix, LinalgError> {
        if self.cols != other.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "mat_mul",
                left: self.shape(),
                right: other.shape(),
            });
        }
        let mut c = Matrix::zeros(self.rows, other.cols);
        // ikj loop order: the inner loop runs along contiguous rows of
        // `other` and `c`, which is markedly faster than the naive ijk
        // order for row-major storage.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik == 0.0 { // lint: allow(float-eq): sparsity skip on a stored coefficient; exact zeros only
                    continue;
                }
                let brow = other.row(k);
                let crow = c.row_mut(i);
                for (cij, bkj) in crow.iter_mut().zip(brow) {
                    *cij += aik * bkj;
                }
            }
        }
        Ok(c)
    }

    /// Return the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Element-wise sum. Errors on shape mismatch.
    pub fn add(&self, other: &Matrix) -> Result<Matrix, LinalgError> {
        if self.shape() != other.shape() {
            return Err(LinalgError::ShapeMismatch {
                op: "add",
                left: self.shape(),
                right: other.shape(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b)
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Element-wise difference. Errors on shape mismatch.
    pub fn sub(&self, other: &Matrix) -> Result<Matrix, LinalgError> {
        if self.shape() != other.shape() {
            return Err(LinalgError::ShapeMismatch {
                op: "sub",
                left: self.shape(),
                right: other.shape(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a - b)
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Multiply every entry by `s`, in place.
    pub fn scale_in_place(&mut self, s: f64) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Maximum absolute entry (the max norm), 0 for an empty matrix.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
    }

    /// Infinity norm: maximum absolute row sum.
    pub fn norm_inf(&self) -> f64 {
        (0..self.rows)
            .map(|i| self.row(i).iter().map(|v| v.abs()).sum::<f64>())
            .fold(0.0_f64, f64::max)
    }

    /// Flat row-major view of the underlying storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Consume the matrix and return its row-major buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols, "index out of bounds");
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols, "index out of bounds");
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(12) {
            write!(f, "  [")?;
            for j in 0..self.cols.min(12) {
                write!(f, "{:>10.4}", self[(i, j)])?;
                if j + 1 < self.cols.min(12) {
                    write!(f, ", ")?;
                }
            }
            if self.cols > 12 {
                write!(f, ", ...")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > 12 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(3, 4);
        assert_eq!(z.shape(), (3, 4));
        assert!(z.as_slice().iter().all(|&v| v == 0.0)); // lint: allow(float-eq): freshly zeroed buffer is exactly 0.0 by construction

        let id = Matrix::identity(3);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(id[(i, j)], if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_rows_round_trip() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 0)], 3.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.col(0), vec![1.0, 3.0]);
    }

    #[test]
    fn mat_vec_matches_hand_computation() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let y = m.mat_vec(&[1.0, 0.0, -1.0]);
        assert_eq!(y, vec![-2.0, -2.0]);
    }

    #[test]
    fn mat_vec_t_matches_transpose_mat_vec() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let x = [2.0, -1.0];
        let y1 = m.mat_vec_t(&x);
        let y2 = m.transpose().mat_vec(&x);
        assert_eq!(y1, y2);
    }

    #[test]
    fn mat_mul_identity_is_noop() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let p = m.mat_mul(&Matrix::identity(2)).unwrap();
        assert_eq!(p, m);
        let p2 = Matrix::identity(3).mat_mul(&m).unwrap();
        assert_eq!(p2, m);
    }

    #[test]
    fn mat_mul_shape_mismatch_errors() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(
            a.mat_mul(&b),
            Err(LinalgError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn add_sub_are_inverse() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[0.5, -1.0], &[2.0, 0.0]]);
        let s = a.add(&b).unwrap();
        let back = s.sub(&b).unwrap();
        assert_eq!(back, a);
    }

    #[test]
    fn swap_rows_swaps() {
        let mut m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        m.swap_rows(0, 1);
        assert_eq!(m.row(0), &[3.0, 4.0]);
        assert_eq!(m.row(1), &[1.0, 2.0]);
        // Swapping a row with itself is a no-op.
        m.swap_rows(1, 1);
        assert_eq!(m.row(1), &[1.0, 2.0]);
    }

    #[test]
    fn two_rows_mut_both_orders() {
        let mut m = Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 2.0], &[3.0, 3.0]]);
        {
            let (a, b) = m.two_rows_mut(0, 2);
            a[0] = 9.0;
            b[1] = 8.0;
        }
        assert_eq!(m[(0, 0)], 9.0);
        assert_eq!(m[(2, 1)], 8.0);
        {
            let (a, b) = m.two_rows_mut(2, 0);
            assert_eq!(a[1], 8.0);
            assert_eq!(b[0], 9.0);
        }
    }

    #[test]
    fn norms() {
        let m = Matrix::from_rows(&[&[1.0, -5.0], &[2.0, 2.0]]);
        assert_eq!(m.max_abs(), 5.0);
        assert_eq!(m.norm_inf(), 6.0);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(m.transpose().transpose(), m);
    }
}
