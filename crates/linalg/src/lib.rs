//! Dense linear-algebra substrate for the `thermaware` workspace.
//!
//! The thermal steady-state solve (`Tin = A·Tout` fixed point, paper Eq. 5)
//! and the LP simplex both need small-to-medium dense real matrices. This
//! crate provides exactly that: a row-major [`Matrix`] of `f64`, an LU
//! factorization with partial pivoting ([`Lu`]), and a handful of vector
//! helpers. Everything is allocation-conscious in the hot paths (no per-call
//! temporaries beyond the factor itself) per the workspace performance
//! guidelines.
//!
//! The matrices here are at most a few hundred rows (the number of CRAC
//! units plus compute nodes), so a straightforward dense `O(n^3)`
//! factorization is the right tool; no sparse machinery is warranted.
//!
//! # Example
//!
//! ```
//! use thermaware_linalg::{Matrix, Lu};
//!
//! // Solve a 2x2 system A x = b.
//! let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]);
//! let lu = Lu::factor(&a).expect("non-singular");
//! let x = lu.solve(&[1.0, 2.0]).expect("solve");
//! let r = a.mat_vec(&x);
//! assert!((r[0] - 1.0).abs() < 1e-12 && (r[1] - 2.0).abs() < 1e-12);
//! ```

pub mod approx;
mod error;
mod lu;
mod matrix;
pub mod vec_ops;

pub use error::LinalgError;
pub use lu::Lu;
pub use matrix::Matrix;
