//! Tolerant `f64` comparison helpers.
//!
//! The workspace's numerical conventions (DESIGN.md §5) forbid exact
//! `==`/`!=` between computed floating-point values — two mathematically
//! equal results of different evaluation orders are rarely bit-equal,
//! so an exact compare is either a latent flaky assert or a logic bug.
//! The `float-eq` rule of `thermaware-analyze` enforces the ban; these
//! helpers are the sanctioned replacements. Pick by what the comparison
//! means:
//!
//! - [`eq_abs`] — "equal to within a physical tolerance". Use when the
//!   scale is known (temperatures in °C, power in kW): an absolute
//!   epsilon reads as a unit-bearing statement.
//! - [`eq_ulps`] — "equal up to accumulated rounding". Use for
//!   scale-free quantities (reward rates, ratios) where the admissible
//!   error is a few representable steps regardless of magnitude.
//! - `f64::to_bits` equality (no helper needed) — "bit-identical is the
//!   contract". That is the checkpoint-replay guarantee of DESIGN.md §7
//!   and deliberately *stricter* than `==` (it distinguishes `-0.0`
//!   from `0.0` and treats equal NaN payloads as equal).

/// `a` and `b` within `tol` of each other (absolute difference).
///
/// NaN compares unequal to everything, matching IEEE semantics; both
/// infinities of the same sign compare equal.
#[inline]
pub fn eq_abs(a: f64, b: f64, tol: f64) -> bool {
    if a == b {
        // lint: allow(float-eq): fast path; equality of identical bits or infinities is exact by definition
        return true;
    }
    (a - b).abs() <= tol
}

/// `a` and `b` within `max_ulps` representable steps of each other.
///
/// Equality "up to rounding": adjacent `f64` values differ by one ULP
/// (unit in the last place), so `max_ulps = 4` accepts results that
/// diverged by at most four rounding steps. Values of opposite sign
/// (other than `±0.0`) never compare equal, and NaN compares unequal to
/// everything.
#[inline]
pub fn eq_ulps(a: f64, b: f64, max_ulps: u64) -> bool {
    if a.is_nan() || b.is_nan() {
        return false;
    }
    if a == b {
        // lint: allow(float-eq): fast path; also the only way ±0.0 compare equal across signs
        return true;
    }
    if a.is_sign_positive() != b.is_sign_positive() {
        return false;
    }
    // Same sign: the bit patterns of finite f64s are monotone in value,
    // so the ULP distance is the difference of the raw patterns.
    let (ua, ub) = (a.to_bits(), b.to_bits());
    ua.abs_diff(ub) <= max_ulps
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abs_tolerance() {
        assert!(eq_abs(1.0, 1.0 + 1e-13, 1e-12));
        assert!(!eq_abs(1.0, 1.0 + 1e-9, 1e-12));
        assert!(eq_abs(f64::INFINITY, f64::INFINITY, 0.0));
        assert!(!eq_abs(f64::NAN, f64::NAN, 1.0));
        assert!(eq_abs(-0.0, 0.0, 0.0));
    }

    #[test]
    fn ulps_adjacency() {
        let a = 1.0f64;
        let next = f64::from_bits(a.to_bits() + 1);
        assert!(eq_ulps(a, next, 1));
        assert!(!eq_ulps(a, f64::from_bits(a.to_bits() + 5), 4));
        // Sums evaluated in different orders land within a few ulps.
        let s1 = 0.1 + 0.2 + 0.3;
        let s2 = 0.3 + 0.2 + 0.1;
        assert!(eq_ulps(s1, s2, 4));
    }

    #[test]
    fn ulps_signs_and_nan() {
        assert!(eq_ulps(0.0, -0.0, 0));
        assert!(!eq_ulps(1.0, -1.0, u64::MAX));
        assert!(!eq_ulps(f64::NAN, f64::NAN, u64::MAX));
        assert!(eq_ulps(f64::INFINITY, f64::INFINITY, 0));
    }
}
