//! Property-based tests for the LU factorization and matrix ops.

use proptest::prelude::*;
use thermaware_linalg::{vec_ops, Lu, Matrix};

// All strategies below generate diagonally dominant matrices (`D + R` with
// a dominant diagonal `D` and small noise `R`): diagonal dominance keeps the
// condition number bounded so residual assertions can use tight tolerances.

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lu_roundtrip_random_rhs(
        (n, entries, b) in (2usize..10).prop_flat_map(|n| (
            Just(n),
            prop::collection::vec(-1.0_f64..1.0, n * n),
            prop::collection::vec(-50.0_f64..50.0, n),
        ))
    ) {
        let a = Matrix::from_fn(n, n, |i, j| {
            let base = if i == j { n as f64 + 2.0 } else { 0.0 };
            base + entries[i * n + j]
        });
        let lu = Lu::factor(&a).unwrap();
        let x = lu.solve(&b).unwrap();
        let r = a.mat_vec(&x);
        prop_assert!(vec_ops::max_abs_diff(&r, &b) < 1e-8,
            "residual too large: {:?}", vec_ops::max_abs_diff(&r, &b));
    }

    #[test]
    fn inverse_product_is_identity(
        (n, entries) in (2usize..8).prop_flat_map(|n| (
            Just(n),
            prop::collection::vec(-1.0_f64..1.0, n * n),
        ))
    ) {
        let a = Matrix::from_fn(n, n, |i, j| {
            let base = if i == j { n as f64 + 2.0 } else { 0.0 };
            base + entries[i * n + j]
        });
        let inv = Lu::factor(&a).unwrap().inverse().unwrap();
        let prod = a.mat_mul(&inv).unwrap();
        let err = prod.sub(&Matrix::identity(n)).unwrap().max_abs();
        prop_assert!(err < 1e-8, "err = {err}");
    }

    #[test]
    fn matmul_associative_with_vector(
        (m, k, entries_a, entries_b, x) in (1usize..6, 1usize..6).prop_flat_map(|(m, k)| (
            Just(m),
            Just(k),
            prop::collection::vec(-5.0_f64..5.0, m * k),
            prop::collection::vec(-5.0_f64..5.0, k * k),
            prop::collection::vec(-5.0_f64..5.0, k),
        ))
    ) {
        // (A B) x == A (B x)
        let a = Matrix::from_vec(m, k, entries_a);
        let b = Matrix::from_vec(k, k, entries_b);
        let lhs = a.mat_mul(&b).unwrap().mat_vec(&x);
        let rhs = a.mat_vec(&b.mat_vec(&x));
        prop_assert!(vec_ops::max_abs_diff(&lhs, &rhs) < 1e-9);
    }

    #[test]
    fn dot_is_symmetric_and_bilinear(
        (_n, a, b) in (1usize..20).prop_flat_map(|n| (
            Just(n),
            prop::collection::vec(-10.0_f64..10.0, n),
            prop::collection::vec(-10.0_f64..10.0, n),
        ))
    ) {
        let d1 = vec_ops::dot(&a, &b);
        let d2 = vec_ops::dot(&b, &a);
        prop_assert!((d1 - d2).abs() < 1e-10);
        // Scaling one side scales the dot product.
        let mut a2 = a.clone();
        vec_ops::scale(2.0, &mut a2);
        let d3 = vec_ops::dot(&a2, &b);
        prop_assert!((d3 - 2.0 * d1).abs() < 1e-9);
    }
}
