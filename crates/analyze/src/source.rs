//! Per-file analysis context: lexed tokens, line mapping, `#[cfg(test)]`
//! regions, and inline `// lint: allow(<rule>)` escapes.

use crate::lexer::{lex, Token, TokenKind};

/// A source file prepared for rule checks.
pub struct SourceFile {
    /// Workspace-relative path, `/`-separated (e.g.
    /// `crates/core/src/pwl.rs`).
    pub path: String,
    /// Short crate name (`core`, `lp`, …) or `"."` for the facade.
    pub crate_name: String,
    /// Whether the file lives under a `tests/`, `benches/` or
    /// `examples/` directory (whole file is test-adjacent code).
    pub test_target: bool,
    pub text: String,
    pub tokens: Vec<Token>,
    /// Byte offset of the start of each line (line 1 at index 0).
    line_starts: Vec<usize>,
    /// Byte ranges covered by `#[cfg(test)]` / `#[test]` items.
    test_regions: Vec<(usize, usize)>,
    /// `(line, rule)` pairs from `// lint: allow(rule)` comments; an
    /// entry on line N suppresses findings on line N and N+1 (so a
    /// standalone comment line covers the line below it).
    allows: Vec<(usize, String)>,
}

impl SourceFile {
    pub fn new(path: String, crate_name: String, text: String) -> Self {
        let tokens = lex(&text);
        let line_starts = line_starts(&text);
        let test_regions = test_regions(&text, &tokens);
        let allows = allow_directives(&text, &tokens, &line_starts);
        let test_target = path.split('/').any(|c| c == "tests" || c == "benches" || c == "examples");
        SourceFile {
            path,
            crate_name,
            test_target,
            text,
            tokens,
            line_starts,
            test_regions,
            allows,
        }
    }

    /// 1-based line number of a byte offset.
    pub fn line_of(&self, byte: usize) -> usize {
        match self.line_starts.binary_search(&byte) {
            Ok(i) => i + 1,
            Err(i) => i, // insertion point = count of starts <= byte
        }
    }

    /// The trimmed text of a 1-based line (empty for out-of-range).
    pub fn line_text(&self, line: usize) -> &str {
        if line == 0 || line > self.line_starts.len() {
            return "";
        }
        let start = self.line_starts[line - 1];
        let end = self
            .line_starts
            .get(line)
            .copied()
            .unwrap_or(self.text.len());
        self.text[start..end].trim_end_matches(['\n', '\r']).trim()
    }

    /// Whether `byte` falls inside a `#[cfg(test)]` item or `#[test]` fn.
    pub fn in_test_region(&self, byte: usize) -> bool {
        self.test_regions.iter().any(|&(s, e)| byte >= s && byte < e)
    }

    /// Whether a finding of `rule` on 1-based `line` is suppressed by an
    /// inline `// lint: allow(rule)` on the same or preceding line.
    pub fn inline_allowed(&self, rule: &str, line: usize) -> bool {
        self.allows
            .iter()
            .any(|(l, r)| r == rule && (*l == line || *l + 1 == line))
    }

    /// Code tokens only (no whitespace or comments), with their indices
    /// into `self.tokens` preserved via enumeration by the caller.
    pub fn code_tokens(&self) -> impl Iterator<Item = &Token> {
        self.tokens.iter().filter(|t| {
            !matches!(
                t.kind,
                TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
            )
        })
    }
}

fn line_starts(text: &str) -> Vec<usize> {
    let mut starts = vec![0usize];
    for (i, b) in text.bytes().enumerate() {
        if b == b'\n' {
            starts.push(i + 1);
        }
    }
    starts
}

/// Find `#[cfg(test)]` / `#[test]` attributes and mark the byte range of
/// the item they decorate (through the matching close brace, or the
/// terminating `;` for brace-less items).
fn test_regions(text: &str, tokens: &[Token]) -> Vec<(usize, usize)> {
    let code: Vec<&Token> = tokens
        .iter()
        .filter(|t| {
            !matches!(
                t.kind,
                TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
            )
        })
        .collect();
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i < code.len() {
        if let Some(after_attr) = match_test_attr(text, &code, i) {
            let start = code[i].start;
            let end = item_end(text, &code, after_attr);
            regions.push((start, end));
            // Continue scanning *after* the region so nested attributes
            // inside it don't double-count.
            while i < code.len() && code[i].start < end {
                i += 1;
            }
            continue;
        }
        i += 1;
    }
    regions
}

/// If `code[i..]` starts with `#[cfg(test)]` or `#[test]` (or a
/// `cfg_attr(test, …)`), return the index one past the closing `]`.
fn match_test_attr(text: &str, code: &[&Token], i: usize) -> Option<usize> {
    if text_of(text, code, i) != "#" || text_of(text, code, i + 1) != "[" {
        return None;
    }
    // Collect the attribute tokens up to the matching `]`.
    let mut depth = 0usize;
    let mut j = i + 1;
    let mut has_test = false;
    let mut first_ident = None;
    while j < code.len() {
        let t = text_of(text, code, j);
        match t {
            "[" | "(" => depth += 1,
            "]" | ")" => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    break;
                }
            }
            _ => {
                if first_ident.is_none() && code[j].kind == TokenKind::Ident {
                    first_ident = Some(t.to_string());
                }
                if t == "test" {
                    has_test = true;
                }
            }
        }
        j += 1;
    }
    let head = first_ident.unwrap_or_default();
    let is_test_attr = match head.as_str() {
        "test" => true,
        "cfg" | "cfg_attr" => has_test,
        _ => false,
    };
    if is_test_attr {
        Some(j + 1)
    } else {
        None
    }
}

/// End byte of the item starting at `code[i]`: skip any further
/// attributes, then scan to the first `{`/`;` at depth 0 and
/// brace-match.
fn item_end(text: &str, code: &[&Token], mut i: usize) -> usize {
    // Skip stacked attributes (`#[cfg(test)] #[allow(…)] mod t { … }`).
    while text_of(text, code, i) == "#" && text_of(text, code, i + 1) == "[" {
        let mut depth = 0usize;
        let mut j = i + 1;
        while j < code.len() {
            match text_of(text, code, j) {
                "[" | "(" => depth += 1,
                "]" | ")" => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        i = j + 1;
    }
    let mut j = i;
    while j < code.len() {
        match text_of(text, code, j) {
            ";" => return code[j].end,
            "{" => {
                let mut depth = 1usize;
                let mut k = j + 1;
                while k < code.len() && depth > 0 {
                    match text_of(text, code, k) {
                        "{" => depth += 1,
                        "}" => depth -= 1,
                        _ => {}
                    }
                    k += 1;
                }
                return code.get(k.saturating_sub(1)).map(|t| t.end).unwrap_or_else(|| text.len());
            }
            _ => j += 1,
        }
    }
    text.len()
}

fn text_of<'s>(text: &'s str, code: &[&Token], i: usize) -> &'s str {
    code.get(i).map(|t| t.text(text)).unwrap_or("")
}

/// Extract `// lint: allow(rule)` directives (an optional `: reason`
/// tail is permitted and ignored). Only line comments are honored; the
/// directive must be the comment's leading content.
fn allow_directives(text: &str, tokens: &[Token], line_starts: &[usize]) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for t in tokens {
        if t.kind != TokenKind::LineComment {
            continue;
        }
        let body = t.text(text).trim_start_matches('/').trim();
        let Some(rest) = body.strip_prefix("lint:") else {
            continue;
        };
        let rest = rest.trim();
        let Some(rest) = rest.strip_prefix("allow(") else {
            continue;
        };
        let Some(close) = rest.find(')') else {
            continue;
        };
        let line = match line_starts.binary_search(&t.start) {
            Ok(i) => i + 1,
            Err(i) => i,
        };
        for rule in rest[..close].split(',') {
            let rule = rule.trim();
            if !rule.is_empty() {
                out.push((line, rule.to_string()));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_region_covers_mod() {
        let src = "fn live() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn t() { y.unwrap(); }\n}\nfn tail() {}\n";
        let f = SourceFile::new("crates/core/src/x.rs".into(), "core".into(), src.into());
        let live = src.find("x.unwrap").expect("live site");
        let test = src.find("y.unwrap").expect("test site");
        let tail = src.find("tail").expect("tail site");
        assert!(!f.in_test_region(live));
        assert!(f.in_test_region(test));
        assert!(!f.in_test_region(tail));
    }

    #[test]
    fn stacked_attrs_and_test_fn() {
        let src = "#[test]\n#[ignore]\nfn t() { a.unwrap() }\nfn live() {}\n";
        let f = SourceFile::new("p.rs".into(), "core".into(), src.into());
        let inside = src.find("a.unwrap").expect("site");
        assert!(f.in_test_region(inside));
        assert!(!f.in_test_region(src.find("live").expect("live")));
    }

    #[test]
    fn allow_directive_same_and_next_line() {
        let src = "let a = b; // lint: allow(float-eq): exact sentinel\n// lint: allow(determinism)\nlet c = d;\n";
        let f = SourceFile::new("p.rs".into(), "core".into(), src.into());
        assert!(f.inline_allowed("float-eq", 1));
        assert!(f.inline_allowed("determinism", 3));
        assert!(!f.inline_allowed("float-eq", 3));
    }

    #[test]
    fn line_mapping() {
        let f = SourceFile::new("p.rs".into(), "x".into(), "a\nbb\nccc\n".into());
        assert_eq!(f.line_of(0), 1);
        assert_eq!(f.line_of(2), 2);
        assert_eq!(f.line_of(5), 3);
        assert_eq!(f.line_text(2), "bb");
    }
}
