//! CLI for the workspace static-analysis gate.
//!
//! ```text
//! thermaware-analyze --check [--root DIR] [--report FILE]   # CI gate
//! thermaware-analyze --bless [--root DIR]                   # refresh allowlist + API snapshots
//! thermaware-analyze bench --check [--root DIR] [--report FILE]  # bench drift gate
//! thermaware-analyze bench --bless [--root DIR]                  # promote fresh snapshots
//! ```
//!
//! `--check` exits 0 only when the tree is clean: no unsuppressed
//! finding, no stale or malformed allowlist entry, no API-snapshot
//! drift. `--bless` rewrites `crates/analyze/allowlist.txt` from the
//! current findings (inline-allowed sites are *not* blessed — they are
//! already suppressed where they stand) and regenerates
//! `results/api/<crate>.txt`.
//!
//! `bench --check` compares the fresh snapshots the bench binaries
//! wrote to `results/current/` against the committed
//! `results/BENCH_*.json` baselines, gating every manifest metric at
//! ±15%. `bench --bless` validates all current snapshots then promotes
//! them to baselines (all-or-nothing).

use std::path::PathBuf;
use std::process::ExitCode;

use thermaware_analyze::rules::api;
use thermaware_analyze::workspace::Workspace;
use thermaware_analyze::{allowlist, bench, engine, report};

fn main() -> ExitCode {
    let mut raw = std::env::args().skip(1).peekable();
    if raw.peek().map(String::as_str) == Some("bench") {
        raw.next();
        return bench_main(raw);
    }

    let mut root = PathBuf::from(".");
    let mut report_path: Option<PathBuf> = None;
    let mut mode_check = true;

    let mut args = raw;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => mode_check = true,
            "--bless" => mode_check = false,
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage("--root needs a value"),
            },
            "--report" => match args.next() {
                Some(v) => report_path = Some(PathBuf::from(v)),
                None => return usage("--report needs a value"),
            },
            "--help" | "-h" => {
                println!("usage: thermaware-analyze [--check|--bless] [--root DIR] [--report FILE]");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let ws = Workspace::load(&root);
    if ws.crates.is_empty() {
        eprintln!("thermaware-analyze: no workspace found under {}", root.display());
        return ExitCode::from(2);
    }

    if mode_check {
        check(&ws, &root, report_path)
    } else {
        bless(&ws, &root)
    }
}

fn check(ws: &Workspace, root: &std::path::Path, report_path: Option<PathBuf>) -> ExitCode {
    let analysis = engine::analyze_workspace(ws, root);
    print!("{}", report::text(&analysis));
    if let Some(path) = report_path {
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        if let Err(e) = std::fs::write(&path, report::json(&analysis)) {
            eprintln!("thermaware-analyze: cannot write report {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if analysis.clean() {
        println!("analyze: clean");
        ExitCode::SUCCESS
    } else {
        println!("analyze: FAILED — fix the findings above, add `// lint: allow(<rule>): <reason>` at the site, or record debt with --bless");
        ExitCode::FAILURE
    }
}

fn bless(ws: &Workspace, root: &std::path::Path) -> ExitCode {
    // Allowlist: everything still unsuppressed after inline allows.
    let analysis = engine::analyze_workspace(ws, root);
    let mut debt: Vec<_> = analysis
        .unsuppressed
        .iter()
        .chain(analysis.allowlisted.iter())
        // API drift is never debt — bless records the new surface below
        // instead of allowlisting the drift.
        .filter(|f| f.rule != "api-snapshot")
        .cloned()
        .collect();
    debt.sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
    let list_path = root.join(allowlist::ALLOWLIST_PATH);
    if let Err(e) = std::fs::write(&list_path, allowlist::render(&debt)) {
        eprintln!("thermaware-analyze: cannot write {}: {e}", list_path.display());
        return ExitCode::from(2);
    }
    println!("blessed {} allowlist entr(ies) -> {}", debt.len(), list_path.display());

    // API snapshots.
    let dir = root.join(api::SNAPSHOT_DIR);
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("thermaware-analyze: cannot create {}: {e}", dir.display());
        return ExitCode::from(2);
    }
    for (crate_name, sigs) in api::extract(ws) {
        let path = dir.join(api::snapshot_name(&crate_name));
        let mut text = format!(
            "# pub surface of `{}` — extracted by thermaware-analyze; refresh with --bless\n",
            if crate_name == "." { "thermaware" } else { &crate_name }
        );
        for s in &sigs {
            text.push_str(s);
            text.push('\n');
        }
        if let Err(e) = std::fs::write(&path, text) {
            eprintln!("thermaware-analyze: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("snapshot {} item(s) -> {}", sigs.len(), path.display());
    }
    ExitCode::SUCCESS
}

fn bench_main(mut args: impl Iterator<Item = String>) -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut report_path: Option<PathBuf> = None;
    let mut mode_check = true;

    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => mode_check = true,
            "--bless" => mode_check = false,
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage("--root needs a value"),
            },
            "--report" => match args.next() {
                Some(v) => report_path = Some(PathBuf::from(v)),
                None => return usage("--report needs a value"),
            },
            "--help" | "-h" => {
                println!("usage: thermaware-analyze bench [--check|--bless] [--root DIR] [--report FILE]");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown bench argument `{other}`")),
        }
    }

    if mode_check {
        let r = bench::check(&root);
        print!("{}", r.text());
        if let Some(path) = report_path {
            if let Some(parent) = path.parent() {
                let _ = std::fs::create_dir_all(parent);
            }
            if let Err(e) = std::fs::write(&path, r.json()) {
                eprintln!("thermaware-analyze: cannot write report {}: {e}", path.display());
                return ExitCode::from(2);
            }
        }
        if r.clean() {
            println!("bench: clean");
            ExitCode::SUCCESS
        } else {
            println!(
                "bench: FAILED — {} metric(s) drifted past ±{:.0}%; investigate, or promote with `bench --bless`",
                r.drifted(),
                bench::TOLERANCE * 100.0
            );
            ExitCode::FAILURE
        }
    } else {
        match bench::bless(&root) {
            Ok(promoted) => {
                for name in &promoted {
                    println!("promoted {}/{name} -> results/{name}", bench::CURRENT_DIR);
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("thermaware-analyze: bench --bless refused: {e}");
                ExitCode::FAILURE
            }
        }
    }
}

fn usage(err: &str) -> ExitCode {
    eprintln!("thermaware-analyze: {err}\nusage: thermaware-analyze [--check|--bless] [--root DIR] [--report FILE]");
    ExitCode::from(2)
}
