//! A hand-rolled, total Rust lexer.
//!
//! The rule engine needs just enough token structure to tell code from
//! comments and strings, to spot `==` between float operands, and to walk
//! `#[cfg(test)]` regions — not a full parse. This lexer produces a flat
//! token stream with byte spans that **exactly tile the input**: the
//! concatenation of every token's text equals the source verbatim
//! (whitespace and comments are tokens too). That property is what the
//! proptest suite pins down, together with totality: the lexer never
//! panics, on any input, including invalid Rust and binary garbage run
//! through [`String::from_utf8_lossy`].
//!
//! The classically fiddly corners are handled explicitly:
//!
//! - **Nested block comments** — `/* a /* b */ c */` is one comment
//!   (Rust block comments nest, unlike C). Unterminated comments extend
//!   to end of input instead of erroring.
//! - **Raw strings** — `r"..."`, `r#"..."#` with any number of hashes,
//!   and the byte/raw-byte forms `b"..."`, `br#"..."#`. The closing
//!   delimiter must match the opening hash count.
//! - **Lifetimes vs. char literals** — `'a'` is a char literal while
//!   `'a` in `&'a str` is a lifetime; the disambiguation is one char of
//!   lookahead past the quote (a quote right after a single ident char
//!   means char literal).
//! - **Float vs. range** — `0.5` is one float token but `0..5` is an
//!   integer and a `..` operator; a `.` only glues to the number when a
//!   digit (or `e` exponent) follows.
//!
//! Everything unrecognized becomes a one-char [`TokenKind::Unknown`]
//! token, so the cursor always advances and the lexer is total by
//! construction.

/// Classification of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (the lexer does not distinguish).
    Ident,
    /// A lifetime such as `'a` or `'static` (quote included).
    Lifetime,
    /// Character literal, e.g. `'x'` or `'\n'`.
    CharLit,
    /// String literal of any flavor: `"…"`, `r#"…"#`, `b"…"`, `br"…"`.
    StrLit,
    /// Numeric literal. `is_float` on the token distinguishes `1.5`/`1e3`
    /// from `42`/`0xff`.
    Num,
    /// `// …` line comment (newline not included).
    LineComment,
    /// `/* … */` block comment, nesting handled; may be unterminated.
    BlockComment,
    /// Horizontal/vertical whitespace run.
    Whitespace,
    /// Operator or punctuation; multi-char operators the rules care
    /// about (`==`, `!=`, `<=`, `>=`, `::`, `->`, `=>`, `..`, `&&`,
    /// `||`) are single tokens, everything else is one char.
    Punct,
    /// Any byte sequence the lexer has no rule for (kept one char at a
    /// time so progress is guaranteed).
    Unknown,
}

/// One lexed token: classification plus the byte span it occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    /// Byte offset of the first byte, inclusive.
    pub start: usize,
    /// Byte offset one past the last byte, exclusive.
    pub end: usize,
    /// For [`TokenKind::Num`]: whether the literal is a float.
    pub is_float: bool,
}

impl Token {
    /// The token's text within `src` (the string it was lexed from).
    pub fn text<'s>(&self, src: &'s str) -> &'s str {
        src.get(self.start..self.end).unwrap_or("")
    }
}

/// Lex `src` completely. Total: never panics, and the returned spans
/// tile `src` exactly (`tokens[i].end == tokens[i+1].start`, first
/// starts at 0, last ends at `src.len()`).
pub fn lex(src: &str) -> Vec<Token> {
    let bytes = src.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let start = i;
        let (kind, end, is_float) = next_token(src, bytes, i);
        // Defensive: every branch of `next_token` advances, but a lexer
        // that ever loops forever would hang CI, so enforce progress.
        // `start < bytes.len()` by the loop condition, so the clamp
        // bounds are always ordered.
        let end = end.clamp(start + 1, bytes.len());
        tokens.push(Token {
            kind,
            start,
            end,
            is_float,
        });
        i = end;
    }
    tokens
}

/// Lex one token starting at byte `i`. Returns (kind, end, is_float).
fn next_token(src: &str, bytes: &[u8], i: usize) -> (TokenKind, usize, bool) {
    let b = bytes[i];
    match b {
        b' ' | b'\t' | b'\r' | b'\n' => {
            let mut j = i + 1;
            while j < bytes.len() && matches!(bytes[j], b' ' | b'\t' | b'\r' | b'\n') {
                j += 1;
            }
            (TokenKind::Whitespace, j, false)
        }
        b'/' if bytes.get(i + 1) == Some(&b'/') => {
            let mut j = i + 2;
            while j < bytes.len() && bytes[j] != b'\n' {
                j += 1;
            }
            (TokenKind::LineComment, j, false)
        }
        b'/' if bytes.get(i + 1) == Some(&b'*') => (TokenKind::BlockComment, block_comment(bytes, i), false),
        b'r' | b'b' => {
            // Possible raw/byte string prefix: r", r#", b", br", br#", b'.
            if let Some(end) = raw_or_byte_string(bytes, i) {
                (TokenKind::StrLit, end, false)
            } else if b == b'b' && bytes.get(i + 1) == Some(&b'\'') {
                // Byte char literal b'x'.
                let (kind, end) = char_or_lifetime(bytes, i + 1);
                (kind, end, false)
            } else {
                (TokenKind::Ident, ident_end(bytes, i), false)
            }
        }
        b'"' => (TokenKind::StrLit, string_end(bytes, i + 1), false),
        b'\'' => {
            let (kind, end) = char_or_lifetime(bytes, i);
            (kind, end, false)
        }
        b'0'..=b'9' => {
            let (end, is_float) = number_end(bytes, i);
            (TokenKind::Num, end, is_float)
        }
        b'_' | b'a'..=b'z' | b'A'..=b'Z' => (TokenKind::Ident, ident_end(bytes, i), false),
        _ if b >= 0x80 => {
            // Multi-byte UTF-8 scalar: consume the whole scalar so spans
            // stay on char boundaries, classify as Ident (covers
            // non-ASCII identifiers) — close enough for the rules.
            let ch_len = src[i..].chars().next().map(char::len_utf8).unwrap_or(1);
            (TokenKind::Ident, i + ch_len, false)
        }
        _ => {
            // Operators: glue the two-char forms the rules care about.
            const TWO: &[&[u8; 2]] = &[
                b"==", b"!=", b"<=", b">=", b"::", b"->", b"=>", b"..", b"&&", b"||",
            ];
            if let Some(n) = bytes.get(i + 1) {
                let pair = [b, *n];
                if TWO.iter().any(|t| **t == pair) {
                    return (TokenKind::Punct, i + 2, false);
                }
            }
            (TokenKind::Punct, i + 1, false)
        }
    }
}

fn ident_end(bytes: &[u8], i: usize) -> usize {
    let mut j = i + 1;
    while j < bytes.len() && (bytes[j] == b'_' || bytes[j].is_ascii_alphanumeric()) {
        j += 1;
    }
    j
}

/// Nested block comment starting at `/*` (position `i`). Unterminated
/// comments run to end of input.
fn block_comment(bytes: &[u8], i: usize) -> usize {
    let mut depth = 1usize;
    let mut j = i + 2;
    while j + 1 < bytes.len() && depth > 0 {
        if bytes[j] == b'/' && bytes[j + 1] == b'*' {
            depth += 1;
            j += 2;
        } else if bytes[j] == b'*' && bytes[j + 1] == b'/' {
            depth -= 1;
            j += 2;
        } else {
            j += 1;
        }
    }
    if depth > 0 {
        bytes.len()
    } else {
        j
    }
}

/// Ordinary (escaped) string body; `i` points one past the opening
/// quote. Unterminated strings run to end of input.
fn string_end(bytes: &[u8], i: usize) -> usize {
    let mut j = i;
    while j < bytes.len() {
        match bytes[j] {
            b'\\' => j = (j + 2).min(bytes.len()),
            b'"' => return j + 1,
            _ => j += 1,
        }
    }
    bytes.len()
}

/// Raw / byte / raw-byte string starting at `i` (which points at `r` or
/// `b`). Returns `None` when this is not actually a string prefix (plain
/// identifier starting with r/b).
fn raw_or_byte_string(bytes: &[u8], i: usize) -> Option<usize> {
    let mut j = i;
    // Optional order: b, then r (br"…"), or r alone, or b alone before ".
    if bytes.get(j) == Some(&b'b') {
        j += 1;
    }
    let raw = bytes.get(j) == Some(&b'r');
    if raw {
        j += 1;
    }
    let mut hashes = 0usize;
    while bytes.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    if bytes.get(j) != Some(&b'"') {
        return None;
    }
    if !raw {
        if hashes > 0 {
            return None; // b#"…" is not a thing
        }
        // b"…" — escaped like an ordinary string.
        return Some(string_end(bytes, j + 1));
    }
    // Raw: scan for `"` followed by `hashes` hashes; no escapes.
    let mut k = j + 1;
    while k < bytes.len() {
        if bytes[k] == b'"' {
            let mut h = 0usize;
            while h < hashes && bytes.get(k + 1 + h) == Some(&b'#') {
                h += 1;
            }
            if h == hashes {
                return Some(k + 1 + hashes);
            }
        }
        k += 1;
    }
    Some(bytes.len())
}

/// Disambiguate `'a'` (char literal) from `'a` (lifetime); `i` points at
/// the opening quote.
fn char_or_lifetime(bytes: &[u8], i: usize) -> (TokenKind, usize) {
    let next = bytes.get(i + 1).copied();
    match next {
        // `'_` or `'ident…` not closed by a quote right after one char
        // is a lifetime: `'a` in `&'a str`, `'static`, `'_`.
        Some(c) if c == b'_' || c.is_ascii_alphabetic() => {
            if bytes.get(i + 2) == Some(&b'\'') {
                // 'x' — single ident char then closing quote: char literal.
                (TokenKind::CharLit, i + 3)
            } else {
                (TokenKind::Lifetime, ident_end(bytes, i + 1))
            }
        }
        // Escape: '\n', '\u{…}', '\''.
        Some(b'\\') => {
            let mut j = i + 2;
            if j < bytes.len() {
                j += 1; // the escaped char itself
            }
            if bytes.get(j - 1) == Some(&b'u') && bytes.get(j) == Some(&b'{') {
                while j < bytes.len() && bytes[j] != b'}' {
                    j += 1;
                }
                j = (j + 1).min(bytes.len());
            }
            if bytes.get(j) == Some(&b'\'') {
                (TokenKind::CharLit, j + 1)
            } else {
                // Malformed escape — consume through the next quote on
                // this line if any, else just the opening quote.
                (TokenKind::CharLit, malformed_char_end(bytes, j))
            }
        }
        // Any other single char (punct, digit, multi-byte): char literal
        // if a closing quote shows up within one scalar's reach.
        Some(_) => {
            // Find the closing quote within the next 6 bytes (longest
            // UTF-8 scalar is 4, plus slack); otherwise treat the quote
            // as a lone Unknown to keep progress.
            let mut j = i + 1;
            let limit = (i + 7).min(bytes.len());
            while j < limit {
                if bytes[j] == b'\'' {
                    return (TokenKind::CharLit, j + 1);
                }
                j += 1;
            }
            (TokenKind::Unknown, i + 1)
        }
        None => (TokenKind::Unknown, i + 1),
    }
}

fn malformed_char_end(bytes: &[u8], from: usize) -> usize {
    let mut j = from;
    let limit = (from + 16).min(bytes.len());
    while j < limit {
        if bytes[j] == b'\'' {
            return j + 1;
        }
        if bytes[j] == b'\n' {
            break;
        }
        j += 1;
    }
    from.min(bytes.len())
}

/// Numeric literal starting at a digit. Returns (end, is_float).
///
/// Handles `_` separators, `0x`/`0o`/`0b` prefixes, `.5` fractions
/// (only when a digit follows the dot — `0..5` stays an int plus `..`),
/// `e`/`E` exponents with optional sign, and type suffixes (`f64`,
/// `u32`, …) which are consumed as part of the literal.
fn number_end(bytes: &[u8], i: usize) -> (usize, bool) {
    let mut j = i;
    let mut is_float = false;
    // Radix prefix: the body is then hex/oct/bin digits, never float.
    if bytes[j] == b'0' && matches!(bytes.get(j + 1), Some(b'x' | b'o' | b'b' | b'X' | b'O' | b'B')) {
        j += 2;
        while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
            j += 1;
        }
        return (j.max(i + 1), false);
    }
    while j < bytes.len() && (bytes[j].is_ascii_digit() || bytes[j] == b'_') {
        j += 1;
    }
    // Fraction: dot glued only when followed by a digit, or when at end /
    // followed by something that can't continue an expression path
    // (`1.` is a float, `1.max(…)` and `0..n` are not).
    if bytes.get(j) == Some(&b'.') {
        match bytes.get(j + 1) {
            Some(d) if d.is_ascii_digit() => {
                is_float = true;
                j += 1;
                while j < bytes.len() && (bytes[j].is_ascii_digit() || bytes[j] == b'_') {
                    j += 1;
                }
            }
            Some(b'.') => {}                                  // range `0..n`
            Some(c) if c.is_ascii_alphabetic() || *c == b'_' => {} // method call `1.max(2)`
            _ => {
                // `1.` terminal float (followed by `)`, `,`, space, EOF…).
                is_float = true;
                j += 1;
            }
        }
    }
    // Exponent.
    if matches!(bytes.get(j), Some(b'e' | b'E')) {
        let mut k = j + 1;
        if matches!(bytes.get(k), Some(b'+' | b'-')) {
            k += 1;
        }
        if matches!(bytes.get(k), Some(d) if d.is_ascii_digit()) {
            is_float = true;
            j = k;
            while j < bytes.len() && (bytes[j].is_ascii_digit() || bytes[j] == b'_') {
                j += 1;
            }
        }
    }
    // Suffix: f64/f32 force float; integer suffixes consumed silently.
    let suf_start = j;
    while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
        j += 1;
    }
    if bytes[suf_start..j].starts_with(b"f32") || bytes[suf_start..j].starts_with(b"f64") {
        is_float = true;
    }
    (j.max(i + 1), is_float)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, &str)> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind != TokenKind::Whitespace)
            .map(|t| (t.kind, t.text(src)))
            .collect()
    }

    #[test]
    fn tiles_input_exactly() {
        for src in [
            "fn main() { let x = 1.0; }",
            "r#\"raw \" string\"# 'a' 'static /* a /* b */ c */ // tail",
            "let r = b\"bytes\"; let s = br##\"x\"# y\"##;",
            "0..10 1.5e-3 0xff_u32 'x' '\\n' '\\u{1F600}'",
            "",
            "/* unterminated",
            "\"unterminated",
        ] {
            let toks = lex(src);
            let mut pos = 0usize;
            for t in &toks {
                assert_eq!(t.start, pos, "gap in {src:?}");
                assert!(t.end > t.start);
                pos = t.end;
            }
            assert_eq!(pos, src.len(), "didn't reach end of {src:?}");
        }
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let ks = kinds("&'a str 'static 'x' '\\t' b'z'");
        assert_eq!(ks[1], (TokenKind::Lifetime, "'a"));
        assert_eq!(ks[3], (TokenKind::Lifetime, "'static"));
        assert_eq!(ks[4], (TokenKind::CharLit, "'x'"));
        assert_eq!(ks[5], (TokenKind::CharLit, "'\\t'"));
    }

    #[test]
    fn nested_block_comment_is_one_token() {
        let ks = kinds("before /* a /* nested */ b */ after");
        assert_eq!(ks.len(), 3);
        assert_eq!(ks[1].0, TokenKind::BlockComment);
    }

    #[test]
    fn raw_strings_with_hashes() {
        let ks = kinds(r###"r#"contains " quote"# x"###);
        assert_eq!(ks[0].0, TokenKind::StrLit);
        assert_eq!(ks[1], (TokenKind::Ident, "x"));
    }

    #[test]
    fn floats_vs_ranges() {
        let ks = kinds("0..10");
        assert_eq!(ks[0], (TokenKind::Num, "0"));
        assert_eq!(ks[1], (TokenKind::Punct, ".."));
        let ks = kinds("1.5 1e9 2.0f64 7 0xff");
        let floats: Vec<bool> = lex("1.5 1e9 2.0f64 7 0xff")
            .into_iter()
            .filter(|t| t.kind == TokenKind::Num)
            .map(|t| t.is_float)
            .collect();
        assert_eq!(ks.iter().filter(|k| k.0 == TokenKind::Num).count(), 5);
        assert_eq!(floats, vec![true, true, true, false, false]);
    }

    #[test]
    fn double_eq_is_one_token() {
        let ks = kinds("a == b != c :: d");
        assert_eq!(ks[1], (TokenKind::Punct, "=="));
        assert_eq!(ks[3], (TokenKind::Punct, "!="));
        assert_eq!(ks[5], (TokenKind::Punct, "::"));
    }
}
