//! A minimal, total JSON reader for the bench drift gate.
//!
//! The analyzer is zero-dependency by charter (the gate must never fail
//! to build), so the `bench --check` verb cannot use serde. This is a
//! recursive-descent parser for exactly the JSON this workspace's bench
//! binaries emit: objects, arrays, strings (escapes decoded), f64
//! numbers, booleans, null. Like the lexer, it is **total** — any byte
//! soup returns `Err` with a byte offset, never a panic — and bounded:
//! nesting deeper than [`MAX_DEPTH`] is rejected rather than recursed
//! into, so a pathological file cannot blow the stack.
//!
//! Objects preserve key order as written (`Vec<(String, Value)>`): the
//! drift report lists metrics in baseline order, which keeps its output
//! stable across runs.

/// Nesting bound; the bench snapshots use depth 3.
const MAX_DEPTH: usize = 64;

/// One parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup (first match; duplicate keys never occur in
    /// bench output).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Walk a path of object keys.
    pub fn get_path(&self, path: &[&str]) -> Option<&Value> {
        path.iter().try_fold(self, |v, k| v.get(k))
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parse error: message plus byte offset of the offending input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub msg: String,
    pub at: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.at)
    }
}

/// Parse one JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Value, ParseError> {
    let mut p = P { b: text.as_bytes(), i: 0 };
    p.ws();
    let v = p.value(0)?;
    p.ws();
    if p.i != p.b.len() {
        return Err(p.err("trailing input"));
    }
    Ok(v)
}

struct P<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> P<'a> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError { msg: msg.to_string(), at: self.i }
    }

    fn ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), ParseError> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", c as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.lit("true", Value::Bool(true)),
            Some(b'f') => self.lit("false", Value::Bool(false)),
            Some(b'n') => self.lit("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn lit(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.ws();
            self.eat(b':')?;
            self.ws();
            let val = self.value(depth + 1)?;
            fields.push((key, val));
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.ws();
            items.push(self.value(depth + 1)?);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self.b.get(self.i + 1..self.i + 5).ok_or_else(|| self.err("truncated \\u escape"))?;
                            let s = std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.i += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.i += 1;
                }
                Some(_) => {
                    // Copy the full UTF-8 scalar, not byte by byte.
                    let rest = &self.b[self.i..];
                    let len = utf8_len(rest[0]);
                    let chunk = rest.get(..len).ok_or_else(|| self.err("truncated UTF-8"))?;
                    let s = std::str::from_utf8(chunk).map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                    self.i += len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.i += 1;
        }
        let s = std::str::from_utf8(&self.b[start..self.i]).map_err(|_| self.err("bad number"))?;
        s.parse::<f64>().map(Value::Num).map_err(|_| ParseError {
            msg: format!("bad number `{s}`"),
            at: start,
        })
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_bench_shaped_document() {
        let v = parse(
            r#"{"experiment":"lp","total":{"warm_pivots":2302,"pivot_speedup":14.8},"counters":{"lp.solves":46},"neg":-0.61,"flag":true,"none":null,"arr":[1,2]}"#,
        )
        .expect("parse");
        assert_eq!(v.get("experiment").and_then(Value::as_str), Some("lp"));
        assert_eq!(v.get_path(&["total", "warm_pivots"]).and_then(Value::as_f64), Some(2302.0));
        assert_eq!(v.get_path(&["counters", "lp.solves"]).and_then(Value::as_f64), Some(46.0));
        assert_eq!(v.get("neg").and_then(Value::as_f64), Some(-0.61));
        assert_eq!(v.get("flag"), Some(&Value::Bool(true)));
        assert_eq!(v.get("none"), Some(&Value::Null));
        assert_eq!(v.get("arr"), Some(&Value::Arr(vec![Value::Num(1.0), Value::Num(2.0)])));
    }

    #[test]
    fn real_baselines_parse() {
        for name in ["BENCH_lp", "BENCH_shard", "BENCH_scenarios", "BENCH_obs"] {
            let path = format!("{}/../../results/{name}.json", env!("CARGO_MANIFEST_DIR"));
            if let Ok(text) = std::fs::read_to_string(&path) {
                parse(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
            }
        }
    }

    #[test]
    fn errors_not_panics() {
        for bad in ["", "{", "[1,", "{\"a\":}", "tru", "\"\\q\"", "01x", "{\"a\" 1}", "[1 2]", "\u{7f}"] {
            assert!(parse(bad).is_err(), "{bad:?} must be an error");
        }
        // Depth bound: reject, don't overflow.
        let deep = "[".repeat(100_000) + &"]".repeat(100_000);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn escapes_and_unicode() {
        let v = parse(r#""a\n\t\"\\ \u0041 é""#).expect("parse");
        assert_eq!(v.as_str(), Some("a\n\t\"\\ A é"));
    }
}
