//! Report rendering: human-readable text for the terminal and a small
//! hand-rolled JSON document for the CI artifact (the analyzer is
//! dependency-free, so no serde here — the escaping below covers the
//! strings findings actually contain).

use crate::engine::Analysis;
use crate::rules::{Finding, RULES};

/// Terminal report: findings grouped with locations, then a per-rule
/// summary table.
pub fn text(a: &Analysis) -> String {
    let mut out = String::new();
    for f in &a.unsuppressed {
        out.push_str(&format!("{}: {}:{}: {}\n", f.rule, f.path, f.line, f.message));
        if !f.snippet.is_empty() {
            out.push_str(&format!("    | {}\n", f.snippet));
        }
        for (i, step) in f.witness.iter().enumerate() {
            out.push_str(&format!("    {} {step}\n", if i == 0 { "via" } else { " ->" }));
        }
    }
    for e in &a.stale_entries {
        out.push_str(&format!(
            "stale-allowlist: crates/analyze/allowlist.txt:{}: entry `{} {}:{}` matches no finding — drop it (or --bless)\n",
            e.at, e.rule, e.path, e.line
        ));
    }
    for m in &a.malformed {
        out.push_str(m);
        out.push('\n');
    }

    out.push_str("\nrule                unsuppressed  allowlisted  inline-allowed\n");
    for rule in RULES {
        let c = |v: &[Finding]| v.iter().filter(|f| f.rule == rule).count();
        out.push_str(&format!(
            "{rule:<19} {:>12} {:>12} {:>15}\n",
            c(&a.unsuppressed),
            c(&a.allowlisted),
            c(&a.inline_allowed),
        ));
    }
    out.push_str(&format!(
        "\n{} finding(s) total; {} unsuppressed, {} stale allowlist entr(ies), {} malformed line(s)\n",
        a.total_raw(),
        a.unsuppressed.len(),
        a.stale_entries.len(),
        a.malformed.len()
    ));
    out
}

/// JSON report for the CI artifact.
pub fn json(a: &Analysis) -> String {
    let mut out = String::from("{\n  \"schema\": \"thermaware-analyze/v1\",\n");
    out.push_str(&format!("  \"clean\": {},\n", a.clean()));
    out.push_str("  \"unsuppressed\": [");
    out.push_str(&findings_json(&a.unsuppressed));
    out.push_str("],\n  \"allowlisted\": [");
    out.push_str(&findings_json(&a.allowlisted));
    out.push_str("],\n  \"inline_allowed\": [");
    out.push_str(&findings_json(&a.inline_allowed));
    out.push_str("],\n  \"stale_allowlist_entries\": [");
    let stale: Vec<String> = a
        .stale_entries
        .iter()
        .map(|e| {
            format!(
                "{{\"rule\": {}, \"path\": {}, \"line\": {}}}",
                quote(&e.rule),
                quote(&e.path),
                e.line
            )
        })
        .collect();
    out.push_str(&stale.join(", "));
    out.push_str("]\n}\n");
    out
}

fn findings_json(fs: &[Finding]) -> String {
    let items: Vec<String> = fs
        .iter()
        .map(|f| {
            let witness = if f.witness.is_empty() {
                String::new()
            } else {
                let steps: Vec<String> = f.witness.iter().map(|s| quote(s)).collect();
                format!(", \"witness\": [{}]", steps.join(", "))
            };
            format!(
                "\n    {{\"rule\": {}, \"path\": {}, \"line\": {}, \"message\": {}, \"snippet\": {}{witness}}}",
                quote(f.rule),
                quote(&f.path),
                f.line,
                quote(&f.message),
                quote(&f.snippet)
            )
        })
        .collect();
    if items.is_empty() {
        String::new()
    } else {
        format!("{}\n  ", items.join(","))
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
