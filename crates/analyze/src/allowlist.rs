//! The tracked allowlist: legacy findings accepted as explicit debt.
//!
//! Lives at `crates/analyze/allowlist.txt`, one entry per line:
//!
//! ```text
//! <rule>\t<path>\t<line>\t<trimmed source line>
//! ```
//!
//! An entry suppresses exactly one finding — same rule, same file, same
//! line, **same trimmed line text**. The text match is what keeps the
//! list honest: editing the offending line (even re-indenting around it)
//! invalidates the entry, so debt cannot silently survive a rewrite.
//! Two failure directions, both fatal in `--check`:
//!
//! - a finding with no matching entry (and no inline allow) — new debt;
//! - an entry with no matching finding — **stale**, the debt was paid
//!   (or the line moved) and the entry must be dropped, which
//!   `--bless` does.
//!
//! The self-check test (`crates/analyze/tests/selfcheck.rs`) holds the
//! shipped list to exactly the current tree.

use crate::rules::Finding;
use std::fs;
use std::path::Path;

/// Workspace-relative location of the tracked allowlist.
pub const ALLOWLIST_PATH: &str = "crates/analyze/allowlist.txt";

/// One parsed allowlist entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    pub rule: String,
    pub path: String,
    pub line: usize,
    pub snippet: String,
    /// 1-based line in allowlist.txt itself (for stale reports).
    pub at: usize,
}

impl Entry {
    pub fn matches(&self, f: &Finding) -> bool {
        self.rule == f.rule && self.path == f.path && self.line == f.line && self.snippet == f.snippet
    }
}

/// Parse the allowlist at `root`. A missing file is an empty list (the
/// goal state); malformed lines are returned separately so `--check`
/// can reject them rather than silently ignoring debt.
pub fn load(root: &Path) -> (Vec<Entry>, Vec<String>) {
    let text = fs::read_to_string(root.join(ALLOWLIST_PATH)).unwrap_or_default();
    let mut entries = Vec::new();
    let mut malformed = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.splitn(4, '\t');
        let (rule, path, line_no, snippet) = (
            parts.next().unwrap_or(""),
            parts.next().unwrap_or(""),
            parts.next().unwrap_or(""),
            parts.next().unwrap_or(""),
        );
        match line_no.parse::<usize>() {
            Ok(n) if !rule.is_empty() && !path.is_empty() => entries.push(Entry {
                rule: rule.to_string(),
                path: path.to_string(),
                line: n,
                snippet: snippet.to_string(),
                at: idx + 1,
            }),
            _ => malformed.push(format!("{}:{}: malformed allowlist entry", ALLOWLIST_PATH, idx + 1)),
        }
    }
    (entries, malformed)
}

/// Serialize `findings` as a fresh allowlist (what `--bless` writes).
pub fn render(findings: &[Finding]) -> String {
    let mut out = String::from(
        "# thermaware-analyze allowlist — tracked legacy debt.\n\
         # One finding per line: rule<TAB>path<TAB>line<TAB>trimmed source line.\n\
         # Entries must match the tree exactly; `thermaware-analyze --bless` regenerates.\n",
    );
    for f in findings {
        out.push_str(&format!("{}\t{}\t{}\t{}\n", f.rule, f.path, f.line, f.snippet));
    }
    out
}
