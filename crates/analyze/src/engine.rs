//! Orchestration: run the rules, apply the two suppression layers
//! (inline `// lint: allow(...)` escapes, then the tracked allowlist),
//! and classify the result for `--check` / `--bless`.

use crate::allowlist::{self, Entry};
use crate::rules::{self, Finding};
use crate::workspace::Workspace;
use std::path::Path;

/// Outcome of a full analysis pass.
pub struct Analysis {
    /// Findings not covered by an inline allow or an allowlist entry —
    /// each one fails `--check`.
    pub unsuppressed: Vec<Finding>,
    /// Findings suppressed by the tracked allowlist (reported for
    /// visibility; the debt ledger).
    pub allowlisted: Vec<Finding>,
    /// Findings suppressed at the site by `// lint: allow(<rule>)`.
    pub inline_allowed: Vec<Finding>,
    /// Allowlist entries that matched nothing — stale debt records;
    /// each one fails `--check`.
    pub stale_entries: Vec<Entry>,
    /// Malformed allowlist lines; fail `--check`.
    pub malformed: Vec<String>,
}

impl Analysis {
    pub fn clean(&self) -> bool {
        self.unsuppressed.is_empty() && self.stale_entries.is_empty() && self.malformed.is_empty()
    }

    pub fn total_raw(&self) -> usize {
        self.unsuppressed.len() + self.allowlisted.len() + self.inline_allowed.len()
    }
}

/// Run every rule over the workspace at `root` and apply suppressions.
pub fn analyze(root: &Path) -> Analysis {
    let ws = Workspace::load(root);
    analyze_workspace(&ws, root)
}

/// Same as [`analyze`] but over an already-loaded workspace (the tests
/// drive fixture trees through this).
pub fn analyze_workspace(ws: &Workspace, root: &Path) -> Analysis {
    let findings = rules::run_all(ws);
    let (entries, malformed) = allowlist::load(root);

    let mut unsuppressed = Vec::new();
    let mut allowlisted = Vec::new();
    let mut inline_allowed = Vec::new();
    let mut entry_used = vec![false; entries.len()];

    for f in findings {
        let inline = ws
            .files
            .iter()
            .find(|file| file.path == f.path)
            .is_some_and(|file| file.inline_allowed(f.rule, f.line));
        if inline {
            inline_allowed.push(f);
            continue;
        }
        if let Some(i) = entries.iter().position(|e| e.matches(&f)) {
            entry_used[i] = true;
            allowlisted.push(f);
            continue;
        }
        unsuppressed.push(f);
    }

    let stale_entries = entries
        .into_iter()
        .zip(entry_used)
        .filter(|(_, used)| !used)
        .map(|(e, _)| e)
        .collect();

    Analysis {
        unsuppressed,
        allowlisted,
        inline_allowed,
        stale_entries,
        malformed,
    }
}
