//! Workspace discovery: enumerate crates, parse their `[dependencies]`
//! sections for intra-workspace edges, and load every Rust source into a
//! [`SourceFile`].
//!
//! Only `std::fs` is used (the analyzer is dependency-free); Cargo.toml
//! parsing is a deliberately small line-based scan that understands
//! exactly the subset this workspace writes: section headers and
//! `name = …` / `name.workspace = true` dependency keys.

use crate::source::SourceFile;
use std::fs;
use std::path::{Path, PathBuf};

/// One workspace member under `crates/` (or the root facade).
pub struct CrateInfo {
    /// Short name: `core`, `lp`, … or `"."` for the root facade crate.
    pub name: String,
    /// Workspace-relative directory, e.g. `crates/core`.
    pub dir: String,
    /// `thermaware-*` crates listed under `[dependencies]`
    /// (dev-dependencies deliberately excluded — the layering DAG
    /// governs what ships, not what tests link).
    pub deps: Vec<Dep>,
}

/// One intra-workspace dependency edge, with its Cargo.toml line for
/// findings.
pub struct Dep {
    /// Short name of the dependency crate (`core`, `lp`, …).
    pub name: String,
    /// 1-based line in the depending crate's Cargo.toml.
    pub line: usize,
}

/// The loaded workspace: crates plus every lexed source file.
pub struct Workspace {
    pub root: PathBuf,
    pub crates: Vec<CrateInfo>,
    pub files: Vec<SourceFile>,
}

impl Workspace {
    /// Load the workspace rooted at `root`. IO errors on individual
    /// files are skipped (a vanished file is not a lint finding); an
    /// unreadable root yields an empty workspace the caller can detect
    /// by `crates.is_empty()`.
    pub fn load(root: &Path) -> Workspace {
        let mut crates = Vec::new();
        let mut files = Vec::new();

        // Members under crates/*.
        let crates_dir = root.join("crates");
        for dir in sorted_dirs(&crates_dir) {
            let name = file_name(&dir);
            let manifest = dir.join("Cargo.toml");
            if !manifest.is_file() {
                continue;
            }
            let deps = workspace_deps(&manifest);
            load_crate_files(root, &dir, &name, &mut files);
            crates.push(CrateInfo {
                name: name.clone(),
                dir: rel(root, &dir),
                deps,
            });
        }

        // The root facade crate (src/, tests/, examples/ at the root).
        if root.join("Cargo.toml").is_file() {
            let deps = workspace_deps(&root.join("Cargo.toml"));
            load_crate_files(root, root, ".", &mut files);
            crates.push(CrateInfo {
                name: ".".into(),
                dir: ".".into(),
                deps,
            });
        }

        files.sort_by(|a, b| a.path.cmp(&b.path));
        Workspace {
            root: root.to_path_buf(),
            crates,
            files,
        }
    }

    pub fn crate_info(&self, name: &str) -> Option<&CrateInfo> {
        self.crates.iter().find(|c| c.name == name)
    }

    /// All files belonging to `crate_name`.
    pub fn crate_files<'a>(&'a self, crate_name: &'a str) -> impl Iterator<Item = &'a SourceFile> {
        self.files.iter().filter(move |f| f.crate_name == crate_name)
    }
}

/// `thermaware-*` dependency edges (short name + line) from
/// `[dependencies]`.
fn workspace_deps(manifest: &Path) -> Vec<Dep> {
    let Ok(text) = fs::read_to_string(manifest) else {
        return Vec::new();
    };
    let mut deps = Vec::new();
    let mut in_deps = false;
    for (idx, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.starts_with('[') {
            in_deps = line == "[dependencies]";
            continue;
        }
        if !in_deps || line.starts_with('#') {
            continue;
        }
        // `thermaware-core.workspace = true` or `thermaware-core = { … }`.
        let Some(key) = line.split(['=', '.']).next() else {
            continue;
        };
        let key = key.trim();
        if let Some(short) = key.strip_prefix("thermaware-") {
            deps.push(Dep {
                name: short.to_string(),
                line: idx + 1,
            });
        }
    }
    deps
}

/// Load `src/`, `tests/`, `benches/`, `examples/` of one crate.
fn load_crate_files(root: &Path, crate_dir: &Path, crate_name: &str, out: &mut Vec<SourceFile>) {
    for sub in ["src", "tests", "benches", "examples"] {
        let dir = crate_dir.join(sub);
        if dir.is_dir() {
            walk_rs(root, &dir, crate_name, out);
        }
    }
}

fn walk_rs(root: &Path, dir: &Path, crate_name: &str, out: &mut Vec<SourceFile>) {
    let mut entries: Vec<PathBuf> = match fs::read_dir(dir) {
        Ok(rd) => rd.filter_map(|e| e.ok()).map(|e| e.path()).collect(),
        Err(_) => return,
    };
    entries.sort();
    for path in entries {
        if path.is_dir() {
            // Golden fixture trees contain *seeded* violations — they are
            // test data for the analyzer itself, never findings.
            if file_name(&path) == "fixtures" {
                continue;
            }
            walk_rs(root, &path, crate_name, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            if let Ok(text) = fs::read_to_string(&path) {
                out.push(SourceFile::new(rel(root, &path), crate_name.to_string(), text));
            }
        }
    }
}

fn sorted_dirs(dir: &Path) -> Vec<PathBuf> {
    let mut dirs: Vec<PathBuf> = match fs::read_dir(dir) {
        Ok(rd) => rd
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect(),
        Err(_) => Vec::new(),
    };
    dirs.sort();
    dirs
}

fn file_name(p: &Path) -> String {
    p.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default()
}

/// Workspace-relative `/`-separated path.
fn rel(root: &Path, p: &Path) -> String {
    let r = p.strip_prefix(root).unwrap_or(p);
    let s = r.to_string_lossy().replace('\\', "/");
    if s.is_empty() {
        ".".into()
    } else {
        s
    }
}
