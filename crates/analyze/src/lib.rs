//! `thermaware-analyze` — domain-aware static analysis for this
//! workspace, run as a tier-1 CI gate.
//!
//! The project's hard-won invariants — bit-identical checkpoint replay
//! (DESIGN.md §7), panic-free solver paths (§6), the numerical
//! conventions (§5), the crate layering (§3) — were, before this crate,
//! enforced only by tests and two per-crate clippy denies. Nothing
//! stopped a future change from reintroducing an ambient
//! `Instant::now()` into a replayed path or a float `==` into a reward
//! comparison; both classes of regression have precedent in this tree.
//! This crate encodes those invariants as machine-checked rules over the
//! workspace's own sources (see [`rules`] for the rule-by-rule
//! rationale) and fails CI on any unsuppressed finding.
//!
//! Design constraints:
//!
//! - **Zero dependencies.** The gate must never fail to build; it lexes
//!   Rust with a hand-rolled total lexer ([`lexer`]) instead of syn.
//! - **Escapes are explicit and tracked.** A site can opt out with
//!   `// lint: allow(<rule>): <reason>`; legacy debt lives in a
//!   committed allowlist ([`allowlist`]) that goes stale — and fails
//!   the build — the moment the underlying line changes.
//! - **Total.** The lexer and every rule are panic-free on arbitrary
//!   input (property-tested); a linter that crashes on weird-but-legal
//!   code is a worse gate than no linter.
//!
//! Entry points: [`engine::analyze`] for the full workspace pass, the
//! `thermaware-analyze` binary for `--check` / `--bless`.

pub mod allowlist;
pub mod bench;
pub mod callgraph;
pub mod engine;
pub mod json;
pub mod lexer;
pub mod parser;
pub mod report;
pub mod rules;
pub mod source;
pub mod workspace;
